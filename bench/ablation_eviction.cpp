// Ablation — eviction policy.
//
// Algorithm 1 pairs merging with cache eviction; the paper's simulation
// behaves as "a simple LRU-based cache" at α = 0. This bench swaps the
// victim-selection rule (LRU / LFU / largest-first / hit-density) on the
// paper workload at representative alphas and compares hit counts and
// storage efficiency.
#include "bench/common.hpp"

#include "sim/driver.hpp"

int main() {
  using namespace landlord;
  const auto env = bench::BenchEnv::from_environment();
  const auto& repo = bench::shared_repository(env.seed);
  bench::print_header("Ablation: eviction policies", env);

  util::Table table({"eviction", "alpha", "hits", "merges", "inserts", "deletes",
                     "cache eff(%)", "container eff(%)"});

  for (double alpha : {0.0, 0.75, 0.90}) {
    for (auto eviction :
         {core::EvictionPolicy::kLru, core::EvictionPolicy::kLfu,
          core::EvictionPolicy::kLargestFirst, core::EvictionPolicy::kHitDensity}) {
      sim::SimulationConfig config;
      config.cache.alpha = alpha;
      config.cache.capacity = 1400ULL * 1000 * 1000 * 1000;
      config.cache.eviction = eviction;
      config.workload.unique_jobs = env.unique_jobs;
      config.workload.repetitions = env.repetitions;
      config.seed = env.seed;

      const auto result = sim::run_simulation(repo, config);
      table.add_row({core::to_string(eviction), util::fmt(alpha, 2),
                     util::fmt(result.counters.hits),
                     util::fmt(result.counters.merges),
                     util::fmt(result.counters.inserts),
                     util::fmt(result.counters.deletes),
                     util::fmt(100 * result.cache_efficiency, 1),
                     util::fmt(100 * result.container_efficiency, 1)});
    }
  }
  bench::emit(table, env, "ablation_eviction");
  return 0;
}
