// Ablation — merge-candidate selection policies.
//
// Algorithm 1 leaves the candidate enumeration order open ("Selection
// can be sorted by dj()"). This bench quantifies the design choices
// DESIGN.md calls out: first-fit vs. best-fit (exact, sorted) vs.
// MinHash+LSH prefiltering, on the same workload at the default alpha —
// operation mix, efficiencies, and wall-clock per request.
#include "bench/common.hpp"

#include <chrono>

#include "sim/driver.hpp"

int main() {
  using namespace landlord;
  const auto env = bench::BenchEnv::from_environment();
  const auto& repo = bench::shared_repository(env.seed);
  bench::print_header("Ablation: merge-candidate selection policies", env);

  util::Table table({"policy", "alpha", "hits", "merges", "inserts",
                     "cache eff(%)", "container eff(%)", "us/request"});

  for (double alpha : {0.75, 0.90}) {
    for (auto policy : {core::MergePolicy::kFirstFit, core::MergePolicy::kBestFit,
                        core::MergePolicy::kMinHashLsh}) {
      sim::SimulationConfig config;
      config.cache.alpha = alpha;
      config.cache.capacity = 1400ULL * 1000 * 1000 * 1000;
      config.cache.policy = policy;
      config.workload.unique_jobs = env.unique_jobs;
      config.workload.repetitions = env.repetitions;
      config.seed = env.seed;

      const auto start = std::chrono::steady_clock::now();
      const auto result = sim::run_simulation(repo, config);
      const auto elapsed = std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - start)
                               .count();

      table.add_row({core::to_string(policy), util::fmt(alpha, 2),
                     util::fmt(result.counters.hits),
                     util::fmt(result.counters.merges),
                     util::fmt(result.counters.inserts),
                     util::fmt(100 * result.cache_efficiency, 1),
                     util::fmt(100 * result.container_efficiency, 1),
                     util::fmt(elapsed / static_cast<double>(
                                             result.counters.requests),
                               1)});
    }
  }
  bench::emit(table, env, "ablation_policies");
  return 0;
}
