// Ablation — image splitting (extension).
//
// §I lists splitting in LANDLORD's repertoire ("creates, merges, splits,
// or deletes container images") though Algorithm 1 only merges; bloated
// images are left to age out via the Jaccard distance. This bench turns
// the lineage-split extension on and measures what it buys: container
// efficiency should recover at high alpha (jobs stop shipping bloat)
// at the cost of extra rewrite I/O.
#include "bench/common.hpp"

#include "sim/driver.hpp"

int main() {
  using namespace landlord;
  const auto env = bench::BenchEnv::from_environment();
  const auto& repo = bench::shared_repository(env.seed);
  bench::print_header("Ablation: image splitting", env);

  util::Table table({"splitting", "alpha", "hits", "merges", "splits",
                     "container eff(%)", "cache eff(%)", "written(TB)"});

  for (double alpha : {0.75, 0.85, 0.95}) {
    for (bool enable_split : {false, true}) {
      sim::SimulationConfig config;
      config.cache.alpha = alpha;
      config.cache.capacity = 1400ULL * 1000 * 1000 * 1000;
      config.cache.enable_split = enable_split;
      config.cache.split_utilization = 0.25;
      config.workload.unique_jobs = env.unique_jobs;
      config.workload.repetitions = env.repetitions;
      config.seed = env.seed;

      const auto result = sim::run_simulation(repo, config);
      table.add_row({enable_split ? "on" : "off", util::fmt(alpha, 2),
                     util::fmt(result.counters.hits),
                     util::fmt(result.counters.merges),
                     util::fmt(result.counters.splits),
                     util::fmt(100 * result.container_efficiency, 1),
                     util::fmt(100 * result.cache_efficiency, 1),
                     util::fmt(static_cast<double>(result.counters.written_bytes) /
                                   1e12,
                               2)});
    }
  }
  bench::emit(table, env, "ablation_split");
  return 0;
}
