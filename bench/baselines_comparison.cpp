// Baselines — the paper's §III "imperfect solutions" vs. LANDLORD.
//
// The same paper workload (500 unique jobs x5) flows through:
//   full-repo    one all-purpose image holding the whole repository
//   naive        one image per distinct specification, stored verbatim
//   block-dedup  per-spec images over content-addressed storage
//   layered      Docker-style additive layer chains
//   landlord     Algorithm 1 at alpha = 0.8 (1.4 TB budget)
//
// Reported: physical storage, logical image bytes, per-job shipped
// bytes, and materialisation I/O — quantifying each critique: full-repo
// ships everything; naive explodes storage; dedup fixes storage but not
// transfer; layering cannot share across chains; LANDLORD balances all
// four under a fixed budget.
#include "bench/common.hpp"

#include "baseline/baselines.hpp"
#include "landlord/cache.hpp"
#include "sim/workload.hpp"

int main() {
  using namespace landlord;
  const auto env = bench::BenchEnv::from_environment();
  const auto& repo = bench::shared_repository(env.seed);
  bench::print_header("Baselines: imperfect solutions vs. LANDLORD", env);

  sim::WorkloadConfig workload;
  workload.unique_jobs = env.unique_jobs;
  workload.repetitions = env.repetitions;
  sim::WorkloadGenerator generator(repo, workload, util::Rng(env.seed));
  const auto specs = generator.unique_specifications();
  const auto stream = generator.request_stream();

  baseline::FullRepoBaseline full(repo);
  baseline::NaivePerJobStore naive(repo);
  baseline::BlockDedupStore dedup(repo);
  baseline::LayeredStore layered(repo);

  core::CacheConfig cache_config;
  cache_config.alpha = 0.8;
  cache_config.capacity = 1400ULL * 1000 * 1000 * 1000;
  core::Cache landlord_cache(repo, cache_config);
  util::Bytes landlord_shipped = 0;

  for (auto index : stream) {
    const auto& spec = specs[index];
    (void)full.submit(spec);
    (void)naive.submit(spec);
    (void)dedup.submit(spec);
    (void)layered.submit(spec);
    const auto outcome = landlord_cache.request(spec);
    landlord_shipped += outcome.image_bytes;
  }

  util::Table table({"strategy", "physical(TB)", "logical(TB)", "shipped(TB)",
                     "shipped/job(GB)", "written(TB)", "artifacts"});
  auto add = [&](const char* name, const baseline::Totals& t) {
    table.add_row({name,
                   util::fmt(static_cast<double>(t.physical_bytes) / 1e12, 3),
                   util::fmt(static_cast<double>(t.logical_bytes) / 1e12, 3),
                   util::fmt(static_cast<double>(t.shipped_bytes) / 1e12, 2),
                   util::fmt(static_cast<double>(t.shipped_bytes) / 1e9 /
                                 static_cast<double>(stream.size()),
                             1),
                   util::fmt(static_cast<double>(t.written_bytes) / 1e12, 2),
                   util::fmt(t.artifacts)});
  };
  add("full-repo", full.totals());
  add("naive", naive.totals());
  add("block-dedup", dedup.totals());
  add("layered", layered.totals());

  const auto& c = landlord_cache.counters();
  baseline::Totals landlord_totals;
  landlord_totals.physical_bytes = landlord_cache.total_bytes();
  landlord_totals.logical_bytes = landlord_cache.total_bytes();
  landlord_totals.shipped_bytes = landlord_shipped;
  landlord_totals.written_bytes = c.written_bytes;
  landlord_totals.artifacts = landlord_cache.image_count();
  add("landlord a=0.8 (1.4TB cap)", landlord_totals);

  bench::emit(table, env, "baselines_comparison");

  std::cout << "note: full-repo/naive/dedup/layered stores are unbounded; "
               "LANDLORD operates under its byte budget (deletes="
            << c.deletes << ").\n";
  return 0;
}
