// Shared scaffolding for the figure-regeneration benches.
//
// Every bench prints an aligned table on stdout (the rows/series the
// paper reports) and, when LANDLORD_CSV_DIR is set, writes the same data
// as CSV for replotting. Scale knobs come from the environment so the
// default run finishes quickly while a paper-scale run is one variable
// away:
//   LANDLORD_REPLICATES  simulations per sweep point   (default 20, paper 20)
//   LANDLORD_JOBS        unique job specifications     (default 500, paper 500)
//   LANDLORD_REPEATS     repetitions per job           (default 5, paper 5)
//   LANDLORD_SEED        master seed                   (default 42)
//   LANDLORD_CSV_DIR     directory for CSV output      (default: none)
//   LANDLORD_METRICS_OUT Prometheus exposition file    (default: none)
//   LANDLORD_DECISION_INDEX  sublinear decision path on/off (default 1;
//                        0 forces the naive scans — results are
//                        bit-identical, only the wall clock moves)
//
// Benches that attach an obs::Observability also take `--metrics-out
// FILE` on the command line (overrides the environment), so a run can
// leave behind a scrape-able snapshot next to its CSVs.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "obs/obs.hpp"
#include "pkg/synthetic.hpp"
#include "sim/sweep.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace landlord::bench {

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  if (const char* value = std::getenv(name)) {
    char* end = nullptr;
    const auto parsed = std::strtoull(value, &end, 10);
    if (end != value && *end == '\0') return parsed;
  }
  return fallback;
}

struct BenchEnv {
  std::uint32_t replicates = 20;
  std::uint32_t unique_jobs = 500;
  std::uint32_t repetitions = 5;
  std::uint64_t seed = 42;
  bool decision_index = true;
  std::optional<std::string> csv_dir;
  std::optional<std::string> metrics_out;

  static BenchEnv from_environment() {
    BenchEnv env;
    env.replicates = static_cast<std::uint32_t>(env_u64("LANDLORD_REPLICATES", 20));
    env.unique_jobs = static_cast<std::uint32_t>(env_u64("LANDLORD_JOBS", 500));
    env.repetitions = static_cast<std::uint32_t>(env_u64("LANDLORD_REPEATS", 5));
    env.seed = env_u64("LANDLORD_SEED", 42);
    env.decision_index = env_u64("LANDLORD_DECISION_INDEX", 1) != 0;
    if (const char* dir = std::getenv("LANDLORD_CSV_DIR")) env.csv_dir = dir;
    if (const char* out = std::getenv("LANDLORD_METRICS_OUT")) env.metrics_out = out;
    return env;
  }

  /// Environment knobs plus command-line flags (--metrics-out FILE).
  static BenchEnv from_args(int argc, char** argv) {
    BenchEnv env = from_environment();
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--metrics-out" && i + 1 < argc) {
        env.metrics_out = argv[++i];
      } else {
        std::cerr << "warning: unknown argument " << arg
                  << " (supported: --metrics-out FILE)\n";
      }
    }
    return env;
  }
};

/// Writes the registry's Prometheus text exposition to env.metrics_out,
/// if set. Call once, after the bench's runs have all finished.
inline void emit_metrics(const obs::Observability& obs, const BenchEnv& env) {
  if (!env.metrics_out) return;
  std::ofstream out(*env.metrics_out);
  if (!out) {
    std::cerr << "warning: could not write " << *env.metrics_out << '\n';
    return;
  }
  obs.registry.render_text(out);
  std::cout << "(metrics written to " << *env.metrics_out << ")\n";
}

/// The paper-scale synthetic repository all benches share.
inline const pkg::Repository& shared_repository(std::uint64_t seed) {
  static const pkg::Repository repo = pkg::default_repository(seed);
  return repo;
}

/// Paper defaults: 1.4 TB cache, 500 unique jobs x 5 (Fig. 5 setup).
inline sim::SweepConfig paper_sweep_config(const BenchEnv& env) {
  sim::SweepConfig config;
  config.alphas = sim::SweepConfig::default_alphas();
  config.replicates = env.replicates;
  config.base.cache.capacity = 1400ULL * 1000 * 1000 * 1000;  // 1.4 TB (decimal)
  config.base.cache.decision_index = env.decision_index;
  config.base.workload.unique_jobs = env.unique_jobs;
  config.base.workload.repetitions = env.repetitions;
  config.base.seed = env.seed;
  return config;
}

/// Prints the table and optionally saves CSV as <csv_dir>/<name>.csv.
inline void emit(const util::Table& table, const BenchEnv& env,
                 const std::string& name) {
  table.print(std::cout);
  std::cout << '\n';
  if (env.csv_dir) {
    const std::string path = *env.csv_dir + "/" + name + ".csv";
    if (table.save_csv(path)) {
      std::cout << "(csv written to " << path << ")\n\n";
    } else {
      std::cerr << "warning: could not write " << path << '\n';
    }
  }
}

inline void print_header(const char* title, const BenchEnv& env) {
  std::cout << "=== " << title << " ===\n"
            << "repo: 9660 packages, seed " << env.seed << "; jobs "
            << env.unique_jobs << " x" << env.repetitions << ", replicates "
            << env.replicates << "\n\n";
}

}  // namespace landlord::bench
