// Extension — delta-vs-full ablation for the shrinkwrap CAS.
//
// The paper charges every merge with a full image rewrite ("the
// resulting image must be written out in its entirety", §VI) and its
// Fig. 4c I/O-overhead panel is the cost of that choice. This bench
// quantifies the alternative the delta-chained image store models:
//
//   1. Decision-layer ablation (the fig4c/fig6 companion): the alpha
//      sweep re-run with CacheConfig::delta_chain_cap > 0. Placements
//      are bit-identical (tests/sim/delta_oracle_test.cpp); the
//      counterfactual full_rewrite_bytes ledger vs. written_bytes is
//      exactly the merge I/O a delta store saves.
//   2. Store-level scale: 100 / 1k / 10k images with version churn
//      through a shared file pool — chunk dedup ratio, bytes per image
//      update under delta vs. full accounting, and the cost/payoff of a
//      full repack GC pass.
//
// Machine-readable `CASMETRIC key=value ...` lines feed
// scripts/bench_cas.sh, which applies the regression gate and writes
// BENCH_cas.json. Every field is seeded and byte-stable across runs
// except repack_seconds, which is measured wall clock (like the serve
// bench's QPS) and is deliberately not gated on.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <vector>

#include "bench/common.hpp"
#include "shrinkwrap/imagestore.hpp"
#include "util/rng.hpp"

namespace {

using namespace landlord;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// One simulated image: files drawn from a shared pool, so images
/// overlap heavily (the HTC regime), each at a per-image version.
std::vector<shrinkwrap::ChunkRef> image_tree(
    util::Rng& rng, const std::vector<std::uint32_t>& versions,
    const std::vector<std::uint32_t>& members,
    const shrinkwrap::ChunkerParams& params) {
  std::vector<shrinkwrap::ChunkRef> tree;
  for (const std::uint32_t file : members) {
    // Content identity = (pool file, its current version), mixed.
    std::uint64_t state = 0x66696c65ULL ^ (static_cast<std::uint64_t>(file) << 20) ^
                          versions[file];
    const shrinkwrap::ChunkHash content = util::splitmix64(state);
    const util::Bytes size =
        64 * util::kKiB + util::splitmix64(state) % (4 * util::kMiB);
    const auto chunks = shrinkwrap::model_chunks(content, size, params);
    tree.insert(tree.end(), chunks.begin(), chunks.end());
  }
  (void)rng;
  return tree;
}

struct StorePoint {
  std::size_t images = 0;
  double dedup_ratio = 0.0;        ///< logical / unique bytes after churn
  double update_delta_mb = 0.0;    ///< mean bytes charged per delta update
  double update_full_mb = 0.0;     ///< mean bytes a full rewrite would charge
  double repack_seconds = 0.0;     ///< one explicit GC pass over every image
  double repack_reclaimed_gb = 0.0;
  double repack_written_gb = 0.0;
};

StorePoint run_store_scale(std::size_t images, std::uint64_t seed) {
  shrinkwrap::ImageStoreConfig config;
  config.chain_cap = 8;
  shrinkwrap::ImageStore store(config);
  util::Rng rng(seed);

  // Shared pool: ~20 files per image from a pool sized so every file
  // appears in several images (cross-image dedup, CVMFS-style).
  const std::size_t pool = std::max<std::size_t>(64, images * 4);
  std::vector<std::uint32_t> versions(pool, 0);
  std::vector<std::vector<std::uint32_t>> membership(images);
  for (auto& members : membership) {
    const std::size_t count = 12 + rng.uniform(16);
    for (std::size_t f = 0; f < count; ++f) {
      members.push_back(static_cast<std::uint32_t>(rng.uniform(pool)));
    }
  }

  StorePoint point;
  point.images = images;
  for (std::size_t key = 0; key < images; ++key) {
    auto receipt =
        store.put(key, image_tree(rng, versions, membership[key], config.chunker));
    if (!receipt.ok()) std::abort();
  }

  // Version churn: three update rounds; each round ~10% of the pool
  // bumps a version, then every touched image is rebuilt.
  util::Bytes delta_charged = 0;
  util::Bytes full_charged = 0;
  std::uint64_t updates = 0;
  for (int round = 0; round < 3; ++round) {
    for (std::size_t f = 0; f < pool; ++f) {
      if (rng.chance(0.1)) ++versions[f];
    }
    for (std::size_t key = 0; key < images; ++key) {
      const auto tree =
          image_tree(rng, versions, membership[key], config.chunker);
      util::Bytes tree_bytes = 0;
      for (const auto& chunk : tree) tree_bytes += chunk.size;
      auto receipt = store.put(key, tree);
      if (!receipt.ok()) std::abort();
      delta_charged += receipt.value().bytes_written;
      full_charged += tree_bytes;  // what the paper's accounting charges
      ++updates;
    }
  }
  point.dedup_ratio = static_cast<double>(store.logical_bytes()) /
                      static_cast<double>(store.unique_bytes());
  point.update_delta_mb =
      static_cast<double>(delta_charged) / static_cast<double>(updates) / 1.0e6;
  point.update_full_mb =
      static_cast<double>(full_charged) / static_cast<double>(updates) / 1.0e6;

  // Explicit GC pass: flatten every chain, reclaim superseded chunks.
  const auto start = std::chrono::steady_clock::now();
  util::Bytes reclaimed = 0;
  util::Bytes repack_written = 0;
  for (std::size_t key = 0; key < images; ++key) {
    auto receipt = store.repack(key);
    if (!receipt.ok()) std::abort();
    reclaimed += receipt.value().reclaimed_bytes;
    repack_written += receipt.value().bytes_written;
  }
  point.repack_seconds = seconds_since(start);
  point.repack_reclaimed_gb = static_cast<double>(reclaimed) / 1.0e9;
  point.repack_written_gb = static_cast<double>(repack_written) / 1.0e9;
  if (store.reconcile().has_value()) std::abort();  // ledgers must be exact
  return point;
}

}  // namespace

int main() {
  const auto env = bench::BenchEnv::from_environment();
  const auto& repo = bench::shared_repository(env.seed);
  bench::print_header("Ext: delta merges in the shrinkwrap CAS", env);

  // --- Part 1: decision-layer alpha ablation (fig4c companion) ---
  auto config = bench::paper_sweep_config(env);
  config.alphas = {0.6, 0.8, 1.0};
  config.base.cache.delta_chain_cap = 4;
  util::ThreadPool pool;
  const auto points = sim::run_sweep(repo, config, &pool);

  util::Table sweep({"alpha", "merges", "delta", "repacks", "written(TB)",
                     "full-rewrite(TB)", "savings"});
  for (const auto& p : points) {
    const double savings =
        p.full_rewrite_tb > 0 ? 1.0 - p.written_tb / p.full_rewrite_tb : 0.0;
    sweep.add_row({util::fmt(p.alpha, 2), util::fmt(p.merges, 0),
                   util::fmt(p.delta_merges, 0), util::fmt(p.repacks, 0),
                   util::fmt(p.written_tb, 2), util::fmt(p.full_rewrite_tb, 2),
                   util::fmt(100.0 * savings, 1) + "%"});
    std::cout << "CASMETRIC sweep alpha=" << p.alpha
              << " merges=" << p.merges << " delta_merges=" << p.delta_merges
              << " repacks=" << p.repacks << " written_tb=" << p.written_tb
              << " full_rewrite_tb=" << p.full_rewrite_tb << "\n";
  }
  std::cout << "--- decision-layer merge I/O, delta (chain cap 4) vs full ---\n";
  bench::emit(sweep, env, "ext_cas_sweep");

  // --- Part 2: store-level scale ---
  util::Table scale({"images", "dedup", "update delta(MB)", "update full(MB)",
                     "repack(s)", "reclaimed(GB)"});
  for (const std::size_t images : {std::size_t{100}, std::size_t{1000},
                                   std::size_t{10000}}) {
    const auto p = run_store_scale(images, env.seed ^ images);
    scale.add_row({util::fmt(static_cast<double>(p.images), 0),
                   util::fmt(p.dedup_ratio, 2) + "x",
                   util::fmt(p.update_delta_mb, 1),
                   util::fmt(p.update_full_mb, 1),
                   util::fmt(p.repack_seconds, 3),
                   util::fmt(p.repack_reclaimed_gb, 2)});
    std::cout << "CASMETRIC store images=" << p.images
              << " dedup_ratio=" << p.dedup_ratio
              << " update_delta_mb=" << p.update_delta_mb
              << " update_full_mb=" << p.update_full_mb
              << " repack_seconds=" << p.repack_seconds
              << " repack_reclaimed_gb=" << p.repack_reclaimed_gb
              << " repack_written_gb=" << p.repack_written_gb << "\n";
  }
  std::cout << "--- image-store scale: churned images, then one GC pass ---\n";
  bench::emit(scale, env, "ext_cas_store");
  return 0;
}
