// Extension — workload drift across release generations.
//
// "Over time, containers multiply: as a user's work evolves, different
// jobs need different software, and new containers are generated" (§I).
// This study replays the workload over several release generations; each
// generation upgrades a fraction of every spec's packages to newer
// versions. Because adjacent versions share most of their closure, the
// drifted specs stay Jaccard-close to the cached images — LANDLORD's
// merging absorbs the churn, while the naive (alpha = 0) cache rebuilds
// almost everything every generation.
#include "bench/common.hpp"

#include "landlord/cache.hpp"
#include "sim/workload.hpp"

int main() {
  using namespace landlord;
  const auto env = bench::BenchEnv::from_environment();
  const auto& repo = bench::shared_repository(env.seed);
  bench::print_header("Extension: workload drift across release generations", env);

  const double upgrade_probability =
      0.01 * static_cast<double>(bench::env_u64("LANDLORD_DRIFT_PCT", 15));
  const auto generations =
      static_cast<std::uint32_t>(bench::env_u64("LANDLORD_GENERATIONS", 6));

  util::Table table({"alpha", "generation", "hits", "merges", "inserts",
                     "written(TB)", "container eff(%)"});

  for (double alpha : {0.0, 0.60, 0.80, 0.95}) {
    sim::WorkloadConfig workload;
    workload.unique_jobs = std::min<std::uint32_t>(env.unique_jobs, 200);
    workload.max_initial_selection = 50;
    sim::WorkloadGenerator generator(repo, workload, util::Rng(env.seed));
    auto specs = generator.unique_specifications();

    core::CacheConfig config;
    config.alpha = alpha;
    config.capacity = 1400ULL * 1000 * 1000 * 1000;
    core::Cache cache(repo, config);

    core::CacheCounters previous;
    for (std::uint32_t generation = 0; generation < generations; ++generation) {
      for (const auto& spec : specs) (void)cache.request(spec);
      const auto& counters = cache.counters();
      table.add_row(
          {util::fmt(alpha, 2), util::fmt(std::uint64_t{generation}),
           util::fmt(counters.hits - previous.hits),
           util::fmt(counters.merges - previous.merges),
           util::fmt(counters.inserts - previous.inserts),
           util::fmt(static_cast<double>(counters.written_bytes) / 1e12, 2),
           util::fmt(100 * counters.container_efficiency(), 1)});
      previous = counters;
      for (auto& spec : specs) {
        spec = generator.evolved_specification(spec, upgrade_probability);
      }
    }
  }
  bench::emit(table, env, "ext_drift");
  std::cout << "(per-generation operation deltas; drift "
            << util::fmt(100 * upgrade_probability, 0) << "% upgrades per "
            << "generation)\n";
  return 0;
}
