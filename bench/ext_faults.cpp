// Extension — fault rate vs. hit ratio and preparation overhead.
//
// The paper's head node assumes every download and merge rewrite
// succeeds; a WAN in the real world does not cooperate. This sweep
// injects seeded build failures at increasing rates and measures what
// the degradation ladder (docs/fault_model.md) costs: hit ratio is
// untouched (hits need no build), but retries and backoff waits inflate
// prep time, merge fallbacks ship exact uncached images, and only at
// brutal fault rates do error placements appear. A second section tears
// periodic checkpoints and reports crash-recovery losses.
#include "bench/common.hpp"

#include "fault/fault.hpp"
#include "landlord/landlord.hpp"
#include "sim/crash.hpp"
#include "sim/workload.hpp"

int main(int argc, char** argv) {
  using namespace landlord;
  const auto env = bench::BenchEnv::from_args(argc, argv);
  const auto& repo = bench::shared_repository(env.seed);
  bench::print_header("Extension: fault injection vs hit ratio / prep overhead",
                      env);

  // One bundle for the whole sweep: the snapshot left behind covers
  // every row (counters are monotone; per-row deltas live in the table).
  obs::Observability obs(1 << 14);

  sim::WorkloadConfig workload;
  workload.unique_jobs = std::min<std::uint32_t>(env.unique_jobs, 300);
  workload.repetitions = env.repetitions;
  workload.max_initial_selection = 60;

  util::Table table({"fault rate", "hit%", "degraded", "failed", "retries",
                     "backoff(s)", "prep(h)", "prep overhead%"});

  double baseline_prep = 0.0;
  for (const double rate : {0.0, 0.01, 0.05, 0.10, 0.20, 0.40}) {
    sim::CrashReplayConfig config;
    config.cache.alpha = 0.8;
    config.cache.capacity = 1400ULL * 1000 * 1000 * 1000;
    config.workload = workload;
    config.seed = env.seed;
    config.crash.checkpoint_every = 0;  // fault sweep only; no checkpoints
    config.faults.fail(fault::FaultOp::kBuilderDownload, rate)
        .fail(fault::FaultOp::kMergeRewrite, rate);
    config.faults.seed = env.seed ^ 0xfa017ULL;
    if (env.metrics_out) config.obs = &obs;

    const auto result = sim::run_crash_replay(repo, config);
    if (rate == 0.0) baseline_prep = result.total_prep_seconds;
    const double overhead =
        baseline_prep > 0.0
            ? 100.0 * (result.total_prep_seconds - baseline_prep) / baseline_prep
            : 0.0;
    table.add_row(
        {util::fmt(rate, 2),
         util::fmt(100.0 * static_cast<double>(result.counters.hits) /
                       static_cast<double>(result.counters.requests),
                   1),
         util::fmt(result.degraded_placements), util::fmt(result.failed_placements),
         util::fmt(result.degraded.retries),
         util::fmt(result.degraded.backoff_seconds, 1),
         util::fmt(result.total_prep_seconds / 3600.0, 2), util::fmt(overhead, 1)});
  }
  bench::emit(table, env, "ext_faults");

  std::cout << "crash-recovery under torn checkpoints:\n";
  util::Table crash_table({"tear rate", "crashes", "checkpoints", "torn",
                           "recovered", "lost records", "final images"});
  for (const double rate : {0.0, 0.25, 0.50, 1.0}) {
    sim::CrashReplayConfig config;
    config.cache.alpha = 0.8;
    config.cache.capacity = 1400ULL * 1000 * 1000 * 1000;
    config.workload = workload;
    config.seed = env.seed;
    config.crash.checkpoint_every = 50;
    config.crash.crash_every = 400;
    config.faults.fail(fault::FaultOp::kSnapshotWrite, rate);
    config.faults.seed = env.seed ^ 0xc4a54ULL;
    if (env.metrics_out) config.obs = &obs;

    const auto result = sim::run_crash_replay(repo, config);
    crash_table.add_row(
        {util::fmt(rate, 2), util::fmt(result.crashes),
         util::fmt(result.checkpoints), util::fmt(result.torn_checkpoints),
         util::fmt(result.images_recovered), util::fmt(result.records_lost),
         util::fmt(result.final_image_count)});
  }
  bench::emit(crash_table, env, "ext_faults_crash");
  bench::emit_metrics(obs, env);
  std::cout << "(seeded faults: every row replays bit-identically; "
            << "see docs/fault_model.md)\n";
  return 0;
}
