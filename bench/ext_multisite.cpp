// Extension — multi-site image management.
//
// The container explosion problem is distributed: "containers are
// replicated across sites and to many individual nodes" (§I). This study
// runs one LANDLORD cache per site and compares routing policies:
// content-blind routing (round-robin / random) rebuilds the same images
// at several sites, while content-affinity routing keeps each job family
// at one site — higher hit rates and less cross-site duplication.
// A second section injects seeded site outages (docs/fault_model.md) and
// prices health-gated failover: the circuit breakers shed traffic to the
// next site by hash, which must rebuild the home site's images — the
// duplication cost the affinity policy normally avoids.
#include "bench/common.hpp"

#include "fault/fault.hpp"
#include "sim/multisite.hpp"
#include "sim/workload.hpp"

int main(int argc, char** argv) {
  using namespace landlord;
  const auto env = bench::BenchEnv::from_args(argc, argv);
  const auto& repo = bench::shared_repository(env.seed);
  bench::print_header("Extension: multi-site routing", env);

  // One bundle for the whole run: the snapshot left behind covers every
  // row (counters are monotone; per-row deltas live in the tables).
  obs::Observability obs(1 << 14);

  sim::WorkloadConfig workload;
  workload.unique_jobs = env.unique_jobs;
  workload.repetitions = env.repetitions;
  sim::WorkloadGenerator generator(repo, workload, util::Rng(env.seed));
  const auto specs = generator.unique_specifications();
  const auto stream = generator.request_stream();

  const auto sites = static_cast<std::uint32_t>(bench::env_u64("LANDLORD_SITES", 4));

  util::Table table({"routing", "sites", "alpha", "hits", "merges", "inserts",
                     "total cached(TB)", "global unique(TB)",
                     "global cache eff(%)", "written(TB)"});

  for (double alpha : {0.0, 0.80}) {
    for (auto routing :
         {sim::Routing::kRoundRobin, sim::Routing::kRandom, sim::Routing::kAffinity}) {
      sim::MultiSiteConfig config;
      config.sites = sites;
      config.routing = routing;
      config.cache.alpha = alpha;
      config.cache.capacity = 1400ULL * 1000 * 1000 * 1000 / sites;
      const auto result =
          sim::run_multisite(repo, config, specs, stream, env.seed);
      table.add_row(
          {sim::to_string(routing), util::fmt(std::uint64_t{sites}),
           util::fmt(alpha, 2), util::fmt(result.total_hits),
           util::fmt(result.total_merges), util::fmt(result.total_inserts),
           util::fmt(static_cast<double>(result.total_cached_bytes) / 1e12, 2),
           util::fmt(static_cast<double>(result.global_unique_bytes) / 1e12, 2),
           util::fmt(100 * result.global_cache_efficiency(), 1),
           util::fmt(static_cast<double>(result.total_written_bytes) / 1e12, 2)});
    }
  }
  bench::emit(table, env, "ext_multisite");

  // Outage sweep under affinity routing: the breaker trips after
  // consecutive failures, traffic fails over to the next healthy site by
  // hash, and the fallback pays the duplicated image builds.
  util::Table outage({"outage rate", "failovers", "failed", "outages",
                      "breaker transitions", "failover written(TB)",
                      "written(TB)"});
  for (const double rate : {0.0, 0.01, 0.05, 0.10, 0.25}) {
    sim::MultiSiteConfig config;
    config.sites = sites;
    config.routing = sim::Routing::kAffinity;
    config.cache.alpha = 0.8;
    config.cache.capacity = 1400ULL * 1000 * 1000 * 1000 / sites;
    config.faults.fail(fault::FaultOp::kSiteOutage, rate);
    config.faults.seed = env.seed ^ 0x5173ULL;
    if (env.metrics_out) config.obs = &obs;
    const auto result =
        sim::run_multisite(repo, config, specs, stream, env.seed);
    outage.add_row(
        {util::fmt(rate, 2), util::fmt(result.failover_placements),
         util::fmt(result.failed_requests), util::fmt(result.outage_failures),
         util::fmt(result.breaker_transitions),
         util::fmt(static_cast<double>(result.failover_written_bytes) / 1e12,
                   3),
         util::fmt(static_cast<double>(result.total_written_bytes) / 1e12, 2)});
  }
  bench::emit(outage, env, "ext_multisite_outage");
  bench::emit_metrics(obs, env);
  return 0;
}
