// Extension — multi-site image management.
//
// The container explosion problem is distributed: "containers are
// replicated across sites and to many individual nodes" (§I). This study
// runs one LANDLORD cache per site and compares routing policies:
// content-blind routing (round-robin / random) rebuilds the same images
// at several sites, while content-affinity routing keeps each job family
// at one site — higher hit rates and less cross-site duplication.
#include "bench/common.hpp"

#include "sim/multisite.hpp"
#include "sim/workload.hpp"

int main() {
  using namespace landlord;
  const auto env = bench::BenchEnv::from_environment();
  const auto& repo = bench::shared_repository(env.seed);
  bench::print_header("Extension: multi-site routing", env);

  sim::WorkloadConfig workload;
  workload.unique_jobs = env.unique_jobs;
  workload.repetitions = env.repetitions;
  sim::WorkloadGenerator generator(repo, workload, util::Rng(env.seed));
  const auto specs = generator.unique_specifications();
  const auto stream = generator.request_stream();

  const auto sites = static_cast<std::uint32_t>(bench::env_u64("LANDLORD_SITES", 4));

  util::Table table({"routing", "sites", "alpha", "hits", "merges", "inserts",
                     "total cached(TB)", "global unique(TB)",
                     "global cache eff(%)", "written(TB)"});

  for (double alpha : {0.0, 0.80}) {
    for (auto routing :
         {sim::Routing::kRoundRobin, sim::Routing::kRandom, sim::Routing::kAffinity}) {
      sim::MultiSiteConfig config;
      config.sites = sites;
      config.routing = routing;
      config.cache.alpha = alpha;
      config.cache.capacity = 1400ULL * 1000 * 1000 * 1000 / sites;
      const auto result =
          sim::run_multisite(repo, config, specs, stream, env.seed);
      table.add_row(
          {sim::to_string(routing), util::fmt(std::uint64_t{sites}),
           util::fmt(alpha, 2), util::fmt(result.total_hits),
           util::fmt(result.total_merges), util::fmt(result.total_inserts),
           util::fmt(static_cast<double>(result.total_cached_bytes) / 1e12, 2),
           util::fmt(static_cast<double>(result.global_unique_bytes) / 1e12, 2),
           util::fmt(100 * result.global_cache_efficiency(), 1),
           util::fmt(static_cast<double>(result.total_written_bytes) / 1e12, 2)});
    }
  }
  bench::emit(table, env, "ext_multisite");
  return 0;
}
