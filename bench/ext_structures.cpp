// Extension — repository structure and merging effectiveness.
//
// The paper's first conclusion: "our techniques are most effective when
// the dependency structures are hierarchical, resulting in a compact
// distribution of common packages" (§I). This study runs the same cache
// configuration over three workload structures:
//
//   hierarchical  SFT-like default: universal core + experiment hubs
//   flat          PyPI-like preset: shallow deps, no hubs, thin base
//   random        Fig. 7's structureless control (uniform-random images)
//
// The hierarchy is what concentrates shared packages; as it erodes,
// merges find less overlap and the benefit collapses.
#include "bench/common.hpp"

int main() {
  using namespace landlord;
  const auto env = bench::BenchEnv::from_environment();
  bench::print_header("Extension: repository structure vs. merging", env);

  struct Structure {
    const char* name;
    const pkg::Repository* repo;
    sim::ImageScheme scheme;
  };
  const auto& hierarchical = bench::shared_repository(env.seed);
  static const pkg::Repository flat = [&] {
    auto result = pkg::generate_repository(pkg::pypi_like_params(), env.seed);
    return std::move(result).value();
  }();

  const Structure structures[] = {
      {"hierarchical (SFT-like)", &hierarchical, sim::ImageScheme::kDependencyClosure},
      {"flat (PyPI-like)", &flat, sim::ImageScheme::kDependencyClosure},
      {"random (no structure)", &hierarchical, sim::ImageScheme::kUniformRandom},
  };

  util::ThreadPool pool;
  util::Table table({"structure", "alpha", "merges", "hits",
                     "cache eff(%)", "container eff(%)"});
  for (const auto& structure : structures) {
    auto config = bench::paper_sweep_config(env);
    config.alphas = {0.60, 0.75, 0.90};
    config.base.workload.scheme = structure.scheme;
    const auto points = sim::run_sweep(*structure.repo, config, &pool);
    for (const auto& point : points) {
      table.add_row({structure.name, util::fmt(point.alpha, 2),
                     util::fmt(point.merges, 0), util::fmt(point.hits, 0),
                     util::fmt(point.cache_efficiency, 1),
                     util::fmt(point.container_efficiency, 1)});
    }
  }
  bench::emit(table, env, "ext_structures");
  return 0;
}
