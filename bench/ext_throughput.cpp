// Extension — end-to-end HTC throughput vs. alpha.
//
// "Our goal then is to maximize the throughput of jobs that can be run
// using some fixed amount of cache space for container images" (§III).
// This study runs the paper workload through the batch-system simulator:
// jobs arrive (Poisson), queue for worker slots, pay LANDLORD's
// image-preparation latency, and execute. Preparation time follows the
// Shrinkwrap build model, so low alpha pays for many cold image builds
// while very high alpha pays for constantly rewriting huge merged
// images — throughput peaks in between, which is the operational zone
// expressed in the currency HTC users care about.
#include "bench/common.hpp"

#include "batch/batch.hpp"
#include "sim/workload.hpp"

int main() {
  using namespace landlord;
  const auto env = bench::BenchEnv::from_environment();
  const auto& repo = bench::shared_repository(env.seed);
  bench::print_header("Extension: batch throughput vs. alpha", env);

  // Keep the stream at a few hundred jobs so the queueing regime is
  // interesting (arrivals faster than a cold system can drain).
  const auto unique_jobs = std::min<std::uint32_t>(env.unique_jobs, 200);
  sim::WorkloadConfig workload;
  workload.unique_jobs = unique_jobs;
  workload.max_initial_selection = 50;
  sim::WorkloadGenerator generator(repo, workload, util::Rng(env.seed));
  const auto specs = generator.unique_specifications();
  const auto jobs = batch::poisson_schedule(
      specs.size(), env.repetitions, /*jobs_per_hour=*/600.0,
      /*mean_run_s=*/900.0, util::Rng(env.seed ^ 0xb47c4));

  util::Table table({"alpha", "throughput(jobs/h)", "mean wait(s)",
                     "mean prep(s)", "total prep(h)", "slot util(%)",
                     "hits", "merges", "inserts"});
  for (double alpha : sim::SweepConfig::default_alphas()) {
    batch::BatchConfig config;
    config.slots = static_cast<std::uint32_t>(bench::env_u64("LANDLORD_SLOTS", 64));
    config.cache.alpha = alpha;
    config.cache.capacity = 1400ULL * 1000 * 1000 * 1000;
    const auto result = batch::run_batch(repo, specs, jobs, config);
    table.add_row({util::fmt(alpha, 2),
                   util::fmt(result.throughput_jobs_per_hour, 1),
                   util::fmt(result.mean_wait_s, 1),
                   util::fmt(result.mean_prep_s, 1),
                   util::fmt(result.total_prep_s / 3600.0, 2),
                   util::fmt(100 * result.slot_utilization, 1),
                   util::fmt(result.cache_counters.hits),
                   util::fmt(result.cache_counters.merges),
                   util::fmt(result.cache_counters.inserts)});
  }
  bench::emit(table, env, "ext_throughput");
  return 0;
}
