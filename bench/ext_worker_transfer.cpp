// Extension — worker-node transfer cost vs. alpha, and dispatch-plane
// robustness under worker churn.
//
// The paper's container efficiency is motivated by transfer: "it is
// likely that a given job does not need all of the repository
// simultaneously, so it is wasteful to transfer unneeded data" (§III).
// This study attaches a pool of worker nodes with finite scratch to the
// head-node cache and measures the bytes actually shipped per job across
// alpha: low alpha ships tight images but misses reuse; high alpha ships
// fat, frequently rewritten images that keep going stale on workers.
// A second section injects seeded worker crashes and transfer cuts
// (docs/fault_model.md) and prices the churn: re-dispatches, cold
// rejoins, and the wire bytes saved by byte-granular transfer resume.
#include "bench/common.hpp"

#include "fault/fault.hpp"
#include "sim/workers.hpp"
#include "sim/workload.hpp"

int main(int argc, char** argv) {
  using namespace landlord;
  const auto env = bench::BenchEnv::from_args(argc, argv);
  const auto& repo = bench::shared_repository(env.seed);
  bench::print_header("Extension: worker transfer cost vs. alpha", env);

  // One bundle for the whole run: the snapshot left behind covers every
  // row (counters are monotone; per-row deltas live in the tables).
  obs::Observability obs(1 << 14);

  // One workload shared by every alpha (common random numbers).
  sim::WorkloadConfig workload;
  workload.unique_jobs = env.unique_jobs;
  workload.repetitions = env.repetitions;
  sim::WorkloadGenerator generator(repo, workload, util::Rng(env.seed));
  const auto specs = generator.unique_specifications();
  const auto stream = generator.request_stream();

  sim::WorkerPoolConfig pool_config;
  pool_config.workers = static_cast<std::uint32_t>(
      bench::env_u64("LANDLORD_WORKERS", 16));
  pool_config.scratch_per_worker = 100ULL * 1000 * 1000 * 1000;  // 100 GB

  util::Table table({"alpha", "transferred(TB)", "TB/job", "local hits",
                     "stale refetches", "head hits", "head merges"});
  for (double alpha : sim::SweepConfig::default_alphas()) {
    core::CacheConfig cache_config;
    cache_config.alpha = alpha;
    cache_config.capacity = 1400ULL * 1000 * 1000 * 1000;
    const auto result = sim::run_with_workers(repo, cache_config, pool_config,
                                              specs, stream, env.seed);
    const double tb = static_cast<double>(result.transferred_bytes) / 1e12;
    table.add_row({util::fmt(alpha, 2), util::fmt(tb, 2),
                   util::fmt(tb / static_cast<double>(stream.size()), 4),
                   util::fmt(result.local_hits),
                   util::fmt(result.stale_refetches),
                   util::fmt(result.head_counters.hits),
                   util::fmt(result.head_counters.merges)});
  }
  bench::emit(table, env, "ext_worker_transfer");

  // Churn sweep: crash and transfer-cut rates climb together; resume
  // keeps the wire cost flat where re-shipping would inflate it.
  util::Table churn({"fault rate", "crashes", "redispatches", "cold rejoins",
                     "direct", "retries", "resumed(GB)", "reshipped(GB)",
                     "transferred(TB)"});
  core::CacheConfig cache_config;
  cache_config.alpha = 0.8;
  cache_config.capacity = 1400ULL * 1000 * 1000 * 1000;
  for (const double rate : {0.0, 0.01, 0.05, 0.10, 0.20}) {
    sim::DispatchFaultConfig faults;
    faults.plan.fail(fault::FaultOp::kWorkerCrash, rate / 4)
        .fail(fault::FaultOp::kWorkerTransfer, rate);
    faults.plan.seed = env.seed ^ 0xc4a5ULL;
    const auto result = sim::run_with_workers(
        repo, cache_config, pool_config, specs, stream, env.seed, faults,
        env.metrics_out ? &obs : nullptr);
    const auto& d = result.dispatch;
    churn.add_row(
        {util::fmt(rate, 2), util::fmt(d.worker_crashes),
         util::fmt(d.redispatches), util::fmt(d.cold_rejoins),
         util::fmt(d.direct_transfers), util::fmt(d.transfer_retries),
         util::fmt(static_cast<double>(d.resumed_bytes) / 1e9, 2),
         util::fmt(static_cast<double>(d.reshipped_bytes) / 1e9, 2),
         util::fmt(static_cast<double>(result.transferred_bytes) / 1e12, 2)});
  }
  bench::emit(churn, env, "ext_worker_transfer_churn");
  bench::emit_metrics(obs, env);
  return 0;
}
