// Fig. 1 — "Refining via layers vs. Composition".
//
// The paper's illustrative figure: three jobs, where job 2 adds item C
// and job 3 needs exactly what job 1 needed. Under Docker-style layer
// refinement the third job's image still carries C ("although item C is
// hidden in the lower layer, it still exists in a previous layer and
// must be transferred and stored"); under composition the equivalence of
// jobs 1 and 3 is "immediately clear" and the image is reused as-is.
//
// We reproduce the scenario literally on a toy three-package repository,
// then replay the same contrast at workload scale.
#include "bench/common.hpp"

#include "baseline/baselines.hpp"
#include "landlord/cache.hpp"
#include "pkg/manifest.hpp"
#include "sim/workload.hpp"

namespace {

using namespace landlord;

void literal_scenario() {
  auto parsed = pkg::parse_manifest_text(R"(
package A 1 100 core
package B 1 100 core
package C 1 100 core
)");
  if (!parsed.ok()) return;
  const pkg::Repository repo = std::move(parsed).value();
  auto spec_of = [&](std::initializer_list<const char*> keys) {
    std::vector<pkg::PackageId> request;
    for (const char* key : keys) request.push_back(*repo.find(key));
    return spec::Specification::from_request(repo, request);
  };
  const auto j1 = spec_of({"A/1", "B/1"});
  const auto j2 = spec_of({"A/1", "B/1", "C/1"});
  const auto j3 = spec_of({"A/1", "B/1"});  // identical to job 1

  baseline::LayeredStore layered(repo, baseline::LayeredStore::Strategy::kRefineTip);
  core::CacheConfig config;
  config.alpha = 0.0;  // composition: exact reuse via subset hits
  config.capacity = 10'000;
  core::Cache composed(repo, config);

  util::Table table({"job", "needs", "layered ships", "composed ships"});
  const spec::Specification* jobs[] = {&j1, &j2, &j3};
  const char* needs[] = {"A,B", "A,B,C", "A,B"};
  for (int i = 0; i < 3; ++i) {
    const auto lp = layered.submit(*jobs[i]);
    const auto cp = composed.request(*jobs[i]);
    table.add_row({"job " + std::to_string(i + 1), needs[i],
                   util::fmt(std::uint64_t{lp.shipped_bytes}) + " B",
                   util::fmt(std::uint64_t{cp.image_bytes}) + " B"});
  }
  table.print(std::cout);
  std::cout << "\njob 3 needs only A,B (200 B): layering ships the masked C "
               "anyway; composition reuses job 1's image exactly.\n"
            << "layered store: " << layered.layer_count() << " layers, "
            << util::fmt(std::uint64_t{layered.totals().physical_bytes})
            << " B stored; composed cache: " << composed.image_count()
            << " image(s), "
            << util::fmt(std::uint64_t{composed.total_bytes()}) << " B stored\n\n";
}

}  // namespace

int main() {
  const auto env = bench::BenchEnv::from_environment();
  bench::print_header("Fig. 1: refining via layers vs. composition", env);

  std::cout << "--- the paper's literal three-job scenario ---\n";
  literal_scenario();

  std::cout << "--- the same contrast at workload scale ---\n";
  const auto& repo = bench::shared_repository(env.seed);
  sim::WorkloadConfig workload;
  workload.unique_jobs = std::min<std::uint32_t>(env.unique_jobs, 200);
  workload.repetitions = env.repetitions;
  sim::WorkloadGenerator generator(repo, workload, util::Rng(env.seed));
  const auto specs = generator.unique_specifications();
  const auto stream = generator.request_stream();

  baseline::LayeredStore refine(repo, baseline::LayeredStore::Strategy::kRefineTip);
  baseline::LayeredStore best_base(repo, baseline::LayeredStore::Strategy::kBestBase);
  core::CacheConfig config;
  config.alpha = 0.8;
  config.capacity = 1400ULL * 1000 * 1000 * 1000;
  core::Cache composed(repo, config);
  util::Bytes composed_shipped = 0;
  for (auto index : stream) {
    (void)refine.submit(specs[index]);
    (void)best_base.submit(specs[index]);
    composed_shipped += composed.request(specs[index]).image_bytes;
  }

  util::Table table({"strategy", "stored(TB)", "shipped(TB)", "shipped/job(GB)"});
  auto add = [&](const char* name, util::Bytes stored, util::Bytes shipped) {
    table.add_row({name, util::fmt(static_cast<double>(stored) / 1e12, 3),
                   util::fmt(static_cast<double>(shipped) / 1e12, 2),
                   util::fmt(static_cast<double>(shipped) / 1e9 /
                                 static_cast<double>(stream.size()),
                             1)});
  };
  add("layers: refine tip", refine.totals().physical_bytes,
      refine.totals().shipped_bytes);
  add("layers: best base", best_base.totals().physical_bytes,
      best_base.totals().shipped_bytes);
  add("composition (landlord a=0.8)", composed.total_bytes(), composed_shipped);
  bench::emit(table, env, "fig1_layers_vs_composition");
  return 0;
}
