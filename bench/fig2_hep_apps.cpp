// Fig. 2 — "Benchmark applications for LHC experiments".
//
// The paper's table reports, per application: average running time,
// Shrinkwrap preparation time, minimal (tailored) image size, and the
// experiment's full-repository size. Our substrate cannot execute the
// real hep-workloads payloads, so Running Time and Full Repo are echoed
// from the paper for context, while Prep Time / Minimal Image / file
// count are *measured* on the reproduction: each app's specification is
// drawn from its experiment subtree of the synthetic repository and
// materialised through the Shrinkwrap image builder (cold cache per app).
#include "bench/common.hpp"

#include "hep/profiles.hpp"
#include "shrinkwrap/builder.hpp"
#include "util/bytes.hpp"

int main() {
  using namespace landlord;
  const auto env = bench::BenchEnv::from_environment();
  const auto& repo = bench::shared_repository(env.seed);
  bench::print_header("Fig. 2: LHC benchmark applications", env);

  util::Table table({"app", "running(s,paper)", "prep(s,paper)", "prep(s,measured)",
                     "image(GB,paper)", "image(GB,measured)", "files",
                     "full repo(paper)", "full repo(ours)"});

  for (const auto& app : hep::benchmark_apps()) {
    const auto spec = hep::app_specification(repo, app, env.seed);
    // Cold builder per app: Fig. 2 measures standalone image creation.
    shrinkwrap::ImageBuilder builder(repo);
    const auto built = builder.build(spec);
    table.add_row({
        app.name,
        util::fmt(app.paper_running_s, 0),
        util::fmt(app.paper_prep_s, 0),
        util::fmt(built.prep_seconds, 0),
        util::fmt(app.paper_image_gb, 1),
        util::fmt(static_cast<double>(built.bytes) / 1e9, 1),
        util::fmt(built.files),
        util::fmt(app.paper_repo_tb, 1) + " TB",
        util::format_bytes(repo.total_bytes()),
    });
  }
  bench::emit(table, env, "fig2_hep_apps");
  return 0;
}
