// Fig. 3 — "Image size vs. selection size".
//
// For each specification size (x axis) select that many packages
// uniformly at random; report the median over repetitions of: the
// selection's own on-disk size, the dependency-closed image's package
// count, and the image's on-disk size. The paper repeats 100 times per
// size and plots the median; the expected shape is ~5x package
// amplification below 100 packages, flattening toward repository
// saturation at large selections.
#include "bench/common.hpp"

#include "util/rng.hpp"
#include "util/stats.hpp"

int main() {
  using namespace landlord;
  const auto env = bench::BenchEnv::from_environment();
  const auto& repo = bench::shared_repository(env.seed);
  bench::print_header("Fig. 3: image size vs. selection size", env);

  constexpr int kRepetitions = 100;  // paper: "repeated this procedure 100 times"
  util::Rng rng(env.seed ^ 0xf16300);

  util::Table table({"spec size(pkgs)", "spec size(GB)", "image(pkgs)",
                     "image size(GB)", "amplification"});

  for (std::uint32_t size = 100; size <= 1000; size += 100) {
    util::Summary spec_gb, image_pkgs, image_gb;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      const auto indices = rng.sample_without_replacement(
          static_cast<std::uint32_t>(repo.size()), size);
      std::vector<pkg::PackageId> selection;
      selection.reserve(indices.size());
      util::Bytes selection_bytes = 0;
      for (auto i : indices) {
        selection.push_back(pkg::package_id(i));
        selection_bytes += repo[pkg::package_id(i)].size;
      }
      const auto image = repo.closure_of(selection);
      spec_gb.add(static_cast<double>(selection_bytes) / 1e9);
      image_pkgs.add(static_cast<double>(image.count()));
      image_gb.add(static_cast<double>(repo.bytes_of(image)) / 1e9);
    }
    table.add_row({
        util::fmt(std::uint64_t{size}),
        util::fmt(spec_gb.median(), 1),
        util::fmt(image_pkgs.median(), 0),
        util::fmt(image_gb.median(), 1),
        util::fmt(image_pkgs.median() / static_cast<double>(size), 2),
    });
  }
  bench::emit(table, env, "fig3_image_size");
  return 0;
}
