// Fig. 4 — "Cache behavior over a range of α values".
//
// One sweep (α = 0.40..1.00 step 0.05, median of N replicates, paper
// setup: 1.4 TB cache, 500 unique jobs x5) feeds all three panels:
//   4a  total cache operations (inserts / deletes / merges / hits)
//   4b  duplication of data in cache (unique vs. total bytes at end)
//   4c  cumulative I/O overhead (actual vs. requested writes)
//
// Expected shapes: inserts≈deletes dominate at low α with hits flat;
// merges grow through the upper range and collapse at α=1 while hits
// jump (single all-purpose image). Total data ≫ unique data at low α,
// converging at α→1. Actual writes track requested at low α and exceed
// them in the heavy-merging regime.
#include "bench/common.hpp"

int main() {
  using namespace landlord;
  const auto env = bench::BenchEnv::from_environment();
  const auto& repo = bench::shared_repository(env.seed);
  bench::print_header("Fig. 4: cache behavior over a range of alpha values", env);

  const auto config = bench::paper_sweep_config(env);
  util::ThreadPool pool;
  const auto points = sim::run_sweep(repo, config, &pool);

  util::Table ops({"alpha", "inserts", "deletes", "merges", "hits"});
  util::Table data({"alpha", "unique data(GB)", "total data(GB)"});
  util::Table io({"alpha", "actual writes(TB)", "requested writes(TB)",
                  "amplification"});

  for (const auto& p : points) {
    ops.add_row({util::fmt(p.alpha, 2), util::fmt(p.inserts, 0),
                 util::fmt(p.deletes, 0), util::fmt(p.merges, 0),
                 util::fmt(p.hits, 0)});
    data.add_row({util::fmt(p.alpha, 2), util::fmt(p.unique_gb, 1),
                  util::fmt(p.total_gb, 1)});
    io.add_row({util::fmt(p.alpha, 2), util::fmt(p.written_tb, 2),
                util::fmt(p.requested_tb, 2),
                util::fmt(p.requested_tb > 0 ? p.written_tb / p.requested_tb : 0.0,
                          2)});
  }

  std::cout << "--- Fig. 4a: total cache operations ---\n";
  bench::emit(ops, env, "fig4a_operations");
  std::cout << "--- Fig. 4b: duplication of data in cache ---\n";
  bench::emit(data, env, "fig4b_duplication");
  std::cout << "--- Fig. 4c: cumulative I/O overhead ---\n";
  bench::emit(io, env, "fig4c_io_overhead");
  return 0;
}
