// Fig. 5 — "Behavior of a single simulation".
//
// One simulation at α = 0.75 with a 1.4 TB cache processing 500 unique
// job specifications, each repeated five times, with the per-request time
// series recorded: cumulative hits / inserts / deletes / merges (Y1) and
// cached data / bytes written (Y2). The paper's observations: merges
// dominate the operations, bytes written closely tracks merges, cached
// data climbs to the cache limit after which deletes hold it there, and
// hits keep rising despite deletions.
#include "bench/common.hpp"

#include "sim/driver.hpp"

int main(int argc, char** argv) {
  using namespace landlord;
  const auto env = bench::BenchEnv::from_args(argc, argv);
  const auto& repo = bench::shared_repository(env.seed);
  bench::print_header("Fig. 5: behavior of a single simulation (alpha=0.75)", env);

  sim::SimulationConfig config;
  config.cache.alpha = 0.75;
  config.cache.capacity = 1400ULL * 1000 * 1000 * 1000;
  config.cache.record_time_series = true;
  config.cache.decision_index = env.decision_index;
  config.workload.unique_jobs = env.unique_jobs;
  config.workload.repetitions = env.repetitions;
  config.seed = env.seed;

  obs::Observability obs(1 << 14);
  if (env.metrics_out) config.obs = &obs;

  const auto result = sim::run_simulation(repo, config);
  const auto& samples = result.series.samples();

  // Print every k-th request so the table stays readable; CSV gets the
  // sampled rows too (LANDLORD_FIG5_STRIDE to adjust).
  const auto stride = std::max<std::uint64_t>(
      1, bench::env_u64("LANDLORD_FIG5_STRIDE",
                        std::max<std::uint64_t>(1, samples.size() / 25)));

  util::Table table({"request", "op", "hits", "inserts", "deletes", "merges",
                     "images", "cached(TB)", "written(TB)"});
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i % stride != 0 && i + 1 != samples.size()) continue;
    const auto& s = samples[i];
    table.add_row({util::fmt(static_cast<std::uint64_t>(i + 1)),
                   core::to_string(s.kind), util::fmt(s.hits),
                   util::fmt(s.inserts), util::fmt(s.deletes),
                   util::fmt(s.merges), util::fmt(s.image_count),
                   util::fmt(static_cast<double>(s.cached_bytes) / 1e12, 2),
                   util::fmt(static_cast<double>(s.cumulative_written) / 1e12, 2)});
  }
  bench::emit(table, env, "fig5_single_run");
  bench::emit_metrics(obs, env);

  std::cout << "summary: hits=" << result.counters.hits
            << " inserts=" << result.counters.inserts
            << " deletes=" << result.counters.deletes
            << " merges=" << result.counters.merges
            << " final images=" << result.final_image_count
            << " cache eff=" << util::fmt(100 * result.cache_efficiency, 1)
            << "% container eff="
            << util::fmt(100 * result.container_efficiency, 1) << "%\n";
  return 0;
}
