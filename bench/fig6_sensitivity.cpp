// Fig. 6 — "Effects of Simulation Parameters on System Efficiency".
//
// Two sensitivity sweeps over α, each reporting container efficiency
// (left column of the figure) and cache efficiency (right column):
//   6a/6b  cache capacity = 1x, 2x, 5x, 10x the repository size;
//   6c/6d  unique job count = 100, 500, 1000 (repetitions fixed).
//
// Expected shapes: larger caches decrease both efficiencies (retained
// duplication + more merge opportunities); 500 vs. 1000 jobs are nearly
// indistinguishable (steady state) while 100 jobs have not yet filled
// the cache.
#include "bench/common.hpp"

int main() {
  using namespace landlord;
  const auto env = bench::BenchEnv::from_environment();
  const auto& repo = bench::shared_repository(env.seed);
  bench::print_header("Fig. 6: sensitivity to cache size and job count", env);

  util::ThreadPool pool;
  const auto alphas = sim::SweepConfig::default_alphas();

  // ---- 6a/6b: cache size multiples of the repository size.
  {
    util::Table container({"alpha", "1x repo", "2x repo", "5x repo", "10x repo"});
    util::Table cache_eff({"alpha", "1x repo", "2x repo", "5x repo", "10x repo"});
    const std::array<std::uint64_t, 4> multiples = {1, 2, 5, 10};
    std::vector<std::vector<sim::SweepPoint>> runs;
    for (auto multiple : multiples) {
      auto config = bench::paper_sweep_config(env);
      config.base.cache.capacity = repo.total_bytes() * multiple;
      runs.push_back(sim::run_sweep(repo, config, &pool));
    }
    for (std::size_t a = 0; a < alphas.size(); ++a) {
      std::vector<std::string> container_row = {util::fmt(alphas[a], 2)};
      std::vector<std::string> cache_row = {util::fmt(alphas[a], 2)};
      for (const auto& run : runs) {
        container_row.push_back(util::fmt(run[a].container_efficiency, 1));
        cache_row.push_back(util::fmt(run[a].cache_efficiency, 1));
      }
      container.add_row(std::move(container_row));
      cache_eff.add_row(std::move(cache_row));
    }
    std::cout << "--- Fig. 6a: container efficiency (%) vs. cache size ---\n";
    bench::emit(container, env, "fig6a_container_vs_cache_size");
    std::cout << "--- Fig. 6b: cache efficiency (%) vs. cache size ---\n";
    bench::emit(cache_eff, env, "fig6b_cache_vs_cache_size");
  }

  // ---- 6c/6d: unique job counts.
  {
    util::Table container({"alpha", "100 jobs", "500 jobs", "1000 jobs"});
    util::Table cache_eff({"alpha", "100 jobs", "500 jobs", "1000 jobs"});
    const std::array<std::uint32_t, 3> job_counts = {100, 500, 1000};
    std::vector<std::vector<sim::SweepPoint>> runs;
    for (auto jobs : job_counts) {
      auto config = bench::paper_sweep_config(env);
      config.base.workload.unique_jobs = jobs;
      runs.push_back(sim::run_sweep(repo, config, &pool));
    }
    for (std::size_t a = 0; a < alphas.size(); ++a) {
      std::vector<std::string> container_row = {util::fmt(alphas[a], 2)};
      std::vector<std::string> cache_row = {util::fmt(alphas[a], 2)};
      for (const auto& run : runs) {
        container_row.push_back(util::fmt(run[a].container_efficiency, 1));
        cache_row.push_back(util::fmt(run[a].cache_efficiency, 1));
      }
      container.add_row(std::move(container_row));
      cache_eff.add_row(std::move(cache_row));
    }
    std::cout << "--- Fig. 6c: container efficiency (%) vs. unique job count ---\n";
    bench::emit(container, env, "fig6c_container_vs_jobs");
    std::cout << "--- Fig. 6d: cache efficiency (%) vs. unique job count ---\n";
    bench::emit(cache_eff, env, "fig6d_cache_vs_jobs");
  }
  return 0;
}
