// Fig. 7 — "Impact of dependencies on duplication".
//
// The same α sweep under both image-generation schemes: dependency-
// closure images (the repository's hierarchical structure) vs. size-
// matched uniform-random images (no structure). The paper's conclusion:
// with random images there is no correlation to exploit, so cache
// efficiency stays flat for most α values and merging only kicks in when
// α is very lax — the merging strategy is "not applicable to arbitrary
// collections of data".
#include "bench/common.hpp"

int main() {
  using namespace landlord;
  const auto env = bench::BenchEnv::from_environment();
  const auto& repo = bench::shared_repository(env.seed);
  bench::print_header("Fig. 7: dependency-structured vs. random images", env);

  util::ThreadPool pool;

  auto deps_config = bench::paper_sweep_config(env);
  deps_config.base.workload.scheme = sim::ImageScheme::kDependencyClosure;
  const auto deps = sim::run_sweep(repo, deps_config, &pool);

  auto random_config = bench::paper_sweep_config(env);
  random_config.base.workload.scheme = sim::ImageScheme::kUniformRandom;
  const auto random = sim::run_sweep(repo, random_config, &pool);

  util::Table table({"alpha", "deps cache eff(%)", "random cache eff(%)",
                     "deps container eff(%)", "random container eff(%)",
                     "deps merges", "random merges"});
  for (std::size_t a = 0; a < deps.size(); ++a) {
    table.add_row({util::fmt(deps[a].alpha, 2),
                   util::fmt(deps[a].cache_efficiency, 1),
                   util::fmt(random[a].cache_efficiency, 1),
                   util::fmt(deps[a].container_efficiency, 1),
                   util::fmt(random[a].container_efficiency, 1),
                   util::fmt(deps[a].merges, 0),
                   util::fmt(random[a].merges, 0)});
  }
  bench::emit(table, env, "fig7_random_vs_deps");
  return 0;
}
