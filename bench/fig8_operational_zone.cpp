// Fig. 8 — "Limits on efficiency" (the operational zone).
//
// Plots cache and container efficiency against α and derives the two
// operating limits the paper draws as vertical lines:
//   * thrashing zone (left): α below which cache efficiency falls under
//     the administrator's floor (the paper illustrates ~30%);
//   * excessive image size (right): α above which the cumulative write
//     amplification (actual/requested writes) exceeds the cap (the paper
//     suggests "at most a twofold increase").
// The α values between the two limits form the operational zone; the
// paper's configurations showed a wide zone around 0.65-0.95 and
// recommend a moderate default (e.g. 0.8).
#include "bench/common.hpp"

int main() {
  using namespace landlord;
  const auto env = bench::BenchEnv::from_environment();
  const auto& repo = bench::shared_repository(env.seed);
  bench::print_header("Fig. 8: limits on efficiency / operational zone", env);

  const double cache_floor = 0.01 * static_cast<double>(
      bench::env_u64("LANDLORD_CACHE_FLOOR_PCT", 30));
  const double write_cap = 0.01 * static_cast<double>(
      bench::env_u64("LANDLORD_WRITE_CAP_PCT", 200));
  const double container_floor = static_cast<double>(
      bench::env_u64("LANDLORD_CONTAINER_FLOOR_PCT", 20));

  auto config = bench::paper_sweep_config(env);
  util::ThreadPool pool;
  const auto points = sim::run_sweep(repo, config, &pool);

  // Normalise cache efficiency to its range over the non-degenerate
  // (alpha < 1) sweep points: the absolute level is bounded above by
  // repo-size / cache-size, so the *zone* is defined by where the curve
  // has risen appreciably from its low-alpha floor. Alpha = 1 (a single
  // all-purpose image) is excluded from the normalisation — its 100%
  // cache efficiency is the degenerate extreme the paper rules out via
  // the excessive-image-size limit.
  double min_eff = 100.0, max_eff = 0.0;
  for (const auto& p : points) {
    if (p.alpha >= 1.0) continue;
    min_eff = std::min(min_eff, p.cache_efficiency);
    max_eff = std::max(max_eff, p.cache_efficiency);
  }

  util::Table table({"alpha", "cache eff(%)", "container eff(%)",
                     "write amplification", "zone"});
  std::optional<double> zone_lo, zone_hi;
  for (const auto& p : points) {
    const double amplification =
        p.requested_tb > 0 ? p.written_tb / p.requested_tb : 1.0;
    const double relative_eff =
        max_eff > min_eff
            ? (p.cache_efficiency - min_eff) / (max_eff - min_eff)
            : 1.0;
    const bool thrashing = relative_eff < cache_floor;
    const bool excessive = amplification > write_cap ||
                           p.container_efficiency < container_floor;
    std::string zone = thrashing ? "thrashing"
                       : excessive ? "excessive image size"
                                   : "OPERATIONAL";
    if (!thrashing && !excessive) {
      if (!zone_lo) zone_lo = p.alpha;
      zone_hi = p.alpha;
    }
    table.add_row({util::fmt(p.alpha, 2), util::fmt(p.cache_efficiency, 1),
                   util::fmt(p.container_efficiency, 1),
                   util::fmt(amplification, 2), std::move(zone)});
  }
  bench::emit(table, env, "fig8_operational_zone");

  if (zone_lo) {
    std::cout << "operational zone: alpha in [" << util::fmt(*zone_lo, 2) << ", "
              << util::fmt(*zone_hi, 2) << "]  (paper: ~[0.65, 0.95]; "
              << "limits: relative cache eff >= " << util::fmt(100 * cache_floor, 0)
              << "%, write amplification <= " << util::fmt(write_cap, 1) << "x)\n";
  } else {
    std::cout << "no operational zone under the configured limits\n";
  }
  return 0;
}
