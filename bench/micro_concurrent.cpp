// Concurrent decision throughput: requests/s vs thread count and shard
// count, against the single-mutex ConcurrentCache baseline.
//
// The paper deploys LANDLORD on a head node that serves a whole cluster's
// submissions (§V); once image materialisation is offloaded, Algorithm 1
// itself becomes the submission-path bottleneck. This bench replays the
// standard synthetic workload from K threads through (a) the single-mutex
// core::ConcurrentCache and (b) core::ShardedCache at several shard
// counts, and reports throughput, speedup over the sequential baseline,
// and the contention/retry telemetry that explains the scaling (or, on a
// single-core machine, the lack of it — speedups need real cores).
//
// Scale knobs: LANDLORD_JOBS / LANDLORD_REPEATS / LANDLORD_SEED and
// LANDLORD_THREADS_MAX (default 8) / LANDLORD_SHARDS (default "1,4,8").
#include <barrier>
#include <chrono>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "landlord/concurrent.hpp"
#include "sim/parallel.hpp"

namespace {

using namespace landlord;

struct Throughput {
  double requests_per_second = 0.0;
  std::uint64_t retries = 0;
  std::uint64_t contentions = 0;
};

sim::ParallelConfig base_config(const bench::BenchEnv& env) {
  sim::ParallelConfig config;
  config.cache.capacity = 1400ULL * 1000 * 1000 * 1000;  // paper's 1.4 TB
  config.workload.unique_jobs = env.unique_jobs;
  config.workload.repetitions = env.repetitions;
  config.seed = env.seed;
  return config;
}

/// Single-mutex baseline: same round-robin deal as sim::run_parallel but
/// every request funnels through ConcurrentCache's one lock.
Throughput run_single_mutex(const pkg::Repository& repo,
                            const sim::ParallelConfig& config,
                            std::uint32_t threads) {
  util::Rng root(config.seed);
  sim::WorkloadGenerator generator(repo, config.workload, root.split(1));
  const auto specs = generator.unique_specifications();
  const auto stream = generator.request_stream();

  core::ConcurrentCache cache(repo, config.cache);
  std::barrier start_line(static_cast<std::ptrdiff_t>(threads) + 1);
  std::vector<std::jthread> workers;
  workers.reserve(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      start_line.arrive_and_wait();
      for (std::size_t i = t; i < stream.size(); i += threads) {
        cache.request(specs[stream[i]]);
      }
    });
  }
  const auto begin = std::chrono::steady_clock::now();
  start_line.arrive_and_wait();
  workers.clear();
  const auto seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - begin)
                           .count();
  Throughput out;
  out.requests_per_second =
      seconds > 0.0 ? static_cast<double>(stream.size()) / seconds : 0.0;
  return out;
}

Throughput run_sharded(const pkg::Repository& repo, sim::ParallelConfig config,
                       std::uint32_t threads, std::uint32_t shards) {
  config.threads = threads;
  config.cache.shards = shards;
  const auto result = sim::run_parallel(repo, config);
  Throughput out;
  out.requests_per_second = result.requests_per_second;
  out.retries = result.counters.optimistic_retries;
  for (const auto& shard : result.shards) out.contentions += shard.lock_contentions;
  return out;
}

std::vector<std::uint32_t> parse_shards() {
  std::vector<std::uint32_t> shards;
  std::string csv = "1,4,8";
  if (const char* env = std::getenv("LANDLORD_SHARDS")) csv = env;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string token =
        csv.substr(pos, comma == std::string::npos ? csv.size() - pos : comma - pos);
    if (!token.empty()) {
      shards.push_back(static_cast<std::uint32_t>(std::stoul(token)));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (shards.empty()) shards.push_back(1);
  return shards;
}

}  // namespace

int main() {
  const auto env = bench::BenchEnv::from_environment();
  bench::print_header("micro_concurrent: decision throughput vs threads x shards", env);
  std::cout << "hardware threads available: "
            << std::thread::hardware_concurrency() << "\n\n";

  const auto& repo = bench::shared_repository(env.seed);
  const auto config = base_config(env);
  const auto shard_counts = parse_shards();
  const auto max_threads = static_cast<std::uint32_t>(
      bench::env_u64("LANDLORD_THREADS_MAX", 8));

  util::Table table({"cache", "shards", "threads", "req/s", "speedup",
                     "retries", "contentions"});

  // Sequential reference: the single-mutex cache on one thread.
  const auto reference = run_single_mutex(repo, config, 1);
  const double base_rate = reference.requests_per_second;
  auto speedup = [base_rate](double rate) {
    return base_rate > 0.0 ? rate / base_rate : 0.0;
  };

  for (std::uint32_t threads = 1; threads <= max_threads; threads *= 2) {
    const auto mutex_run =
        threads == 1 ? reference : run_single_mutex(repo, config, threads);
    table.add_row({"mutex", "-", std::to_string(threads),
                   util::fmt(mutex_run.requests_per_second, 0),
                   util::fmt(speedup(mutex_run.requests_per_second)), "-", "-"});
    for (const auto shards : shard_counts) {
      const auto run = run_sharded(repo, config, threads, shards);
      table.add_row({"sharded", std::to_string(shards), std::to_string(threads),
                     util::fmt(run.requests_per_second, 0),
                     util::fmt(speedup(run.requests_per_second)),
                     util::fmt(run.retries), util::fmt(run.contentions)});
    }
  }

  bench::emit(table, env, "micro_concurrent");
  std::cout << "speedup is relative to the 1-thread single-mutex run; "
               "sharded scaling requires as many real cores as threads.\n";
  return 0;
}
