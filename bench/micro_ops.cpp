// Micro-benchmarks (google-benchmark) for the primitives every cache
// request executes: Jaccard distance, subset tests, MinHash signing and
// LSH lookup, dependency closure, specification merge, and a full cache
// request. These quantify the claim that LANDLORD "spends very little
// time performing computation" (§VI) — decision costs are microseconds
// against I/O costs of seconds.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "landlord/cache.hpp"
#include "pkg/synthetic.hpp"
#include "sim/workload.hpp"
#include "spec/jaccard.hpp"
#include "spec/minhash.hpp"

namespace {

using namespace landlord;

const pkg::Repository& repo() {
  static const pkg::Repository r = pkg::default_repository(42);
  return r;
}

spec::PackageSet random_closure(util::Rng& rng, std::uint32_t selection) {
  const auto indices = rng.sample_without_replacement(
      static_cast<std::uint32_t>(repo().size()), selection);
  std::vector<pkg::PackageId> ids;
  ids.reserve(indices.size());
  for (auto i : indices) ids.push_back(pkg::package_id(i));
  return spec::PackageSet(repo().closure_of(ids));
}

void BM_JaccardDistance(benchmark::State& state) {
  util::Rng rng(1);
  const auto a = random_closure(rng, static_cast<std::uint32_t>(state.range(0)));
  const auto b = random_closure(rng, static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec::jaccard_distance(a, b));
  }
}
BENCHMARK(BM_JaccardDistance)->Arg(10)->Arg(100)->Arg(1000);

void BM_SubsetCheck(benchmark::State& state) {
  util::Rng rng(2);
  const auto small = random_closure(rng, 10);
  auto big = random_closure(rng, static_cast<std::uint32_t>(state.range(0)));
  big.merge(small);
  for (auto _ : state) {
    benchmark::DoNotOptimize(small.is_subset_of(big));
  }
}
BENCHMARK(BM_SubsetCheck)->Arg(100)->Arg(1000);

void BM_DependencyClosure(benchmark::State& state) {
  util::Rng rng(3);
  const auto indices = rng.sample_without_replacement(
      static_cast<std::uint32_t>(repo().size()),
      static_cast<std::uint32_t>(state.range(0)));
  std::vector<pkg::PackageId> ids;
  for (auto i : indices) ids.push_back(pkg::package_id(i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(repo().closure_of(ids));
  }
}
BENCHMARK(BM_DependencyClosure)->Arg(10)->Arg(100)->Arg(1000);

void BM_MinHashSign(benchmark::State& state) {
  util::Rng rng(4);
  const auto set = random_closure(rng, 100);
  const spec::MinHasher hasher(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.sign(set));
  }
}
BENCHMARK(BM_MinHashSign)->Arg(64)->Arg(128)->Arg(256);

void BM_MinHashEstimate(benchmark::State& state) {
  util::Rng rng(5);
  const spec::MinHasher hasher(128);
  const auto a = hasher.sign(random_closure(rng, 100));
  const auto b = hasher.sign(random_closure(rng, 100));
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec::MinHasher::estimate_similarity(a, b));
  }
}
BENCHMARK(BM_MinHashEstimate);

void BM_LshQuery(benchmark::State& state) {
  util::Rng rng(6);
  const spec::MinHasher hasher(128);
  spec::LshIndex index(32);
  for (std::uint64_t item = 0; item < static_cast<std::uint64_t>(state.range(0));
       ++item) {
    index.insert(item, hasher.sign(random_closure(rng, 50)));
  }
  const auto probe = hasher.sign(random_closure(rng, 50));
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.candidates(probe));
  }
}
BENCHMARK(BM_LshQuery)->Arg(100)->Arg(1000);

void BM_SpecificationMerge(benchmark::State& state) {
  util::Rng rng(7);
  const spec::Specification a{random_closure(rng, 100)};
  const spec::Specification b{random_closure(rng, 100)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.merged_with(b));
  }
}
BENCHMARK(BM_SpecificationMerge);

/// Full Algorithm 1 request against a warm cache of `range` images.
void BM_CacheRequest(benchmark::State& state) {
  core::CacheConfig config;
  config.alpha = 0.8;
  config.capacity = repo().total_bytes() * 10;
  core::Cache cache(repo(), config);

  sim::WorkloadConfig workload;
  workload.unique_jobs = static_cast<std::uint32_t>(state.range(0));
  sim::WorkloadGenerator generator(repo(), workload, util::Rng(8));
  const auto specs = generator.unique_specifications();
  for (const auto& s : specs) (void)cache.request(s);

  std::size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.request(specs[next]));
    next = (next + 1) % specs.size();
  }
}
BENCHMARK(BM_CacheRequest)->Arg(50)->Arg(200)->Arg(500);

/// Same request loop with Fig.-5 time-series recording on. Every request
/// samples unique_bytes(); the incremental union ledger answers that in
/// O(1), so this should sit within noise of BM_CacheRequest rather than
/// the old O(images × universe) per-request union recompute that made
/// time-series runs an order of magnitude slower at 500 images.
void BM_CacheRequestTimeSeries(benchmark::State& state) {
  core::CacheConfig config;
  config.alpha = 0.8;
  config.capacity = repo().total_bytes() * 10;
  config.record_time_series = true;
  core::Cache cache(repo(), config);

  sim::WorkloadConfig workload;
  workload.unique_jobs = static_cast<std::uint32_t>(state.range(0));
  sim::WorkloadGenerator generator(repo(), workload, util::Rng(8));
  const auto specs = generator.unique_specifications();
  for (const auto& s : specs) (void)cache.request(s);

  std::size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.request(specs[next]));
    next = (next + 1) % specs.size();
  }
}
BENCHMARK(BM_CacheRequestTimeSeries)->Arg(50)->Arg(200)->Arg(500);

void BM_CacheRequestMinHashPolicy(benchmark::State& state) {
  core::CacheConfig config;
  config.alpha = 0.8;
  config.capacity = repo().total_bytes() * 10;
  config.policy = core::MergePolicy::kMinHashLsh;
  core::Cache cache(repo(), config);

  sim::WorkloadConfig workload;
  workload.unique_jobs = static_cast<std::uint32_t>(state.range(0));
  sim::WorkloadGenerator generator(repo(), workload, util::Rng(9));
  const auto specs = generator.unique_specifications();
  for (const auto& s : specs) (void)cache.request(s);

  std::size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.request(specs[next]));
    next = (next + 1) % specs.size();
  }
}
BENCHMARK(BM_CacheRequestMinHashPolicy)->Arg(200)->Arg(500);

// ---- Sublinear decision path (CacheConfig::decision_index) ----
//
// The pairs below time the indexed probe against the naive O(images)
// scan it replaces, on identical warm caches of 100 / 1k / 10k images.
// scripts/bench_decision.sh runs them and records the speedups in
// BENCH_decision.json; the tier-1 perf gate fails if the indexed path is
// ever slower at >= 1k images.

/// A cache of `images` distinct adopted closures (no merging, no
/// eviction pressure), plus a rotation of specs that exactly match some
/// image — every probe is a superset hit, like the steady-state HTC
/// workload. peek_* probes bypass the memo and the LRU stamps, so the
/// postings/scan paths are timed head-to-head on frozen state.
core::Cache warm_cache(std::int64_t images, bool decision_index,
                       std::vector<spec::Specification>* probes = nullptr,
                       bool adaptive = false) {
  core::CacheConfig config;
  config.alpha = 0.0;
  config.capacity = repo().total_bytes() * 1000;
  config.decision_index = decision_index;
  // Head-to-head timings pin the cutover off so _Index really probes the
  // postings at every size; _Adaptive keeps the default cutover to time
  // what a stock config actually does.
  if (!adaptive) config.scan_cutover = 0;
  core::Cache cache(repo(), config);

  util::Rng rng(10);
  for (std::int64_t i = 0; i < images; ++i) {
    auto contents = random_closure(rng, 12);
    if (probes != nullptr && (i % std::max<std::int64_t>(1, images / 64)) == 0) {
      probes->push_back(spec::Specification(contents));
    }
    (void)cache.adopt(std::move(contents), {}, /*hits=*/0, /*merge_count=*/0,
                      /*version=*/0);
  }
  return cache;
}

void BM_FindSuperset_Index(benchmark::State& state) {
  std::vector<spec::Specification> probes;
  auto cache = warm_cache(state.range(0), /*decision_index=*/true, &probes);
  std::size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.peek_superset(probes[next]));
    next = (next + 1) % probes.size();
  }
}
BENCHMARK(BM_FindSuperset_Index)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_FindSuperset_Scan(benchmark::State& state) {
  std::vector<spec::Specification> probes;
  auto cache = warm_cache(state.range(0), /*decision_index=*/false, &probes);
  std::size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.peek_superset(probes[next]));
    next = (next + 1) % probes.size();
  }
}
BENCHMARK(BM_FindSuperset_Scan)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

/// What a stock CacheConfig does: scan below scan_cutover, postings
/// probe above. The small-N regression gate in scripts/bench_decision.sh
/// holds this path to the scan's time at 10/100 images and to the
/// index's time at 1k/10k — the adaptive cutover must never lose to
/// whichever pure path is better at that size.
void BM_FindSuperset_Adaptive(benchmark::State& state) {
  std::vector<spec::Specification> probes;
  auto cache = warm_cache(state.range(0), /*decision_index=*/true, &probes,
                          /*adaptive=*/true);
  std::size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.peek_superset(probes[next]));
    next = (next + 1) % probes.size();
  }
}
BENCHMARK(BM_FindSuperset_Adaptive)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_EvictVictim_Index(benchmark::State& state) {
  auto cache = warm_cache(state.range(0), /*decision_index=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.peek_victim());
  }
}
BENCHMARK(BM_EvictVictim_Index)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_EvictVictim_Scan(benchmark::State& state) {
  auto cache = warm_cache(state.range(0), /*decision_index=*/false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.peek_victim());
  }
}
BENCHMARK(BM_EvictVictim_Scan)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

/// Full request() on a back-to-back repeated spec: after the first
/// iteration stores the decision, every request is a memo hit — the
/// steady-state cost of the HTC "same job resubmitted" fast path.
void BM_MemoHit(benchmark::State& state) {
  std::vector<spec::Specification> probes;
  auto cache = warm_cache(state.range(0), /*decision_index=*/true, &probes);
  const auto& spec = probes.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.request(spec));
  }
}
BENCHMARK(BM_MemoHit)->Arg(100)->Arg(1000)->Arg(10000);

/// Word-level early-exit of the subset check the scans lean on: the
/// probe's single extra bit sits at package `range`, so the word loop
/// aborts after range/64 words — position 0 exits on the first word,
/// the last position degenerates to the full-universe walk.
void BM_SubsetWordEarlyExit(benchmark::State& state) {
  const auto universe = static_cast<std::uint32_t>(repo().size());
  spec::PackageSet small(universe);
  spec::PackageSet big(universe);
  for (std::uint32_t i = 0; i < universe; ++i) big.insert(pkg::package_id(i));
  const auto mismatch = static_cast<std::uint32_t>(state.range(0));
  big.erase(pkg::package_id(mismatch));
  small.insert(pkg::package_id(mismatch));
  for (auto _ : state) {
    benchmark::DoNotOptimize(small.is_subset_of(big));
  }
}
BENCHMARK(BM_SubsetWordEarlyExit)->Arg(0)->Arg(4800)->Arg(9600);

// ---- SIMD kernel micros: the raw word-loop cost per backend over the
// full 9,660-package universe (151 words), no early exit — the floor
// every Jaccard/subset evaluation pays on a miss. Run per backend so
// BENCH_decision.json records the vector speedup directly.
void bench_kernel_pair(benchmark::State& state, const util::simd::SetOps& ops,
                       int which) {
  util::Rng rng(11);
  const auto a = random_closure(rng, 500);
  const auto b = random_closure(rng, 500);
  const auto* wa = a.bits().words().data();
  const auto* wb = b.bits().words().data();
  const std::size_t n = a.bits().word_count();
  for (auto _ : state) {
    switch (which) {
      case 0: benchmark::DoNotOptimize(ops.intersection_count(wa, wb, n)); break;
      case 1: benchmark::DoNotOptimize(ops.union_count(wa, wb, n)); break;
      case 2: benchmark::DoNotOptimize(ops.subset_of(wa, wb, n)); break;
      default: benchmark::DoNotOptimize(ops.popcount(wa, n)); break;
    }
  }
}

void BM_Kernel_Portable(benchmark::State& state) {
  bench_kernel_pair(state, util::simd::portable_ops(),
                    static_cast<int>(state.range(0)));
}
BENCHMARK(BM_Kernel_Portable)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_Kernel_Active(benchmark::State& state) {
  bench_kernel_pair(state, util::simd::active_ops(),
                    static_cast<int>(state.range(0)));
}
BENCHMARK(BM_Kernel_Active)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

/// Fused merge-with-count vs the old two-pass (|= then count) shape.
void BM_FusedOrCount(benchmark::State& state) {
  util::Rng rng(12);
  const auto a = random_closure(rng, 500);
  const auto b = random_closure(rng, 500);
  const bool fused = state.range(0) == 1;
  for (auto _ : state) {
    spec::PackageSet out = a;
    if (fused) {
      out.merge(b);  // fused kernel maintains the cardinality in-pass
      benchmark::DoNotOptimize(out.size());
    } else {
      util::DynamicBitset bits = out.bits();
      bits |= b.bits();
      benchmark::DoNotOptimize(bits.count());
    }
  }
}
BENCHMARK(BM_FusedOrCount)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
