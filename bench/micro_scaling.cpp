// Scaling study: decision cost vs. repository size and cache population.
//
// The paper recommends MinHash "for making an efficient first pass at
// selecting similar images when the number of packages or components is
// large" — metadata for full-repo CVMFS images ran to gigabytes. On the
// 9,660-package SFT universe exact bitset Jaccard is so cheap that
// MinHash loses; this bench sweeps repository sizes (and resident image
// counts) to locate the crossover where the constant-time approximation
// starts paying.
#include <benchmark/benchmark.h>

#include "landlord/cache.hpp"
#include "pkg/synthetic.hpp"
#include "sim/workload.hpp"

namespace {

using namespace landlord;

const pkg::Repository& repo_of_size(std::uint32_t packages) {
  static std::unordered_map<std::uint32_t, pkg::Repository> repos;
  auto it = repos.find(packages);
  if (it == repos.end()) {
    pkg::SyntheticRepoParams params;
    params.total_packages = packages;
    auto result = pkg::generate_repository(params, 42);
    assert(result.ok());
    it = repos.emplace(packages, std::move(result).value()).first;
  }
  return it->second;
}

/// Warm a cache with `images` resident images over a repo of `packages`
/// packages, then measure steady-state request cost.
template <core::MergePolicy Policy>
void BM_RequestVsUniverse(benchmark::State& state) {
  const auto packages = static_cast<std::uint32_t>(state.range(0));
  const auto images = static_cast<std::uint32_t>(state.range(1));
  const auto& repo = repo_of_size(packages);

  core::CacheConfig config;
  config.alpha = 0.8;
  config.policy = Policy;
  config.capacity = repo.total_bytes() * 100;
  core::Cache cache(repo, config);

  sim::WorkloadConfig workload;
  workload.unique_jobs = images;
  workload.max_initial_selection = std::max(4u, packages / 100);
  sim::WorkloadGenerator generator(repo, workload, util::Rng(1));
  const auto specs = generator.unique_specifications();
  for (const auto& spec : specs) (void)cache.request(spec);

  std::size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.request(specs[next]));
    next = (next + 1) % specs.size();
  }
  state.SetLabel(std::to_string(packages) + " pkgs, " + std::to_string(images) +
                 " images");
}

BENCHMARK(BM_RequestVsUniverse<core::MergePolicy::kBestFit>)
    ->ArgsProduct({{2000, 9660, 40000}, {100, 400}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RequestVsUniverse<core::MergePolicy::kMinHashLsh>)
    ->ArgsProduct({{2000, 9660, 40000}, {100, 400}})
    ->Unit(benchmark::kMicrosecond);

/// Raw pairwise comparison costs at growing universe sizes.
void BM_ExactJaccardVsUniverse(benchmark::State& state) {
  const auto packages = static_cast<std::uint32_t>(state.range(0));
  const auto& repo = repo_of_size(packages);
  util::Rng rng(2);
  auto make = [&]() {
    auto ids = rng.sample_without_replacement(packages, packages / 20);
    std::vector<pkg::PackageId> request;
    for (auto i : ids) request.push_back(pkg::package_id(i));
    return spec::PackageSet(repo.closure_of(request));
  };
  const auto a = make();
  const auto b = make();
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec::jaccard_distance(a, b));
  }
}
BENCHMARK(BM_ExactJaccardVsUniverse)->Arg(2000)->Arg(9660)->Arg(40000)->Arg(100000);

void BM_MinHashEstimateVsUniverse(benchmark::State& state) {
  // Signature comparison cost is independent of the universe — that is
  // the point; signing cost is paid once per image change.
  const auto packages = static_cast<std::uint32_t>(state.range(0));
  const auto& repo = repo_of_size(packages);
  util::Rng rng(3);
  const spec::MinHasher hasher(128);
  auto make = [&]() {
    auto ids = rng.sample_without_replacement(packages, packages / 20);
    std::vector<pkg::PackageId> request;
    for (auto i : ids) request.push_back(pkg::package_id(i));
    return hasher.sign(spec::PackageSet(repo.closure_of(request)));
  };
  const auto a = make();
  const auto b = make();
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec::MinHasher::estimate_similarity(a, b));
  }
}
BENCHMARK(BM_MinHashEstimateVsUniverse)->Arg(2000)->Arg(40000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
