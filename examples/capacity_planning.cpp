// Capacity planning: how much head-node scratch does a workload need?
//
// The inverse of site_tuning: fix alpha at the recommended default and
// sweep the cache budget, reporting hit rate, rebuild I/O and residency.
// "To support a given repository, it becomes necessary to provision a
// cache much larger than the size of the repository" without merging
// (§VI) — this tool shows how merging bends that curve.
//
//   $ ./capacity_planning [alpha] [hit-rate-target e.g. 0.6]
#include <cstdlib>
#include <iostream>
#include <optional>

#include "pkg/synthetic.hpp"
#include "sim/driver.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace landlord;
  const double alpha = argc > 1 ? std::atof(argv[1]) : 0.8;
  const double target_hit_rate = argc > 2 ? std::atof(argv[2]) : 0.5;

  std::cout << "generating repository and sweeping cache capacity at alpha="
            << alpha << "...\n\n";
  const auto repo = pkg::default_repository(42);

  util::Table table({"capacity", "x repo", "hit rate(%)", "merges", "deletes",
                     "resident images", "written(TB)"});
  std::optional<util::Bytes> recommended;

  for (double multiple : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    const auto capacity =
        static_cast<util::Bytes>(static_cast<double>(repo.total_bytes()) * multiple);
    sim::SimulationConfig config;
    config.cache.alpha = alpha;
    config.cache.capacity = capacity;
    config.workload.unique_jobs = 300;
    config.workload.repetitions = 5;
    config.seed = 11;
    const auto result = sim::run_simulation(repo, config);
    const double hit_rate = static_cast<double>(result.counters.hits) /
                            static_cast<double>(result.counters.requests);
    if (!recommended && hit_rate >= target_hit_rate) recommended = capacity;
    table.add_row({util::format_bytes(capacity), util::fmt(multiple, 2),
                   util::fmt(100 * hit_rate, 1),
                   util::fmt(result.counters.merges),
                   util::fmt(result.counters.deletes),
                   util::fmt(result.final_image_count),
                   util::fmt(static_cast<double>(result.counters.written_bytes) /
                                 1e12,
                             2)});
  }
  table.print(std::cout);

  if (recommended) {
    std::cout << "\nsmallest capacity reaching a " << util::fmt(100 * target_hit_rate, 0)
              << "% hit rate: " << util::format_bytes(*recommended) << '\n';
  } else {
    std::cout << "\nno swept capacity reaches a "
              << util::fmt(100 * target_hit_rate, 0)
              << "% hit rate; raise alpha or add repetitions of reuse\n";
  }
  return 0;
}
