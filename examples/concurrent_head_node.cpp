// Concurrent head node: many schedulers submitting at once.
//
// A production head node (§V) takes job submissions from every user of
// the cluster concurrently. This example turns on the sharded decision
// layer (CacheConfig::shards > 1), submits a synthetic workload from four
// threads through one core::Landlord, then snapshots the cache to a
// stream and restores it — the restart story for a live head node.
//
//   $ ./concurrent_head_node
#include <barrier>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "landlord/landlord.hpp"
#include "landlord/persist.hpp"
#include "pkg/synthetic.hpp"
#include "sim/workload.hpp"
#include "util/table.hpp"

int main() {
  using namespace landlord;

  // 1. The paper-scale synthetic repository and a deterministic workload.
  const pkg::Repository repo = pkg::default_repository(42);
  sim::WorkloadConfig workload;
  workload.unique_jobs = 60;
  workload.repetitions = 3;
  util::Rng rng(42);
  sim::WorkloadGenerator generator(repo, workload, rng.split(1));
  const auto specs = generator.unique_specifications();
  const auto stream = generator.request_stream();

  // 2. A Landlord with a sharded decision layer: 40 GB cache, 4 shards.
  //    With shards > 1, Landlord::submit is safe to call from many
  //    threads; with the default shards = 1 it behaves exactly as before.
  core::CacheConfig config;
  config.capacity = 40ULL * 1000 * 1000 * 1000;
  config.alpha = 0.8;
  config.shards = 4;
  core::Landlord landlord(repo, config);

  // 3. Four "schedulers" submit the stream round-robin, starting together.
  constexpr std::uint32_t kThreads = 4;
  std::barrier start(kThreads);
  std::vector<std::jthread> schedulers;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    schedulers.emplace_back([&, t] {
      start.arrive_and_wait();
      for (std::size_t i = t; i < stream.size(); i += kThreads) {
        (void)landlord.submit(specs[stream[i]]);
      }
    });
  }
  schedulers.clear();  // join

  const auto counters = landlord.counters();
  std::cout << "submitted " << counters.requests << " jobs from " << kThreads
            << " threads: " << counters.hits << " hits, " << counters.merges
            << " merges, " << counters.inserts << " inserts\n"
            << "cache: " << landlord.image_count() << " image(s), "
            << util::format_bytes(landlord.total_bytes()) << " total, "
            << util::format_bytes(landlord.unique_bytes()) << " unique\n\n";

  util::Table table({"shard", "images", "bytes", "inserts", "locks", "contended"});
  for (const auto& shard : landlord.sharded()->shard_stats()) {
    table.add_row({std::to_string(shard.shard), util::fmt(shard.images),
                   util::format_bytes(shard.bytes), util::fmt(shard.homed_inserts),
                   util::fmt(shard.lock_acquisitions),
                   util::fmt(shard.lock_contentions)});
  }
  table.print(std::cout);

  // 4. Restart story: snapshot the sharded cache (all shard locks held,
  //    so the state is consistent even mid-storm) and restore it.
  std::stringstream snapshot;
  core::save_cache(snapshot, *landlord.sharded(), repo);
  core::ShardedCache restored(repo, config);
  const auto adopted = core::restore_cache_into(snapshot, repo, restored);
  if (!adopted.ok()) {
    std::cerr << "restore failed: " << adopted.error().message << '\n';
    return 1;
  }
  std::cout << "\nsnapshot/restore: " << adopted.value() << " images, "
            << util::format_bytes(restored.total_bytes()) << " restored\n";
  return 0;
}
