// HEP pipeline: the paper's motivating workload (§II, §VI).
//
// A submission system dispatches a stream of LHC jobs — generation,
// simulation, digitization, reconstruction across four experiments —
// against a site image cache managed by LANDLORD. Without management,
// every distinct phase/experiment combination materialises its own
// multi-GB image; with Jaccard merging, same-experiment phases share.
//
//   $ ./hep_pipeline [alpha]      (default 0.8)
#include <cstdlib>
#include <iostream>

#include "hep/profiles.hpp"
#include "landlord/landlord.hpp"
#include "pkg/synthetic.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace landlord;
  const double alpha = argc > 1 ? std::atof(argv[1]) : 0.8;

  std::cout << "generating SFT-like repository (9660 packages)...\n";
  const auto repo = pkg::default_repository(42);

  core::CacheConfig config;
  config.alpha = alpha;
  config.capacity = 100ULL * 1000 * 1000 * 1000;  // 100 GB scratch
  core::Landlord landlord(repo, config);

  // Each benchmark application is submitted several times, interleaved
  // the way a multi-user queue would deliver them.
  const auto apps = hep::benchmark_apps();
  std::vector<spec::Specification> specs;
  for (const auto& app : apps) {
    specs.push_back(hep::app_specification(repo, app, 7));
  }
  std::vector<std::size_t> stream;
  for (int round = 0; round < 4; ++round) {
    for (std::size_t i = 0; i < specs.size(); ++i) stream.push_back(i);
  }
  util::Rng rng(123);
  rng.shuffle(std::span<std::size_t>(stream));

  double naive_prep_seconds = 0.0;
  std::cout << "\nsubmitting " << stream.size() << " jobs at alpha=" << alpha
            << "\n\n";
  for (std::size_t index : stream) {
    const auto& app = apps[index];
    const auto placement = landlord.submit(specs[index]);
    // Reference cost: building the requested image from scratch per job.
    shrinkwrap::ImageBuilder cold(repo);
    naive_prep_seconds += cold.build(specs[index]).prep_seconds;
    std::cout << app.name << "  " << core::to_string(placement.kind)
              << "  image=" << util::format_bytes(placement.image_bytes)
              << "  prep=" << util::fmt(placement.prep_seconds, 1) << "s\n";
  }

  const auto& cache = landlord.cache();
  std::cout << "\n--- summary ---\n"
            << "images in cache:      " << cache.image_count() << '\n'
            << "cache total/unique:   " << util::format_bytes(cache.total_bytes())
            << " / " << util::format_bytes(cache.unique_bytes()) << '\n'
            << "operations:           " << cache.counters().hits << " hits, "
            << cache.counters().merges << " merges, "
            << cache.counters().inserts << " inserts, "
            << cache.counters().deletes << " deletes\n"
            << "prep time (landlord): "
            << util::fmt(landlord.total_prep_seconds(), 0) << "s\n"
            << "prep time (naive):    " << util::fmt(naive_prep_seconds, 0)
            << "s  (one image per job, no cache)\n";
  return 0;
}
