// Job wrapper: LANDLORD as "a lightweight job wrapper" (§V).
//
// The paper's prototype wraps job submission: infer the specification
// from the job's artefacts, prepare a suitable image (reuse / merge /
// create), then launch the job inside it. This example emulates a
// submission host processing a queue of heterogeneous jobs described by
// (name, python source | module-load script | previous log), and prints
// the exact wrapper decisions, including the command that *would* run:
//
//   singularity exec <image> <command>
//
// (Container execution itself is out of scope of every experiment in the
// paper; the wrapper stops at the launch line.)
#include <iostream>
#include <sstream>

#include "landlord/landlord.hpp"
#include "pkg/synthetic.hpp"
#include "spec/inference.hpp"
#include "util/table.hpp"

namespace {

using namespace landlord;

struct QueuedJob {
  std::string name;
  std::string kind;     // python | modules | log
  std::string payload;  // artefact content
  std::string command;  // what to exec inside the container
};

spec::Specification infer(const pkg::Repository& repo, const QueuedJob& job) {
  std::istringstream in(job.payload);
  std::vector<spec::Requirement> reqs;
  if (job.kind == "python") {
    reqs = spec::scan_python_imports(in);
  } else if (job.kind == "modules") {
    reqs = spec::scan_module_loads(in);
  } else {
    reqs = spec::scan_job_log(in);
  }
  return spec::infer_specification(repo, reqs, job.kind);
}

}  // namespace

int main() {
  const auto repo = pkg::default_repository(42);

  core::CacheConfig config;
  config.alpha = 0.8;
  config.capacity = 200ULL * 1000 * 1000 * 1000;
  core::Landlord landlord(repo, config);

  // Reference a few real packages so the inferred specs resolve.
  const auto& lib_a = repo[pkg::package_id(500)];
  const auto& lib_b = repo[pkg::package_id(520)];
  const auto& tool = repo[pkg::package_id(5000)];

  const std::vector<QueuedJob> queue = {
      {"fit-masses", "modules",
       "module load " + lib_a.name + "/" + lib_a.version + "\n",
       "python fit.py --dataset 2018"},
      {"fit-masses-syst", "modules",
       "module load " + lib_a.name + "/" + lib_a.version + " " + lib_b.name +
           "\n",
       "python fit.py --dataset 2018 --systematics"},
      {"replay-trigger", "log",
       "open /cvmfs/sft/" + tool.name + "/" + tool.version + "/bin/replay\n",
       "replay --run 322/00"},
      {"fit-masses", "modules",
       "module load " + lib_a.name + "/" + lib_a.version + "\n",
       "python fit.py --dataset 2017"},
  };

  for (const auto& job : queue) {
    const auto spec = infer(repo, job);
    const auto placement = landlord.submit(spec);
    std::cout << "[" << job.name << "] spec: " << spec.size() << " pkgs ("
              << util::format_bytes(placement.requested_bytes) << ") via "
              << spec.provenance() << '\n'
              << "  decision: " << core::to_string(placement.kind)
              << ", image " << core::to_value(placement.image) << " ("
              << util::format_bytes(placement.image_bytes) << ")";
    if (placement.prep_seconds > 0) {
      std::cout << ", prepared in " << util::fmt(placement.prep_seconds, 1)
                << "s";
    }
    std::cout << "\n  launch: singularity exec image-"
              << core::to_value(placement.image) << ".sif " << job.command
              << "\n\n";
  }

  const auto& counters = landlord.cache().counters();
  std::cout << "wrapper totals: " << counters.requests << " jobs, "
            << counters.hits << " reused, " << counters.merges << " merged, "
            << counters.inserts << " created; prep "
            << util::fmt(landlord.total_prep_seconds(), 1) << "s\n";
  return 0;
}
