// landlord_shell — an interactive site-administrator console.
//
// Drives a live LANDLORD cache from a command line, the way a site admin
// (or an integration script) would poke at a head-node deployment:
//
//   repo generate [packages] [seed]   synthesize an SFT-like repository
//   repo load <manifest>              load a package manifest from disk
//   config alpha <a> | capacity <sz>  reconfigure (resets the cache)
//   submit <pkg-key> [...]            submit a job needing these packages
//   submit-file <requirements.txt>    submit a declarative specfile
//   random [n]                        submit n random simulated jobs
//   images                            list cached images
//   stats                             cache counters and efficiencies
//   diff <image-id> <pkg-key> [...]   what would this image miss/overship?
//   help / quit
//
// Commands also come from stdin redirection, so the shell doubles as a
// scriptable driver:  ./landlord_shell < script.txt
#include <fstream>
#include <iostream>
#include <sstream>
#include <memory>
#include <string>
#include <vector>

#include "landlord/landlord.hpp"
#include "pkg/manifest.hpp"
#include "pkg/synthetic.hpp"
#include "sim/workload.hpp"
#include "spec/diff.hpp"
#include "spec/specfile.hpp"
#include "util/table.hpp"

namespace {

using namespace landlord;

struct Shell {
  pkg::Repository repo = pkg::default_repository(42);
  core::CacheConfig config;
  std::unique_ptr<core::Landlord> landlord;
  util::Rng rng{12345};

  Shell() {
    config.alpha = 0.8;
    config.capacity = 200ULL * 1000 * 1000 * 1000;
    reset();
  }

  void reset() { landlord = std::make_unique<core::Landlord>(repo, config); }

  void help() const {
    std::cout <<
        "commands:\n"
        "  repo generate [packages] [seed]\n"
        "  repo load <manifest-path>\n"
        "  config alpha <a> | config capacity <bytes e.g. 1.4TB>\n"
        "  submit <pkg-key> [...]      submit-file <requirements.txt>\n"
        "  random [n]                  images\n"
        "  stats                       diff <image-id> <pkg-key> [...]\n"
        "  help                        quit\n";
  }

  spec::Specification spec_from_keys(const std::vector<std::string>& keys,
                                     std::vector<std::string>* missing) const {
    std::vector<pkg::PackageId> request;
    for (const auto& key : keys) {
      if (auto id = repo.find(key)) {
        request.push_back(*id);
      } else if (missing != nullptr) {
        missing->push_back(key);
      }
    }
    return spec::Specification::from_request(repo, request, "shell");
  }

  void submit_spec(const spec::Specification& spec) {
    const auto placement = landlord->submit(spec);
    std::cout << core::to_string(placement.kind) << " -> image "
              << core::to_value(placement.image) << " ("
              << util::format_bytes(placement.image_bytes) << ", prep "
              << util::fmt(placement.prep_seconds, 1) << "s)\n";
  }

  void cmd_repo(std::istringstream& args) {
    std::string sub;
    args >> sub;
    if (sub == "generate") {
      std::uint32_t packages = 9660;
      std::uint64_t seed = 42;
      args >> packages >> seed;
      pkg::SyntheticRepoParams params;
      params.total_packages = packages == 0 ? 9660 : packages;
      auto result = pkg::generate_repository(params, seed);
      if (!result.ok()) {
        std::cout << "error: " << result.error().message << '\n';
        return;
      }
      repo = std::move(result).value();
      reset();
      std::cout << "repository: " << repo.size() << " packages, "
                << util::format_bytes(repo.total_bytes()) << '\n';
    } else if (sub == "load") {
      std::string path;
      args >> path;
      auto result = pkg::load_manifest(path);
      if (!result.ok()) {
        std::cout << "error: " << result.error().message << '\n';
        return;
      }
      repo = std::move(result).value();
      reset();
      std::cout << "repository: " << repo.size() << " packages, "
                << util::format_bytes(repo.total_bytes()) << '\n';
    } else {
      std::cout << "usage: repo generate [packages] [seed] | repo load <path>\n";
    }
  }

  void cmd_config(std::istringstream& args) {
    std::string key;
    args >> key;
    if (key == "alpha") {
      double alpha = config.alpha;
      args >> alpha;
      if (alpha < 0.0 || alpha > 1.0) {
        std::cout << "alpha must be in [0, 1]\n";
        return;
      }
      config.alpha = alpha;
    } else if (key == "capacity") {
      std::string text;
      args >> text;
      const auto parsed = util::parse_bytes(text);
      if (!parsed) {
        std::cout << "unparseable size: " << text << '\n';
        return;
      }
      config.capacity = *parsed;
    } else {
      std::cout << "usage: config alpha <a> | config capacity <size>\n";
      return;
    }
    reset();
    std::cout << "cache reset: alpha=" << config.alpha << ", capacity="
              << util::format_bytes(config.capacity) << '\n';
  }

  void cmd_submit(std::istringstream& args) {
    std::vector<std::string> keys;
    std::string key;
    while (args >> key) keys.push_back(key);
    if (keys.empty()) {
      std::cout << "usage: submit <pkg-key> [...]\n";
      return;
    }
    std::vector<std::string> missing;
    const auto spec = spec_from_keys(keys, &missing);
    for (const auto& miss : missing) std::cout << "unknown package: " << miss << '\n';
    if (spec.empty()) return;
    submit_spec(spec);
  }

  void cmd_submit_file(std::istringstream& args) {
    std::string path;
    args >> path;
    std::ifstream in(path);
    if (!in) {
      std::cout << "cannot open " << path << '\n';
      return;
    }
    auto spec = spec::specification_from_file(in, repo);
    if (!spec.ok()) {
      std::cout << "error: " << spec.error().message << '\n';
      return;
    }
    submit_spec(spec.value());
  }

  void cmd_random(std::istringstream& args) {
    std::uint32_t n = 1;
    args >> n;
    sim::WorkloadConfig workload;
    workload.unique_jobs = std::max(1u, n);
    workload.max_initial_selection = 20;
    sim::WorkloadGenerator generator(repo, workload, rng.split(rng()));
    for (const auto& spec : generator.unique_specifications()) {
      submit_spec(spec);
    }
  }

  void cmd_images() const {
    util::Table table({"id", "packages", "size", "hits", "merges", "version"});
    landlord->cache().for_each_image([&](const core::Image& image) {
      table.add_row({util::fmt(core::to_value(image.id)),
                     util::fmt(static_cast<std::uint64_t>(image.contents.size())),
                     util::format_bytes(image.bytes), util::fmt(image.hits),
                     util::fmt(std::uint64_t{image.merge_count}),
                     util::fmt(std::uint64_t{image.version})});
    });
    table.print(std::cout);
  }

  void cmd_stats() const {
    const auto& cache = landlord->cache();
    const auto& counters = cache.counters();
    std::cout << "alpha " << config.alpha << ", capacity "
              << util::format_bytes(config.capacity) << '\n'
              << "images " << cache.image_count() << ", total "
              << util::format_bytes(cache.total_bytes()) << ", unique "
              << util::format_bytes(cache.unique_bytes()) << '\n'
              << "requests " << counters.requests << ": " << counters.hits
              << " hits, " << counters.merges << " merges, " << counters.inserts
              << " inserts, " << counters.deletes << " deletes, "
              << counters.splits << " splits\n"
              << "cache efficiency " << util::fmt(100 * cache.cache_efficiency(), 1)
              << "%, container efficiency "
              << util::fmt(100 * counters.container_efficiency(), 1) << "%\n"
              << "written " << util::format_bytes(counters.written_bytes)
              << ", prep " << util::fmt(landlord->total_prep_seconds(), 0) << "s\n";
  }

  void cmd_diff(std::istringstream& args) {
    std::uint64_t image_id = 0;
    args >> image_id;
    std::vector<std::string> keys;
    std::string key;
    while (args >> key) keys.push_back(key);
    const auto image = landlord->cache().find(core::ImageId{image_id});
    if (!image) {
      std::cout << "no such image: " << image_id << '\n';
      return;
    }
    const auto spec = spec_from_keys(keys, nullptr);
    const auto d = spec::diff(repo, spec.packages(), image->contents);
    std::cout << spec::describe_diff(repo, d) << '\n';
  }

  bool dispatch(const std::string& line) {
    std::istringstream args(line);
    std::string command;
    if (!(args >> command)) return true;
    if (command == "quit" || command == "exit") return false;
    if (command == "help") help();
    else if (command == "repo") cmd_repo(args);
    else if (command == "config") cmd_config(args);
    else if (command == "submit") cmd_submit(args);
    else if (command == "submit-file") cmd_submit_file(args);
    else if (command == "random") cmd_random(args);
    else if (command == "images") cmd_images();
    else if (command == "stats") cmd_stats();
    else if (command == "diff") cmd_diff(args);
    else std::cout << "unknown command '" << command << "' (try: help)\n";
    return true;
  }
};

}  // namespace

int main() {
  Shell shell;
  std::cout << "landlord shell — repository " << shell.repo.size()
            << " packages; type 'help'\n";
  std::string line;
  while (std::cout << "landlord> " << std::flush, std::getline(std::cin, line)) {
    if (!shell.dispatch(line)) break;
  }
  std::cout << '\n';
  return 0;
}
