// Metrics snapshot tool: run a small simulation and a crash replay with
// an observability bundle attached, dump the Prometheus text exposition
// and the JSONL event-trace tail, and (with --check) re-parse the
// exposition and reconcile it against the decision-layer counters.
//
//   metrics_snapshot [--jobs N] [--seed S] [--metrics-out FILE]
//                    [--trace-out FILE] [--check]
//
// With no output flags the exposition goes to stdout. --check exits
// non-zero on a malformed exposition line or any counter/ladder
// mismatch — scripts/tier1.sh stage 4 runs exactly this.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "pkg/synthetic.hpp"
#include "sim/crash.hpp"
#include "sim/driver.hpp"

namespace {

struct Options {
  std::uint32_t jobs = 120;
  std::uint64_t seed = 42;
  std::optional<std::string> metrics_out;
  std::optional<std::string> trace_out;
  bool check = false;
};

std::optional<Options> parse_args(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--jobs") {
      const char* value = next();
      if (value == nullptr) return std::nullopt;
      options.jobs = static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (arg == "--seed") {
      const char* value = next();
      if (value == nullptr) return std::nullopt;
      options.seed = std::strtoull(value, nullptr, 10);
    } else if (arg == "--metrics-out") {
      const char* value = next();
      if (value == nullptr) return std::nullopt;
      options.metrics_out = value;
    } else if (arg == "--trace-out") {
      const char* value = next();
      if (value == nullptr) return std::nullopt;
      options.trace_out = value;
    } else if (arg == "--check") {
      options.check = true;
    } else {
      return std::nullopt;
    }
  }
  return options;
}

int failures = 0;

void check_equal(const char* what, double metric, double expected) {
  if (metric == expected) return;
  ++failures;
  std::cerr << "MISMATCH " << what << ": metric " << metric << " != expected "
            << expected << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace landlord;
  const auto options = parse_args(argc, argv);
  if (!options) {
    std::cerr << "usage: metrics_snapshot [--jobs N] [--seed S] "
                 "[--metrics-out FILE] [--trace-out FILE] [--check]\n";
    return 2;
  }

  const auto& repo = pkg::default_repository(options->seed);
  obs::Observability obs(1 << 16);

  // Phase 1: a plain simulation through the sequential cache.
  sim::SimulationConfig sim_config;
  sim_config.cache.alpha = 0.8;
  sim_config.cache.capacity = 1400ULL * 1000 * 1000 * 1000;
  sim_config.workload.unique_jobs = options->jobs;
  sim_config.workload.repetitions = 3;
  sim_config.seed = options->seed;
  sim_config.obs = &obs;
  const auto sim_result = sim::run_simulation(repo, sim_config);

  // Phase 2: a faulty crash replay, so the degraded/fault/checkpoint
  // families carry non-zero values in the snapshot.
  sim::CrashReplayConfig crash_config;
  crash_config.cache.alpha = 0.8;
  crash_config.cache.capacity = 1400ULL * 1000 * 1000 * 1000;
  crash_config.workload.unique_jobs = std::max<std::uint32_t>(40, options->jobs / 2);
  crash_config.workload.repetitions = 3;
  crash_config.seed = options->seed + 1;
  crash_config.crash.checkpoint_every = 20;
  crash_config.crash.crash_every = 45;
  crash_config.faults.fail(fault::FaultOp::kBuilderDownload, 0.15)
      .fail(fault::FaultOp::kMergeRewrite, 0.15)
      .fail(fault::FaultOp::kSnapshotWrite, 0.25);
  crash_config.faults.seed = options->seed ^ 0x0b5ULL;
  crash_config.backoff.max_retries = 1;
  crash_config.obs = &obs;
  const auto crash_result = sim::run_crash_replay(repo, crash_config);

  const std::string exposition = obs.registry.render_text();
  if (options->metrics_out) {
    std::ofstream out(*options->metrics_out);
    if (!out) {
      std::cerr << "cannot write " << *options->metrics_out << '\n';
      return 2;
    }
    out << exposition;
    std::cout << "metrics written to " << *options->metrics_out << '\n';
  } else {
    std::cout << exposition;
  }
  if (options->trace_out) {
    std::ofstream out(*options->trace_out);
    if (!out) {
      std::cerr << "cannot write " << *options->trace_out << '\n';
      return 2;
    }
    obs.trace.write_jsonl(out);
    std::cout << "trace tail (" << obs.trace.snapshot().size()
              << " events) written to " << *options->trace_out << '\n';
  }

  if (!options->check) return 0;

  // Re-parse what we just rendered: a malformed line fails here.
  std::istringstream in(exposition);
  auto parsed = obs::parse_text(in);
  if (!parsed.ok()) {
    std::cerr << "exposition does not parse: " << parsed.error().message << '\n';
    return 1;
  }
  const auto& snap = parsed.value();
  const auto at = [&](const std::string& key) {
    const auto it = snap.find(key);
    if (it != snap.end()) return it->second;
    ++failures;
    std::cerr << "MISSING series " << key << '\n';
    return -1.0;
  };

  // Counter reconciliation: registry series vs the decision-layer
  // counters, summed across both phases (the registry is shared).
  const auto total = [](std::uint64_t a, std::uint64_t b) {
    return static_cast<double>(a + b);
  };
  check_equal("requests{hit}",
              at("landlord_cache_requests_total{kind=\"hit\"}"),
              total(sim_result.counters.hits, crash_result.counters.hits));
  check_equal("requests{merge}",
              at("landlord_cache_requests_total{kind=\"merge\"}"),
              total(sim_result.counters.merges, crash_result.counters.merges));
  check_equal("requests{insert}",
              at("landlord_cache_requests_total{kind=\"insert\"}"),
              total(sim_result.counters.inserts, crash_result.counters.inserts));
  check_equal("evictions (all reasons)",
              at("landlord_cache_evictions_total{reason=\"budget\"}") +
                  at("landlord_cache_evictions_total{reason=\"idle\"}") +
                  at("landlord_cache_evictions_total{reason=\"split-empty\"}"),
              total(sim_result.counters.deletes, crash_result.counters.deletes));

  // Ladder reconciliation: rung counters vs degraded telemetry (the sim
  // phase is fault-free, so the crash replay owns every degraded rung).
  check_equal("rung{exact-fallback}",
              at("landlord_submit_rung_total{rung=\"exact-fallback\"}"),
              static_cast<double>(crash_result.degraded.fallback_exact_builds));
  check_equal("rung{unsplit-fallback}",
              at("landlord_submit_rung_total{rung=\"unsplit-fallback\"}"),
              static_cast<double>(crash_result.degraded.fallback_unsplit_hits));
  check_equal("rung{error}",
              at("landlord_submit_rung_total{rung=\"error\"}"),
              static_cast<double>(crash_result.degraded.error_placements));
  check_equal("build retries",
              at("landlord_submit_build_retries_total"),
              static_cast<double>(crash_result.degraded.retries));
  check_equal("checkpoints{torn}",
              at("landlord_checkpoints_total{result=\"torn\"}"),
              static_cast<double>(crash_result.torn_checkpoints));
  check_equal("crashes", at("landlord_crashes_total"),
              static_cast<double>(crash_result.crashes));
  check_equal("placement invariant violations",
              at("landlord_placement_invariant_violations_total"), 0.0);

  if (failures != 0) {
    std::cerr << failures << " reconciliation failure(s)\n";
    return 1;
  }
  std::cout << "metrics snapshot reconciles: " << snap.size() << " series, "
            << sim_result.counters.requests + crash_result.counters.requests
            << " requests, " << crash_result.crashes << " crashes\n";
  return 0;
}
