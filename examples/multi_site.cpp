// Multi-site deployment: one LANDLORD cache per computing centre.
//
// Compares routing policies for a shared job stream across sites — the
// WLCG-style setting that motivates the paper. Content-affinity routing
// keeps each job family at one site, so images are built once
// system-wide instead of once per site.
//
//   $ ./multi_site [sites] [alpha]     (defaults: 4 sites, alpha 0.8)
#include <cstdlib>
#include <iostream>

#include "pkg/synthetic.hpp"
#include "sim/multisite.hpp"
#include "sim/workload.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace landlord;
  const auto sites = static_cast<std::uint32_t>(argc > 1 ? std::atoi(argv[1]) : 4);
  const double alpha = argc > 2 ? std::atof(argv[2]) : 0.8;

  std::cout << "generating repository and workload...\n";
  const auto repo = pkg::default_repository(42);

  sim::WorkloadConfig workload;
  workload.unique_jobs = 300;
  workload.repetitions = 5;
  sim::WorkloadGenerator generator(repo, workload, util::Rng(7));
  const auto specs = generator.unique_specifications();
  const auto stream = generator.request_stream();

  util::Table table({"routing", "hits", "merges", "inserts",
                     "total cached", "global unique", "written"});
  for (auto routing :
       {sim::Routing::kRoundRobin, sim::Routing::kRandom, sim::Routing::kAffinity}) {
    sim::MultiSiteConfig config;
    config.sites = sites;
    config.routing = routing;
    config.cache.alpha = alpha;
    config.cache.capacity = 400ULL * 1000 * 1000 * 1000;  // per site
    const auto result = sim::run_multisite(repo, config, specs, stream, 1);
    table.add_row({sim::to_string(routing), util::fmt(result.total_hits),
                   util::fmt(result.total_merges),
                   util::fmt(result.total_inserts),
                   util::format_bytes(result.total_cached_bytes),
                   util::format_bytes(result.global_unique_bytes),
                   util::format_bytes(result.total_written_bytes)});
  }

  std::cout << '\n' << sites << " sites, alpha=" << alpha << ", "
            << stream.size() << " jobs\n\n";
  table.print(std::cout);
  std::cout << "\ncontent-affinity routing concentrates repeats at one site: "
               "more hits, fewer rebuilt images, less I/O.\n";
  return 0;
}
