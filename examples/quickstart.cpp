// Quickstart: the LANDLORD public API in ~60 lines.
//
// Build a package repository, write container specifications, and let
// the cache decide whether each job reuses, merges into, or creates a
// container image.
//
//   $ ./quickstart
#include <iostream>

#include "landlord/landlord.hpp"
#include "pkg/manifest.hpp"
#include "util/table.hpp"

int main() {
  using namespace landlord;

  // 1. A software repository. Real deployments load a manifest dumped
  //    from CVMFS/Spack metadata; here we define a small one inline.
  auto parsed = pkg::parse_manifest_text(R"(
package base-env  1.0  1000000000 core
package python    3.8  500000000  library
dep base-env/1.0
package root      6.18 2000000000 library
dep base-env/1.0
package geant4    10.6 1500000000 library
dep base-env/1.0
package my-gen    0.1  100000000  leaf
dep python/3.8
dep root/6.18
package my-sim    0.1  120000000  leaf
dep root/6.18
dep geant4/10.6
)");
  if (!parsed.ok()) {
    std::cerr << "manifest error: " << parsed.error().message << '\n';
    return 1;
  }
  const pkg::Repository repo = std::move(parsed).value();

  // 2. A LANDLORD instance: 4 GB image cache, merge threshold alpha=0.8.
  core::CacheConfig config;
  config.capacity = 4ULL * 1000 * 1000 * 1000;
  config.alpha = 0.8;
  core::Landlord landlord(repo, config);

  // 3. Specifications state *what must be present*; the dependency
  //    closure is expanded automatically.
  auto submit = [&](const char* job, std::initializer_list<const char*> pkgs) {
    std::vector<pkg::PackageId> request;
    for (const char* key : pkgs) {
      if (auto id = repo.find(key)) request.push_back(*id);
    }
    const auto spec = spec::Specification::from_request(repo, request, job);
    const auto placement = landlord.submit(spec);
    std::cout << job << ": " << core::to_string(placement.kind) << " -> image "
              << core::to_value(placement.image) << " ("
              << util::format_bytes(placement.image_bytes) << ", prep "
              << util::fmt(placement.prep_seconds, 1) << "s)\n";
  };

  submit("generate-events", {"my-gen/0.1"});
  submit("generate-events", {"my-gen/0.1"});          // identical -> hit
  submit("simulate-detector", {"my-sim/0.1"});        // close -> merged
  submit("full-chain", {"my-gen/0.1", "my-sim/0.1"}); // subset of merge -> hit

  const auto& counters = landlord.cache().counters();
  std::cout << "\ncache: " << landlord.cache().image_count() << " image(s), "
            << util::format_bytes(landlord.cache().total_bytes()) << " total, "
            << util::format_bytes(landlord.cache().unique_bytes())
            << " unique\nops: " << counters.hits << " hits, " << counters.merges
            << " merges, " << counters.inserts << " inserts\n";
  return 0;
}
