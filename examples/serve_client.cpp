// Command-line client for the head-node service plane.
//
//   serve_client --port P ping
//   serve_client --port P stats
//   serve_client --port P submit 3,17,240 [--client-id C]
//
// `submit` sends one specification whose package-id list is given
// comma-separated (ids into the server's repository universe, strictly
// increasing; the server does not re-close dependencies) and prints the
// placement decision. Pair with serve_head_node.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "serve/client.hpp"
#include "serve/protocol.hpp"

namespace {

std::optional<std::vector<std::uint32_t>> parse_ids(const std::string& list) {
  std::vector<std::uint32_t> ids;
  std::size_t start = 0;
  while (start < list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::string token =
        list.substr(start, comma == std::string::npos ? comma : comma - start);
    if (token.empty()) return std::nullopt;
    char* end = nullptr;
    const unsigned long value = std::strtoul(token.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return std::nullopt;
    ids.push_back(static_cast<std::uint32_t>(value));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return ids;
}

const char* kind_name(landlord::core::RequestKind kind) {
  switch (kind) {
    case landlord::core::RequestKind::kHit: return "hit";
    case landlord::core::RequestKind::kMerge: return "merge";
    case landlord::core::RequestKind::kInsert: return "insert";
  }
  return "?";
}

int usage() {
  std::cerr << "usage: serve_client --port P ping\n"
               "       serve_client --port P stats\n"
               "       serve_client --port P submit ID[,ID...]"
               " [--client-id C]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 0;
  std::uint64_t client_id = 1;
  std::string command;
  std::string id_list;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--client-id" && i + 1 < argc) {
      client_id = std::strtoull(argv[++i], nullptr, 10);
    } else if (command.empty()) {
      command = arg;
    } else if (command == "submit" && id_list.empty()) {
      id_list = arg;
    } else {
      return usage();
    }
  }
  if (port == 0 || command.empty()) return usage();

  landlord::serve::Client client;
  const auto connected = client.connect(port);
  if (!connected.ok()) {
    std::cerr << "connect failed: " << connected.error().message << '\n';
    return 1;
  }

  if (command == "ping") {
    const auto pong = client.ping();
    if (!pong.ok()) {
      std::cerr << "ping failed: " << pong.error().message << '\n';
      return 1;
    }
    std::cout << "pong\n";
    return 0;
  }

  if (command == "stats") {
    const auto stats = client.stats();
    if (!stats.ok()) {
      std::cerr << "stats failed: " << stats.error().message << '\n';
      return 1;
    }
    const auto& s = stats.value();
    std::cout << "requests=" << s.requests << " hits=" << s.hits
              << " merges=" << s.merges << " inserts=" << s.inserts
              << " deletes=" << s.deletes << " splits=" << s.splits << '\n'
              << "images=" << s.image_count << " total-bytes=" << s.total_bytes
              << " unique-bytes=" << s.unique_bytes << '\n'
              << "requested-bytes=" << s.requested_bytes
              << " written-bytes=" << s.written_bytes
              << " prep-seconds=" << s.prep_seconds << '\n';
    return 0;
  }

  if (command == "submit") {
    const auto ids = parse_ids(id_list);
    if (!ids || ids->empty()) return usage();
    landlord::serve::SubmitRequest request;
    request.client_id = client_id;
    request.packages = *ids;
    const auto reply = client.submit(request);
    if (!reply.ok()) {
      std::cerr << "submit failed: " << reply.error().message << '\n';
      return 1;
    }
    const auto& placement = reply.value();
    std::cout << "placement kind=" << kind_name(placement.kind)
              << " image=" << placement.image
              << " image-bytes=" << placement.image_bytes
              << " requested-bytes=" << placement.requested_bytes
              << " prep-seconds=" << placement.prep_seconds
              << (placement.degraded ? " degraded" : "")
              << (placement.failed ? " FAILED" : "") << '\n';
    if (!placement.error.empty()) {
      std::cout << "error: " << placement.error << '\n';
    }
    return 0;
  }

  return usage();
}
