// Networked head node: stands up the TCP service plane (serve::Server)
// around a core::Landlord over a synthetic repository, and optionally
// drives it with the built-in load generator.
//
//   serve_head_node [--port P] [--workers N] [--shards N] [--max-queue N]
//                   [--heads N] [--pipeline-depth N] [--packages N]
//                   [--seed S] [--alpha A] [--capacity-fraction F]
//                   [--duration SECONDS] [--metrics-out FILE]
//   serve_head_node --bench [--mode closed|open] [--connections N]
//                   [--batch N] [--requests N] [--rate R] [--warmup]
//                   [--bench-duration SECONDS] [--clients N] [--zipf S]
//                   [--drain-timeout SECONDS]
//                   [--chaos [--chaos-seed S] [--chaos-reset P]
//                    [--chaos-stall P] [--chaos-partial P]
//                    [--chaos-accept P]]
//
// Server mode binds 127.0.0.1 (port 0 picks an ephemeral one, printed as
// "listening on PORT"), serves until --duration elapses (default 30s),
// then drains gracefully and prints the service-plane counters. Talk to
// it with serve_client.
//
// --heads N stands up N servers over ONE shared Landlord (and one obs
// registry): the multi-head topology from the XCache-style deployments —
// several socket front ends, one repository of record. Requires a
// sharded decision layer (--shards >= 2); the load generator spreads its
// connections across the heads round-robin.
//
// --bench starts the same server(s) in-process, runs the load generator
// against them over loopback, and prints one JSON report to stdout —
// scripts/bench_serve.sh parses this and gates on QPS (BENCH_serve.json).
// --warmup submits the whole catalog once per head before the timed
// window, so open-loop quantiles measure steady-state serving rather
// than the cold-cache insert/merge transient.
//
// --chaos routes the load generator through the in-process seeded fault
// shim (serve::ChaosProxy): connections are reset, stalled, fragmented
// and refused on a replayable schedule while reconnecting v2 retry
// clients (idempotent via the server's dedup window) must still land
// every request exactly once — bench_serve.sh gates the chaos run on
// zero lost requests with a nonzero injected-fault count.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "landlord/landlord.hpp"
#include "obs/obs.hpp"
#include "pkg/synthetic.hpp"
#include "serve/chaos.hpp"
#include "serve/loadgen.hpp"
#include "serve/retry.hpp"
#include "serve/server.hpp"

namespace {

using landlord::serve::LoadGenConfig;
using landlord::serve::LoadGenReport;
using landlord::serve::LoadMode;
using landlord::serve::ServeCounters;
using landlord::serve::ServerConfig;

struct Options {
  // Server shape.
  std::uint16_t port = 0;
  std::uint32_t workers = 8;
  std::uint32_t shards = 8;
  std::size_t max_queue = 1024;
  std::uint32_t heads = 1;
  std::optional<std::size_t> pipeline_depth;
  std::uint32_t packages = 1500;
  std::uint64_t seed = 42;
  double alpha = 0.8;
  double capacity_fraction = 0.5;
  double duration = 30.0;
  std::optional<std::string> metrics_out;
  // Bench mode.
  bool bench = false;
  LoadMode mode = LoadMode::kClosed;
  std::uint32_t connections = 8;
  std::uint32_t batch = 64;
  std::uint64_t requests = 400000;
  double rate = 100000.0;
  double bench_duration = 0.0;
  std::uint64_t clients = 2'000'000;
  double zipf = 1.1;
  bool warmup = false;
  double drain_timeout = 10.0;
  // Chaos mode: loadgen traffic through the seeded fault shim.
  bool chaos = false;
  std::uint64_t chaos_seed = 1337;
  double chaos_reset = 0.002;
  double chaos_stall = 0.002;
  double chaos_partial = 0.002;
  double chaos_accept = 0.01;
};

std::optional<Options> parse_args(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const auto number = [&](auto& slot) {
      const char* value = next();
      if (value == nullptr) return false;
      slot = static_cast<std::remove_reference_t<decltype(slot)>>(
          std::strtod(value, nullptr));
      return true;
    };
    if (arg == "--port") {
      if (!number(options.port)) return std::nullopt;
    } else if (arg == "--workers") {
      if (!number(options.workers)) return std::nullopt;
    } else if (arg == "--shards") {
      if (!number(options.shards)) return std::nullopt;
    } else if (arg == "--max-queue") {
      if (!number(options.max_queue)) return std::nullopt;
    } else if (arg == "--heads") {
      if (!number(options.heads)) return std::nullopt;
    } else if (arg == "--pipeline-depth") {
      std::size_t depth = 0;
      if (!number(depth)) return std::nullopt;
      options.pipeline_depth = depth;
    } else if (arg == "--packages") {
      if (!number(options.packages)) return std::nullopt;
    } else if (arg == "--seed") {
      if (!number(options.seed)) return std::nullopt;
    } else if (arg == "--alpha") {
      if (!number(options.alpha)) return std::nullopt;
    } else if (arg == "--capacity-fraction") {
      if (!number(options.capacity_fraction)) return std::nullopt;
    } else if (arg == "--duration") {
      if (!number(options.duration)) return std::nullopt;
    } else if (arg == "--metrics-out") {
      const char* value = next();
      if (value == nullptr) return std::nullopt;
      options.metrics_out = value;
    } else if (arg == "--bench") {
      options.bench = true;
    } else if (arg == "--mode") {
      const char* value = next();
      if (value == nullptr) return std::nullopt;
      const std::string mode = value;
      if (mode == "closed") {
        options.mode = LoadMode::kClosed;
      } else if (mode == "open") {
        options.mode = LoadMode::kOpen;
      } else {
        return std::nullopt;
      }
    } else if (arg == "--connections") {
      if (!number(options.connections)) return std::nullopt;
    } else if (arg == "--batch") {
      if (!number(options.batch)) return std::nullopt;
    } else if (arg == "--requests") {
      if (!number(options.requests)) return std::nullopt;
    } else if (arg == "--rate") {
      if (!number(options.rate)) return std::nullopt;
    } else if (arg == "--bench-duration") {
      if (!number(options.bench_duration)) return std::nullopt;
    } else if (arg == "--clients") {
      if (!number(options.clients)) return std::nullopt;
    } else if (arg == "--zipf") {
      if (!number(options.zipf)) return std::nullopt;
    } else if (arg == "--warmup") {
      options.warmup = true;
    } else if (arg == "--drain-timeout") {
      if (!number(options.drain_timeout)) return std::nullopt;
    } else if (arg == "--chaos") {
      options.chaos = true;
    } else if (arg == "--chaos-seed") {
      if (!number(options.chaos_seed)) return std::nullopt;
    } else if (arg == "--chaos-reset") {
      if (!number(options.chaos_reset)) return std::nullopt;
    } else if (arg == "--chaos-stall") {
      if (!number(options.chaos_stall)) return std::nullopt;
    } else if (arg == "--chaos-partial") {
      if (!number(options.chaos_partial)) return std::nullopt;
    } else if (arg == "--chaos-accept") {
      if (!number(options.chaos_accept)) return std::nullopt;
    } else {
      return std::nullopt;
    }
  }
  return options;
}

/// Sums the per-head counter snapshots into one repository-wide view;
/// the queue peak is the worst single head (the queues are per head, so
/// adding them would invent a depth no server ever saw).
ServeCounters aggregate_counters(
    const std::vector<std::unique_ptr<landlord::serve::Server>>& servers) {
  ServeCounters total;
  for (const auto& server : servers) {
    const ServeCounters counters = server->counters();
    total.connections_accepted += counters.connections_accepted;
    total.connections_closed += counters.connections_closed;
    total.frames_in += counters.frames_in;
    total.frames_out += counters.frames_out;
    total.frames_admitted += counters.frames_admitted;
    total.specs_admitted += counters.specs_admitted;
    total.frames_processed += counters.frames_processed;
    total.requests_served += counters.requests_served;
    total.placements_hit += counters.placements_hit;
    total.placements_merge += counters.placements_merge;
    total.placements_insert += counters.placements_insert;
    total.placements_degraded += counters.placements_degraded;
    total.placements_failed += counters.placements_failed;
    total.rejected_queue_full += counters.rejected_queue_full;
    total.rejected_draining += counters.rejected_draining;
    total.rejected_requests += counters.rejected_requests;
    total.decode_errors += counters.decode_errors;
    total.pings += counters.pings;
    total.stats_requests += counters.stats_requests;
    total.bytes_in += counters.bytes_in;
    total.bytes_out += counters.bytes_out;
    total.batches += counters.batches;
    total.gathered_writes += counters.gathered_writes;
    total.net_read_timeouts += counters.net_read_timeouts;
    total.net_write_timeouts += counters.net_write_timeouts;
    total.net_write_errors += counters.net_write_errors;
    total.dedup_hits += counters.dedup_hits;
    total.dedup_evictions += counters.dedup_evictions;
    total.specs_shed_expired += counters.specs_shed_expired;
    total.queue_depth_peak =
        std::max(total.queue_depth_peak, counters.queue_depth_peak);
  }
  return total;
}

void print_counters(const ServeCounters& counters) {
  std::cout << "connections accepted=" << counters.connections_accepted
            << " closed=" << counters.connections_closed << '\n'
            << "frames in=" << counters.frames_in
            << " out=" << counters.frames_out
            << " admitted=" << counters.frames_admitted
            << " processed=" << counters.frames_processed << '\n'
            << "requests served=" << counters.requests_served
            << " (hit=" << counters.placements_hit
            << " merge=" << counters.placements_merge
            << " insert=" << counters.placements_insert << ")\n"
            << "rejected queue-full=" << counters.rejected_queue_full
            << " draining=" << counters.rejected_draining
            << " decode-errors=" << counters.decode_errors
            << " queue-peak=" << counters.queue_depth_peak << '\n';
}

void print_json_report(const Options& options, const LoadGenReport& report,
                       const ServeCounters& counters,
                       std::size_t pipeline_depth,
                       const landlord::serve::ChaosProxy* proxy) {
  std::cout << "{\n"
            << "  \"mode\": \""
            << (options.mode == LoadMode::kClosed ? "closed" : "open")
            << "\",\n"
            << "  \"heads\": " << options.heads << ",\n"
            << "  \"workers\": " << options.workers << ",\n"
            << "  \"shards\": " << options.shards << ",\n"
            << "  \"pipeline_depth\": " << pipeline_depth << ",\n"
            << "  \"warmup\": " << (options.warmup ? "true" : "false") << ",\n"
            << "  \"connections\": " << options.connections << ",\n"
            << "  \"batch\": " << options.batch << ",\n"
            << "  \"client_universe\": " << options.clients << ",\n"
            << "  \"zipf_s\": " << options.zipf << ",\n"
            << "  \"requests_sent\": " << report.requests_sent << ",\n"
            << "  \"requests_ok\": " << report.requests_ok << ",\n"
            << "  \"requests_rejected\": " << report.requests_rejected << ",\n"
            << "  \"frames_sent\": " << report.frames_sent << ",\n"
            << "  \"distinct_clients\": " << report.distinct_clients << ",\n"
            << "  \"placements_hit\": " << report.placements_hit << ",\n"
            << "  \"placements_merge\": " << report.placements_merge << ",\n"
            << "  \"placements_insert\": " << report.placements_insert << ",\n"
            << "  \"duration_seconds\": " << report.duration_seconds << ",\n"
            << "  \"qps\": " << report.qps << ",\n"
            << "  \"latency_p50_seconds\": " << report.latency_p50 << ",\n"
            << "  \"latency_p99_seconds\": " << report.latency_p99 << ",\n"
            << "  \"latency_p999_seconds\": " << report.latency_p999 << ",\n"
            << "  \"latency_mean_seconds\": " << report.latency_mean << ",\n"
            << "  \"retransmits\": " << report.retransmits << ",\n"
            << "  \"reconnects\": " << report.reconnects << ",\n"
            << "  \"drain_timeouts\": " << report.drain_timeouts << ",\n"
            << "  \"server_dedup_hits\": " << counters.dedup_hits << ",\n"
            << "  \"server_dedup_evictions\": " << counters.dedup_evictions
            << ",\n"
            << "  \"server_deadline_shed\": " << counters.specs_shed_expired
            << ",\n"
            << "  \"server_net_read_timeouts\": " << counters.net_read_timeouts
            << ",\n"
            << "  \"server_net_write_timeouts\": "
            << counters.net_write_timeouts << ",\n"
            << "  \"server_queue_depth_peak\": " << counters.queue_depth_peak
            << ",\n"
            << "  \"server_rejected_queue_full\": "
            << counters.rejected_queue_full;
  if (proxy != nullptr) {
    const landlord::serve::ChaosTally chaos = proxy->tally();
    std::cout << ",\n"
              << "  \"chaos_seed\": " << options.chaos_seed << ",\n"
              << "  \"chaos_connections\": " << chaos.connections << ",\n"
              << "  \"chaos_resets\": " << chaos.resets << ",\n"
              << "  \"chaos_stalls\": " << chaos.stalls << ",\n"
              << "  \"chaos_partials\": " << chaos.partials << ",\n"
              << "  \"chaos_accept_failures\": " << chaos.accept_failures
              << ",\n"
              << "  \"chaos_injected\": " << chaos.injected();
  }
  std::cout << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = parse_args(argc, argv);
  if (!options) {
    std::cerr << "usage: serve_head_node [--port P] [--workers N] [--shards N]"
                 " [--max-queue N]\n"
                 "                       [--heads N] [--pipeline-depth N]"
                 " [--packages N] [--seed S]\n"
                 "                       [--alpha A] [--capacity-fraction F]"
                 " [--duration S]\n"
                 "                       [--metrics-out FILE]\n"
                 "                       [--bench [--mode closed|open]"
                 " [--connections N] [--batch N]\n"
                 "                        [--requests N] [--rate R] [--warmup]"
                 " [--bench-duration S]\n"
                 "                        [--clients N] [--zipf S]"
                 " [--drain-timeout S]\n"
                 "                        [--chaos [--chaos-seed S]"
                 " [--chaos-reset P] [--chaos-stall P]\n"
                 "                         [--chaos-partial P]"
                 " [--chaos-accept P]]]\n";
    return 2;
  }
  if (options->heads == 0) {
    std::cerr << "--heads must be >= 1\n";
    return 2;
  }
  if (options->heads > 1 && options->shards <= 1) {
    std::cerr << "--heads > 1 needs --shards >= 2: each head serializes its "
                 "own submissions, so only a sharded decision layer is safe "
                 "to share across heads\n";
    return 2;
  }
  if (options->heads > 1 && options->port != 0) {
    std::cerr << "--heads > 1 requires --port 0 (each head picks its own "
                 "ephemeral port)\n";
    return 2;
  }

  landlord::pkg::SyntheticRepoParams params;
  params.total_packages = options->packages;
  auto repo_result = landlord::pkg::generate_repository(params, options->seed);
  if (!repo_result.ok()) {
    std::cerr << "repository generation failed: "
              << repo_result.error().message << '\n';
    return 1;
  }
  const landlord::pkg::Repository repo = std::move(repo_result).value();

  landlord::core::CacheConfig cache_config;
  cache_config.alpha = options->alpha;
  cache_config.capacity = static_cast<landlord::util::Bytes>(
      static_cast<double>(repo.total_bytes()) * options->capacity_fraction);
  cache_config.shards = options->shards;

  landlord::core::Landlord landlord(repo, cache_config);
  landlord::obs::Observability obs;
  landlord.set_observability(&obs);

  ServerConfig server_config;
  server_config.port = options->port;
  server_config.workers = options->workers;
  server_config.max_queue = options->max_queue;
  if (options->pipeline_depth) {
    server_config.pipeline_depth = *options->pipeline_depth;
  }
  std::vector<std::unique_ptr<landlord::serve::Server>> servers;
  std::vector<std::uint16_t> ports;
  servers.reserve(options->heads);
  for (std::uint32_t h = 0; h < options->heads; ++h) {
    auto server =
        std::make_unique<landlord::serve::Server>(landlord, server_config);
    server->set_observability(&obs);
    const auto started = server->start();
    if (!started.ok()) {
      std::cerr << "server start failed: " << started.error().message << '\n';
      return 1;
    }
    ports.push_back(server->port());
    servers.push_back(std::move(server));
  }

  int exit_code = 0;
  if (options->bench) {
    // Chaos mode: interpose the seeded fault shim between the loadgen
    // and each head, and arm the reconnect/retry layer so the run must
    // recover from every injected fault (warmup stays direct: it
    // pre-populates the cache, it is not part of the fault experiment).
    std::vector<std::unique_ptr<landlord::serve::ChaosProxy>> proxies;
    std::vector<std::uint16_t> load_ports = ports;
    if (options->chaos) {
      landlord::fault::FaultPlan plan;
      plan.seed = options->chaos_seed;
      plan.fail(landlord::fault::FaultOp::kConnReset, options->chaos_reset);
      plan.fail(landlord::fault::FaultOp::kConnStall, options->chaos_stall);
      plan.fail(landlord::fault::FaultOp::kPartialDelivery,
                options->chaos_partial);
      plan.fail(landlord::fault::FaultOp::kAcceptFail, options->chaos_accept);
      load_ports.clear();
      for (std::size_t h = 0; h < ports.size(); ++h) {
        landlord::serve::ChaosProxyConfig proxy_config;
        proxy_config.target_port = ports[h];
        proxy_config.stall_ms = 5;
        proxy_config.plan = plan;
        proxy_config.plan.seed = options->chaos_seed + h;  // per-head tape
        auto proxy =
            std::make_unique<landlord::serve::ChaosProxy>(proxy_config);
        const auto started = proxy->start();
        if (!started.ok()) {
          std::cerr << "chaos proxy start failed: " << started.error().message
                    << '\n';
          return 1;
        }
        load_ports.push_back(proxy->port());
        proxies.push_back(std::move(proxy));
      }
    }
    LoadGenConfig load;
    load.port = load_ports.front();
    load.ports = load_ports;
    load.warmup = options->warmup;
    load.warmup_ports = ports;  // warmup bypasses the shim
    load.seed = options->seed;
    load.mode = options->mode;
    load.connections = options->connections;
    load.batch = options->batch;
    load.total_requests = options->requests;
    load.rate_per_second = options->rate;
    load.duration_seconds = options->bench_duration;
    load.clients = options->clients;
    load.zipf_s = options->zipf;
    load.drain_timeout_s = options->drain_timeout;
    if (options->chaos) {
      landlord::serve::RetryPolicy retry;
      retry.backoff.max_retries = 10;
      retry.backoff.base_delay_s = 0.02;
      retry.backoff.max_delay_s = 0.5;
      retry.reply_timeout_ms = 2000;
      load.retry = retry;
    }
    const auto report = landlord::serve::run_load(repo, load);
    for (auto& proxy : proxies) proxy->stop();
    if (!report.ok()) {
      std::cerr << "load generator failed: " << report.error().message << '\n';
      exit_code = 1;
    } else {
      print_json_report(*options, report.value(), aggregate_counters(servers),
                        servers.front()->pipeline_depth(),
                        proxies.empty() ? nullptr : proxies.front().get());
    }
  } else {
    std::cout << "listening on";
    for (const std::uint16_t port : ports) std::cout << ' ' << port;
    std::cout << " (heads=" << options->heads << " workers="
              << options->workers << " shards=" << options->shards
              << " max-queue=" << options->max_queue << " pipeline="
              << servers.front()->pipeline_depth() << ")" << std::endl;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(options->duration));
    while (std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    std::cout << "draining...\n";
  }

  for (auto& server : servers) server->drain();
  for (auto& server : servers) server->stop();
  if (!options->bench) print_counters(aggregate_counters(servers));

  if (options->metrics_out) {
    std::ofstream out(*options->metrics_out);
    obs.registry.render_text(out);
  }
  return exit_code;
}
