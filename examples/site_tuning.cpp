// Site tuning: pick alpha for *your* site (§VI "Tuning LANDLORD").
//
// An administrator knows the site's scratch capacity and how much write
// amplification the shared filesystem tolerates. This example sweeps
// alpha for those constraints, prints the efficiency trade-off, and
// recommends a value inside the operational zone.
//
//   $ ./site_tuning [cache e.g. 500GB] [write-cap e.g. 2.0]
#include <cstdlib>
#include <iostream>
#include <optional>

#include "pkg/synthetic.hpp"
#include "sim/sweep.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace landlord;

  util::Bytes capacity = 500ULL * 1000 * 1000 * 1000;
  if (argc > 1) {
    if (auto parsed = util::parse_bytes(argv[1])) {
      capacity = *parsed;
    } else {
      std::cerr << "unparseable cache size: " << argv[1] << '\n';
      return 1;
    }
  }
  const double write_cap = argc > 2 ? std::atof(argv[2]) : 2.0;

  std::cout << "generating repository and sweeping alpha for cache="
            << util::format_bytes(capacity) << ", write amplification cap="
            << write_cap << "x ...\n\n";
  const auto repo = pkg::default_repository(42);

  sim::SweepConfig config;
  config.alphas = sim::SweepConfig::default_alphas();
  config.replicates = 5;
  config.base.cache.capacity = capacity;
  config.base.workload.unique_jobs = 200;
  config.base.workload.repetitions = 5;
  config.base.seed = 1;

  util::ThreadPool pool;
  const auto points = sim::run_sweep(repo, config, &pool);

  util::Table table({"alpha", "cache eff(%)", "container eff(%)",
                     "write amp", "verdict"});
  std::optional<double> best_alpha;
  double best_cache_eff = -1.0;
  for (const auto& p : points) {
    const double amplification =
        p.requested_tb > 0 ? p.written_tb / p.requested_tb : 1.0;
    const bool acceptable = amplification <= write_cap;
    if (acceptable && p.cache_efficiency > best_cache_eff &&
        p.alpha < 1.0) {  // alpha=1 trades everything for one giant image
      best_cache_eff = p.cache_efficiency;
      best_alpha = p.alpha;
    }
    table.add_row({util::fmt(p.alpha, 2), util::fmt(p.cache_efficiency, 1),
                   util::fmt(p.container_efficiency, 1),
                   util::fmt(amplification, 2),
                   acceptable ? "ok" : "exceeds write cap"});
  }
  table.print(std::cout);

  if (best_alpha) {
    std::cout << "\nrecommended alpha for this site: "
              << util::fmt(*best_alpha, 2)
              << " (best storage utilisation within the write cap; the paper "
                 "suggests starting at a moderate 0.8)\n";
  } else {
    std::cout << "\nno alpha satisfies the write cap; consider more scratch "
                 "space or a higher cap\n";
  }
  return 0;
}
