// Specification inference tools (§V "LANDLORD Deployment"): scan Python
// sources, shell scripts with `module load` lines, or job logs with
// CVMFS file accesses, and print the inferred container specification.
//
//   $ ./spec_tools python   < analysis.py
//   $ ./spec_tools modules  < job.sh
//   $ ./spec_tools log      < worker.log
//   $ ./spec_tools specfile < requirements.txt   (declarative constraints)
//
// With no arguments it runs a built-in demo of all modes.
#include <iostream>
#include <sstream>
#include <string>

#include "pkg/synthetic.hpp"
#include "spec/inference.hpp"
#include "spec/specfile.hpp"
#include "util/bytes.hpp"

namespace {

using namespace landlord;

void report(const pkg::Repository& repo, const std::vector<spec::Requirement>& reqs,
            const std::string& provenance) {
  std::cout << "discovered " << reqs.size() << " requirement(s):\n";
  for (const auto& req : reqs) {
    std::cout << "  " << req.project
              << (req.version.empty() ? " (latest)" : "/" + req.version) << '\n';
  }
  std::vector<std::string> unresolved;
  const auto spec = spec::infer_specification(repo, reqs, provenance, &unresolved);
  for (const auto& miss : unresolved) {
    std::cout << "  (unresolved in repository: " << miss << ")\n";
  }
  std::cout << "specification: " << spec.size() << " packages after closure, "
            << util::format_bytes(spec.bytes(repo)) << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto repo = pkg::default_repository(42);

  const std::string mode = argc > 1 ? argv[1] : "demo";
  if (mode == "python") {
    report(repo, spec::scan_python_imports(std::cin), "python-imports");
    return 0;
  }
  if (mode == "modules") {
    report(repo, spec::scan_module_loads(std::cin), "module-loads");
    return 0;
  }
  if (mode == "log") {
    report(repo, spec::scan_job_log(std::cin), "job-log");
    return 0;
  }
  if (mode == "specfile") {
    auto spec = spec::specification_from_file(std::cin, repo);
    if (!spec.ok()) {
      std::cerr << "specfile error: " << spec.error().message << '\n';
      return 1;
    }
    std::cout << "specification: " << spec.value().size()
              << " packages after resolution+closure, "
              << util::format_bytes(spec.value().bytes(repo)) << "\n";
    return 0;
  }

  // Demo inputs referencing real packages of the synthetic repository.
  const auto& lib = repo[pkg::package_id(400)];
  const auto& tool = repo[pkg::package_id(4000)];

  std::cout << "== python import scan ==\n";
  std::istringstream python_src(
      "import numpy as np\nfrom scipy.optimize import minimize\nimport ROOT\n");
  report(repo, spec::scan_python_imports(python_src), "python-imports");

  std::cout << "== module load scan ==\n";
  std::istringstream shell_src("#!/bin/sh\nmodule load " + lib.name + "/" +
                               lib.version + " " + tool.name + "\n");
  report(repo, spec::scan_module_loads(shell_src), "module-loads");

  std::cout << "== job log scan ==\n";
  std::istringstream log_src("12:00:01 open /cvmfs/sft.cern.ch/" + tool.name +
                             "/" + tool.version + "/lib/libTool.so\n");
  report(repo, spec::scan_job_log(log_src), "job-log");

  std::cout << "== declarative specfile ==\n";
  std::istringstream specfile_src("# requirements\n" + lib.name + "\n" +
                                  tool.name + " == " + tool.version + "\n");
  auto resolved = spec::specification_from_file(specfile_src, repo);
  if (resolved.ok()) {
    std::cout << "specification: " << resolved.value().size()
              << " packages after resolution+closure, "
              << util::format_bytes(resolved.value().bytes(repo)) << "\n";
  } else {
    std::cerr << "specfile error: " << resolved.error().message << '\n';
  }
  return 0;
}
