// Trace tool: record and replay LANDLORD workload traces.
//
// The paper's evaluation is trace-driven; this tool makes traces durable
// artefacts so a workload can be captured once and replayed across cache
// configurations (or shared between sites for capacity planning).
//
//   $ ./trace_tool record <file> [unique-jobs] [repetitions] [seed]
//   $ ./trace_tool replay <file> [alpha] [cache e.g. 1.4TB]
//   $ ./trace_tool info   <file>
#include <cstdlib>
#include <iostream>
#include <string>

#include "landlord/cache.hpp"
#include "pkg/synthetic.hpp"
#include "sim/trace.hpp"
#include "sim/workload.hpp"
#include "util/table.hpp"

namespace {

using namespace landlord;

int usage() {
  std::cerr << "usage:\n"
            << "  trace_tool record <file> [unique-jobs] [repetitions] [seed]\n"
            << "  trace_tool replay <file> [alpha] [cache-size]\n"
            << "  trace_tool info   <file>\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string mode = argv[1];
  const std::string path = argv[2];

  const auto repo = pkg::default_repository(42);

  if (mode == "record") {
    sim::WorkloadConfig workload;
    workload.unique_jobs = argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 100;
    workload.repetitions = argc > 4 ? static_cast<std::uint32_t>(std::atoi(argv[4])) : 5;
    const std::uint64_t seed = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1;

    sim::WorkloadGenerator generator(repo, workload, util::Rng(seed));
    sim::Trace trace;
    trace.specs = generator.unique_specifications();
    trace.stream = generator.request_stream();
    if (!sim::save_trace(path, trace, repo)) {
      std::cerr << "cannot write " << path << '\n';
      return 1;
    }
    std::cout << "recorded " << trace.specs.size() << " unique jobs, "
              << trace.stream.size() << " requests to " << path << '\n';
    return 0;
  }

  auto loaded = sim::load_trace(path, repo);
  if (!loaded.ok()) {
    std::cerr << "trace error: " << loaded.error().message << '\n';
    return 1;
  }
  const auto& trace = loaded.value();

  if (mode == "info") {
    util::Bytes total_requested = 0;
    std::size_t max_spec = 0;
    for (const auto& spec : trace.specs) {
      total_requested += spec.bytes(repo);
      max_spec = std::max(max_spec, spec.size());
    }
    std::cout << "trace: " << trace.specs.size() << " unique jobs, "
              << trace.stream.size() << " requests\n"
              << "largest spec: " << max_spec << " packages\n"
              << "sum of unique-spec sizes: " << util::format_bytes(total_requested)
              << '\n';
    return 0;
  }

  if (mode == "replay") {
    core::CacheConfig config;
    config.alpha = argc > 3 ? std::atof(argv[3]) : 0.8;
    config.capacity = 1400ULL * 1000 * 1000 * 1000;
    if (argc > 4) {
      if (auto parsed = util::parse_bytes(argv[4])) {
        config.capacity = *parsed;
      } else {
        std::cerr << "unparseable cache size: " << argv[4] << '\n';
        return 1;
      }
    }
    core::Cache cache(repo, config);
    for (auto index : trace.stream) (void)cache.request(trace.specs[index]);

    const auto& counters = cache.counters();
    std::cout << "replayed " << counters.requests << " requests at alpha="
              << config.alpha << ", cache " << util::format_bytes(config.capacity)
              << "\n  hits=" << counters.hits << " merges=" << counters.merges
              << " inserts=" << counters.inserts << " deletes=" << counters.deletes
              << "\n  cache efficiency " << util::fmt(100 * cache.cache_efficiency(), 1)
              << "%, container efficiency "
              << util::fmt(100 * counters.container_efficiency(), 1) << "%\n";
    return 0;
  }
  return usage();
}
