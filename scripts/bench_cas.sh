#!/usr/bin/env bash
# CAS delta-merge benchmark gate: runs the ext_cas ablation (delta-chain
# accounting vs the paper's full-rewrite accounting) and records the
# result in BENCH_cas.json at the repo root.
#
#   $ scripts/bench_cas.sh [build-dir]
#
# Two measurements (see bench/ext_cas.cpp):
#   1. the decision-layer alpha sweep with delta_chain_cap=4 — placements
#      are bit-identical to the full-rewrite run (the delta oracle suite,
#      ctest -L cas), so written_tb vs the always-on full_rewrite_tb
#      counterfactual isolates the merge I/O the delta store saves;
#   2. the image-store scale points at 100 / 1k / 10k images with version
#      churn — chunk dedup ratio, per-update delta vs full bytes, and
#      one explicit repack GC pass.
#
# Exit status is non-zero if
#   * any sweep point writes no fewer bytes than the full-rewrite
#     counterfactual, or performs no delta merges, or
#   * any store size charges delta updates >= full updates, dedups below
#     1.5x, or reclaims nothing on repack.
# tier1.sh stage 6 runs this on every change.
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"

EXT="$BUILD/bench/ext_cas"
if [[ ! -x "$EXT" ]]; then
  echo "bench_cas: missing $EXT (build the ext_cas target first)" >&2
  exit 1
fi

# A few replicates keep the gate quick; the savings are O(10x), far
# above replicate noise (override with LANDLORD_REPLICATES for paper runs).
METRICS="$BUILD/bench_cas_metrics.txt"
LANDLORD_REPLICATES="${LANDLORD_REPLICATES:-5}" "$EXT" | tee "$METRICS.all"
grep '^CASMETRIC ' "$METRICS.all" >"$METRICS"

METRICS="$METRICS" python3 - <<'EOF'
import json, os, sys

sweep, store = [], []
with open(os.environ["METRICS"]) as f:
    for line in f:
        parts = line.split()
        kind = parts[1]
        row = {}
        for pair in parts[2:]:
            key, _, value = pair.partition("=")
            row[key] = float(value)
        (sweep if kind == "sweep" else store).append(row)

if not sweep or not store:
    print("bench_cas: no CASMETRIC lines parsed", file=sys.stderr)
    sys.exit(1)

failures = []
out = {
    "bench": "cas_delta",
    "gate": ("delta accounting must write fewer bytes than the full-rewrite "
             "counterfactual at every alpha, and delta updates must beat "
             "full updates at every store size"),
    "sweep_chain_cap": 4,
    "sweep": {},
    "store": {},
}

for row in sweep:
    alpha = f"{row['alpha']:.2f}"
    savings = (1.0 - row["written_tb"] / row["full_rewrite_tb"]
               if row["full_rewrite_tb"] > 0 else 0.0)
    out["sweep"][alpha] = {
        "merges": int(row["merges"]),
        "delta_merges": int(row["delta_merges"]),
        "repacks": int(row["repacks"]),
        "written_tb": round(row["written_tb"], 3),
        "full_rewrite_tb": round(row["full_rewrite_tb"], 3),
        "merge_io_savings": round(savings, 3),
    }
    if row["delta_merges"] <= 0:
        failures.append(f"alpha {alpha}: no delta merges happened")
    if row["written_tb"] >= row["full_rewrite_tb"]:
        failures.append(
            f"alpha {alpha}: delta wrote {row['written_tb']:.2f} TB, "
            f"not less than the {row['full_rewrite_tb']:.2f} TB full-rewrite "
            "counterfactual")

for row in store:
    images = str(int(row["images"]))
    out["store"][images] = {
        "dedup_ratio": round(row["dedup_ratio"], 2),
        "update_delta_mb": round(row["update_delta_mb"], 2),
        "update_full_mb": round(row["update_full_mb"], 2),
        "repack_seconds": round(row["repack_seconds"], 4),
        "repack_reclaimed_gb": round(row["repack_reclaimed_gb"], 2),
        "repack_written_gb": round(row["repack_written_gb"], 2),
    }
    if row["update_delta_mb"] >= row["update_full_mb"]:
        failures.append(
            f"{images} images: delta update {row['update_delta_mb']:.1f} MB "
            f">= full update {row['update_full_mb']:.1f} MB")
    if row["dedup_ratio"] < 1.5:
        failures.append(
            f"{images} images: dedup ratio {row['dedup_ratio']:.2f}x below "
            "1.5x (chunk sharing broke)")
    if row["repack_reclaimed_gb"] <= 0:
        failures.append(f"{images} images: repack reclaimed nothing")

with open("BENCH_cas.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")

if failures:
    print("bench_cas: REGRESSION", file=sys.stderr)
    for failure in failures:
        print("  " + failure, file=sys.stderr)
    sys.exit(1)
print("bench_cas: gate passed (BENCH_cas.json written)")
EOF
