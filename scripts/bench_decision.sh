#!/usr/bin/env bash
# Decision-path benchmark gate: times the sublinear decision path
# (CacheConfig::decision_index — inverted postings, ordered eviction
# index, spec memo) against the naive O(images) scans it replaces and
# records the result in BENCH_decision.json at the repo root.
#
#   $ scripts/bench_decision.sh [build-dir]
#
# Two measurements:
#   1. micro_ops BM_FindSuperset_{Index,Scan,Adaptive},
#      BM_EvictVictim_{Index,Scan}, BM_MemoHit and BM_SubsetWordEarlyExit
#      at 10 / 100 / 1k / 10k images (google-benchmark JSON);
#   2. fig5_single_run wall clock with LANDLORD_DECISION_INDEX=1 vs =0
#      (same seed: placements are bit-identical, only the clock moves).
#
# Exit status is non-zero if
#   * the pure indexed path is slower than the scan at >= 1000 images, or
#   * the adaptive path (stock CacheConfig: scan below scan_cutover,
#     postings probe above) loses to the better pure path at ANY size by
#     more than the small-N noise tolerance — this is the regime where
#     the raw index loses to the scan (0.63x at 100 images before the
#     cutover existed), so the small sizes are gated too.
# tier1.sh stage 5 runs this on every change.
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"

MICRO="$BUILD/bench/micro_ops"
FIG5="$BUILD/bench/fig5_single_run"
for bin in "$MICRO" "$FIG5"; do
  if [[ ! -x "$bin" ]]; then
    echo "bench_decision: missing $bin (build the bench targets first)" >&2
    exit 1
  fi
done

MICRO_JSON="$BUILD/bench_decision_micro.json"
"$MICRO" \
  --benchmark_filter='BM_(FindSuperset|EvictVictim|MemoHit|SubsetWordEarlyExit|Kernel_|FusedOrCount|JaccardDistance|SubsetCheck)' \
  --benchmark_format=json >"$MICRO_JSON"

# Which set-operation backend the kernels dispatched to on this machine
# (recorded in the JSON so numbers are comparable across hosts).
SIMD_BACKEND="avx2"
if [[ "${LANDLORD_NO_SIMD:-0}" == "1" ]] || ! grep -q avx2 /proc/cpuinfo 2>/dev/null; then
  SIMD_BACKEND="portable"
fi

# fig5 end-to-end wall clock, index on vs off (seconds; small jobs count
# keeps the gate quick — the micros carry the scaling story).
FIG5_JOBS="${LANDLORD_JOBS:-300}"
fig5_seconds() {
  local knob="$1"
  local start end
  start=$(date +%s.%N)
  LANDLORD_DECISION_INDEX="$knob" LANDLORD_JOBS="$FIG5_JOBS" \
    "$FIG5" >/dev/null
  end=$(date +%s.%N)
  echo "$start $end" | awk '{printf "%.3f", $2 - $1}'
}
FIG5_ON=$(fig5_seconds 1)
FIG5_OFF=$(fig5_seconds 0)

# Memo-hit latency ceiling (ns): the steady-state "same job
# resubmitted" fast path must stay flat. Overridable for slow hosts.
MEMO_HIT_MAX_NS="${LANDLORD_MEMO_HIT_MAX_NS:-1200}"

MICRO_JSON="$MICRO_JSON" FIG5_ON="$FIG5_ON" FIG5_OFF="$FIG5_OFF" \
FIG5_JOBS="$FIG5_JOBS" SIMD_BACKEND="$SIMD_BACKEND" \
MEMO_HIT_MAX_NS="$MEMO_HIT_MAX_NS" python3 - <<'EOF'
import json, os, sys

with open(os.environ["MICRO_JSON"]) as f:
    micro = json.load(f)

times = {}  # (name, images) -> ns
for bench in micro["benchmarks"]:
    name, _, arg = bench["name"].partition("/")
    times[(name, int(arg) if arg else 0)] = bench["real_time"]

sizes = [10, 100, 1000, 10000]
memo_sizes = [100, 1000, 10000]
pairs = [("find_superset", "BM_FindSuperset"), ("evict_victim", "BM_EvictVictim")]
# The adaptive path is two scans racing at small N: allow scheduler noise
# there, be strict once the index should have taken over.
SMALL_N_TOLERANCE = 1.5
out = {
    "bench": "decision_index",
    "gate": ("indexed must beat scan at >= 1000 images; adaptive (stock "
             "scan_cutover) must not lose to min(index, scan) at any size"),
    "fig5": {
        "jobs": int(os.environ["FIG5_JOBS"]),
        "indexed_seconds": float(os.environ["FIG5_ON"]),
        "scan_seconds": float(os.environ["FIG5_OFF"]),
    },
    "memo_hit_ns": {str(n): times[("BM_MemoHit", n)] for n in memo_sizes},
    "subset_word_early_exit_ns": {
        str(arg): t for (name, arg), t in times.items()
        if name == "BM_SubsetWordEarlyExit"
    },
    # Raw word-loop cost over the full 9,660-package universe, per
    # backend (portable is the retained scalar oracle; active is what
    # DynamicBitset dispatched to on this host).
    "simd_backend": os.environ["SIMD_BACKEND"],
    "kernel_ns": {
        kernel: {
            "portable": times[("BM_Kernel_Portable", arg)],
            "active": times[("BM_Kernel_Active", arg)],
        }
        for arg, kernel in enumerate(
            ["intersection_count", "union_count", "subset_of", "popcount"])
    },
    "fused_or_count_ns": {
        "two_pass": times[("BM_FusedOrCount", 0)],
        "fused": times[("BM_FusedOrCount", 1)],
    },
    "jaccard_distance_ns": {
        str(n): times[("BM_JaccardDistance", n)] for n in (10, 100, 1000)
    },
    "subset_check_ns": {
        str(n): times[("BM_SubsetCheck", n)] for n in (100, 1000)
    },
}

failures = []

# Memo-hit latency ceiling: the flat fast path must stay flat. The
# ceiling is loose (machine variance, 1-core CI hosts) and overridable
# via LANDLORD_MEMO_HIT_MAX_NS; the point is catching a path that
# regressed to re-deciding, not a few nanoseconds of drift.
memo_hit_max = float(os.environ["MEMO_HIT_MAX_NS"])
out["memo_hit_max_ns"] = memo_hit_max
for n in memo_sizes:
    got = times[("BM_MemoHit", n)]
    if got > memo_hit_max:
        failures.append(
            f"BM_MemoHit at {n} images: {got:.0f} ns > ceiling "
            f"{memo_hit_max:.0f} ns (LANDLORD_MEMO_HIT_MAX_NS to override)")

for key, prefix in pairs:
    section = {}
    for n in sizes:
        indexed = times[(f"{prefix}_Index", n)]
        scan = times[(f"{prefix}_Scan", n)]
        section[str(n)] = {
            "indexed_ns": indexed,
            "scan_ns": scan,
            "speedup": round(scan / indexed, 2) if indexed > 0 else None,
        }
        if key == "find_superset":
            adaptive = times[(f"{prefix}_Adaptive", n)]
            best = min(indexed, scan)
            section[str(n)]["adaptive_ns"] = adaptive
            section[str(n)]["adaptive_vs_best"] = (
                round(adaptive / best, 2) if best > 0 else None)
            tolerance = SMALL_N_TOLERANCE if n < 1000 else 1.15
            if adaptive > best * tolerance:
                failures.append(
                    f"{prefix}_Adaptive at {n} images: {adaptive:.0f} ns > "
                    f"{tolerance}x best pure path {best:.0f} ns "
                    "(scan_cutover is mis-tuned)")
        if n >= 1000 and indexed > scan:
            failures.append(
                f"{prefix} at {n} images: indexed {indexed:.0f} ns > "
                f"scan {scan:.0f} ns")
    out[key] = section

with open("BENCH_decision.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")

for key, _ in pairs:
    for n in sizes:
        row = out[key][str(n)]
        adaptive = (f"  adaptive {row['adaptive_ns']:>10.1f} ns"
                    if "adaptive_ns" in row else "")
        print(f"{key:>14} @{n:>6}: indexed {row['indexed_ns']:>10.1f} ns  "
              f"scan {row['scan_ns']:>12.1f} ns  speedup {row['speedup']}x"
              f"{adaptive}")
print(f"          fig5 @{out['fig5']['jobs']} jobs: "
      f"indexed {out['fig5']['indexed_seconds']}s  "
      f"scan {out['fig5']['scan_seconds']}s")
print(f"          simd backend: {out['simd_backend']}")
for kernel, row in out["kernel_ns"].items():
    speedup = row["portable"] / row["active"] if row["active"] > 0 else 0
    print(f"{kernel:>20}: portable {row['portable']:>7.1f} ns  "
          f"active {row['active']:>7.1f} ns  ({speedup:.2f}x)")
for n in memo_sizes:
    print(f"   memo_hit @{n:>6}: {times[('BM_MemoHit', n)]:>7.1f} ns  "
          f"(ceiling {memo_hit_max:.0f} ns)")

if failures:
    print("bench_decision: PERF REGRESSION", file=sys.stderr)
    for failure in failures:
        print("  " + failure, file=sys.stderr)
    sys.exit(1)
print("bench_decision: gate passed (BENCH_decision.json written)")
EOF
