#!/usr/bin/env bash
# Service-plane benchmark gate: drives the networked head node
# (examples/serve_head_node --bench: serve::Server + the online load
# generator over loopback TCP) and records the result in BENCH_serve.json
# at the repo root.
#
#   $ scripts/bench_serve.sh [build-dir]
#
# Five runs:
#   1. closed     — 8 closed-loop connections, batch 64, warm cache with
#      capacity headroom so traffic is hit-dominated: this measures the
#      service plane itself (framing, admission, threading, decision
#      lookups), not the image builder. THE GATE: sustained QPS here must
#      be >= LANDLORD_SERVE_MIN_QPS (default 160000).
#   2. open       — the same shape driven open-loop at a fixed offered
#      rate with a warmup pass (steady-state quantiles, not the
#      cold-cache insert transient). GATED: p99 must be
#      <= LANDLORD_SERVE_OPEN_P99_MAX_S seconds (default 0.1).
#   3. churn      — capacity-constrained cache (0.5x repository bytes),
#      so merges/evictions/builds dominate: the end-to-end figure,
#      recorded for context and not gated (the decision+builder path
#      owns it).
#   4. multi_head — two serve::Server heads over ONE shared repository
#      (the multi-frontend topology); recorded for context, gated only
#      on answering everything.
#   5. chaos      — the closed-loop shape driven through the seeded
#      socket fault shim (resets, stalls, fragmented deliveries, refused
#      accepts) with the reconnect/idempotent-retry client layer armed.
#      GATED on robustness, not speed: every request must be answered ok
#      (the dedup window absorbs retransmits, nothing is double-placed
#      or lost) while the shim injected a nonzero number of faults.
#
# Exit status is non-zero if the closed-loop run misses the QPS floor,
# the open-loop run misses the p99 ceiling, any run loses/rejects
# requests unexpectedly, or the chaos run drops a request (or injects
# nothing, which would make its pass vacuous).
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"

HEAD_NODE="$BUILD/examples/serve_head_node"
if [[ ! -x "$HEAD_NODE" ]]; then
  echo "bench_serve: missing $HEAD_NODE (build the example targets first)" >&2
  exit 1
fi

MIN_QPS="${LANDLORD_SERVE_MIN_QPS:-160000}"
OPEN_P99_MAX="${LANDLORD_SERVE_OPEN_P99_MAX_S:-0.1}"
CLOSED_JSON="$BUILD/bench_serve_closed.json"
OPEN_JSON="$BUILD/bench_serve_open.json"
CHURN_JSON="$BUILD/bench_serve_churn.json"
MULTI_JSON="$BUILD/bench_serve_multi_head.json"
CHAOS_JSON="$BUILD/bench_serve_chaos.json"

# Hit-dominated service-plane run (the gated one).
"$HEAD_NODE" --bench --mode closed \
  --workers 8 --shards 8 --connections 8 --batch 64 \
  --requests 400000 --capacity-fraction 100 >"$CLOSED_JSON"

# Paced open-loop run at a fixed offered rate below the closed-loop
# ceiling, for queueing-free latency quantiles. --warmup pre-touches the
# whole catalog so the quantiles measure steady-state serving, not the
# one-time insert/merge transient.
"$HEAD_NODE" --bench --mode open --warmup \
  --workers 8 --shards 8 --connections 8 --batch 64 \
  --rate 60000 --bench-duration 3 --capacity-fraction 100 >"$OPEN_JSON"

# Capacity-constrained churn run: merges/evictions/builds dominate.
"$HEAD_NODE" --bench --mode closed \
  --workers 8 --shards 8 --connections 4 --batch 32 \
  --requests 5000 --capacity-fraction 0.5 >"$CHURN_JSON"

# Two heads over one shared repository: the multi-frontend topology.
"$HEAD_NODE" --bench --mode closed --heads 2 \
  --workers 4 --shards 8 --connections 8 --batch 64 \
  --requests 400000 --capacity-fraction 100 >"$MULTI_JSON"

# Closed-loop traffic through the seeded socket fault shim with the
# reconnect/idempotent-retry layer armed: robustness gate, not a speed
# gate (the shim's stalls and backoff sleeps dominate wall-clock).
"$HEAD_NODE" --bench --mode closed --chaos --chaos-seed 7 \
  --workers 8 --shards 8 --connections 4 --batch 16 \
  --requests 20000 --capacity-fraction 100 >"$CHAOS_JSON"

CLOSED_JSON="$CLOSED_JSON" OPEN_JSON="$OPEN_JSON" CHURN_JSON="$CHURN_JSON" \
MULTI_JSON="$MULTI_JSON" CHAOS_JSON="$CHAOS_JSON" \
MIN_QPS="$MIN_QPS" OPEN_P99_MAX="$OPEN_P99_MAX" \
python3 - <<'EOF'
import json, os, sys

def load(path):
    with open(path) as f:
        return json.load(f)

closed = load(os.environ["CLOSED_JSON"])
open_loop = load(os.environ["OPEN_JSON"])
churn = load(os.environ["CHURN_JSON"])
multi = load(os.environ["MULTI_JSON"])
chaos = load(os.environ["CHAOS_JSON"])
min_qps = float(os.environ["MIN_QPS"])
open_p99_max = float(os.environ["OPEN_P99_MAX"])

out = {
    "bench": "serve",
    "gate": (f"closed-loop hit-dominated QPS >= {min_qps:.0f}; "
             f"open-loop warmed p99 <= {open_p99_max:g} s; "
             "no lost or unexpectedly rejected requests; "
             "chaos run answers everything exactly once under nonzero "
             "injected socket faults"),
    "closed": closed,
    "open": open_loop,
    "churn": churn,
    "multi_head": multi,
    "chaos": chaos,
}
with open("BENCH_serve.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")

failures = []
if closed["qps"] < min_qps:
    failures.append(
        f"closed-loop qps {closed['qps']:.0f} < floor {min_qps:.0f}")
if open_loop["latency_p99_seconds"] > open_p99_max:
    failures.append(
        f"open-loop p99 {open_loop['latency_p99_seconds']:.3f} s > "
        f"ceiling {open_p99_max:g} s")
for name, run in [("closed", closed), ("churn", churn), ("multi", multi),
                  ("chaos", chaos)]:
    if run["requests_ok"] != run["requests_sent"]:
        failures.append(
            f"{name}: {run['requests_sent'] - run['requests_ok']} of "
            f"{run['requests_sent']} requests not answered ok")
if chaos["chaos_injected"] == 0:
    failures.append("chaos: shim injected zero faults (vacuous pass)")
answered = open_loop["requests_ok"] + open_loop["requests_rejected"]
if answered != open_loop["requests_sent"]:
    failures.append(
        f"open: {open_loop['requests_sent'] - answered} requests neither "
        "placed nor explicitly rejected")

for name, run in [("closed", closed), ("open", open_loop), ("churn", churn),
                  ("multi", multi), ("chaos", chaos)]:
    print(f"{name:>7}: qps {run['qps']:>10.0f}  ok {run['requests_ok']:>7}  "
          f"rejected {run['requests_rejected']:>5}  "
          f"p50 {run['latency_p50_seconds']*1e3:8.2f} ms  "
          f"p99 {run['latency_p99_seconds']*1e3:8.2f} ms  "
          f"p999 {run['latency_p999_seconds']*1e3:8.2f} ms  "
          f"clients {run['distinct_clients']}")
print(f"  chaos: injected {chaos['chaos_injected']} faults "
      f"(resets {chaos['chaos_resets']}, stalls {chaos['chaos_stalls']}, "
      f"partials {chaos['chaos_partials']}, "
      f"accept-failures {chaos['chaos_accept_failures']}); "
      f"retransmits {chaos['retransmits']}, reconnects {chaos['reconnects']}, "
      f"dedup hits {chaos['server_dedup_hits']}")

if failures:
    print("bench_serve: PERF REGRESSION", file=sys.stderr)
    for failure in failures:
        print("  " + failure, file=sys.stderr)
    sys.exit(1)
print("bench_serve: gate passed (BENCH_serve.json written)")
EOF
