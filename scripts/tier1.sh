#!/usr/bin/env bash
# Tier-1 verification: the full test suite, the concurrency suite again
# under ThreadSanitizer (catches data races the plain run cannot), the
# fault/chaos and dispatch-plane suites again under both TSan and
# ASan+UBSan (catches the races and memory bugs torn snapshots, worker
# churn, and degradation paths are most likely to hide), the
# metrics gate: a short instrumented sim whose Prometheus snapshot must
# parse and reconcile exactly with the decision-layer counters, and the
# decision-index gate: the index-vs-scan equivalence oracle under ASan
# plus the bench_decision.sh perf regression check, and the CAS gate:
# bench_cas.sh's delta-vs-full merge-I/O regression check.
#
#   $ scripts/tier1.sh [jobs]
#
# Exit status is non-zero if any stage fails.
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== stage 1: release build + full ctest =="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== stage 1b: SIMD fallback path — simd/perf suites with LANDLORD_NO_SIMD=1 =="
# Every DynamicBitset kernel dispatches between the AVX2 path and the
# portable scalar fallback at first use; stage 1 exercised whichever the
# CPU selected. Re-run the differential suite and the index-vs-scan
# equivalence oracle with the fallback pinned, so BOTH code paths prove
# bit-identical placements on every tier-1 run.
LANDLORD_NO_SIMD=1 ctest --test-dir build -L 'simd|perf' --output-on-failure -j "$JOBS"

echo "== stage 2: ThreadSanitizer build + concurrency-labelled tests =="
cmake -B build-tsan -S . -DLANDLORD_SANITIZE=thread \
  -DLANDLORD_BUILD_BENCH=OFF -DLANDLORD_BUILD_EXAMPLES=OFF
cmake --build build-tsan --target concurrency_tests -j "$JOBS"
ctest --test-dir build-tsan -L concurrency --output-on-failure -j "$JOBS"

echo "== stage 2b: TSan build + fault/dispatch/serve/servefault/cas chaos suites =="
# The dispatch plane locks WorkerPool::dispatch and the parallel driver
# hammers it from several threads; replaying the chaos suites under
# ThreadSanitizer catches races between churn, transfer retries, and
# the head-node decision layer that the plain run cannot. The serve
# suite adds the TCP service plane: concurrent clients, mid-storm
# graceful drain, and bounded-queue admission under saturation. The
# servefault suite adds the network-fault battery: the seeded socket
# chaos proxy, reconnecting retry clients racing the dedup window, and
# the slow-client timeout paths — all heavy cross-thread teardown. The
# cas suite adds the delta image store, whose eviction listener fires
# from the sharded cache's locked regions.
cmake --build build-tsan --target fault_tests dispatch_tests serve_tests \
  servefault_tests cas_tests -j "$JOBS"
ctest --test-dir build-tsan -L 'fault|dispatch|serve|servefault|cas' --output-on-failure -j "$JOBS"
# Re-run the serve suite with a tiny non-default pipeline depth so the
# read-side backpressure path (reader parked in acquire_pipeline while
# workers drain) is exercised under TSan, not just the wide-open default.
LANDLORD_SERVE_PIPELINE_DEPTH=3 \
  ctest --test-dir build-tsan -L serve --output-on-failure -j "$JOBS"

echo "== stage 3: ASan+UBSan build + fault/dispatch/serve/servefault/cas tests =="
# Under ASan+UBSan the serve suite doubles as the codec fuzz gate: the
# malformed-frame corpus and byte-mutation tests must draw typed decode
# errors with no over-read (including the hostile-allocation shapes: a
# huge count or payload_size must be refused before any reserve). The
# servefault suite replays the socket-chaos battery so fragmented frames
# and mid-teardown buffers cannot hide over-reads. The cas suite does
# the same for the chunk manifest codec (truncation/mutation sweeps,
# random garbage).
cmake -B build-asan -S . -DLANDLORD_SANITIZE=address,undefined \
  -DLANDLORD_BUILD_BENCH=OFF -DLANDLORD_BUILD_EXAMPLES=OFF
cmake --build build-asan --target fault_tests dispatch_tests serve_tests \
  servefault_tests cas_tests -j "$JOBS"
ctest --test-dir build-asan -L 'fault|dispatch|serve|servefault|cas' --output-on-failure -j "$JOBS"

echo "== stage 4: metrics snapshot parse + counter/ladder reconciliation =="
# Runs an instrumented sim + crash replay, writes the exposition, then
# re-parses it and reconciles every counter family against the
# CacheCounters/DegradedCounters structs (exit != 0 on a malformed line
# or any mismatch). The obs-labelled ctest suite covers the same
# invariants in-process; this exercises the on-disk artifact end to end.
./build/examples/metrics_snapshot --jobs 80 \
  --metrics-out build/metrics_snapshot.prom \
  --trace-out build/metrics_snapshot_trace.jsonl \
  --check
test -s build/metrics_snapshot.prom
grep -q '^landlord_cache_requests_total{kind="hit"} ' build/metrics_snapshot.prom
ctest --test-dir build -L obs --output-on-failure -j "$JOBS"

echo "== stage 5: decision-index equivalence under ASan + perf gate =="
# The perf-labelled suite replays identical workloads with the sublinear
# decision path (CacheConfig::decision_index) on and off and requires
# bit-identical placements, counters, images, and snapshots — run under
# ASan+UBSan so postings/eviction-index bookkeeping bugs surface as
# memory errors, not just divergences. Then the benchmark gate times the
# indexed path against the scans and fails if it is slower at >= 1k
# images (writes BENCH_decision.json).
cmake --build build-asan --target perf_tests simd_tests -j "$JOBS"
ctest --test-dir build-asan -L 'perf|simd' --output-on-failure -j "$JOBS"
# The SIMD differential suite again under ASan with the fallback pinned:
# the portable kernels are the oracle, so they too must be clean.
LANDLORD_NO_SIMD=1 ctest --test-dir build-asan -L simd --output-on-failure -j "$JOBS"
cmake --build build --target micro_ops fig5_single_run -j "$JOBS"
scripts/bench_decision.sh build

echo "== stage 6: CAS delta-merge gate =="
# The cas-labelled suite already ran under both sanitizers (stages 2b/3);
# here the bench gate proves the headline number still holds: with
# placements pinned bit-identical by the delta oracle, delta accounting
# must write strictly fewer bytes than the full-rewrite counterfactual
# at every alpha and every store size (writes BENCH_cas.json).
cmake --build build --target ext_cas -j "$JOBS"
scripts/bench_cas.sh build

echo "tier-1: all stages passed"
