#!/usr/bin/env bash
# Tier-1 verification: the full test suite, the concurrency suite again
# under ThreadSanitizer (catches data races the plain run cannot), and
# the fault/chaos suite again under ASan+UBSan (catches the memory bugs
# torn snapshots and degradation paths are most likely to hide).
#
#   $ scripts/tier1.sh [jobs]
#
# Exit status is non-zero if any stage fails.
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== stage 1: release build + full ctest =="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== stage 2: ThreadSanitizer build + concurrency-labelled tests =="
cmake -B build-tsan -S . -DLANDLORD_SANITIZE=thread \
  -DLANDLORD_BUILD_BENCH=OFF -DLANDLORD_BUILD_EXAMPLES=OFF
cmake --build build-tsan --target concurrency_tests -j "$JOBS"
ctest --test-dir build-tsan -L concurrency --output-on-failure -j "$JOBS"

echo "== stage 3: ASan+UBSan build + fault-labelled tests =="
cmake -B build-asan -S . -DLANDLORD_SANITIZE=address,undefined \
  -DLANDLORD_BUILD_BENCH=OFF -DLANDLORD_BUILD_EXAMPLES=OFF
cmake --build build-asan --target fault_tests -j "$JOBS"
ctest --test-dir build-asan -L fault --output-on-failure -j "$JOBS"

echo "tier-1: all stages passed"
