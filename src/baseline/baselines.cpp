#include "baseline/baselines.hpp"

#include <algorithm>

namespace landlord::baseline {

namespace {

/// Stable hash of a package set's bit pattern.
std::uint64_t hash_set(const spec::PackageSet& set) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint64_t word : set.bits().words()) {
    h ^= word;
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  }
  return h;
}

}  // namespace

// ---- FullRepoBaseline ----

FullRepoBaseline::FullRepoBaseline(const pkg::Repository& repo)
    : repo_bytes_(repo.total_bytes()) {
  // The single all-purpose image is built once, up front.
  totals_.physical_bytes = repo_bytes_;
  totals_.logical_bytes = repo_bytes_;
  totals_.written_bytes = repo_bytes_;
  totals_.artifacts = 1;
}

Placement FullRepoBaseline::submit(const spec::Specification& spec) {
  (void)spec;  // everything is always satisfied
  ++totals_.submissions;
  ++totals_.reuses;
  totals_.shipped_bytes += repo_bytes_;
  return {repo_bytes_, repo_bytes_, 0, true};
}

// ---- NaivePerJobStore ----

Placement NaivePerJobStore::submit(const spec::Specification& spec) {
  ++totals_.submissions;
  const util::Bytes bytes = spec.bytes(*repo_);
  totals_.shipped_bytes += bytes;

  const auto existing =
      std::find_if(images_.begin(), images_.end(), [&](const spec::PackageSet& image) {
        return image == spec.packages();
      });
  if (existing != images_.end()) {
    ++totals_.reuses;
    return {bytes, bytes, 0, true};
  }
  images_.push_back(spec.packages());
  totals_.written_bytes += bytes;
  return {bytes, bytes, bytes, false};
}

Totals NaivePerJobStore::totals() const {
  Totals t = totals_;
  t.artifacts = images_.size();
  for (const auto& image : images_) {
    const util::Bytes bytes = repo_->bytes_of(image.bits());
    t.physical_bytes += bytes;  // every copy is stored verbatim
    t.logical_bytes += bytes;
  }
  return t;
}

// ---- BlockDedupStore ----

Placement BlockDedupStore::submit(const spec::Specification& spec) {
  if (stored_.size() == 0) stored_ = util::DynamicBitset(repo_->size());
  ++totals_.submissions;
  const util::Bytes bytes = spec.bytes(*repo_);
  totals_.shipped_bytes += bytes;  // dedup does not shrink what jobs pull

  const auto existing =
      std::find_if(images_.begin(), images_.end(), [&](const spec::PackageSet& image) {
        return image == spec.packages();
      });
  if (existing != images_.end()) {
    ++totals_.reuses;
    return {bytes, bytes, 0, true};
  }
  // Only blocks not yet in the store are new writes.
  util::DynamicBitset fresh = spec.packages().bits();
  fresh -= stored_;
  const util::Bytes written = repo_->bytes_of(fresh);
  stored_ |= spec.packages().bits();
  images_.push_back(spec.packages());
  totals_.written_bytes += written;
  return {bytes, bytes, written, false};
}

Totals BlockDedupStore::totals() const {
  Totals t = totals_;
  t.artifacts = images_.size();
  t.physical_bytes = stored_.size() > 0 ? repo_->bytes_of(stored_) : 0;
  for (const auto& image : images_) {
    t.logical_bytes += repo_->bytes_of(image.bits());
  }
  return t;
}

// ---- LayeredStore ----

Placement LayeredStore::submit(const spec::Specification& spec) {
  ++totals_.submissions;

  // Find the chain whose cumulative content is a subset of the spec and
  // covers the most bytes — the natural "FROM base" choice. Chains whose
  // content exceeds the spec cannot be used as a base (their extra
  // content would be shipped but is fine); Docker semantics: any chain
  // can serve as a base, but content is strictly additive, so we pick
  // among subset chains to avoid unbounded accretion per chain.
  std::uint32_t best_chain = static_cast<std::uint32_t>(chains_.size());
  util::Bytes best_cover = 0;
  bool exact = false;
  if (strategy_ == Strategy::kRefineTip) {
    // Always refine the latest image; if it already contains everything
    // the job needs (possibly much more), reuse it outright — shipping
    // the masked content along.
    if (!chains_.empty()) {
      best_chain = static_cast<std::uint32_t>(chains_.size()) - 1;
      exact = spec.packages().is_subset_of(chains_[best_chain].cumulative);
    }
  } else {
    for (std::uint32_t c = 0; c < chains_.size(); ++c) {
      const auto& chain = chains_[c];
      if (chain.cumulative == spec.packages()) {
        best_chain = c;
        exact = true;
        break;
      }
      if (chain.cumulative.is_subset_of(spec.packages()) &&
          chain.cumulative_bytes >= best_cover) {
        best_chain = c;
        best_cover = chain.cumulative_bytes;
      }
    }
  }

  if (exact) {
    ++totals_.reuses;
    const auto& chain = chains_[best_chain];
    totals_.shipped_bytes += chain.cumulative_bytes;
    return {chain.cumulative_bytes, chain.cumulative_bytes, 0, true};
  }

  // Build the delta layer on top of the chosen base (or from scratch).
  spec::PackageSet delta = spec.packages();
  spec::PackageSet base_cumulative(repo_->size());
  util::Bytes base_bytes = 0;
  std::vector<std::uint32_t> base_layers;
  std::uint64_t base_signature = 0;
  if (best_chain < chains_.size()) {
    const auto& base = chains_[best_chain];
    delta.subtract(base.cumulative);
    base_cumulative = base.cumulative;
    base_bytes = base.cumulative_bytes;
    base_layers = base.layers;
    base_signature = hash_set(base.cumulative);
  }

  const std::uint64_t key = base_signature ^ (hash_set(delta) * 0x9e3779b97f4a7c15ULL);
  auto known = chain_by_key_.find(key);
  if (known != chain_by_key_.end()) {
    // Same base + same delta built before: the chain already exists
    // (content-identical layers are shared).
    ++totals_.reuses;
    const auto& chain = chains_[known->second];
    totals_.shipped_bytes += chain.cumulative_bytes;
    return {chain.cumulative_bytes, chain.cumulative_bytes, 0, true};
  }

  Layer layer;
  layer.bytes = repo_->bytes_of(delta.bits());
  layer.delta = delta;
  const auto layer_index = static_cast<std::uint32_t>(layers_.size());
  layers_.push_back(std::move(layer));
  totals_.written_bytes += layers_.back().bytes;

  Chain chain;
  chain.cumulative = base_cumulative.unioned_with(delta);
  chain.cumulative_bytes = base_bytes + layers_.back().bytes;
  chain.layers = std::move(base_layers);
  chain.layers.push_back(layer_index);
  const auto chain_index = static_cast<std::uint32_t>(chains_.size());
  chains_.push_back(std::move(chain));
  chain_by_key_.emplace(key, chain_index);

  totals_.shipped_bytes += chains_.back().cumulative_bytes;
  return {chains_.back().cumulative_bytes, chains_.back().cumulative_bytes,
          layers_.back().bytes, false};
}

Totals LayeredStore::totals() const {
  Totals t = totals_;
  t.artifacts = chains_.size();
  for (const auto& layer : layers_) t.physical_bytes += layer.bytes;
  for (const auto& chain : chains_) t.logical_bytes += chain.cumulative_bytes;
  return t;
}

}  // namespace landlord::baseline
