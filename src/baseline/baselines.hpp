// The paper's "imperfect solutions" (§III), implemented as baselines.
//
// Each baseline answers the same question as LANDLORD — given a stream of
// container specifications, what do we store and what does each job ship
// to its worker? — with the strategy the paper critiques:
//
//  * FullRepoBaseline   — "place an entire software repository into a
//    single image": one image serves everything, but every job ships the
//    whole repository and every repository update rebuilds it.
//  * LayeredStore       — Docker-style layering: an image is a chain of
//    additive layers; a new job extends the chain whose cumulative
//    content its spec covers best. Identical layers (same parent, same
//    delta) are shared, but chains are strictly additive: content buried
//    in lower layers is transferred whether the job needs it or not, and
//    nothing can ever be removed (Fig. 1's "item C").
//  * BlockDedupStore    — per-spec images over content-addressed
//    storage: physical storage is deduplicated, but "each container
//    image by design contains complete copies of all data", so jobs
//    still ship full images and the logical collection still sprawls.
//  * NaivePerJobStore   — one materialised image per distinct spec with
//    no dedup at all: the container explosion itself.
//
// The bench `baselines_comparison` runs the paper workload through all
// four plus LANDLORD and tabulates storage and transfer.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "pkg/repository.hpp"
#include "spec/specification.hpp"
#include "util/bytes.hpp"

namespace landlord::baseline {

/// Per-submission outcome common to all baselines.
struct Placement {
  util::Bytes image_bytes = 0;    ///< size of the image the job uses
  util::Bytes shipped_bytes = 0;  ///< bytes a worker without local state pulls
  util::Bytes written_bytes = 0;  ///< new bytes materialised by this submission
  bool reused = false;            ///< no new image/layer was created
};

/// Aggregate accounting, comparable across baselines and LANDLORD.
struct Totals {
  std::uint64_t submissions = 0;
  std::uint64_t reuses = 0;
  util::Bytes physical_bytes = 0;   ///< what the store actually occupies
  util::Bytes logical_bytes = 0;    ///< sum of image sizes (pre-dedup)
  util::Bytes shipped_bytes = 0;    ///< Σ per-job transfer
  util::Bytes written_bytes = 0;    ///< Σ materialisation I/O
  std::uint64_t artifacts = 0;      ///< images / layers / chains stored
};

class FullRepoBaseline {
 public:
  explicit FullRepoBaseline(const pkg::Repository& repo);
  Placement submit(const spec::Specification& spec);
  [[nodiscard]] Totals totals() const noexcept { return totals_; }

 private:
  util::Bytes repo_bytes_ = 0;
  Totals totals_;
};

class NaivePerJobStore {
 public:
  explicit NaivePerJobStore(const pkg::Repository& repo) : repo_(&repo) {}
  Placement submit(const spec::Specification& spec);
  [[nodiscard]] Totals totals() const;

 private:
  const pkg::Repository* repo_;
  std::vector<spec::PackageSet> images_;
  Totals totals_;
};

class BlockDedupStore {
 public:
  explicit BlockDedupStore(const pkg::Repository& repo) : repo_(&repo) {}
  Placement submit(const spec::Specification& spec);
  [[nodiscard]] Totals totals() const;

 private:
  const pkg::Repository* repo_;
  std::vector<spec::PackageSet> images_;
  util::DynamicBitset stored_{};  // lazily sized; union of all content
  Totals totals_;
};

class LayeredStore {
 public:
  /// How a new job picks its base image (Fig. 1's two panels):
  ///  * kBestBase  — choose the existing chain whose content the spec
  ///    covers best (a reasonable Dockerfile author choosing FROM).
  ///  * kRefineTip — always extend the most recent image, the
  ///    "refining via layers" pattern of Fig. 1's left panel: content
  ///    accumulates, so a job that needs none of item C still ships it
  ///    ("although item C is hidden in the lower layer, it still exists
  ///    ... and must be transferred and stored").
  enum class Strategy : std::uint8_t { kBestBase, kRefineTip };

  explicit LayeredStore(const pkg::Repository& repo,
                        Strategy strategy = Strategy::kBestBase)
      : repo_(&repo), strategy_(strategy) {}
  Placement submit(const spec::Specification& spec);
  [[nodiscard]] Totals totals() const;

  [[nodiscard]] std::size_t layer_count() const noexcept { return layers_.size(); }
  [[nodiscard]] std::size_t chain_count() const noexcept { return chains_.size(); }

 private:
  struct Layer {
    spec::PackageSet delta;
    util::Bytes bytes = 0;
  };
  struct Chain {
    spec::PackageSet cumulative;   ///< union of all layers in the chain
    util::Bytes cumulative_bytes = 0;
    std::vector<std::uint32_t> layers;  ///< indices into layers_
  };

  const pkg::Repository* repo_;
  Strategy strategy_ = Strategy::kBestBase;
  std::vector<Layer> layers_;
  std::vector<Chain> chains_;
  // (parent chain signature, delta hash) -> existing chain index, so a
  // job identical to a previous one reuses its chain outright.
  std::unordered_map<std::uint64_t, std::uint32_t> chain_by_key_;
  Totals totals_;
};

}  // namespace landlord::baseline
