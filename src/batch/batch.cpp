#include "batch/batch.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <queue>

namespace landlord::batch {

namespace {

/// Completion event in the simulator's priority queue.
struct Completion {
  double time = 0.0;
  std::uint64_t sequence = 0;  // tie-break for determinism

  [[nodiscard]] bool operator>(const Completion& other) const noexcept {
    if (time != other.time) return time > other.time;
    return sequence > other.sequence;
  }
};

}  // namespace

BatchResult run_batch(const pkg::Repository& repo,
                      const std::vector<spec::Specification>& specs,
                      const std::vector<Job>& jobs, const BatchConfig& config) {
  assert(config.slots > 0);
  assert(std::is_sorted(jobs.begin(), jobs.end(),
                        [](const Job& a, const Job& b) {
                          return a.arrival_s < b.arrival_s;
                        }));

  core::Landlord landlord(repo, config.cache, {}, config.time_model);

  BatchResult result;
  result.jobs.reserve(jobs.size());

  // Min-heap of running-job completion times; its size is the number of
  // busy slots.
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>> running;
  std::uint64_t sequence = 0;
  double busy_slot_seconds = 0.0;

  std::size_t next_arrival = 0;
  std::deque<std::size_t> queue;  // FIFO of job indices waiting for a slot
  double now = 0.0;

  auto start_job = [&](std::size_t job_index) {
    const Job& job = jobs[job_index];
    JobRecord record;
    record.spec_index = job.spec_index;
    record.arrival_s = job.arrival_s;
    record.start_s = now;

    const auto placement = landlord.submit(specs[job.spec_index]);
    record.placement = placement.kind;
    const double prep = placement.prep_seconds;
    record.ready_s = now + prep;
    record.finish_s = record.ready_s + job.run_s;

    result.total_prep_s += prep;
    // The slot is held from start to finish (prep_on_slot) or from
    // container-ready to finish (head-node staging). Either way the
    // completion event frees the slot at finish time.
    busy_slot_seconds +=
        config.prep_on_slot ? (record.finish_s - record.start_s)
                            : (record.finish_s - record.ready_s);
    running.push({record.finish_s, sequence++});
    result.jobs.push_back(record);
  };

  while (next_arrival < jobs.size() || !queue.empty() || !running.empty()) {
    // Advance time to the next event: an arrival or a completion.
    const double arrival_time = next_arrival < jobs.size()
                                    ? jobs[next_arrival].arrival_s
                                    : std::numeric_limits<double>::infinity();
    const double completion_time = !running.empty()
                                       ? running.top().time
                                       : std::numeric_limits<double>::infinity();

    if (arrival_time <= completion_time) {
      now = arrival_time;
      queue.push_back(next_arrival++);
    } else {
      now = completion_time;
      running.pop();
    }

    // Fill free slots from the FIFO queue.
    while (!queue.empty() && running.size() < config.slots) {
      const std::size_t job_index = queue.front();
      queue.pop_front();
      start_job(job_index);
    }
  }

  result.cache_counters = landlord.cache().counters();
  if (!result.jobs.empty()) {
    double wait = 0.0, prep = 0.0;
    for (const auto& record : result.jobs) {
      result.makespan_s = std::max(result.makespan_s, record.finish_s);
      wait += record.wait_s();
      prep += record.prep_s();
    }
    result.mean_wait_s = wait / static_cast<double>(result.jobs.size());
    result.mean_prep_s = prep / static_cast<double>(result.jobs.size());
    if (result.makespan_s > 0) {
      result.throughput_jobs_per_hour =
          3600.0 * static_cast<double>(result.jobs.size()) / result.makespan_s;
      result.slot_utilization =
          busy_slot_seconds /
          (static_cast<double>(config.slots) * result.makespan_s);
    }
  }
  return result;
}

std::vector<Job> poisson_schedule(std::size_t spec_count,
                                  std::uint32_t repetitions,
                                  double jobs_per_hour, double mean_run_s,
                                  util::Rng rng) {
  assert(spec_count > 0 && repetitions > 0 && jobs_per_hour > 0);
  std::vector<std::uint32_t> order;
  order.reserve(spec_count * repetitions);
  for (std::uint32_t rep = 0; rep < repetitions; ++rep) {
    for (std::size_t s = 0; s < spec_count; ++s) {
      order.push_back(static_cast<std::uint32_t>(s));
    }
  }
  rng.shuffle(std::span<std::uint32_t>(order));

  std::vector<Job> jobs;
  jobs.reserve(order.size());
  const double mean_gap_s = 3600.0 / jobs_per_hour;
  double clock = 0.0;
  for (std::uint32_t spec_index : order) {
    clock += rng.exponential(mean_gap_s);
    Job job;
    job.spec_index = spec_index;
    job.arrival_s = clock;
    // Log-normal run time with sigma 0.5 around the requested mean.
    const double sigma = 0.5;
    const double mu = std::log(mean_run_s) - sigma * sigma / 2;
    job.run_s = rng.lognormal(mu, sigma);
    jobs.push_back(job);
  }
  return jobs;
}

}  // namespace landlord::batch
