// Discrete-event batch-system simulation.
//
// The paper deploys LANDLORD "as an automated step during job
// submission" and envisions it "adapted into a plugin for a site's batch
// system" (§V); the HTC objective is "to maximize the throughput of jobs
// that can be run using some fixed amount of cache space" (§III). This
// module closes that loop: jobs arrive over time, wait for one of a
// fixed number of worker slots, pay LANDLORD's image-preparation latency
// (zero on a cache hit, the Shrinkwrap build model otherwise), execute,
// and free the slot. Throughput, waiting time and slot utilisation can
// then be read directly against α.
//
// The event loop is strictly deterministic: events at equal timestamps
// are ordered by (time, sequence number).
#pragma once

#include <cstdint>
#include <vector>

#include "landlord/landlord.hpp"
#include "pkg/repository.hpp"
#include "spec/specification.hpp"
#include "util/rng.hpp"

namespace landlord::batch {

/// One job to run: which specification it needs, when it arrives, and
/// how long it executes once its container is ready.
struct Job {
  std::uint32_t spec_index = 0;
  double arrival_s = 0.0;
  double run_s = 0.0;
};

struct BatchConfig {
  std::uint32_t slots = 16;  ///< concurrently running jobs
  core::CacheConfig cache;
  shrinkwrap::BuildTimeModel time_model;
  /// When true, image preparation occupies the job's slot (worker-side
  /// staging); when false, preparation is pipelined on the head node and
  /// only delays the job itself (slot is taken either way once started —
  /// the difference matters for accounting, not ordering, in this model).
  bool prep_on_slot = true;
};

/// Per-job record in completion order.
struct JobRecord {
  std::uint32_t spec_index = 0;
  double arrival_s = 0.0;
  double start_s = 0.0;   ///< when a slot was acquired
  double ready_s = 0.0;   ///< when the container was prepared
  double finish_s = 0.0;  ///< when execution completed
  core::RequestKind placement = core::RequestKind::kHit;

  [[nodiscard]] double wait_s() const noexcept { return start_s - arrival_s; }
  [[nodiscard]] double prep_s() const noexcept { return ready_s - start_s; }
};

struct BatchResult {
  std::vector<JobRecord> jobs;  ///< completion order
  double makespan_s = 0.0;      ///< last finish time
  double mean_wait_s = 0.0;
  double mean_prep_s = 0.0;
  double total_prep_s = 0.0;
  double throughput_jobs_per_hour = 0.0;
  double slot_utilization = 0.0;  ///< busy slot-seconds / (slots * makespan)
  core::CacheCounters cache_counters;
};

/// Runs the jobs (must be sorted by arrival time) through a FIFO queue
/// over `config.slots` workers, preparing each container via LANDLORD.
[[nodiscard]] BatchResult run_batch(const pkg::Repository& repo,
                                    const std::vector<spec::Specification>& specs,
                                    const std::vector<Job>& jobs,
                                    const BatchConfig& config);

/// Convenience workload: Poisson arrivals at `jobs_per_hour`, run times
/// log-normal around `mean_run_s`, spec indices cycling through a
/// shuffled schedule with `repetitions` visits per spec.
[[nodiscard]] std::vector<Job> poisson_schedule(std::size_t spec_count,
                                                std::uint32_t repetitions,
                                                double jobs_per_hour,
                                                double mean_run_s,
                                                util::Rng rng);

}  // namespace landlord::batch
