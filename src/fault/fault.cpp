#include "fault/fault.hpp"

#include <algorithm>

namespace landlord::fault {

bool FaultPlan::empty() const noexcept {
  if (!schedule.empty()) return false;
  return std::all_of(probability.begin(), probability.end(),
                     [](double p) { return p <= 0.0; });
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  for (const auto& fault : plan_.schedule) {
    scheduled_[static_cast<std::size_t>(fault.op)].push_back(fault.occurrence);
  }
  for (auto& occurrences : scheduled_) {
    std::sort(occurrences.begin(), occurrences.end());
  }
  reset();
}

void FaultInjector::reset() {
  std::scoped_lock lock(mutex_);
  util::Rng root(plan_.seed);
  for (std::size_t op = 0; op < kFaultOpCount; ++op) {
    streams_[op].rng = root.split(op + 1);
    streams_[op].calls = 0;
    streams_[op].injected = 0;
  }
}

bool FaultInjector::should_fail(FaultOp op) {
  const auto index = static_cast<std::size_t>(op);
  std::scoped_lock lock(mutex_);
  Stream& stream = streams_[index];
  const std::uint64_t occurrence = stream.calls++;

  bool fail = std::binary_search(scheduled_[index].begin(),
                                 scheduled_[index].end(), occurrence);
  // The Bernoulli draw is consumed even when the schedule already decided,
  // so a verdict stays a function of (plan, op, occurrence) alone.
  const double p = plan_.probability[index];
  if (p > 0.0 && stream.rng.chance(p)) fail = true;
  if (fail) ++stream.injected;

  if (hooks_.ops[index] != nullptr) hooks_.ops[index]->inc();
  if (fail) {
    if (hooks_.injected[index] != nullptr) hooks_.injected[index]->inc();
    if (hooks_.trace != nullptr) {
      obs::TraceEvent event;
      event.kind = obs::EventKind::kFaultInjected;
      event.detail = to_string(op);
      event.aux = occurrence;
      event.failed = true;
      hooks_.trace->record(event);
    }
  }
  return fail;
}

void FaultInjector::set_observability(obs::Observability* observability) {
  std::scoped_lock lock(mutex_);
  if (observability == nullptr) {
    hooks_ = Hooks{};
    return;
  }
  obs::Registry& reg = observability->registry;
  for (std::size_t index = 0; index < kFaultOpCount; ++index) {
    const char* name = to_string(static_cast<FaultOp>(index));
    hooks_.ops[index] =
        &reg.counter("landlord_fault_ops_total", {{"op", name}},
                     "Fault-oracle consultations per operation class.");
    hooks_.injected[index] =
        &reg.counter("landlord_fault_injected_total", {{"op", name}},
                     "Failures injected per operation class.");
  }
  hooks_.trace = &observability->trace;
}

std::uint64_t FaultInjector::occurrences(FaultOp op) const {
  std::scoped_lock lock(mutex_);
  return streams_[static_cast<std::size_t>(op)].calls;
}

std::uint64_t FaultInjector::injected(FaultOp op) const {
  std::scoped_lock lock(mutex_);
  return streams_[static_cast<std::size_t>(op)].injected;
}

std::uint64_t FaultInjector::total_injected() const {
  std::scoped_lock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& stream : streams_) total += stream.injected;
  return total;
}

double BackoffPolicy::delay_for(std::uint32_t attempt, util::Rng& rng) const {
  double delay = base_delay_s;
  for (std::uint32_t i = 0; i < attempt; ++i) delay *= multiplier;
  delay = std::min(delay, max_delay_s);
  if (jitter > 0.0) {
    delay *= 1.0 + jitter * (2.0 * rng.uniform_double() - 1.0);
  }
  return delay;
}

}  // namespace landlord::fault
