// Deterministic fault injection for the LANDLORD service paths.
//
// The paper deploys LANDLORD as a long-lived head-node service whose
// cache must survive restarts ("persistent image stores", §II/§V), yet a
// simulated run is only as trustworthy as its failure story: WAN fetches
// time out, merge rewrites die mid-write, snapshots get torn by a crash.
// This module makes failure a *modelled input*: a seeded FaultInjector,
// driven by a FaultPlan, decides — deterministically, per operation
// class — whether the k-th download / merge rewrite / snapshot write /
// snapshot read fails. Because every verdict is a pure function of
// (plan, op class, occurrence index), a fault schedule replays
// bit-for-bit, which is what the chaos test suite relies on
// (tests/landlord/fault_test.cpp).
//
// Consumers: shrinkwrap::ImageBuilder::try_build, core::Landlord::submit
// (bounded retry + degradation ladder, see docs/fault_model.md),
// core persistence (torn snapshot writes, failed reads), and the
// sim::run_crash_replay crash-restart driver.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/obs.hpp"
#include "util/rng.hpp"

namespace landlord::fault {

/// Operation classes that can fail independently.
enum class FaultOp : std::uint8_t {
  kBuilderDownload = 0,  ///< WAN fetch while materialising an image
  kMergeRewrite,         ///< full rewrite of a merged/split image
  kSnapshotWrite,        ///< persisting the cache snapshot (torn write)
  kSnapshotRead,         ///< loading the cache snapshot at restart
  // Dispatch-plane classes. Appended (never reordered) so the per-class
  // Bernoulli streams of the original four stay bit-identical under old
  // plans — split(op + 1) keys the stream by enum position.
  kWorkerCrash,     ///< the scheduled worker dies under this dispatch
  kWorkerTransfer,  ///< head-node -> worker-scratch transfer interrupted
  kSiteOutage,      ///< a site rejects this placement attempt
  // Serve-plane network classes (the socket chaos shim, serve/chaos.hpp).
  // Appended, same reason as above.
  kConnReset,        ///< connection torn down with an RST (SO_LINGER 0)
  kConnStall,        ///< delivery pauses long enough to trip timeouts
  kPartialDelivery,  ///< a fragment is delivered, then an abrupt FIN
  kAcceptFail,       ///< the connection is closed at accept time
};
inline constexpr std::size_t kFaultOpCount = 11;

[[nodiscard]] constexpr const char* to_string(FaultOp op) noexcept {
  switch (op) {
    case FaultOp::kBuilderDownload: return "builder-download";
    case FaultOp::kMergeRewrite: return "merge-rewrite";
    case FaultOp::kSnapshotWrite: return "snapshot-write";
    case FaultOp::kSnapshotRead: return "snapshot-read";
    case FaultOp::kWorkerCrash: return "worker-crash";
    case FaultOp::kWorkerTransfer: return "worker-transfer";
    case FaultOp::kSiteOutage: return "site-outage";
    case FaultOp::kConnReset: return "conn-reset";
    case FaultOp::kConnStall: return "conn-stall";
    case FaultOp::kPartialDelivery: return "partial-delivery";
    case FaultOp::kAcceptFail: return "accept-fail";
  }
  return "?";
}

/// One explicitly scheduled failure: the `occurrence`-th operation of
/// class `op` (0-based, counted per class) fails regardless of the
/// class's probability.
struct ScheduledFault {
  FaultOp op = FaultOp::kBuilderDownload;
  std::uint64_t occurrence = 0;
};

/// What should fail and how often. An empty plan (all probabilities 0,
/// no schedule) makes the injector a no-op: every fault-wired path is
/// then bit-identical to the un-wired code (the zero-fault equivalence
/// guard in tests/landlord/fault_test.cpp asserts this).
struct FaultPlan {
  /// Per-class failure probability in [0, 1], indexed by FaultOp.
  std::array<double, kFaultOpCount> probability{};
  /// Explicit failures on top of the probabilities.
  std::vector<ScheduledFault> schedule;
  /// Seeds the per-class Bernoulli streams (and downstream jitter).
  std::uint64_t seed = 0x5eedfa171757ULL;

  [[nodiscard]] bool empty() const noexcept;

  /// Fluent helpers for test/bench construction.
  FaultPlan& fail(FaultOp op, double p) {
    probability[static_cast<std::size_t>(op)] = p;
    return *this;
  }
  FaultPlan& at(FaultOp op, std::uint64_t occurrence) {
    schedule.push_back({op, occurrence});
    return *this;
  }
};

/// Seeded, thread-safe fault oracle. The verdict for the k-th operation
/// of a class depends only on (plan, class, k): interleaving with other
/// classes or threads cannot perturb it, so a multi-threaded chaos run
/// still injects the same faults into the same operations.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Should the next operation of class `op` fail? Advances that class's
  /// occurrence counter.
  [[nodiscard]] bool should_fail(FaultOp op);

  /// Operations of this class seen so far.
  [[nodiscard]] std::uint64_t occurrences(FaultOp op) const;
  /// Failures injected into this class so far.
  [[nodiscard]] std::uint64_t injected(FaultOp op) const;
  [[nodiscard]] std::uint64_t total_injected() const;
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// Rewinds every occurrence stream to the beginning (replay).
  void reset();

  /// Attaches (or detaches, with nullptr) an observability bundle:
  /// per-class operation/injection counters plus a trace event per
  /// injected fault. Never changes verdicts. Non-owning.
  void set_observability(obs::Observability* observability);

 private:
  struct Stream {
    util::Rng rng;
    std::uint64_t calls = 0;
    std::uint64_t injected = 0;
  };

  FaultPlan plan_;
  mutable std::mutex mutex_;
  std::array<Stream, kFaultOpCount> streams_;
  /// Sorted occurrence indices per class, from plan_.schedule.
  std::array<std::vector<std::uint64_t>, kFaultOpCount> scheduled_;

  /// Metric handles resolved at set_observability; null ⇒ no-op.
  struct Hooks {
    std::array<obs::Counter*, kFaultOpCount> ops{};       ///< should_fail calls
    std::array<obs::Counter*, kFaultOpCount> injected{};  ///< failures injected
    obs::EventTrace* trace = nullptr;
  };
  Hooks hooks_;
};

/// Retry pacing for failed builds: exponential backoff with jitter.
/// Delays are *modelled* seconds (charged to prep time), not wall time.
struct BackoffPolicy {
  std::uint32_t max_retries = 3;  ///< extra attempts after the first failure
  double base_delay_s = 0.5;      ///< wait before the first retry
  double multiplier = 2.0;        ///< per-retry growth
  double max_delay_s = 8.0;       ///< cap on a single wait
  double jitter = 0.1;            ///< uniform ±fraction on each wait

  /// Modelled wait before retry number `attempt` (0-based). Draws the
  /// jitter from `rng`, so the sequence is deterministic per seed.
  [[nodiscard]] double delay_for(std::uint32_t attempt, util::Rng& rng) const;
};

/// Degraded-mode telemetry, the fault-path analogue of
/// core::CacheCounters. Monotone; aggregated across an entire service
/// lifetime (crash-restart replays included).
struct DegradedCounters {
  std::uint64_t build_failures = 0;        ///< injected try_build failures seen
  std::uint64_t retries = 0;               ///< re-attempted builds
  std::uint64_t backoffs = 0;              ///< modelled waits taken
  double backoff_seconds = 0.0;            ///< total modelled waiting
  std::uint64_t fallback_exact_builds = 0; ///< merge rewrite -> exact image
  std::uint64_t fallback_unsplit_hits = 0; ///< split rebuild -> unsplit image
  std::uint64_t error_placements = 0;      ///< degradation ladder exhausted
  std::uint64_t toctou_retries = 0;        ///< decided image evicted mid-submit
  std::uint64_t snapshot_write_failures = 0;  ///< torn/failed checkpoint writes
  std::uint64_t snapshot_read_failures = 0;   ///< failed restores at restart
  std::uint64_t recovered_images = 0;      ///< images re-admitted from snapshots
  std::uint64_t lost_records = 0;          ///< snapshot records dropped as bad
};

}  // namespace landlord::fault
