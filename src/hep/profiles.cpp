#include "hep/profiles.hpp"

#include <array>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace landlord::hep {

namespace {

// Fig. 2 of the paper, verbatim.
const std::array<HepApp, 7> kApps = {{
    {"alice-gen-sim", "alice", "gen", 131.0, 59.0, 6.0, 0.45},
    {"atlas-gen", "atlas", "gen", 600.0, 37.0, 2.7, 4.8},
    {"atlas-sim", "atlas", "sim", 5340.0, 115.0, 7.6, 4.8},
    {"cms-digi", "cms", "digi", 629.0, 62.0, 8.4, 8.8},
    {"cms-gen-sim", "cms", "gen", 2360.0, 71.0, 6.1, 8.8},
    {"cms-reco", "cms", "reco", 961.0, 78.0, 7.3, 8.8},
    {"lhcb-gen-sim", "lhcb", "gen", 1010.0, 67.0, 3.7, 1.0},
}};

}  // namespace

std::span<const HepApp> benchmark_apps() { return kApps; }

spec::Specification app_specification(const pkg::Repository& repo,
                                      const HepApp& app, std::uint64_t seed) {
  // Candidate leaves: experiment-prefixed names carrying the phase stem,
  // e.g. "cms-digi-..." for cms-digi. Fall back to any leaf of the
  // experiment if the stem filter leaves too few candidates.
  const std::string prefix = app.experiment + "-";
  const std::string stem = "-" + app.phase;
  std::vector<pkg::PackageId> phase_leaves;
  std::vector<pkg::PackageId> experiment_leaves;
  for (pkg::PackageId id : repo.packages_in_tier(pkg::PackageTier::kLeaf)) {
    const auto& name = repo[id].name;
    if (!name.starts_with(prefix)) continue;
    experiment_leaves.push_back(id);
    if (name.find(stem) != std::string::npos) phase_leaves.push_back(id);
  }
  auto& pool = phase_leaves.size() >= 8 ? phase_leaves : experiment_leaves;

  // Accumulate leaves until the dependency-closed image reaches the
  // paper's minimal-image size (decimal GB, as published).
  const auto target =
      static_cast<util::Bytes>(app.paper_image_gb * 1e9);
  util::Rng rng(seed ^ 0x68657061);  // "hepa"
  rng.shuffle(std::span<pkg::PackageId>(pool));

  util::DynamicBitset image(repo.size());
  util::Bytes bytes = 0;
  std::vector<pkg::PackageId> chosen;
  for (pkg::PackageId id : pool) {
    if (bytes >= target) break;
    chosen.push_back(id);
    // Incremental closure union keeps this O(pool * words).
    image |= repo.closure(id);
    bytes = repo.bytes_of(image);
  }
  return spec::Specification(spec::PackageSet(std::move(image)), app.name);
}

}  // namespace landlord::hep
