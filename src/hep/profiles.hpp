// LHC benchmark application profiles (Fig. 2).
//
// The paper measures seven applications from the ALICE, ATLAS, CMS and
// LHCb experiments run under Shrinkwrap, reporting running time,
// preparation time, minimal image size and full-repository size. We
// cannot run the real hep-workloads payloads, so each profile pairs the
// paper's published numbers (for comparison in EXPERIMENTS.md) with a
// recipe that selects a coherent package subset of the matching
// experiment subtree in the synthetic repository, sized to land near the
// paper's minimal-image size.
#pragma once

#include <span>
#include <string>

#include "pkg/repository.hpp"
#include "spec/specification.hpp"

namespace landlord::hep {

struct HepApp {
  std::string name;        ///< e.g. "cms-gen-sim"
  std::string experiment;  ///< repo subtree prefix: alice/atlas/cms/lhcb
  std::string phase;       ///< leaf-name stem: gen/sim/digi/reco
  double paper_running_s;  ///< Fig. 2 "Running Time"
  double paper_prep_s;     ///< Fig. 2 "Prep. Time"
  double paper_image_gb;   ///< Fig. 2 "Minimal Image" (decimal GB)
  double paper_repo_tb;    ///< Fig. 2 "Full Repo" (decimal TB)
};

/// The seven Fig. 2 benchmark applications with the paper's numbers.
[[nodiscard]] std::span<const HepApp> benchmark_apps();

/// Builds the application's container specification against `repo`:
/// leaf packages from the app's experiment whose names carry the phase
/// stem are accumulated (deterministically per seed) until the
/// dependency-closed image reaches the paper's minimal-image size.
[[nodiscard]] spec::Specification app_specification(const pkg::Repository& repo,
                                                    const HepApp& app,
                                                    std::uint64_t seed);

}  // namespace landlord::hep
