#include "landlord/cache.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "spec/jaccard.hpp"

namespace landlord::core {

Cache::Cache(const pkg::Repository& repo, CacheConfig config)
    : repo_(&repo),
      config_(config),
      hasher_(config.minhash_k),
      lsh_(config.lsh_bands) {
  assert(config_.alpha >= 0.0 && config_.alpha <= 1.0);
  if (config_.record_time_series) ledger_refs_.resize(repo_->size(), 0);
  if (config_.decision_index) {
    dindex_.emplace(repo_->size(), config_.eviction);
    memo_ = std::make_unique<SpecMemo>();
  }
}

void Cache::set_observability(obs::Observability* observability) {
  if (observability == nullptr) {
    hooks_ = Hooks{};
    return;
  }
  obs::Registry& reg = observability->registry;
  constexpr const char* kRequestsHelp =
      "Cache requests by Algorithm 1 outcome kind.";
  hooks_.requests_hit =
      &reg.counter("landlord_cache_requests_total", {{"kind", "hit"}}, kRequestsHelp);
  hooks_.requests_merge =
      &reg.counter("landlord_cache_requests_total", {{"kind", "merge"}}, kRequestsHelp);
  hooks_.requests_insert =
      &reg.counter("landlord_cache_requests_total", {{"kind", "insert"}}, kRequestsHelp);
  constexpr const char* kEvictionsHelp =
      "Images removed from the cache, by reason (sums to CacheCounters::deletes).";
  hooks_.evictions_budget =
      &reg.counter("landlord_cache_evictions_total", {{"reason", "budget"}}, kEvictionsHelp);
  hooks_.evictions_idle =
      &reg.counter("landlord_cache_evictions_total", {{"reason", "idle"}}, kEvictionsHelp);
  hooks_.evictions_split =
      &reg.counter("landlord_cache_evictions_total", {{"reason", "split-empty"}},
                   kEvictionsHelp);
  hooks_.splits = &reg.counter("landlord_cache_splits_total", {},
                               "Bloated images split along their merge lineage.");
  hooks_.conflict_rejections =
      &reg.counter("landlord_cache_conflict_rejections_total", {},
                   "Merge candidates rejected for constraint conflicts.");
  hooks_.candidate_scan = &reg.histogram(
      "landlord_cache_candidate_scan_size",
      {0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 1024},
      {}, "Merge candidates within distance alpha per scanned request.");
  hooks_.request_bytes =
      &reg.histogram("landlord_cache_request_bytes", obs::default_bytes_buckets(), {},
                     "Bytes requested per container specification.");
  if (config_.delta_chain_cap > 0) {
    hooks_.cas_delta_merges =
        &reg.counter("landlord_cas_delta_merges_total", {},
                     "Merges charged as delta writes (new chunks + manifest).");
    hooks_.cas_repacks =
        &reg.counter("landlord_cas_repacks_total", {},
                     "Merges that hit the delta-chain cap and rewrote in full.");
    constexpr const char* kCasBytesHelp =
        "Bytes written to image storage, by write kind.";
    hooks_.cas_delta_bytes =
        &reg.counter("landlord_cas_written_bytes_total", {{"kind", "delta"}},
                     kCasBytesHelp);
    hooks_.cas_repack_bytes =
        &reg.counter("landlord_cas_written_bytes_total", {{"kind", "repack"}},
                     kCasBytesHelp);
    hooks_.cas_full_rewrite_bytes = &reg.counter(
        "landlord_cas_full_rewrite_bytes_total", {},
        "Counterfactual write charge under the paper's full-rewrite model.");
  }
  if (config_.decision_index) {
    hooks_.postings_probe = &reg.histogram(
        "landlord_index_postings_probe_length",
        {0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096}, {},
        "Postings entries scanned per indexed superset lookup.");
    constexpr const char* kMemoHelp =
        "Spec-memo lookups by result (hits skip the superset probe).";
    hooks_.memo_hit =
        &reg.counter("landlord_index_memo_total", {{"result", "hit"}}, kMemoHelp);
    hooks_.memo_miss =
        &reg.counter("landlord_index_memo_total", {{"result", "miss"}}, kMemoHelp);
    hooks_.eviction_index_updates =
        &reg.counter("landlord_index_eviction_updates_total", {},
                     "Ordered eviction-index mutations (insert/erase/touch).");
  }
  hooks_.trace = &observability->trace;
}

void Cache::dindex_insert(const Image& image) {
  if (!dindex_) return;
  dindex_->insert(image);
  memo_->bump();
  if (hooks_.eviction_index_updates != nullptr) hooks_.eviction_index_updates->inc();
}

void Cache::dindex_erase(const util::DynamicBitset& old_bits,
                         const EvictionKey& old_key) {
  if (!dindex_) return;
  dindex_->erase(old_bits, old_key);
  memo_->bump();
  if (hooks_.eviction_index_updates != nullptr) hooks_.eviction_index_updates->inc();
}

void Cache::dindex_update(const Image& image,
                          const util::DynamicBitset& old_bits,
                          const EvictionKey& old_key) {
  if (!dindex_) return;
  dindex_->update(image, old_bits, old_key);
  memo_->bump();
  if (hooks_.eviction_index_updates != nullptr) hooks_.eviction_index_updates->inc();
}

void Cache::dindex_touch(const EvictionKey& old_key, const Image& image) {
  if (!dindex_) return;
  dindex_->touch(old_key, eviction_key(image));
  if (hooks_.eviction_index_updates != nullptr) hooks_.eviction_index_updates->inc();
}

void Cache::ledger_add(const util::DynamicBitset& bits) {
  if (!config_.record_time_series) return;
  bits.for_each_set([this](std::size_t i) {
    if (ledger_refs_[i]++ == 0) {
      ledger_unique_ += (*repo_)[pkg::package_id(static_cast<std::uint32_t>(i))].size;
    }
  });
}

void Cache::ledger_remove(const util::DynamicBitset& bits) {
  if (!config_.record_time_series) return;
  bits.for_each_set([this](std::size_t i) {
    assert(ledger_refs_[i] > 0 && "union ledger underflow");
    if (--ledger_refs_[i] == 0) {
      ledger_unique_ -= (*repo_)[pkg::package_id(static_cast<std::uint32_t>(i))].size;
    }
  });
}

void Cache::trace_eviction(const Image& victim, const char* reason) {
  if (hooks_.trace == nullptr) return;
  obs::TraceEvent event;
  event.kind = obs::EventKind::kEviction;
  event.image = to_value(victim.id);
  event.bytes = victim.bytes;
  event.aux = victim.hits;
  event.detail = reason;
  hooks_.trace->record(event);
}

std::optional<Image> Cache::find(ImageId id) const {
  auto it = images_.find(to_value(id));
  if (it == images_.end()) return std::nullopt;
  return it->second;
}

util::Bytes Cache::unique_bytes() const {
  // With time-series recording on, the union is maintained incrementally
  // (ledger_add/ledger_remove at every contents mutation) — O(1) here
  // instead of an O(images × universe) recompute per call.
  if (config_.record_time_series) return ledger_unique_;
  if (images_.empty()) return 0;
  util::DynamicBitset all(repo_->size());
  for (const auto& [id, image] : images_) all |= image.contents.bits();
  return repo_->bytes_of(all);
}

double Cache::cache_efficiency() const {
  if (total_bytes_ == 0) return 1.0;
  return static_cast<double>(unique_bytes()) / static_cast<double>(total_bytes_);
}

void Cache::index_insert(const Image& image) {
  if (config_.policy != MergePolicy::kMinHashLsh) return;
  auto signature = hasher_.sign(image.contents);
  lsh_.insert(to_value(image.id), signature);
  signatures_.emplace(to_value(image.id), std::move(signature));
}

void Cache::index_erase(const Image& image) {
  if (config_.policy != MergePolicy::kMinHashLsh) return;
  auto it = signatures_.find(to_value(image.id));
  if (it == signatures_.end()) return;
  lsh_.erase(to_value(image.id), it->second);
  signatures_.erase(it);
}

std::optional<ImageId> Cache::find_superset_scan(
    const spec::Specification& spec) const {
  // "for i ∈ I do: if s ⊆ i then return i" — any superset serves; we take
  // the smallest so jobs ship the least unrequested data. Byte ties break
  // on the lower id so the choice is independent of map iteration order
  // (the sharded cache must reproduce it shard by shard).
  const Image* best = nullptr;
  for (const auto& [id, image] : images_) {
    if (spec.packages().is_subset_of(image.contents)) {
      if (best == nullptr || image.bytes < best->bytes ||
          (image.bytes == best->bytes && to_value(image.id) < to_value(best->id))) {
        best = &image;
      }
    }
  }
  if (best == nullptr) return std::nullopt;
  return best->id;
}

std::optional<ImageId> Cache::find_superset(const spec::Specification& spec) {
  if (!dindex_) return find_superset_scan(spec);
  // Memo first: back-to-back identical specs (the common HTC case) skip
  // even the postings probe. An entry only answers while the epoch it
  // was stored at is still current, so it is exactly the scan's answer.
  const std::uint64_t epoch = memo_->epoch();
  if (auto memo = memo_->lookup(spec.packages())) {
    if (hooks_.memo_hit != nullptr) hooks_.memo_hit->inc();
    return memo->image;
  }
  if (hooks_.memo_miss != nullptr) hooks_.memo_miss->inc();
  std::optional<ImageId> best;
  if (spec.packages().empty() || images_.size() < config_.scan_cutover) {
    // Empty specs have no rarest package; and below the cutover the
    // linear scan beats the postings probe (same answer either way).
    best = find_superset_scan(spec);
  } else {
    std::size_t probe = 0;
    best = dindex_->find_superset(spec.packages(), images_, &probe);
    if (hooks_.postings_probe != nullptr) {
      hooks_.postings_probe->observe(static_cast<double>(probe));
    }
  }
  if (best) memo_->store(spec.packages(), *best, 0, epoch);
  return best;
}

std::optional<ImageId> Cache::peek_superset(const spec::Specification& spec) {
  if (dindex_ && !spec.packages().empty() &&
      images_.size() >= config_.scan_cutover) {
    return dindex_->find_superset(spec.packages(), images_);
  }
  return find_superset_scan(spec);
}

std::optional<ImageId> Cache::peek_victim() {
  if (dindex_) {
    const auto key = dindex_->victim(clock_);
    if (!key) return std::nullopt;
    return ImageId{key->id};
  }
  const auto it = find_victim_scan();
  if (it == images_.end()) return std::nullopt;
  return it->second.id;
}

std::optional<ImageId> Cache::find_merge_candidate(const spec::Specification& spec) {
  struct Candidate {
    double distance;
    ImageId id;
  };
  // Scratch-arena backed: the list dies with this call, so it bump-
  // allocates from the per-request arena instead of the global heap.
  std::vector<Candidate, util::ArenaAllocator<Candidate>> candidates{
      util::ArenaAllocator<Candidate>(arena_)};

  // "In the extreme case of α = 1, every pair of images is considered
  // close and merged if possible" (§V) — so α = 1 admits even distance
  // exactly 1 (disjoint sets), while all other thresholds are strict.
  auto consider = [&](const Image& image) {
    const double d = spec::jaccard_distance(spec.packages(), image.contents);
    if (d < config_.alpha || config_.alpha >= 1.0) {
      candidates.push_back({d, image.id});
    }
  };

  switch (config_.policy) {
    case MergePolicy::kFirstFit:
    case MergePolicy::kBestFit:
      for (const auto& [id, image] : images_) consider(image);
      break;
    case MergePolicy::kMinHashLsh: {
      const auto signature = hasher_.sign(spec.packages());
      for (std::uint64_t id : lsh_.candidates(signature)) {
        auto it = images_.find(id);
        assert(it != images_.end() && "LSH index out of sync with cache");
        consider(it->second);
      }
      break;
    }
  }
  if (hooks_.candidate_scan != nullptr) {
    hooks_.candidate_scan->observe(static_cast<double>(candidates.size()));
  }
  if (candidates.empty()) return std::nullopt;

  if (config_.policy != MergePolicy::kFirstFit) {
    // "Selection can be sorted by dj()" — try closest first; distance
    // ties break on the lower id so the order is deterministic.
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.distance != b.distance) return a.distance < b.distance;
                return to_value(a.id) < to_value(b.id);
              });
  } else {
    // First-fit takes the oldest (lowest-id) close-enough image — the
    // deterministic analogue of "first in storage order".
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return to_value(a.id) < to_value(b.id);
              });
  }
  for (const auto& candidate : candidates) {
    const Image& image = images_.at(to_value(candidate.id));
    if (spec::ConflictChecker::compatible(spec.constraints(), image.constraints)) {
      return candidate.id;
    }
    ++counters_.conflict_rejections;
    if (hooks_.conflict_rejections != nullptr) hooks_.conflict_rejections->inc();
  }
  return std::nullopt;
}

Cache::Outcome Cache::request(const spec::Specification& spec) {
  assert(spec.packages().universe() == repo_->size() &&
         "spec universe must match the cache's repository");
  arena_.reset();  // reclaim the previous request's scratch in O(1)
  ++clock_;
  ++counters_.requests;
  const util::Bytes requested = spec.bytes(*repo_);
  counters_.requested_bytes += requested;
  if (hooks_.request_bytes != nullptr) {
    hooks_.request_bytes->observe(static_cast<double>(requested));
  }

  Outcome outcome;

  if (auto hit = find_superset(spec)) {
    Image& image = images_.at(to_value(*hit));
    const EvictionKey pre_touch_key = eviction_key(image);
    image.last_used = clock_;
    ++image.hits;
    dindex_touch(pre_touch_key, image);
    ++counters_.hits;
    ImageId served = image.id;
    util::Bytes served_bytes = image.bytes;
    bool split = false;
    ImageId split_from{};
    util::Bytes split_from_bytes = 0;
    // Extension: a hit on a badly bloated image (job uses a small
    // fraction of what it would ship) triggers a split along the merge
    // lineage; the job is served from the tightly fitting part.
    if (config_.enable_split && image.merge_count > 0 && image.bytes > 0 &&
        static_cast<double>(requested) / static_cast<double>(image.bytes) <
            config_.split_utilization) {
      // The ladder's rung-3 fallback needs the *unsplit* image's
      // identity and size, so capture them before the split rewrites
      // (or erases) the bloated image.
      split_from = image.id;
      split_from_bytes = image.bytes;
      served = split_image(image.id, spec);
      served_bytes = images_.at(to_value(served)).bytes;
      split = true;
    }
    outcome = {RequestKind::kHit, served,     served_bytes,
               split,             split_from, split_from_bytes};
  } else if (auto candidate = find_merge_candidate(spec)) {
    Image& image = images_.at(to_value(*candidate));
    // Snapshot pre-merge state so the decision index can word-diff the
    // contents and replace the eviction key after the rewrite.
    std::optional<util::DynamicBitset> pre_merge_bits;
    EvictionKey pre_merge_key{};
    if (dindex_) {
      pre_merge_bits = image.contents.bits();
      pre_merge_key = eviction_key(image);
    }
    const util::Bytes pre_merge_bytes = image.bytes;
    index_erase(image);
    total_bytes_ -= image.bytes;
    ledger_remove(image.contents.bits());
    image.contents.merge(spec.packages());
    ledger_add(image.contents.bits());
    image.bytes = repo_->bytes_of(image.contents.bits());
    // Append-if-absent: workloads reuse a small set of distinct
    // constraints, so verbatim appending made a hot image's constraint
    // list (and every ConflictChecker pass over it) grow linearly with
    // its merge count.
    spec::merge_constraints(image.constraints, spec.constraints());
    image.last_used = clock_;
    ++image.merge_count;
    ++image.version;
    if (image.lineage.size() >= config_.max_lineage) {
      // Coalesce the two oldest entries to bound lineage growth.
      image.lineage[0].merge(image.lineage[1]);
      image.lineage.erase(image.lineage.begin() + 1);
    }
    image.lineage.push_back(spec.packages());
    total_bytes_ += image.bytes;
    // "Each time a merge occurs, the resulting image must be written out
    // in its entirety" (§VI, Overhead of LANDLORD) — the counterfactual
    // is always tracked; with a delta chain the actual charge is only
    // the bytes the merge added plus a manifest, until the chain caps
    // out and the next merge repacks. The branch never touches anything
    // a decision reads, so delta mode replays bit-identically.
    counters_.full_rewrite_bytes += image.bytes;
    if (hooks_.cas_full_rewrite_bytes != nullptr) {
      hooks_.cas_full_rewrite_bytes->inc(image.bytes);
    }
    if (config_.delta_chain_cap == 0) {
      counters_.written_bytes += image.bytes;
    } else if (image.chain_depth >= config_.delta_chain_cap) {
      counters_.written_bytes += image.bytes;
      counters_.repack_written_bytes += image.bytes;
      ++counters_.repacks;
      if (hooks_.cas_repacks != nullptr) hooks_.cas_repacks->inc();
      if (hooks_.cas_repack_bytes != nullptr) {
        hooks_.cas_repack_bytes->inc(image.bytes);
      }
      if (hooks_.trace != nullptr) {
        obs::TraceEvent repack_event;
        repack_event.kind = obs::EventKind::kRepack;
        repack_event.image = to_value(image.id);
        repack_event.bytes = image.bytes;
        repack_event.aux = image.chain_depth;
        hooks_.trace->record(repack_event);
      }
      image.chain_depth = 0;
    } else {
      // Merging unions contents, so the image can only have grown.
      const util::Bytes charge =
          (image.bytes - pre_merge_bytes) + config_.delta_manifest_bytes;
      counters_.written_bytes += charge;
      counters_.delta_written_bytes += charge;
      ++counters_.delta_merges;
      ++image.chain_depth;
      if (hooks_.cas_delta_merges != nullptr) hooks_.cas_delta_merges->inc();
      if (hooks_.cas_delta_bytes != nullptr) hooks_.cas_delta_bytes->inc(charge);
    }
    ++counters_.merges;
    index_insert(image);
    if (dindex_) dindex_update(image, *pre_merge_bits, pre_merge_key);
    outcome = {RequestKind::kMerge, image.id, image.bytes};
  } else {
    Image image;
    image.id = next_id();
    image.contents = spec.packages();
    image.bytes = requested;
    image.constraints = spec.constraints();
    image.last_used = clock_;
    image.lineage.push_back(spec.packages());
    total_bytes_ += image.bytes;
    ledger_add(image.contents.bits());
    counters_.written_bytes += image.bytes;
    counters_.full_rewrite_bytes += image.bytes;
    if (hooks_.cas_full_rewrite_bytes != nullptr) {
      hooks_.cas_full_rewrite_bytes->inc(image.bytes);
    }
    ++counters_.inserts;
    const ImageId id = image.id;
    const util::Bytes bytes = image.bytes;
    index_insert(image);
    dindex_insert(image);
    images_.emplace(to_value(id), std::move(image));
    outcome = {RequestKind::kInsert, id, bytes};
  }

  counters_.container_efficiency_sum +=
      outcome.image_bytes > 0
          ? static_cast<double>(requested) / static_cast<double>(outcome.image_bytes)
          : 1.0;

  switch (outcome.kind) {
    case RequestKind::kHit:
      if (hooks_.requests_hit != nullptr) hooks_.requests_hit->inc();
      break;
    case RequestKind::kMerge:
      if (hooks_.requests_merge != nullptr) hooks_.requests_merge->inc();
      break;
    case RequestKind::kInsert:
      if (hooks_.requests_insert != nullptr) hooks_.requests_insert->inc();
      break;
  }
  if (hooks_.trace != nullptr) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kRequest;
    event.detail = to_string(outcome.kind);
    event.image = to_value(outcome.image);
    event.bytes = outcome.image_bytes;
    event.aux = requested;
    hooks_.trace->record(event);
    if (outcome.split) {
      obs::TraceEvent split_event;
      split_event.kind = obs::EventKind::kSplit;
      split_event.image = to_value(outcome.split_from);
      split_event.bytes = outcome.split_from_bytes;
      split_event.aux = to_value(outcome.image);
      hooks_.trace->record(split_event);
    }
  }

  evict_over_budget();
  evict_idle();
  record_sample(outcome.kind, outcome);
  return outcome;
}

ImageId Cache::adopt(spec::PackageSet contents,
                     std::vector<spec::VersionConstraint> constraints,
                     std::uint64_t hits, std::uint32_t merge_count,
                     std::uint32_t version) {
  assert(contents.universe() == repo_->size());
  Image image;
  image.id = next_id();
  image.bytes = repo_->bytes_of(contents.bits());
  image.contents = std::move(contents);
  image.constraints = std::move(constraints);
  image.hits = hits;
  image.merge_count = merge_count;
  image.version = version;
  image.last_used = ++clock_;
  image.lineage.push_back(image.contents);
  total_bytes_ += image.bytes;
  ledger_add(image.contents.bits());
  const ImageId id = image.id;
  index_insert(image);
  dindex_insert(image);
  images_.emplace(to_value(id), std::move(image));
  evict_over_budget();
  return id;
}

ImageId Cache::split_image(ImageId id, const spec::Specification& spec) {
  Image& bloated = images_.at(to_value(id));
  // Pre-split state for the decision index (the hit arm already stamped
  // last_used/hits, so this key matches what the index holds right now).
  std::optional<util::DynamicBitset> pre_split_bits;
  EvictionKey pre_split_key{};
  if (dindex_) {
    pre_split_bits = bloated.contents.bits();
    pre_split_key = eviction_key(bloated);
  }
  index_erase(bloated);
  total_bytes_ -= bloated.bytes;
  ledger_remove(bloated.contents.bits());

  // Part A exactly covers the request. Part B is the union of lineage
  // entries not subsumed by the request — lineage entries are
  // dependency-closed, so B is a valid image; constituents the request
  // covers are dropped (their jobs are served by A).
  Image part_a;
  part_a.id = next_id();
  part_a.contents = spec.packages();
  part_a.bytes = repo_->bytes_of(part_a.contents.bits());
  part_a.constraints = spec.constraints();
  part_a.last_used = clock_;
  part_a.hits = 1;
  part_a.lineage.push_back(spec.packages());

  spec::PackageSet remainder(repo_->size());
  std::vector<spec::PackageSet> remainder_lineage;
  for (auto& entry : bloated.lineage) {
    if (entry.is_subset_of(part_a.contents)) continue;
    remainder.merge(entry);
    remainder_lineage.push_back(std::move(entry));
  }

  // Both split parts are fresh full writes in either accounting mode
  // (a delta against the bloated chain would pin its dead constituents).
  counters_.written_bytes += part_a.bytes;
  counters_.full_rewrite_bytes += part_a.bytes;
  if (hooks_.cas_full_rewrite_bytes != nullptr) {
    hooks_.cas_full_rewrite_bytes->inc(part_a.bytes);
  }
  ++counters_.splits;
  if (hooks_.splits != nullptr) hooks_.splits->inc();
  const ImageId part_a_id = part_a.id;
  total_bytes_ += part_a.bytes;
  ledger_add(part_a.contents.bits());
  index_insert(part_a);
  dindex_insert(part_a);
  images_.emplace(to_value(part_a_id), std::move(part_a));

  if (!remainder.empty()) {
    // The remainder keeps the bloated image's id (it is the continuation
    // of that image, shrunk) so worker caches can version-check it.
    bloated.contents = std::move(remainder);
    bloated.bytes = repo_->bytes_of(bloated.contents.bits());
    bloated.lineage = std::move(remainder_lineage);
    bloated.merge_count = static_cast<std::uint32_t>(bloated.lineage.size()) - 1;
    ++bloated.version;
    bloated.chain_depth = 0;  // rewritten in full; the old chain is gone
    total_bytes_ += bloated.bytes;
    ledger_add(bloated.contents.bits());
    counters_.written_bytes += bloated.bytes;
    counters_.full_rewrite_bytes += bloated.bytes;
    if (hooks_.cas_full_rewrite_bytes != nullptr) {
      hooks_.cas_full_rewrite_bytes->inc(bloated.bytes);
    }
    index_insert(bloated);
    if (dindex_) dindex_update(bloated, *pre_split_bits, pre_split_key);
    // The remainder was rewritten in full, so the delta chain built for
    // the pre-split image no longer describes what is on disk: invalidate
    // it (the next build of this id starts a fresh base).
    if (eviction_listener_) eviction_listener_(id, 0);
  } else {
    // The whole lineage was subsumed by part A: the bloated image dies.
    // Its postings entries and eviction key must die with it, or a
    // later probe can resurrect the erased id (the stale-postings
    // regression in tests/landlord/decision_index_test.cpp).
    if (dindex_) dindex_erase(*pre_split_bits, pre_split_key);
    const util::Bytes dying_bytes = bloated.bytes;
    images_.erase(to_value(id));
    ++counters_.deletes;
    if (hooks_.evictions_split != nullptr) hooks_.evictions_split->inc();
    if (eviction_listener_) eviction_listener_(id, dying_bytes);
  }
  return part_a_id;
}

std::unordered_map<std::uint64_t, Image>::iterator Cache::find_victim_scan() {
  // Pick a victim per the configured policy. The image serving the
  // current request carries the freshest LRU stamp and (for hit-based
  // policies) a just-incremented hit count, so under kLru it is never
  // chosen while any other image exists.
  auto victim = images_.end();
  for (auto it = images_.begin(); it != images_.end(); ++it) {
    if (it->second.last_used == clock_) continue;  // never evict the
                                                   // image just served
    if (victim == images_.end() ||
        evict_before(config_.eviction, eviction_key(it->second),
                     eviction_key(victim->second))) {
      victim = it;
    }
  }
  return victim;
}

void Cache::evict_over_budget() {
  while (total_bytes_ > config_.capacity && images_.size() > 1) {
    auto victim = images_.end();
    if (dindex_) {
      // The ordered index's minimum is the scan's choice, O(log n).
      if (const auto key = dindex_->victim(clock_)) {
        victim = images_.find(key->id);
        assert(victim != images_.end() && "eviction index out of sync");
      }
    } else {
      victim = find_victim_scan();
    }
    if (victim == images_.end()) break;  // only the just-served image left
    total_bytes_ -= victim->second.bytes;
    ledger_remove(victim->second.contents.bits());
    index_erase(victim->second);
    if (dindex_) dindex_erase(victim->second.contents.bits(),
                              eviction_key(victim->second));
    if (hooks_.evictions_budget != nullptr) hooks_.evictions_budget->inc();
    trace_eviction(victim->second, "budget");
    const ImageId victim_id = victim->second.id;
    const util::Bytes victim_bytes = victim->second.bytes;
    images_.erase(victim);
    ++counters_.deletes;
    if (eviction_listener_) eviction_listener_(victim_id, victim_bytes);
  }
}

void Cache::evict_idle() {
  if (config_.max_idle_requests == 0) return;
  for (auto it = images_.begin(); it != images_.end();) {
    if (clock_ - it->second.last_used > config_.max_idle_requests) {
      total_bytes_ -= it->second.bytes;
      ledger_remove(it->second.contents.bits());
      index_erase(it->second);
      if (dindex_) dindex_erase(it->second.contents.bits(),
                                eviction_key(it->second));
      if (hooks_.evictions_idle != nullptr) hooks_.evictions_idle->inc();
      trace_eviction(it->second, "idle");
      const ImageId victim_id = it->second.id;
      const util::Bytes victim_bytes = it->second.bytes;
      it = images_.erase(it);
      ++counters_.deletes;
      if (eviction_listener_) eviction_listener_(victim_id, victim_bytes);
    } else {
      ++it;
    }
  }
}

void Cache::record_sample(RequestKind kind, const Outcome& outcome) {
  (void)outcome;
  if (!config_.record_time_series) return;
  RequestSample sample;
  sample.kind = kind;
  sample.hits = counters_.hits;
  sample.inserts = counters_.inserts;
  sample.deletes = counters_.deletes;
  sample.merges = counters_.merges;
  sample.cached_bytes = total_bytes_;
  sample.unique_bytes = unique_bytes();
  sample.cumulative_written = counters_.written_bytes;
  sample.cumulative_requested = counters_.requested_bytes;
  sample.image_count = images_.size();
  series_.record(sample);
}

}  // namespace landlord::core
