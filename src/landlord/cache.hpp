// The LANDLORD container cache — Algorithm 1 with LRU eviction.
//
// Given a stream of container specifications, the cache:
//   1. returns an existing image whose contents are a superset of the
//      spec (hit);
//   2. otherwise merges the spec into the closest cached image within
//      Jaccard distance α whose constraints are compatible, rewriting
//      that image (merge);
//   3. otherwise creates a fresh image exactly from the spec (insert);
// and evicts least-recently-used images whenever total cached bytes
// exceed the configured capacity (delete).
//
// α ∈ [0, 1] is the "globbiness": α = 0 merges nothing (pure LRU image
// cache), α = 1 accretes everything into one all-purpose image.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>

#include "landlord/eviction.hpp"
#include "util/arena.hpp"
#include "landlord/image.hpp"
#include "landlord/index.hpp"
#include "landlord/policy.hpp"
#include "landlord/stats.hpp"
#include "obs/obs.hpp"
#include "pkg/repository.hpp"
#include "spec/minhash.hpp"
#include "spec/specification.hpp"

namespace landlord::core {

struct CacheConfig {
  util::Bytes capacity = 1400 * util::kGiB;  ///< byte budget (paper: 1.4 TB)
  double alpha = 0.8;                        ///< merge threshold, in [0, 1]
  MergePolicy policy = MergePolicy::kBestFit;
  EvictionPolicy eviction = EvictionPolicy::kLru;
  /// Record the Fig. 5 per-request series (adds a cache-wide union per
  /// request; leave off for sweeps).
  bool record_time_series = false;
  /// MinHash/LSH parameters (used only by kMinHashLsh).
  std::size_t minhash_k = 128;
  std::size_t lsh_bands = 32;

  // ---- Image splitting (extension; §I lists "creates, merges, splits,
  // or deletes" as LANDLORD's repertoire). When a hit ships an image far
  // larger than the request — utilization below `split_utilization` —
  // the image is split along its merge lineage: one part exactly covers
  // the request, the other carries the remaining constituents. Off by
  // default to match the paper's simulated Algorithm 1.
  bool enable_split = false;
  double split_utilization = 0.25;   ///< requested/image byte ratio trigger
  std::uint32_t max_lineage = 12;    ///< lineage entries kept per image

  /// Idle time-to-live (extension): an image untouched for this many
  /// requests is dropped even when the cache is under budget — "without
  /// regular use, the bloated image will eventually be evicted" (§V).
  /// 0 disables idle eviction (paper behaviour: space pressure only).
  std::uint64_t max_idle_requests = 0;

  /// Sublinear decision path (extension): inverted package→image
  /// postings for superset hits, an ordered eviction index, and a
  /// spec-fingerprint memo (src/landlord/index.hpp). Decisions are
  /// bit-identical with the knob on or off — tests/landlord/
  /// decision_index_test.cpp replays identical traces through both and
  /// compares every outcome, counter, and final image. Off keeps the
  /// O(images) scans as the equivalence oracle.
  bool decision_index = true;

  /// Small-N hot path (extension): with decision_index on, superset
  /// lookups fall back to the linear scan while the cache (or shard)
  /// holds fewer than this many images — BENCH_decision.json shows the
  /// postings probe losing to the scan below a few hundred images. Both
  /// paths return the same image by construction (the ordered eviction
  /// index wins at every size and is unaffected), so the cutover never
  /// changes decisions. 0 always probes the index.
  std::size_t scan_cutover = 256;

  /// Delta merges (extension): when > 0, a merge that rewrites an image
  /// is charged only the *delta* — the bytes the merge added plus a
  /// manifest — instead of the paper's full rewrite ("the resulting
  /// image must be written out in its entirety", §VI), until the image
  /// has stacked this many delta generations; the next merge then
  /// repacks (full write, chain reset). Accounting only: decisions,
  /// placements, and every non-write counter are bit-identical with the
  /// knob on or off, and counters().full_rewrite_bytes always carries
  /// the paper's counterfactual charge (tests/landlord/
  /// delta_accounting_test.cpp and tests/sim/delta_oracle_test.cpp hold
  /// both paths to that). 0 keeps full-rewrite accounting.
  std::uint32_t delta_chain_cap = 0;
  /// Write charge for one delta manifest (header + entries, fsync'd
  /// alongside the new chunks).
  util::Bytes delta_manifest_bytes = 64 * util::kKiB;

  /// Concurrency (extension): number of shards the image namespace is
  /// partitioned across by core::ShardedCache. 1 (the default) keeps
  /// today's single-map behaviour; core::Landlord routes through a
  /// ShardedCache when shards > 1. With a single replay thread, any
  /// shard count produces bit-identical decisions to the sequential
  /// Cache (see tests/landlord/sharded_cache_test.cpp).
  std::uint32_t shards = 1;
};

class Cache {
 public:
  Cache(const pkg::Repository& repo, CacheConfig config);

  struct Outcome {
    RequestKind kind = RequestKind::kHit;
    ImageId image{};
    util::Bytes image_bytes = 0;  ///< size of the image the job will use
    bool split = false;  ///< a bloated image was split to serve this hit
    /// When split: id and pre-split size of the bloated image the part
    /// was carved out of. The remainder (if any) keeps this id at a
    /// bumped version, so a worker holding the *unsplit* image on disk
    /// can still be served from it if rebuilding the part fails
    /// (degradation ladder rung 3).
    ImageId split_from{};
    util::Bytes split_from_bytes = 0;
  };

  /// Algorithm 1: satisfies `spec`, mutating the cache as needed.
  /// The spec's package set must be over this cache's repository universe.
  Outcome request(const spec::Specification& spec);

  /// Re-admits an image from a persisted snapshot: contents and usage
  /// history are adopted without charging insert counters or write I/O
  /// (the image file already exists on disk). LRU recency follows the
  /// order of adoption. Used by core::restore_cache.
  ImageId adopt(spec::PackageSet contents,
                std::vector<spec::VersionConstraint> constraints,
                std::uint64_t hits, std::uint32_t merge_count,
                std::uint32_t version);

  // ---- Introspection ----
  [[nodiscard]] std::size_t image_count() const noexcept { return images_.size(); }
  [[nodiscard]] util::Bytes total_bytes() const noexcept { return total_bytes_; }
  /// Deduplicated footprint: bytes of the union of all image contents.
  [[nodiscard]] util::Bytes unique_bytes() const;
  /// unique/total, the paper's cache efficiency; 1 for an empty cache.
  [[nodiscard]] double cache_efficiency() const;
  [[nodiscard]] const CacheCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] const TimeSeries& time_series() const noexcept { return series_; }
  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::optional<Image> find(ImageId id) const;

  /// Registers a callback fired whenever an image's on-disk chain dies:
  /// the image leaves the cache (budget, idle, or split-empty eviction —
  /// not merges, which keep the image's id), or a split rewrote the
  /// remainder in full (the id stays; bytes reported as 0). The
  /// image-store owner uses it to drop the image's chunk chain. Fired
  /// after counters are updated; the callback must not re-enter the
  /// cache. nullptr detaches.
  using EvictionListener = std::function<void(ImageId, util::Bytes)>;
  void set_eviction_listener(EvictionListener listener) {
    eviction_listener_ = std::move(listener);
  }

  /// Attaches (or detaches, with nullptr) an observability bundle.
  /// Metric handles are resolved once here; the request hot path then
  /// only bumps relaxed atomics. Instrumentation never changes
  /// decisions: an attached cache replays bit-identically to a detached
  /// one. Non-owning; the bundle must outlive the cache or be detached.
  void set_observability(obs::Observability* observability);

  /// Visits every cached image (unspecified order).
  template <typename Fn>
  void for_each_image(Fn&& fn) const {
    for (const auto& [id, image] : images_) fn(image);
  }

  // ---- Read-only decision probes (benchmarks and oracles) ----
  /// The superset image the next request for `spec` would hit, without
  /// touching LRU stamps, counters, or the memo. With decision_index on
  /// this is the postings probe (which may lazily compact); off, the
  /// full scan — so the two paths can be timed and compared directly.
  [[nodiscard]] std::optional<ImageId> peek_superset(
      const spec::Specification& spec);
  /// The victim the next over-budget eviction would pick, or nullopt
  /// when only the just-served image remains.
  [[nodiscard]] std::optional<ImageId> peek_victim();

  /// Postings/eviction-index telemetry (zeros when decision_index off).
  [[nodiscard]] DecisionIndexStats index_stats() const {
    return dindex_ ? dindex_->stats() : DecisionIndexStats{};
  }
  /// Spec-memo telemetry (zeros when decision_index off).
  [[nodiscard]] SpecMemoStats memo_stats() const {
    return memo_ ? memo_->stats() : SpecMemoStats{};
  }
  /// Reconciles the decision index against a from-scratch rebuild;
  /// nullopt when consistent or the index is disabled.
  [[nodiscard]] std::optional<std::string> check_decision_index() const {
    if (!dindex_) return std::nullopt;
    return dindex_->reconcile(images_);
  }

 private:
  [[nodiscard]] ImageId next_id() noexcept { return ImageId{id_counter_++}; }

  /// Returns the id of the superset image the request would hit —
  /// memo, postings probe, or (knob off / empty spec) the full scan.
  [[nodiscard]] std::optional<ImageId> find_superset(const spec::Specification& spec);
  /// The naive O(images) superset scan — the oracle the index must match.
  [[nodiscard]] std::optional<ImageId> find_superset_scan(
      const spec::Specification& spec) const;
  /// The naive O(images) victim scan (skips the just-served stamp).
  [[nodiscard]] std::unordered_map<std::uint64_t, Image>::iterator
  find_victim_scan();

  /// Returns the best merge candidate per the configured policy, or
  /// nullopt when no compatible image lies within distance α.
  [[nodiscard]] std::optional<ImageId> find_merge_candidate(
      const spec::Specification& spec);

  void evict_over_budget();
  void evict_idle();
  /// Splits a bloated image along its lineage after a low-utilization
  /// hit; returns the id of the part satisfying `spec`.
  [[nodiscard]] ImageId split_image(ImageId id, const spec::Specification& spec);
  void record_sample(RequestKind kind, const Outcome& outcome);
  void index_insert(const Image& image);
  void index_erase(const Image& image);

  // Decision-index maintenance (no-ops when the knob is off). Structural
  // changes (insert/erase/update) bump the memo epoch; recency touches
  // do not — they cannot change any superset answer.
  void dindex_insert(const Image& image);
  void dindex_erase(const util::DynamicBitset& old_bits,
                    const EvictionKey& old_key);
  void dindex_update(const Image& image, const util::DynamicBitset& old_bits,
                     const EvictionKey& old_key);
  void dindex_touch(const EvictionKey& old_key, const Image& image);

  /// Incremental view of the cache-wide union: per-package reference
  /// counts plus the running deduplicated byte total. Maintained on
  /// every contents mutation so unique_bytes() is O(1) instead of
  /// O(images × universe) — record_sample used to recompute the union
  /// per request, dominating time-series runs.
  void ledger_add(const util::DynamicBitset& bits);
  void ledger_remove(const util::DynamicBitset& bits);
  void trace_eviction(const Image& victim, const char* reason);

  const pkg::Repository* repo_;
  CacheConfig config_;
  std::unordered_map<std::uint64_t, Image> images_;
  util::Bytes total_bytes_ = 0;
  std::uint64_t clock_ = 0;
  std::uint64_t id_counter_ = 0;
  CacheCounters counters_;
  TimeSeries series_;
  EvictionListener eviction_listener_;
  std::vector<std::uint32_t> ledger_refs_;  ///< per-package image refcount
  util::Bytes ledger_unique_ = 0;

  /// Per-request scratch (candidate lists and friends); reset at the top
  /// of request(), so steady-state requests never touch the global
  /// allocator for short-lived containers.
  util::ScratchArena arena_;

  /// Sublinear decision path (engaged iff config_.decision_index).
  /// DecisionIndex holds no pointer into images_ and SpecMemo sits
  /// behind a unique_ptr (it owns a mutex), so the Cache stays movable —
  /// Landlord::restore move-assigns a freshly restored Cache.
  std::optional<DecisionIndex> dindex_;
  std::unique_ptr<SpecMemo> memo_;

  /// Metric handles resolved at set_observability; null ⇒ no-op.
  struct Hooks {
    obs::Counter* requests_hit = nullptr;
    obs::Counter* requests_merge = nullptr;
    obs::Counter* requests_insert = nullptr;
    obs::Counter* evictions_budget = nullptr;
    obs::Counter* evictions_idle = nullptr;
    obs::Counter* evictions_split = nullptr;
    obs::Counter* splits = nullptr;
    obs::Counter* conflict_rejections = nullptr;
    obs::Histogram* candidate_scan = nullptr;
    obs::Histogram* request_bytes = nullptr;
    // Delta-merge CAS families (registered only when delta_chain_cap > 0).
    obs::Counter* cas_delta_merges = nullptr;
    obs::Counter* cas_repacks = nullptr;
    obs::Counter* cas_delta_bytes = nullptr;
    obs::Counter* cas_repack_bytes = nullptr;
    obs::Counter* cas_full_rewrite_bytes = nullptr;
    // Decision-index families (registered only when the knob is on).
    obs::Histogram* postings_probe = nullptr;
    obs::Counter* memo_hit = nullptr;
    obs::Counter* memo_miss = nullptr;
    obs::Counter* eviction_index_updates = nullptr;
    obs::EventTrace* trace = nullptr;
  };
  Hooks hooks_;

  // MinHash/LSH state (kMinHashLsh policy only).
  spec::MinHasher hasher_;
  spec::LshIndex lsh_;
  std::unordered_map<std::uint64_t, spec::MinHashSignature> signatures_;
};

}  // namespace landlord::core
