// Thread-safe cache adapter (single global mutex).
//
// A head node serves submissions from many users concurrently (§V:
// LANDLORD sits in the submission path of a batch or pilot-job system).
// Algorithm 1 mutates shared state on every request, so the adapter
// serialises requests behind a mutex — decision latency is microseconds
// (see bench/micro_ops); the expensive work (image materialisation)
// happens outside the lock in callers like core::Landlord.
//
// The single mutex caps Algorithm 1 throughput at one core. For
// multi-core decision throughput use core::ShardedCache
// (landlord/sharded.hpp), which partitions the namespace across
// per-shard mutexes; bench/micro_concurrent compares the two.
#pragma once

#include <mutex>

#include "landlord/cache.hpp"

namespace landlord::core {

class ConcurrentCache {
 public:
  ConcurrentCache(const pkg::Repository& repo, CacheConfig config)
      : cache_(repo, config) {}

  /// Thread-safe Algorithm 1 request.
  Cache::Outcome request(const spec::Specification& spec) {
    std::scoped_lock lock(mutex_);
    return cache_.request(spec);
  }

  /// Thread-safe snapshot of the counters.
  [[nodiscard]] CacheCounters counters() const {
    std::scoped_lock lock(mutex_);
    return cache_.counters();
  }

  [[nodiscard]] std::size_t image_count() const {
    std::scoped_lock lock(mutex_);
    return cache_.image_count();
  }

  [[nodiscard]] util::Bytes total_bytes() const {
    std::scoped_lock lock(mutex_);
    return cache_.total_bytes();
  }

  [[nodiscard]] util::Bytes unique_bytes() const {
    std::scoped_lock lock(mutex_);
    return cache_.unique_bytes();
  }

  [[nodiscard]] std::optional<Image> find(ImageId id) const {
    std::scoped_lock lock(mutex_);
    return cache_.find(id);
  }

  /// Runs `fn` with exclusive access to the underlying cache — for
  /// persistence snapshots and other multi-call inspections that must
  /// see one consistent state.
  template <typename Fn>
  auto with_exclusive(Fn&& fn) -> decltype(fn(std::declval<Cache&>())) {
    std::scoped_lock lock(mutex_);
    return fn(cache_);
  }

 private:
  mutable std::mutex mutex_;
  Cache cache_;
};

}  // namespace landlord::core
