// Eviction policies for the image cache.
//
// Algorithm 1 in the paper pairs merging with a conventional cache
// eviction scheme (its simulations behave "like a simple LRU-based
// cache" at α = 0). Which image to sacrifice when the byte budget is
// exceeded is an independent design axis; we provide the classic
// candidates so the ablation bench can quantify the choice:
//
//  * kLru          — least recently used (the paper's baseline)
//  * kLfu          — fewest lifetime hits (ties broken by LRU)
//  * kLargestFirst — biggest image first (frees space fastest, biased
//                    against merged/bloated images)
//  * kHitDensity   — lowest hits per byte (evicts cold bulk, keeps hot
//                    small images)
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/bytes.hpp"

namespace landlord::core {

enum class EvictionPolicy : std::uint8_t {
  kLru,
  kLfu,
  kLargestFirst,
  kHitDensity,
};

/// The fields a victim decision depends on, snapshotted from an Image.
/// Shared between the sequential Cache and the ShardedCache so both pick
/// bit-identical victims from identical states.
struct EvictionKey {
  std::uint64_t last_used = 0;
  std::uint64_t hits = 0;
  util::Bytes bytes = 0;
  std::uint64_t id = 0;
};

/// True iff `a` should be evicted before `b` under `policy`. Fully
/// deterministic: every policy falls through to the older LRU stamp and
/// finally the smaller image id, so victim choice never depends on hash
/// map iteration order (a precondition for the sharded/sequential
/// equivalence oracle).
[[nodiscard]] inline bool evict_before(EvictionPolicy policy,
                                       const EvictionKey& a,
                                       const EvictionKey& b) noexcept {
  switch (policy) {
    case EvictionPolicy::kLru:
      break;  // LRU/ID fallthrough below
    case EvictionPolicy::kLfu:
      if (a.hits != b.hits) return a.hits < b.hits;
      break;
    case EvictionPolicy::kLargestFirst:
      if (a.bytes != b.bytes) return a.bytes > b.bytes;
      break;
    case EvictionPolicy::kHitDensity: {
      const double ad = static_cast<double>(a.hits) /
                        static_cast<double>(std::max<util::Bytes>(1, a.bytes));
      const double bd = static_cast<double>(b.hits) /
                        static_cast<double>(std::max<util::Bytes>(1, b.bytes));
      if (ad != bd) return ad < bd;
      break;
    }
  }
  if (a.last_used != b.last_used) return a.last_used < b.last_used;
  return a.id < b.id;
}

[[nodiscard]] constexpr const char* to_string(EvictionPolicy policy) noexcept {
  switch (policy) {
    case EvictionPolicy::kLru: return "lru";
    case EvictionPolicy::kLfu: return "lfu";
    case EvictionPolicy::kLargestFirst: return "largest-first";
    case EvictionPolicy::kHitDensity: return "hit-density";
  }
  return "?";
}

}  // namespace landlord::core
