// Eviction policies for the image cache.
//
// Algorithm 1 in the paper pairs merging with a conventional cache
// eviction scheme (its simulations behave "like a simple LRU-based
// cache" at α = 0). Which image to sacrifice when the byte budget is
// exceeded is an independent design axis; we provide the classic
// candidates so the ablation bench can quantify the choice:
//
//  * kLru          — least recently used (the paper's baseline)
//  * kLfu          — fewest lifetime hits (ties broken by LRU)
//  * kLargestFirst — biggest image first (frees space fastest, biased
//                    against merged/bloated images)
//  * kHitDensity   — lowest hits per byte (evicts cold bulk, keeps hot
//                    small images)
#pragma once

#include <cstdint>

namespace landlord::core {

enum class EvictionPolicy : std::uint8_t {
  kLru,
  kLfu,
  kLargestFirst,
  kHitDensity,
};

[[nodiscard]] constexpr const char* to_string(EvictionPolicy policy) noexcept {
  switch (policy) {
    case EvictionPolicy::kLru: return "lru";
    case EvictionPolicy::kLfu: return "lfu";
    case EvictionPolicy::kLargestFirst: return "largest-first";
    case EvictionPolicy::kHitDensity: return "hit-density";
  }
  return "?";
}

}  // namespace landlord::core
