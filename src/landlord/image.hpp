// A concrete container image held in the LANDLORD cache.
#pragma once

#include <cstdint>
#include <vector>

#include "spec/constraint.hpp"
#include "spec/package_set.hpp"
#include "util/bytes.hpp"

namespace landlord::core {

/// Stable identity of a cached image; survives merges (the merged image
/// keeps the id of the image it replaced, matching Algorithm 1's
/// "Replace j in the cache with merge(s, j)").
enum class ImageId : std::uint64_t {};

[[nodiscard]] constexpr std::uint64_t to_value(ImageId id) noexcept {
  return static_cast<std::uint64_t>(id);
}

/// Sentinel for an image that was served to a job but never admitted to
/// the cache (degradation-ladder rung 2 builds the job's exact request
/// as a one-off). Never collides with a real id: real ids count up from
/// zero and would take centuries to wrap.
inline constexpr ImageId kUncachedImage{~std::uint64_t{0}};

[[nodiscard]] constexpr bool is_uncached(ImageId id) noexcept {
  return id == kUncachedImage;
}

struct Image {
  ImageId id{};
  spec::PackageSet contents;    ///< packages materialised in the image
  util::Bytes bytes = 0;        ///< on-disk size (sum of package sizes)
  std::uint64_t last_used = 0;  ///< logical LRU stamp (cache request clock)
  std::uint32_t merge_count = 0;  ///< how many specs were merged in
  std::uint64_t hits = 0;         ///< requests served by this image
  /// Bumped whenever the contents change (merge / split remainder), so
  /// downstream caches (worker nodes holding copies) can detect staleness.
  std::uint32_t version = 0;
  /// Delta generations stacked on this image's on-disk chain since its
  /// last full write (0 under the paper's full-rewrite accounting; reset
  /// by repacks and by splits, which rewrite both parts in full).
  std::uint32_t chain_depth = 0;
  /// Union of the version constraints of every spec merged into this
  /// image; future merge candidates must be compatible with these.
  std::vector<spec::VersionConstraint> constraints;
  /// The package sets of the constituent specifications merged into this
  /// image (bounded; oldest entries are coalesced). Splitting uses the
  /// lineage to carve a bloated image back into useful parts.
  std::vector<spec::PackageSet> lineage;
};

}  // namespace landlord::core
