#include "landlord/index.hpp"

#include <algorithm>
#include <bit>
#include <limits>

namespace landlord::core {

namespace {

/// Calls fn(bit index) for every set bit of `word`.
template <typename Fn>
void for_each_bit(std::uint64_t word, std::size_t base, Fn&& fn) {
  while (word != 0) {
    fn(base + static_cast<std::size_t>(std::countr_zero(word)));
    word &= word - 1;
  }
}

}  // namespace

void DecisionIndex::insert(const Image& image) {
  image.contents.bits().for_each_set(
      [&](std::size_t i) { postings_add(i, to_value(image.id)); });
  const bool inserted = order_.insert(eviction_key(image)).second;
  assert(inserted && "duplicate eviction key");
  (void)inserted;
  ++stats_.eviction_updates;
}

void DecisionIndex::erase(const util::DynamicBitset& old_bits,
                          const EvictionKey& old_key) {
  old_bits.for_each_set([&](std::size_t i) { postings_remove(i); });
  const auto erased = order_.erase(old_key);
  assert(erased == 1 && "eviction key not indexed");
  (void)erased;
  ++stats_.eviction_updates;
}

void DecisionIndex::update(const Image& image,
                           const util::DynamicBitset& old_bits,
                           const EvictionKey& old_key) {
  // Word-level diff: add packages that entered the contents, tombstone
  // those that left. Unchanged packages (the vast majority of a merge)
  // cost nothing.
  const auto& ow = old_bits.words();
  const auto& nw = image.contents.bits().words();
  assert(ow.size() == nw.size());
  const std::uint64_t id = to_value(image.id);
  for (std::size_t wi = 0; wi < nw.size(); ++wi) {
    if (ow[wi] == nw[wi]) continue;
    for_each_bit(nw[wi] & ~ow[wi], wi * 64,
                 [&](std::size_t i) { postings_add(i, id); });
    for_each_bit(ow[wi] & ~nw[wi], wi * 64,
                 [&](std::size_t i) { postings_remove(i); });
  }
  touch(old_key, eviction_key(image));
}

void DecisionIndex::touch(const EvictionKey& old_key,
                          const EvictionKey& new_key) {
  const auto erased = order_.erase(old_key);
  assert(erased == 1 && "eviction key not indexed");
  (void)erased;
  const bool inserted = order_.insert(new_key).second;
  assert(inserted && "duplicate eviction key");
  (void)inserted;
  ++stats_.eviction_updates;
}

void DecisionIndex::compact_list(std::size_t pkg, const ImageMap& images) {
  auto& list = postings_[pkg];
  const std::size_t before = list.size();
  std::erase_if(list, [&](std::uint64_t id) {
    const auto it = images.find(id);
    return it == images.end() || !it->second.contents.bits().test(pkg);
  });
  // A re-merged package can appear twice for one live image (tombstone +
  // fresh entry); the probe's min-selection is idempotent over
  // duplicates, but they must be dropped here so the stale accounting
  // stays exact: every removed entry corresponds to one past remove.
  std::sort(list.begin(), list.end());
  list.erase(std::unique(list.begin(), list.end()), list.end());
  assert(list.size() == refcounts_[pkg] && "postings/refcount drift");
  stale_entries_ -= before - list.size();
  ++stats_.postings_compactions;
}

std::optional<ImageId> DecisionIndex::find_superset(
    const spec::PackageSet& spec, const ImageMap& images,
    std::size_t* probe_len) {
  assert(!spec.empty() && "empty specs match everything; caller must scan");
  ++stats_.postings_probes;

  // Any superset of the spec contains every spec package, so the rarest
  // one has the shortest candidate list that is still guaranteed to
  // cover all supersets.
  std::size_t rarest = 0;
  std::uint32_t rarest_refs = std::numeric_limits<std::uint32_t>::max();
  spec.bits().for_each_set([&](std::size_t i) {
    if (refcounts_[i] < rarest_refs) {
      rarest_refs = refcounts_[i];
      rarest = i;
    }
  });
  if (probe_len != nullptr) *probe_len = 0;
  if (rarest_refs == 0) return std::nullopt;  // no image holds this package

  // Lazy hygiene, amortized against probes (the only moment the image
  // map is guaranteed consistent): rebuild a list drowning in
  // tombstones, and sweep everything when global staleness dominates.
  if (stale_entries_ > live_entries_ + 1024) {
    for (std::size_t p = 0; p < postings_.size(); ++p) {
      if (postings_[p].size() > refcounts_[p]) compact_list(p, images);
    }
  }
  auto& list = postings_[rarest];
  if (list.size() > 2 * static_cast<std::size_t>(rarest_refs) + 8) {
    compact_list(rarest, images);
  }

  const Image* best = nullptr;
  for (const std::uint64_t id : list) {
    const auto it = images.find(id);
    if (it == images.end()) continue;  // tombstone: image evicted
    const Image& image = it->second;
    // Stale entry: the package left this image (split remainder).
    if (!image.contents.bits().test(rarest)) continue;
    if (!spec.is_subset_of(image.contents)) continue;
    if (best == nullptr || image.bytes < best->bytes ||
        (image.bytes == best->bytes &&
         to_value(image.id) < to_value(best->id))) {
      best = &image;
    }
  }
  stats_.postings_probe_entries += list.size();
  if (probe_len != nullptr) *probe_len = list.size();
  if (best == nullptr) return std::nullopt;
  return best->id;
}

std::optional<EvictionKey> DecisionIndex::victim(std::uint64_t now) const {
  // begin() is the evict_before minimum; at most two images carry the
  // current stamp (the image just served, plus a split remainder), so
  // the skip loop is O(1) amortized.
  for (const EvictionKey& key : order_) {
    if (key.last_used == now) continue;
    return key;
  }
  return std::nullopt;
}

std::optional<std::string> DecisionIndex::reconcile(
    const ImageMap& images) const {
  // From-scratch truth: per-package live refcounts and eviction keys.
  std::vector<std::uint32_t> truth(refcounts_.size(), 0);
  for (const auto& [id, image] : images) {
    image.contents.bits().for_each_set([&](std::size_t i) { ++truth[i]; });
    if (order_.find(eviction_key(image)) == order_.end()) {
      return "eviction order lost image " + std::to_string(id);
    }
  }
  if (order_.size() != images.size()) {
    return "eviction order holds " + std::to_string(order_.size()) +
           " keys for " + std::to_string(images.size()) + " images";
  }
  for (std::size_t p = 0; p < truth.size(); ++p) {
    if (truth[p] != refcounts_[p]) {
      return "package " + std::to_string(p) + " refcount " +
             std::to_string(refcounts_[p]) + " != rebuilt " +
             std::to_string(truth[p]);
    }
    // Distinct live entries in the list must match the refcount; with
    // the counts equal, that proves every live (package, image) pair is
    // present — a probe can never miss a superset.
    std::vector<std::uint64_t> live;
    for (const std::uint64_t id : postings_[p]) {
      const auto it = images.find(id);
      if (it != images.end() && it->second.contents.bits().test(p)) {
        live.push_back(id);
      }
    }
    std::sort(live.begin(), live.end());
    live.erase(std::unique(live.begin(), live.end()), live.end());
    if (live.size() != refcounts_[p]) {
      return "package " + std::to_string(p) + " postings list has " +
             std::to_string(live.size()) + " live entries, refcount says " +
             std::to_string(refcounts_[p]);
    }
  }
  return std::nullopt;
}

std::optional<SpecMemo::Decision> SpecMemo::lookup(
    const spec::PackageSet& key) {
  const std::uint64_t now = epoch();
  const std::uint64_t fp = fingerprint(key);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(fp);
  if (it != entries_.end() && it->second.epoch == now &&
      it->second.key == key) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second.decision;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void SpecMemo::store(const spec::PackageSet& key, ImageId image,
                     std::size_t shard, std::uint64_t at_epoch) {
  if (at_epoch != epoch()) return;  // the world moved on mid-decision
  const std::uint64_t fp = fingerprint(key);
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.size() >= capacity_ && entries_.find(fp) == entries_.end()) {
    entries_.clear();
  }
  Entry& entry = entries_[fp];
  entry.epoch = at_epoch;
  entry.key = key;
  entry.decision = Decision{image, shard};
  stores_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace landlord::core
