// Sublinear decision-path indexes for the LANDLORD cache.
//
// Algorithm 1's hot path is executed once per submitted job, and the
// naive implementation is O(#images) per request twice over: the
// superset scan walks every cached image and eviction victim selection
// re-scans the whole map per evicted image. The paper's workload model
// (CVMFS-derived traces, §VI) is dominated by repeated and
// near-identical specs — exactly the regime where indexing and
// memoization pay off. Three structures, all guarded by
// CacheConfig::decision_index and all **bit-identical** to the scans
// they replace (docs/decision_index.md):
//
//  * Inverted postings index (package → image ids): any image containing
//    a spec must contain the spec's rarest package, so a superset lookup
//    exact-checks only that package's postings list instead of every
//    image. Per-package live refcounts pick the rarest; erasures leave
//    tombstones that are swept lazily during probes, so mutations stay
//    O(|contents|) and never touch other lists.
//
//  * Ordered eviction index: a std::set of EvictionKey ordered by
//    evict_before (a total order — every policy falls through to
//    last_used then id), so the global victim is begin() and each
//    last_used/hits touch is one erase+insert, O(log n).
//
//  * Spec memo: fingerprint of the request bitset → last hit decision,
//    epoch-stamped. Any structural mutation (insert/erase/contents
//    rewrite — NOT recency touches, which cannot change a superset
//    answer) bumps the epoch and invalidates every entry at once, so
//    back-to-back identical specs (the common HTC case) short-circuit
//    to a hit without any probe. Entries keep a full copy of the key
//    set, so a fingerprint collision can never alias two specs.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "landlord/eviction.hpp"
#include "landlord/image.hpp"
#include "spec/package_set.hpp"
#include "util/checksum.hpp"

namespace landlord::core {

/// The fields a victim decision reads, snapshotted from an Image.
[[nodiscard]] inline EvictionKey eviction_key(const Image& image) noexcept {
  return EvictionKey{image.last_used, image.hits, image.bytes,
                     to_value(image.id)};
}

/// Telemetry for the postings + eviction index (never read on the
/// decision path; kept outside CacheCounters so indexed and scan runs
/// produce identical counter snapshots).
struct DecisionIndexStats {
  std::uint64_t postings_probes = 0;        ///< superset lookups served
  std::uint64_t postings_probe_entries = 0; ///< postings entries scanned
  std::uint64_t postings_compactions = 0;   ///< lazy list compactions
  std::uint64_t eviction_updates = 0;       ///< ordered-index mutations
};

/// Per-image-map decision index: inverted postings for superset hits
/// plus the ordered eviction set. Deliberately holds no pointer to the
/// image map (core::Cache is moved wholesale on restore); every query
/// takes the map as a parameter and the two must be mutated in lockstep
/// — reconcile() verifies that against a from-scratch rebuild.
class DecisionIndex {
 public:
  using ImageMap = std::unordered_map<std::uint64_t, Image>;

  DecisionIndex(std::size_t universe, EvictionPolicy policy)
      : policy_(policy),
        postings_(universe),
        refcounts_(universe, 0),
        order_(KeyLess{policy}) {}

  /// Registers a new image: one postings entry per package, one
  /// eviction key. O(|contents| + log n).
  void insert(const Image& image);

  /// Unregisters an image by its *current* contents and key.
  void erase(const Image& image) {
    erase(image.contents.bits(), eviction_key(image));
  }
  /// Unregisters by explicit pre-mutation state — required when the
  /// image was rewritten (or moved away) before the index could see it.
  void erase(const util::DynamicBitset& old_bits, const EvictionKey& old_key);

  /// After a contents/bytes rewrite (merge, split remainder): word-diffs
  /// old vs new contents, adds/retires only the changed packages, and
  /// replaces the eviction key. O(|Δcontents| + log n).
  void update(const Image& image, const util::DynamicBitset& old_bits,
              const EvictionKey& old_key);

  /// Recency/hits touch: the eviction key moved but contents did not.
  void touch(const EvictionKey& old_key, const EvictionKey& new_key);

  /// The smallest-bytes (then lowest-id) image whose contents ⊇ `spec`,
  /// bit-identical to the full scan. Probes only the rarest spec
  /// package's postings list; `probe_len` (optional) receives the number
  /// of entries scanned. May lazily compact tombstoned lists. `spec`
  /// must be non-empty (an empty spec matches everything; callers scan).
  [[nodiscard]] std::optional<ImageId> find_superset(
      const spec::PackageSet& spec, const ImageMap& images,
      std::size_t* probe_len = nullptr);

  /// The eviction victim the full scan would pick: the evict_before
  /// minimum among images not stamped `now` (never evict the image just
  /// served). O(log n) amortized — at most two images carry the current
  /// stamp (a hit, plus a split remainder).
  [[nodiscard]] std::optional<EvictionKey> victim(std::uint64_t now) const;

  [[nodiscard]] const DecisionIndexStats& stats() const noexcept {
    return stats_;
  }

  /// Cross-checks refcounts, postings contents, and the eviction order
  /// against a from-scratch rebuild of `images`. Returns a description
  /// of the first divergence, or nullopt when consistent. O(images ×
  /// |contents| + postings entries); for tests and chaos suites.
  [[nodiscard]] std::optional<std::string> reconcile(
      const ImageMap& images) const;

 private:
  struct KeyLess {
    EvictionPolicy policy;
    bool operator()(const EvictionKey& a, const EvictionKey& b) const noexcept {
      return evict_before(policy, a, b);
    }
  };

  void postings_add(std::size_t pkg, std::uint64_t id) {
    postings_[pkg].push_back(id);
    ++refcounts_[pkg];
    ++live_entries_;
  }
  void postings_remove(std::size_t pkg) {
    assert(refcounts_[pkg] > 0 && "postings refcount underflow");
    --refcounts_[pkg];
    --live_entries_;
    ++stale_entries_;  // the list entry stays behind as a tombstone
  }
  /// Drops dead/duplicate entries from one list. Safe only while the
  /// image map is consistent (probe time), never mid-erase.
  void compact_list(std::size_t pkg, const ImageMap& images);

  EvictionPolicy policy_;
  std::vector<std::vector<std::uint64_t>> postings_;  ///< package → image ids
  std::vector<std::uint32_t> refcounts_;  ///< live images containing pkg
  std::uint64_t live_entries_ = 0;        ///< Σ refcounts_
  std::uint64_t stale_entries_ = 0;       ///< tombstones not yet swept
  std::set<EvictionKey, KeyLess> order_;  ///< every image's current key
  DecisionIndexStats stats_;
};

struct SpecMemoStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t epoch = 0;  ///< structural mutations seen so far
};

/// Epoch-invalidated memo of recent superset decisions. Thread-safe:
/// epoch bumps are a relaxed atomic increment (writers already hold a
/// shard lock for the mutation itself); lookup/store take a private
/// mutex. An entry is served only when its stored epoch is current AND
/// its stored key equals the probe set bit for bit, so a memo hit is
/// exactly the answer a fresh scan would produce.
class SpecMemo {
 public:
  explicit SpecMemo(std::size_t capacity = 1024) : capacity_(capacity) {}

  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_relaxed);
  }
  /// Structural cache mutation: every cached decision is now suspect.
  void bump() noexcept { epoch_.fetch_add(1, std::memory_order_relaxed); }

  struct Decision {
    ImageId image{};
    std::size_t shard = 0;
  };

  [[nodiscard]] std::optional<Decision> lookup(const spec::PackageSet& key);

  /// Records a hit decision made at `epoch`. Dropped when the epoch has
  /// already moved on (the decision may no longer hold). When full, the
  /// table is cleared wholesale — entries are epoch-gated anyway, so
  /// eviction sophistication buys nothing.
  void store(const spec::PackageSet& key, ImageId image, std::size_t shard,
             std::uint64_t at_epoch);

  [[nodiscard]] SpecMemoStats stats() const {
    SpecMemoStats out;
    out.hits = hits_.load(std::memory_order_relaxed);
    out.misses = misses_.load(std::memory_order_relaxed);
    out.stores = stores_.load(std::memory_order_relaxed);
    out.epoch = epoch();
    return out;
  }

 private:
  [[nodiscard]] static std::uint64_t fingerprint(
      const spec::PackageSet& key) noexcept {
    // Four independent FNV-1a lanes over interleaved words, folded at
    // the end. The single-chain version serialized ~word_count dependent
    // multiplies (the dominant cost of a memo probe at 151 words); four
    // chains give the CPU independent multiply streams. Collisions are
    // harmless — lookup() compares the full key — so the exact mixing
    // function is free to change.
    std::uint64_t h0 = util::kFnv1aOffset ^ static_cast<std::uint64_t>(key.size());
    std::uint64_t h1 = util::kFnv1aOffset ^ 0x9e3779b97f4a7c15ULL;
    std::uint64_t h2 = util::kFnv1aOffset ^ 0xc2b2ae3d27d4eb4fULL;
    std::uint64_t h3 = util::kFnv1aOffset ^ 0x165667b19e3779f9ULL;
    const auto& words = key.bits().words();
    const std::size_t n = words.size();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      h0 = (h0 ^ words[i]) * util::kFnv1aPrime;
      h1 = (h1 ^ words[i + 1]) * util::kFnv1aPrime;
      h2 = (h2 ^ words[i + 2]) * util::kFnv1aPrime;
      h3 = (h3 ^ words[i + 3]) * util::kFnv1aPrime;
    }
    for (; i < n; ++i) h0 = (h0 ^ words[i]) * util::kFnv1aPrime;
    std::uint64_t h = (h0 ^ (h1 >> 32 | h1 << 32)) * util::kFnv1aPrime;
    h = (h ^ (h2 >> 16 | h2 << 48)) * util::kFnv1aPrime;
    h = (h ^ (h3 >> 48 | h3 << 16)) * util::kFnv1aPrime;
    return h;
  }

  struct Entry {
    std::uint64_t epoch = 0;
    spec::PackageSet key;  ///< full copy: collisions must not alias
    Decision decision;
  };

  std::size_t capacity_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> stores_{0};
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Entry> entries_;
};

}  // namespace landlord::core
