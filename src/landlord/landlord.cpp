#include "landlord/landlord.hpp"

namespace landlord::core {

JobPlacement Landlord::submit(const spec::Specification& spec) {
  const Cache::Outcome outcome =
      sharded_ ? sharded_->request(spec) : cache_.request(spec);

  JobPlacement placement;
  placement.kind = outcome.kind;
  placement.image = outcome.image;
  placement.image_bytes = outcome.image_bytes;
  placement.requested_bytes = spec.bytes(*repo_);

  if (outcome.kind != RequestKind::kHit || outcome.split) {
    // Materialise (or re-materialise after a merge or split) the image
    // the cache decided on. The builder's persistent chunk cache means only content
    // not fetched before is downloaded; the whole image is still written.
    auto image = sharded_ ? sharded_->find(outcome.image) : cache_.find(outcome.image);
    if (image.has_value()) {
      spec::Specification materialised{image->contents};
      // The builder mutates its chunk cache; one lock keeps concurrent
      // sharded submissions safe without slowing the hit path above.
      std::scoped_lock lock(build_mutex_);
      const auto built = builder_.build(materialised);
      placement.prep_seconds = built.prep_seconds;
      prep_seconds_.fetch_add(built.prep_seconds, std::memory_order_relaxed);
    }
  }
  return placement;
}

}  // namespace landlord::core
