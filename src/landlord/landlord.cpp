#include "landlord/landlord.hpp"

#include <istream>

namespace landlord::core {

std::optional<shrinkwrap::BuiltImage> Landlord::build_with_retry(
    const spec::Specification& spec, fault::FaultOp op, double& backoff_seconds,
    std::uint32_t& retries) {
  for (std::uint32_t attempt = 0;; ++attempt) {
    auto built = builder_.try_build(spec, injector_, op);
    if (built.ok()) return std::move(built).value();
    degraded_.build_failures.fetch_add(1, std::memory_order_relaxed);
    if (attempt >= backoff_.max_retries) return std::nullopt;
    // Wait (modelled seconds) before retrying; jitter decorrelates a
    // fleet of head nodes hammering the same failed mirror.
    const double delay = backoff_.delay_for(attempt, backoff_rng_);
    backoff_seconds += delay;
    ++retries;
    degraded_.retries.fetch_add(1, std::memory_order_relaxed);
    degraded_.backoffs.fetch_add(1, std::memory_order_relaxed);
    degraded_.backoff_seconds.fetch_add(delay, std::memory_order_relaxed);
  }
}

JobPlacement Landlord::submit(const spec::Specification& spec) {
  Cache::Outcome outcome =
      sharded_ ? sharded_->request(spec) : cache_.request(spec);

  JobPlacement placement;
  placement.kind = outcome.kind;
  placement.image = outcome.image;
  placement.image_bytes = outcome.image_bytes;
  placement.requested_bytes = spec.bytes(*repo_);

  // Plain hits ship an image that already exists on disk: no build, no
  // fault surface.
  if (outcome.kind == RequestKind::kHit && !outcome.split) return placement;

  if (submit_test_hook_) submit_test_hook_();

  // Materialise (or re-materialise after a merge or split) the image the
  // cache decided on. The builder's persistent chunk cache means only
  // content not fetched before is downloaded; the whole image is still
  // written.
  auto image = sharded_ ? sharded_->find(outcome.image) : cache_.find(outcome.image);
  if (!image.has_value()) {
    // TOCTOU: a concurrent eviction removed the decided image between
    // request() and find(). The build used to be silently skipped here,
    // under-counting prep cost. Count it and retry the decision once —
    // the spec re-enters Algorithm 1 and gets a fresh placement.
    degraded_.toctou_retries.fetch_add(1, std::memory_order_relaxed);
    outcome = sharded_ ? sharded_->request(spec) : cache_.request(spec);
    placement.kind = outcome.kind;
    placement.image = outcome.image;
    placement.image_bytes = outcome.image_bytes;
    if (outcome.kind == RequestKind::kHit && !outcome.split) return placement;
    image = sharded_ ? sharded_->find(outcome.image) : cache_.find(outcome.image);
    if (!image.has_value()) {
      // Evicted again under extreme churn: report a degraded placement
      // rather than looping against a cache thrashing faster than we
      // can build.
      placement.degraded = true;
      return placement;
    }
  }

  spec::Specification materialised{image->contents};
  // The builder mutates its chunk cache; one lock keeps concurrent
  // sharded submissions safe without slowing the hit path above.
  std::scoped_lock lock(build_mutex_);
  double backoff_seconds = 0.0;
  std::uint32_t retries = 0;

  // Rung 1: build what the cache decided. A fresh insert is a cold
  // download; merges and split rebuilds rewrite an existing image.
  const fault::FaultOp op = outcome.kind == RequestKind::kInsert
                                ? fault::FaultOp::kBuilderDownload
                                : fault::FaultOp::kMergeRewrite;
  auto built = build_with_retry(materialised, op, backoff_seconds, retries);

  if (!built.has_value() && outcome.kind == RequestKind::kMerge) {
    // Rung 2: the merged image cannot be rewritten. Build an exact,
    // uncached image of just this spec so the job still runs; the cached
    // (decision-layer) merge stays and can be rebuilt by a later job.
    degraded_.fallback_exact_builds.fetch_add(1, std::memory_order_relaxed);
    placement.degraded = true;
    built = build_with_retry(spec, fault::FaultOp::kBuilderDownload,
                             backoff_seconds, retries);
    if (built.has_value()) {
      placement.kind = RequestKind::kInsert;
      placement.image_bytes = placement.requested_bytes;
    }
  }

  if (!built.has_value() && outcome.kind == RequestKind::kHit && outcome.split) {
    // Rung 3: the split part cannot be rebuilt, but the unsplit image
    // file is still on disk and is a superset of the spec — serve from
    // it with no rebuild at all.
    degraded_.fallback_unsplit_hits.fetch_add(1, std::memory_order_relaxed);
    placement.degraded = true;
    placement.prep_seconds = backoff_seconds;
    placement.build_retries = retries;
    prep_seconds_.fetch_add(backoff_seconds, std::memory_order_relaxed);
    return placement;
  }

  if (!built.has_value()) {
    // Ladder exhausted: surface an error placement instead of aborting.
    // The decision layer already recorded the operation; the job's
    // scheduler sees failed=true and can re-queue.
    degraded_.error_placements.fetch_add(1, std::memory_order_relaxed);
    placement.failed = true;
    placement.error = std::string("image build failed after ") +
                      std::to_string(retries) + " retries (" +
                      fault::to_string(op) + ")";
    placement.prep_seconds = backoff_seconds;
    placement.build_retries = retries;
    prep_seconds_.fetch_add(backoff_seconds, std::memory_order_relaxed);
    return placement;
  }

  placement.prep_seconds = built->prep_seconds + backoff_seconds;
  placement.build_retries = retries;
  prep_seconds_.fetch_add(placement.prep_seconds, std::memory_order_relaxed);
  return placement;
}

util::Result<std::size_t> Landlord::restore(std::istream& in,
                                            RestoreReport* report) {
  RestoreReport local;
  RestoreReport& out = report != nullptr ? *report : local;

  std::size_t adopted = 0;
  if (sharded_) {
    auto fresh = std::make_unique<ShardedCache>(*repo_, sharded_->config());
    auto result = restore_cache_into(in, *repo_, *fresh, &out);
    if (!result.ok()) return result.error();
    adopted = result.value();
    sharded_ = std::move(fresh);
  } else {
    auto result = restore_cache(in, *repo_, cache_.config(), &out);
    if (!result.ok()) return result.error();
    adopted = result.value().image_count();
    cache_ = std::move(result).value();
  }
  degraded_.recovered_images.fetch_add(adopted, std::memory_order_relaxed);
  degraded_.lost_records.fetch_add(out.records_lost, std::memory_order_relaxed);
  return adopted;
}

fault::DegradedCounters Landlord::degraded() const {
  fault::DegradedCounters out;
  out.build_failures = degraded_.build_failures.load(std::memory_order_relaxed);
  out.retries = degraded_.retries.load(std::memory_order_relaxed);
  out.backoffs = degraded_.backoffs.load(std::memory_order_relaxed);
  out.backoff_seconds = degraded_.backoff_seconds.load(std::memory_order_relaxed);
  out.fallback_exact_builds =
      degraded_.fallback_exact_builds.load(std::memory_order_relaxed);
  out.fallback_unsplit_hits =
      degraded_.fallback_unsplit_hits.load(std::memory_order_relaxed);
  out.error_placements = degraded_.error_placements.load(std::memory_order_relaxed);
  out.toctou_retries = degraded_.toctou_retries.load(std::memory_order_relaxed);
  out.recovered_images = degraded_.recovered_images.load(std::memory_order_relaxed);
  out.lost_records = degraded_.lost_records.load(std::memory_order_relaxed);
  return out;
}

}  // namespace landlord::core
