#include "landlord/landlord.hpp"

#include <istream>

namespace landlord::core {

void Landlord::wire_eviction_listener() {
  if (!builder_.delta_enabled()) return;
  // The listener fires under the cache's internal lock; ImageStore's own
  // mutex is a leaf, so the drop cannot deadlock or re-enter the cache.
  auto on_evict = [this](ImageId id, util::Bytes) {
    builder_.image_store().drop(to_value(id));
  };
  if (sharded_) {
    sharded_->set_eviction_listener(on_evict);
  } else {
    cache_.set_eviction_listener(on_evict);
  }
}

std::optional<shrinkwrap::BuiltImage> Landlord::build_with_retry(
    const spec::Specification& spec, fault::FaultOp op, double& backoff_seconds,
    std::uint32_t& retries, std::uint64_t image_key) {
  for (std::uint32_t attempt = 0;; ++attempt) {
    auto built = builder_.try_build(spec, injector_, op, image_key);
    if (built.ok()) return std::move(built).value();
    degraded_.build_failures.fetch_add(1, std::memory_order_relaxed);
    if (attempt >= backoff_.max_retries) return std::nullopt;
    // Wait (modelled seconds) before retrying; jitter decorrelates a
    // fleet of head nodes hammering the same failed mirror.
    const double delay = backoff_.delay_for(attempt, backoff_rng_);
    backoff_seconds += delay;
    ++retries;
    degraded_.retries.fetch_add(1, std::memory_order_relaxed);
    degraded_.backoffs.fetch_add(1, std::memory_order_relaxed);
    degraded_.backoff_seconds.fetch_add(delay, std::memory_order_relaxed);
    if (hooks_.build_retries != nullptr) hooks_.build_retries->inc();
    if (hooks_.backoff_seconds != nullptr) hooks_.backoff_seconds->add(delay);
    if (hooks_.trace != nullptr) {
      obs::TraceEvent event;
      event.kind = obs::EventKind::kBuildRetry;
      event.detail = fault::to_string(op);
      event.aux = attempt;
      event.seconds = delay;
      hooks_.trace->record(event);
    }
  }
}

void Landlord::set_observability(obs::Observability* observability) {
  obs_ = observability;
  cache_.set_observability(observability);
  if (sharded_) sharded_->set_observability(observability);
  if (observability == nullptr) {
    hooks_ = Hooks{};
    return;
  }
  obs::Registry& reg = observability->registry;
  constexpr const char* kRungHelp =
      "Degradation-ladder rungs taken by submit() (docs/fault_model.md).";
  hooks_.rung_hit =
      &reg.counter("landlord_submit_rung_total", {{"rung", "hit"}}, kRungHelp);
  hooks_.rung_build =
      &reg.counter("landlord_submit_rung_total", {{"rung", "build"}}, kRungHelp);
  hooks_.rung_exact = &reg.counter("landlord_submit_rung_total",
                                   {{"rung", "exact-fallback"}}, kRungHelp);
  hooks_.rung_unsplit = &reg.counter("landlord_submit_rung_total",
                                     {{"rung", "unsplit-fallback"}}, kRungHelp);
  hooks_.rung_error =
      &reg.counter("landlord_submit_rung_total", {{"rung", "error"}}, kRungHelp);
  hooks_.toctou_retries =
      &reg.counter("landlord_submit_toctou_retries_total", {},
                   "Decided images evicted between request() and find().");
  hooks_.build_retries =
      &reg.counter("landlord_submit_build_retries_total", {},
                   "Failed image builds retried after backoff.");
  hooks_.backoff_seconds =
      &reg.gauge("landlord_submit_backoff_seconds_total", {},
                 "Modelled seconds spent in retry backoff.");
  hooks_.prep_seconds =
      &reg.histogram("landlord_submit_prep_seconds", obs::default_seconds_buckets(),
                     {}, "Modelled image-preparation seconds per placement.");
  hooks_.invariant_violations =
      &reg.counter("landlord_placement_invariant_violations_total", {},
                   "Placements that failed the placement_violation() check.");
  hooks_.trace = &observability->trace;
}

JobPlacement Landlord::submit(const spec::Specification& spec) {
  JobPlacement placement = submit_impl(spec);
  if (hooks_.prep_seconds != nullptr) {
    hooks_.prep_seconds->observe(placement.prep_seconds);
  }
  // Self-check the reporting invariants. Sequential decision layer only:
  // under a sharded cache a racing eviction can invalidate find() after
  // a perfectly sound placement, which would be a false positive.
  if (hooks_.invariant_violations != nullptr && !sharded_) {
    if (auto violation = placement_violation(*this, placement)) {
      hooks_.invariant_violations->inc();
      if (hooks_.trace != nullptr) {
        obs::TraceEvent event;
        event.kind = obs::EventKind::kInvariantViolation;
        event.detail = to_string(placement.kind);
        event.image = to_value(placement.image);
        event.bytes = placement.image_bytes;
        event.degraded = placement.degraded;
        event.failed = placement.failed;
        hooks_.trace->record(event);
      }
    }
  }
  return placement;
}

JobPlacement Landlord::submit_impl(const spec::Specification& spec) {
  Cache::Outcome outcome =
      sharded_ ? sharded_->request(spec) : cache_.request(spec);

  JobPlacement placement;
  placement.kind = outcome.kind;
  placement.image = outcome.image;
  placement.image_bytes = outcome.image_bytes;
  placement.requested_bytes = spec.bytes(*repo_);

  // Plain hits ship an image that already exists on disk: no build, no
  // fault surface.
  if (outcome.kind == RequestKind::kHit && !outcome.split) {
    if (hooks_.rung_hit != nullptr) hooks_.rung_hit->inc();
    return placement;
  }

  if (submit_test_hook_) submit_test_hook_();

  // Materialise (or re-materialise after a merge or split) the image the
  // cache decided on. The builder's persistent chunk cache means only
  // content not fetched before is downloaded; the whole image is still
  // written.
  auto image = sharded_ ? sharded_->find(outcome.image) : cache_.find(outcome.image);
  if (!image.has_value()) {
    // TOCTOU: a concurrent eviction removed the decided image between
    // request() and find(). The build used to be silently skipped here,
    // under-counting prep cost. Count it and retry the decision once —
    // the spec re-enters Algorithm 1 and gets a fresh placement.
    degraded_.toctou_retries.fetch_add(1, std::memory_order_relaxed);
    if (hooks_.toctou_retries != nullptr) hooks_.toctou_retries->inc();
    if (hooks_.trace != nullptr) {
      obs::TraceEvent event;
      event.kind = obs::EventKind::kToctouRetry;
      event.image = to_value(outcome.image);
      hooks_.trace->record(event);
    }
    outcome = sharded_ ? sharded_->request(spec) : cache_.request(spec);
    placement.kind = outcome.kind;
    placement.image = outcome.image;
    placement.image_bytes = outcome.image_bytes;
    if (outcome.kind == RequestKind::kHit && !outcome.split) {
      if (hooks_.rung_hit != nullptr) hooks_.rung_hit->inc();
      return placement;
    }
    image = sharded_ ? sharded_->find(outcome.image) : cache_.find(outcome.image);
    if (!image.has_value()) {
      // Evicted again under extreme churn: report a degraded placement
      // rather than looping against a cache thrashing faster than we
      // can build.
      placement.degraded = true;
      return placement;
    }
  }

  spec::Specification materialised{image->contents};
  // The builder mutates its chunk cache; one lock keeps concurrent
  // sharded submissions safe without slowing the hit path above.
  std::scoped_lock lock(build_mutex_);
  double backoff_seconds = 0.0;
  std::uint32_t retries = 0;

  // Rung 1: build what the cache decided. A fresh insert is a cold
  // download; merges and split rebuilds rewrite an existing image.
  const fault::FaultOp op = outcome.kind == RequestKind::kInsert
                                ? fault::FaultOp::kBuilderDownload
                                : fault::FaultOp::kMergeRewrite;
  // Rung-1 builds materialise a cached image: key the delta store by its
  // decision-layer id so merges stack deltas on its chain. Fallback
  // rungs build one-off images and stay unkeyed (full-write accounting).
  auto built = build_with_retry(materialised, op, backoff_seconds, retries,
                                to_value(outcome.image));

  if (!built.has_value() && outcome.kind == RequestKind::kMerge) {
    // Rung 2: the merged image cannot be rewritten. Build an exact,
    // uncached image of just this spec so the job still runs; the cached
    // (decision-layer) merge stays and can be rebuilt by a later job.
    degraded_.fallback_exact_builds.fetch_add(1, std::memory_order_relaxed);
    if (hooks_.rung_exact != nullptr) hooks_.rung_exact->inc();
    placement.degraded = true;
    built = build_with_retry(spec, fault::FaultOp::kBuilderDownload,
                             backoff_seconds, retries);
    if (built.has_value()) {
      // The job runs in a one-off image that was never admitted to the
      // cache — report the sentinel, not the cached merged image the
      // placement previously (wrongly) pointed at.
      placement.kind = RequestKind::kInsert;
      placement.image = kUncachedImage;
      placement.image_bytes = placement.requested_bytes;
      if (hooks_.trace != nullptr) {
        obs::TraceEvent event;
        event.kind = obs::EventKind::kFallbackExact;
        event.image = to_value(kUncachedImage);
        event.bytes = placement.requested_bytes;
        event.aux = to_value(outcome.image);  // the merge that failed
        event.degraded = true;
        hooks_.trace->record(event);
      }
    }
  }

  if (!built.has_value() && outcome.kind == RequestKind::kHit && outcome.split) {
    // Rung 3: the split part cannot be rebuilt, but the unsplit image
    // file is still on disk and is a superset of the spec — serve from
    // it. Report that image's identity and size, not the split part the
    // worker never received.
    degraded_.fallback_unsplit_hits.fetch_add(1, std::memory_order_relaxed);
    if (hooks_.rung_unsplit != nullptr) hooks_.rung_unsplit->inc();
    placement.degraded = true;
    placement.image = outcome.split_from;
    placement.image_bytes = outcome.split_from_bytes;
    placement.prep_seconds = backoff_seconds;
    placement.build_retries = retries;
    prep_seconds_.fetch_add(backoff_seconds, std::memory_order_relaxed);
    if (hooks_.trace != nullptr) {
      obs::TraceEvent event;
      event.kind = obs::EventKind::kFallbackUnsplit;
      event.image = to_value(outcome.split_from);
      event.bytes = outcome.split_from_bytes;
      event.aux = to_value(outcome.image);  // the part that failed to build
      event.degraded = true;
      hooks_.trace->record(event);
    }
    return placement;
  }

  if (!built.has_value()) {
    // Ladder exhausted: surface an error placement instead of aborting.
    // The decision layer already recorded the operation; the job's
    // scheduler sees failed=true and can re-queue.
    degraded_.error_placements.fetch_add(1, std::memory_order_relaxed);
    if (hooks_.rung_error != nullptr) hooks_.rung_error->inc();
    placement.failed = true;
    placement.error = std::string("image build failed after ") +
                      std::to_string(retries) + " retries (" +
                      fault::to_string(op) + ")";
    placement.prep_seconds = backoff_seconds;
    placement.build_retries = retries;
    prep_seconds_.fetch_add(backoff_seconds, std::memory_order_relaxed);
    if (hooks_.trace != nullptr) {
      obs::TraceEvent event;
      event.kind = obs::EventKind::kErrorPlacement;
      event.image = to_value(outcome.image);
      event.aux = retries;
      event.seconds = backoff_seconds;
      event.failed = true;
      event.detail = fault::to_string(op);
      hooks_.trace->record(event);
    }
    return placement;
  }

  if (!placement.degraded && hooks_.rung_build != nullptr) {
    hooks_.rung_build->inc();
  }
  placement.content_digest = built->content_digest;
  placement.bytes_written = built->written_bytes;
  placement.prep_seconds = built->prep_seconds + backoff_seconds;
  placement.build_retries = retries;
  prep_seconds_.fetch_add(placement.prep_seconds, std::memory_order_relaxed);
  return placement;
}

std::optional<std::string> placement_violation(const Landlord& landlord,
                                               const JobPlacement& placement) {
  if (placement.failed) {
    if (placement.error.empty()) return "failed placement carries no error message";
    return std::nullopt;
  }
  if (is_uncached(placement.image)) {
    if (!placement.degraded) {
      return "uncached-image sentinel on a non-degraded placement";
    }
    if (placement.image_bytes != placement.requested_bytes) {
      return "uncached exact build reports " + std::to_string(placement.image_bytes) +
             " bytes, expected the requested " +
             std::to_string(placement.requested_bytes);
    }
    return std::nullopt;
  }
  const auto image = landlord.find(placement.image);
  if (!image.has_value()) {
    if (placement.degraded) return std::nullopt;  // served from disk, since gone
    return "placement reports image " + std::to_string(to_value(placement.image)) +
           " which is not resident in the cache";
  }
  if (placement.degraded) {
    // A resident image on a degraded placement is only legal on rung 3,
    // where the (shrunk) remainder keeps the unsplit image's id; its
    // cached size then legitimately differs from the on-disk copy served.
    if (placement.kind == RequestKind::kInsert) {
      return "degraded insert placement claims resident cache image " +
             std::to_string(to_value(placement.image)) +
             " instead of the uncached sentinel";
    }
    return std::nullopt;
  }
  if (image->bytes != placement.image_bytes) {
    return "placement reports " + std::to_string(placement.image_bytes) +
           " bytes for image " + std::to_string(to_value(placement.image)) +
           " but the cache holds " + std::to_string(image->bytes);
  }
  return std::nullopt;
}

util::Result<std::size_t> Landlord::restore(std::istream& in,
                                            RestoreReport* report) {
  RestoreReport local;
  RestoreReport& out = report != nullptr ? *report : local;

  std::size_t adopted = 0;
  if (sharded_) {
    auto fresh = std::make_unique<ShardedCache>(*repo_, sharded_->config());
    auto result = restore_cache_into(in, *repo_, *fresh, &out);
    if (!result.ok()) return result.error();
    adopted = result.value();
    sharded_ = std::move(fresh);
  } else {
    auto result = restore_cache(in, *repo_, cache_.config(), &out);
    if (!result.ok()) return result.error();
    adopted = result.value().image_count();
    cache_ = std::move(result).value();
  }
  degraded_.recovered_images.fetch_add(adopted, std::memory_order_relaxed);
  degraded_.lost_records.fetch_add(out.records_lost, std::memory_order_relaxed);
  // The fresh decision layer numbers images from zero again, so stale
  // delta chains keyed by pre-crash ids would collide with (and corrupt
  // the accounting of) newly admitted images. Restored images are full
  // on-disk files; their chains restart at a base write. The listener
  // must also be re-wired — it was bound to the replaced cache.
  builder_.image_store().clear();
  wire_eviction_listener();
  // The decision layer was just replaced wholesale; without this the
  // observability attachment would silently vanish across a restart.
  if (obs_ != nullptr) {
    set_observability(obs_);
    if (hooks_.trace != nullptr) {
      obs::TraceEvent event;
      event.kind = obs::EventKind::kRestore;
      event.aux = adopted;             // images re-admitted
      event.bytes = out.records_lost;  // snapshot records lost
      hooks_.trace->record(event);
    }
  }
  return adopted;
}

fault::DegradedCounters Landlord::degraded() const {
  fault::DegradedCounters out;
  out.build_failures = degraded_.build_failures.load(std::memory_order_relaxed);
  out.retries = degraded_.retries.load(std::memory_order_relaxed);
  out.backoffs = degraded_.backoffs.load(std::memory_order_relaxed);
  out.backoff_seconds = degraded_.backoff_seconds.load(std::memory_order_relaxed);
  out.fallback_exact_builds =
      degraded_.fallback_exact_builds.load(std::memory_order_relaxed);
  out.fallback_unsplit_hits =
      degraded_.fallback_unsplit_hits.load(std::memory_order_relaxed);
  out.error_placements = degraded_.error_placements.load(std::memory_order_relaxed);
  out.toctou_retries = degraded_.toctou_retries.load(std::memory_order_relaxed);
  out.recovered_images = degraded_.recovered_images.load(std::memory_order_relaxed);
  out.lost_records = degraded_.lost_records.load(std::memory_order_relaxed);
  return out;
}

}  // namespace landlord::core
