// LANDLORD facade: the job-wrapper entry point.
//
// "On job submission, LANDLORD first scans its configured cache directory
// for existing images that are 'close' to the job's specification,
// creates/updates images in the cache as necessary, and finally launches
// the job inside the prepared container." (§V, LANDLORD Deployment)
//
// Landlord couples the decision layer (core::Cache, Algorithm 1) with the
// materialisation layer (shrinkwrap::ImageBuilder) so callers get both
// the placement decision and the modelled preparation cost.
//
// Failure story (docs/fault_model.md): when a fault::FaultInjector is
// attached, image builds can fail. submit() retries with exponential
// backoff + jitter (modelled seconds, charged to prep time), then walks
// a degradation ladder — a failed merge rewrite falls back to an exact
// uncached image of just the spec, a failed split rebuild serves the
// still-on-disk unsplit image, and only full exhaustion surfaces an
// error placement (JobPlacement::failed) instead of aborting the job.
// With no injector (or an empty plan) every path is bit-identical to
// the fault-free code.
#pragma once

#include <atomic>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "fault/fault.hpp"
#include "landlord/cache.hpp"
#include "landlord/persist.hpp"
#include "landlord/sharded.hpp"
#include "shrinkwrap/builder.hpp"

namespace landlord::core {

/// What submit() decided and what it cost.
struct JobPlacement {
  RequestKind kind = RequestKind::kHit;  ///< hit / merge / insert
  /// Image the job runs in. kUncachedImage when a degraded exact build
  /// (ladder rung 2) produced a one-off image that was never admitted to
  /// the cache; the id of the *unsplit* on-disk image when a failed
  /// split rebuild fell back to serving it (rung 3).
  ImageId image{};
  util::Bytes image_bytes = 0;           ///< size of the image actually served
  util::Bytes requested_bytes = 0;       ///< size the spec actually needed
  double prep_seconds = 0.0;             ///< 0 for hits; build model + backoff
  std::uint32_t build_retries = 0;       ///< failed build attempts retried
  bool degraded = false;  ///< served via a fallback rung (docs/fault_model.md)
  bool failed = false;    ///< degradation ladder exhausted: no image prepared
  std::string error;      ///< why, when failed (empty otherwise)
  /// Content digest of the image materialised for this placement (0 when
  /// nothing was built — plain hits, rung-3 fallbacks, failures). The
  /// delta-equivalence oracle compares these across accounting modes.
  std::uint64_t content_digest = 0;
  /// Bytes the build wrote to image storage (full image, or the delta
  /// receipt when the builder's delta store is enabled). 0 when nothing
  /// was built.
  util::Bytes bytes_written = 0;
};

class Landlord {
 public:
  /// With `cache_config.shards <= 1` (the default) the decision layer is
  /// the sequential core::Cache — today's behaviour, bit for bit. With
  /// `shards > 1` requests route through a core::ShardedCache and
  /// submit() may be called from multiple threads concurrently (the
  /// builder is serialised behind its own mutex; decisions are not).
  /// `delta` enables chunk-level delta storage for built images: rung-1
  /// builds are recorded in the builder's ImageStore keyed by their
  /// decision-layer image id, and evictions drop the corresponding
  /// chains. Decisions are unaffected (tests/sim/delta_oracle_test.cpp).
  Landlord(const pkg::Repository& repo, CacheConfig cache_config,
           shrinkwrap::FileTreeParams tree_params = {},
           shrinkwrap::BuildTimeModel time_model = {},
           shrinkwrap::BuildNoiseModel noise = {},
           shrinkwrap::DeltaBuildConfig delta = {})
      : repo_(&repo),
        cache_(repo, cache_config),
        sharded_(cache_config.shards > 1
                     ? std::make_unique<ShardedCache>(repo, cache_config)
                     : nullptr),
        builder_(repo, tree_params, time_model, noise, delta) {
    wire_eviction_listener();
  }

  /// Prepares a suitable container image for the job's specification and
  /// reports the placement. Image (re)builds are charged through the
  /// Shrinkwrap time model; hits cost nothing. Build failures (injected
  /// via set_fault_injector) are retried, degraded, and — only when the
  /// whole ladder is exhausted — reported as a failed placement.
  [[nodiscard]] JobPlacement submit(const spec::Specification& spec);

  /// Attaches a fault oracle consulted by every image build and, via the
  /// persistence wrappers, snapshot I/O. Non-owning; pass nullptr to
  /// detach. Not thread-safe against in-flight submit() calls.
  void set_fault_injector(fault::FaultInjector* injector) noexcept {
    injector_ = injector;
    if (injector != nullptr) {
      backoff_rng_.reseed(injector->plan().seed ^ 0xbacc0ffULL);
    }
  }
  /// Attaches an observability bundle to this facade and to whichever
  /// decision layer is active (metric handles resolve once; the hot path
  /// bumps relaxed atomics). Survives restore(): the fresh decision
  /// layer is re-attached automatically. Pass nullptr to detach.
  /// Instrumentation never perturbs placements. Not thread-safe against
  /// in-flight submit() calls.
  void set_observability(obs::Observability* observability);

  /// Replaces the retry/backoff policy for failed builds.
  void set_backoff_policy(fault::BackoffPolicy policy) noexcept {
    backoff_ = policy;
  }
  [[nodiscard]] const fault::BackoffPolicy& backoff_policy() const noexcept {
    return backoff_;
  }

  /// Replaces the decision-layer state from a cache snapshot — the
  /// head-node restart path (image files and the builder's chunk cache
  /// live on disk and survive the crash; decision state comes back from
  /// the last checkpoint). v2 snapshots recover their valid prefix; the
  /// report (optional) says what was lost. Returns the number of images
  /// re-admitted. Not thread-safe against concurrent submit() calls.
  util::Result<std::size_t> restore(std::istream& in,
                                    RestoreReport* report = nullptr);

  /// The sequential decision layer. Meaningful only when shards <= 1;
  /// sharded deployments read through counters()/find()/sharded().
  [[nodiscard]] const Cache& cache() const noexcept { return cache_; }
  /// The sharded decision layer, or nullptr when shards <= 1.
  [[nodiscard]] const ShardedCache* sharded() const noexcept { return sharded_.get(); }
  [[nodiscard]] const shrinkwrap::ImageBuilder& builder() const noexcept {
    return builder_;
  }
  [[nodiscard]] const pkg::Repository& repository() const noexcept { return *repo_; }

  /// Decision-layer reads that dispatch to whichever cache is active.
  [[nodiscard]] CacheCounters counters() const {
    return sharded_ ? sharded_->counters() : cache_.counters();
  }
  [[nodiscard]] std::size_t image_count() const {
    return sharded_ ? sharded_->image_count() : cache_.image_count();
  }
  [[nodiscard]] util::Bytes total_bytes() const {
    return sharded_ ? sharded_->total_bytes() : cache_.total_bytes();
  }
  [[nodiscard]] util::Bytes unique_bytes() const {
    return sharded_ ? sharded_->unique_bytes() : cache_.unique_bytes();
  }
  [[nodiscard]] std::optional<Image> find(ImageId id) const {
    return sharded_ ? sharded_->find(id) : cache_.find(id);
  }
  /// Reconciles the active decision layer's index (postings refcounts,
  /// postings contents, eviction order) against a from-scratch rebuild.
  /// nullopt when consistent or CacheConfig::decision_index is off; the
  /// chaos suites call this after every crash/restore cycle.
  [[nodiscard]] std::optional<std::string> check_decision_index() const {
    return sharded_ ? sharded_->check_decision_index()
                    : cache_.check_decision_index();
  }

  /// Total modelled seconds spent preparing images so far (builds plus
  /// backoff waits).
  [[nodiscard]] double total_prep_seconds() const noexcept {
    return prep_seconds_.load(std::memory_order_relaxed);
  }

  /// Degraded-mode telemetry snapshot (retries, backoffs, fallbacks,
  /// recovered/lost snapshot records) — the fault-path companion of
  /// counters().
  [[nodiscard]] fault::DegradedCounters degraded() const;

  /// Test-only: runs between the placement decision and the image
  /// lookup, so tests can deterministically open the TOCTOU window that
  /// a concurrent eviction would (tests/landlord/fault_test.cpp).
  void set_submit_test_hook(std::function<void()> hook) {
    submit_test_hook_ = std::move(hook);
  }

 private:
  /// submit() minus the invariant self-check and prep histogram.
  [[nodiscard]] JobPlacement submit_impl(const spec::Specification& spec);

  /// Builds `spec` under build_mutex_, retrying per backoff_ while the
  /// injector keeps failing the `op` class. Accumulates modelled waits
  /// into `backoff_seconds` and retry counts into `retries`.
  [[nodiscard]] std::optional<shrinkwrap::BuiltImage> build_with_retry(
      const spec::Specification& spec, fault::FaultOp op,
      double& backoff_seconds, std::uint32_t& retries,
      std::uint64_t image_key = shrinkwrap::kNoImageKey);

  /// Connects the active decision layer's eviction stream to the
  /// builder's delta store so evicted images release their chunk chains.
  /// No-op (no listener installed) when delta storage is disabled.
  void wire_eviction_listener();

  const pkg::Repository* repo_;
  Cache cache_;
  std::unique_ptr<ShardedCache> sharded_;
  shrinkwrap::ImageBuilder builder_;
  std::mutex build_mutex_;  ///< serialises builder_ under concurrent submit()
  std::atomic<double> prep_seconds_ = 0.0;

  fault::FaultInjector* injector_ = nullptr;  ///< non-owning; may be null
  fault::BackoffPolicy backoff_;
  util::Rng backoff_rng_{0xbacc0ffULL};  ///< jitter stream; under build_mutex_
  std::function<void()> submit_test_hook_;

  /// Monotone degraded-mode counters (relaxed atomics: telemetry only).
  struct AtomicDegraded {
    std::atomic<std::uint64_t> build_failures{0};
    std::atomic<std::uint64_t> retries{0};
    std::atomic<std::uint64_t> backoffs{0};
    std::atomic<double> backoff_seconds{0.0};
    std::atomic<std::uint64_t> fallback_exact_builds{0};
    std::atomic<std::uint64_t> fallback_unsplit_hits{0};
    std::atomic<std::uint64_t> error_placements{0};
    std::atomic<std::uint64_t> toctou_retries{0};
    std::atomic<std::uint64_t> recovered_images{0};
    std::atomic<std::uint64_t> lost_records{0};
  };
  AtomicDegraded degraded_;

  obs::Observability* obs_ = nullptr;  ///< non-owning; kept for restore()

  /// Metric handles resolved at set_observability; null ⇒ no-op.
  struct Hooks {
    obs::Counter* rung_hit = nullptr;      ///< plain hit, nothing to build
    obs::Counter* rung_build = nullptr;    ///< rung 1: decided image built
    obs::Counter* rung_exact = nullptr;    ///< rung 2: exact uncached build
    obs::Counter* rung_unsplit = nullptr;  ///< rung 3: unsplit on-disk hit
    obs::Counter* rung_error = nullptr;    ///< ladder exhausted
    obs::Counter* toctou_retries = nullptr;
    obs::Counter* build_retries = nullptr;
    obs::Gauge* backoff_seconds = nullptr;
    obs::Histogram* prep_seconds = nullptr;
    obs::Counter* invariant_violations = nullptr;
    obs::EventTrace* trace = nullptr;
  };
  Hooks hooks_;
};

/// Placement-field invariants every submit() result must satisfy:
///   * a failed placement carries an error message;
///   * the uncached sentinel appears only on degraded placements and
///     reports exactly the requested bytes (rung 2 builds the request);
///   * a non-degraded placement's image id resolves in the cache and its
///     reported size matches the cached image;
///   * a degraded kInsert placement never claims a resident cache image
///     (the rung-2 fallback, by construction, bypassed the cache).
/// A degraded id that no longer resolves is legal — the unsplit image a
/// rung-3 fallback served may since have been fully consumed or evicted;
/// the worker's on-disk copy is what matters.
/// Returns a description of the violation, or nullopt when sound. Used
/// by Landlord's own self-check (when observability is attached, with
/// the sequential decision layer) and by the chaos/fault test suites.
[[nodiscard]] std::optional<std::string> placement_violation(
    const Landlord& landlord, const JobPlacement& placement);

}  // namespace landlord::core
