// LANDLORD facade: the job-wrapper entry point.
//
// "On job submission, LANDLORD first scans its configured cache directory
// for existing images that are 'close' to the job's specification,
// creates/updates images in the cache as necessary, and finally launches
// the job inside the prepared container." (§V, LANDLORD Deployment)
//
// Landlord couples the decision layer (core::Cache, Algorithm 1) with the
// materialisation layer (shrinkwrap::ImageBuilder) so callers get both
// the placement decision and the modelled preparation cost.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "landlord/cache.hpp"
#include "landlord/sharded.hpp"
#include "shrinkwrap/builder.hpp"

namespace landlord::core {

/// What submit() decided and what it cost.
struct JobPlacement {
  RequestKind kind = RequestKind::kHit;  ///< hit / merge / insert
  ImageId image{};                       ///< image the job runs in
  util::Bytes image_bytes = 0;           ///< size of that image
  util::Bytes requested_bytes = 0;       ///< size the spec actually needed
  double prep_seconds = 0.0;             ///< 0 for hits; build model otherwise
};

class Landlord {
 public:
  /// With `cache_config.shards <= 1` (the default) the decision layer is
  /// the sequential core::Cache — today's behaviour, bit for bit. With
  /// `shards > 1` requests route through a core::ShardedCache and
  /// submit() may be called from multiple threads concurrently (the
  /// builder is serialised behind its own mutex; decisions are not).
  Landlord(const pkg::Repository& repo, CacheConfig cache_config,
           shrinkwrap::FileTreeParams tree_params = {},
           shrinkwrap::BuildTimeModel time_model = {})
      : repo_(&repo),
        cache_(repo, cache_config),
        sharded_(cache_config.shards > 1
                     ? std::make_unique<ShardedCache>(repo, cache_config)
                     : nullptr),
        builder_(repo, tree_params, time_model) {}

  /// Prepares a suitable container image for the job's specification and
  /// reports the placement. Image (re)builds are charged through the
  /// Shrinkwrap time model; hits cost nothing.
  [[nodiscard]] JobPlacement submit(const spec::Specification& spec);

  /// The sequential decision layer. Meaningful only when shards <= 1;
  /// sharded deployments read through counters()/find()/sharded().
  [[nodiscard]] const Cache& cache() const noexcept { return cache_; }
  /// The sharded decision layer, or nullptr when shards <= 1.
  [[nodiscard]] const ShardedCache* sharded() const noexcept { return sharded_.get(); }
  [[nodiscard]] const shrinkwrap::ImageBuilder& builder() const noexcept {
    return builder_;
  }
  [[nodiscard]] const pkg::Repository& repository() const noexcept { return *repo_; }

  /// Decision-layer reads that dispatch to whichever cache is active.
  [[nodiscard]] CacheCounters counters() const {
    return sharded_ ? sharded_->counters() : cache_.counters();
  }
  [[nodiscard]] std::size_t image_count() const {
    return sharded_ ? sharded_->image_count() : cache_.image_count();
  }
  [[nodiscard]] util::Bytes total_bytes() const {
    return sharded_ ? sharded_->total_bytes() : cache_.total_bytes();
  }
  [[nodiscard]] util::Bytes unique_bytes() const {
    return sharded_ ? sharded_->unique_bytes() : cache_.unique_bytes();
  }
  [[nodiscard]] std::optional<Image> find(ImageId id) const {
    return sharded_ ? sharded_->find(id) : cache_.find(id);
  }

  /// Total modelled seconds spent preparing images so far.
  [[nodiscard]] double total_prep_seconds() const noexcept {
    return prep_seconds_.load(std::memory_order_relaxed);
  }

 private:
  const pkg::Repository* repo_;
  Cache cache_;
  std::unique_ptr<ShardedCache> sharded_;
  shrinkwrap::ImageBuilder builder_;
  std::mutex build_mutex_;  ///< serialises builder_ under concurrent submit()
  std::atomic<double> prep_seconds_ = 0.0;
};

}  // namespace landlord::core
