// LANDLORD facade: the job-wrapper entry point.
//
// "On job submission, LANDLORD first scans its configured cache directory
// for existing images that are 'close' to the job's specification,
// creates/updates images in the cache as necessary, and finally launches
// the job inside the prepared container." (§V, LANDLORD Deployment)
//
// Landlord couples the decision layer (core::Cache, Algorithm 1) with the
// materialisation layer (shrinkwrap::ImageBuilder) so callers get both
// the placement decision and the modelled preparation cost.
#pragma once

#include <string>

#include "landlord/cache.hpp"
#include "shrinkwrap/builder.hpp"

namespace landlord::core {

/// What submit() decided and what it cost.
struct JobPlacement {
  RequestKind kind = RequestKind::kHit;  ///< hit / merge / insert
  ImageId image{};                       ///< image the job runs in
  util::Bytes image_bytes = 0;           ///< size of that image
  util::Bytes requested_bytes = 0;       ///< size the spec actually needed
  double prep_seconds = 0.0;             ///< 0 for hits; build model otherwise
};

class Landlord {
 public:
  Landlord(const pkg::Repository& repo, CacheConfig cache_config,
           shrinkwrap::FileTreeParams tree_params = {},
           shrinkwrap::BuildTimeModel time_model = {})
      : repo_(&repo),
        cache_(repo, cache_config),
        builder_(repo, tree_params, time_model) {}

  /// Prepares a suitable container image for the job's specification and
  /// reports the placement. Image (re)builds are charged through the
  /// Shrinkwrap time model; hits cost nothing.
  [[nodiscard]] JobPlacement submit(const spec::Specification& spec);

  [[nodiscard]] const Cache& cache() const noexcept { return cache_; }
  [[nodiscard]] const shrinkwrap::ImageBuilder& builder() const noexcept {
    return builder_;
  }
  [[nodiscard]] const pkg::Repository& repository() const noexcept { return *repo_; }

  /// Total modelled seconds spent preparing images so far.
  [[nodiscard]] double total_prep_seconds() const noexcept { return prep_seconds_; }

 private:
  const pkg::Repository* repo_;
  Cache cache_;
  shrinkwrap::ImageBuilder builder_;
  double prep_seconds_ = 0.0;
};

}  // namespace landlord::core
