#include "landlord/persist.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "util/checksum.hpp"

namespace landlord::core {

namespace {

constexpr std::string_view kMagicV1 = "landlord-cache v1";
constexpr std::string_view kMagicV2 = "landlord-cache v2";

std::vector<std::string_view> split_words(std::string_view line) {
  std::vector<std::string_view> words;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) words.push_back(line.substr(start, i - start));
  }
  return words;
}

template <typename T>
bool parse_number(std::string_view token, T& out) {
  auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc{} && ptr == token.data() + token.size();
}

bool parse_hex(std::string_view token, std::uint64_t& out) {
  auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out, 16);
  return ec == std::errc{} && ptr == token.data() + token.size();
}

std::string to_hex(std::uint64_t value) {
  char buffer[17];
  auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value, 16);
  return std::string(buffer, ptr);
}

/// One parsed snapshot image, ready for adoption into either cache kind.
struct Record {
  spec::PackageSet contents;
  std::vector<spec::VersionConstraint> constraints;
  std::uint64_t hits = 0;
  std::uint32_t merge_count = 0;
  std::uint32_t version = 0;
};

/// Serialises one image's record lines (no check line) into `out`,
/// returning the exact bytes so v2 can checksum them.
std::string record_lines(const Image& image, std::size_t ordinal,
                         const pkg::Repository& repo) {
  std::ostringstream lines;
  lines << "image " << image.hits << ' ' << image.merge_count << ' '
        << image.version;
  image.contents.for_each([&](pkg::PackageId id) { lines << ' ' << repo[id].key(); });
  lines << '\n';
  for (const auto& constraint : image.constraints) {
    lines << "constraint " << ordinal << ' ' << constraint.package
          << spec::to_string(constraint.op) << constraint.version << '\n';
  }
  return std::move(lines).str();
}

/// Writes the shared snapshot body from a pre-collected image list.
void write_snapshot(std::ostream& out, std::vector<Image> images,
                    const pkg::Repository& repo, util::Bytes total_bytes,
                    SnapshotFormat format) {
  out << (format == SnapshotFormat::kV2 ? kMagicV2 : kMagicV1) << '\n';
  out << "# " << images.size() << " images, " << total_bytes << " bytes\n";
  // Stable order: by LRU stamp, so restore reproduces recency.
  std::sort(images.begin(), images.end(), [](const Image& a, const Image& b) {
    if (a.last_used != b.last_used) return a.last_used < b.last_used;
    return to_value(a.id) < to_value(b.id);
  });
  std::uint64_t chain = util::kFnv1aOffset;
  std::size_t ordinal = 0;
  for (const auto& image : images) {
    const std::string lines = record_lines(image, ordinal, repo);
    out << lines;
    if (format == SnapshotFormat::kV2) {
      out << "check " << ordinal << ' ' << to_hex(util::fnv1a64(lines)) << '\n';
      chain = util::fnv1a64(lines, chain);
    }
    ++ordinal;
  }
  if (format == SnapshotFormat::kV2) {
    out << "end " << images.size() << ' ' << to_hex(chain) << '\n';
  }
}

/// Everything a restore learns from parsing: the adoptable prefix, the
/// salvage report, and — for v1 strict failures — a fatal error that
/// aborts the whole restore.
struct Parsed {
  std::vector<Record> records;
  RestoreReport report;
  std::optional<util::Error> fatal;
};

/// Parses one `image` directive's words into a record. Returns an error
/// message (no line prefix) on failure.
std::optional<std::string> parse_image_words(
    const std::vector<std::string_view>& words, const pkg::Repository& repo,
    Record& out) {
  if (words.size() < 4) {
    return "expected: image <hits> <merges> <version> <key>...";
  }
  out.contents = spec::PackageSet(repo.size());
  if (!parse_number(words[1], out.hits) ||
      !parse_number(words[2], out.merge_count) ||
      !parse_number(words[3], out.version)) {
    return "bad image counters";
  }
  for (std::size_t w = 4; w < words.size(); ++w) {
    const auto id = repo.find(words[w]);
    if (!id) return "unknown package key '" + std::string(words[w]) + "'";
    out.contents.insert(*id);
  }
  return std::nullopt;
}

/// v1 body: strict — the first problem fails the whole restore.
void parse_v1(std::istream& in, const pkg::Repository& repo, Parsed& parsed,
              std::size_t line_no) {
  std::string line;
  auto fail = [&](std::string what) {
    parsed.report.corrupted = true;
    parsed.report.error = "line " + std::to_string(line_no) + ": " + what;
    parsed.fatal = util::Error{parsed.report.error};
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    auto words = split_words(line);
    if (words.empty() || words.front().front() == '#') continue;

    if (words.front() == "image") {
      Record record;
      if (auto err = parse_image_words(words, repo, record)) {
        return fail(std::move(*err));
      }
      parsed.records.push_back(std::move(record));
    } else if (words.front() == "constraint") {
      if (words.size() != 3) {
        return fail("expected: constraint <ordinal> <expr>");
      }
      std::size_t ordinal = 0;
      if (!parse_number(words[1], ordinal) || ordinal >= parsed.records.size()) {
        return fail("constraint references unknown image");
      }
      auto constraint = spec::parse_constraint(words[2]);
      if (!constraint) return fail(constraint.error().message);
      parsed.records[ordinal].constraints.push_back(std::move(constraint).value());
    } else {
      return fail("unknown directive '" + std::string(words.front()) + "'");
    }
  }
}

/// Identity of a record for duplicate detection: the contents bitset.
/// A valid snapshot can never hold two images with the same contents
/// (insert/merge always reuses the superset), so a repeat is corruption.
std::uint64_t contents_fingerprint(const spec::PackageSet& contents) {
  const auto& words = contents.bits().words();
  return util::fnv1a64(std::string_view(
      reinterpret_cast<const char*>(words.data()), words.size() * 8));
}

/// v2 body: lenient — stops at the first bad record, keeps the checked
/// prefix, and counts how many image records the tail declared.
void parse_v2(std::istream& in, const pkg::Repository& repo, Parsed& parsed,
              std::size_t line_no) {
  std::string line;
  Record pending;
  std::string pending_blob;  ///< exact bytes of the record being assembled
  bool has_pending = false;
  bool saw_end = false;
  std::size_t images_seen = 0;
  std::uint64_t chain = util::kFnv1aOffset;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> seen_contents;

  auto fail = [&](std::string what) {
    parsed.report.corrupted = true;
    parsed.report.error = "line " + std::to_string(line_no) + ": " + what;
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    auto words = split_words(line);
    if (words.empty() || words.front().front() == '#') continue;

    if (words.front() == "image") {
      ++images_seen;
      if (has_pending) {
        fail("image record missing its check line");
        break;
      }
      if (auto err = parse_image_words(words, repo, pending)) {
        fail(std::move(*err));
        break;
      }
      pending_blob = line + '\n';
      has_pending = true;
    } else if (words.front() == "constraint") {
      if (!has_pending || words.size() != 3) {
        fail("constraint outside an open image record");
        break;
      }
      std::size_t ordinal = 0;
      if (!parse_number(words[1], ordinal) || ordinal != parsed.records.size()) {
        fail("constraint references the wrong image record");
        break;
      }
      auto constraint = spec::parse_constraint(words[2]);
      if (!constraint) {
        fail(constraint.error().message);
        break;
      }
      pending.constraints.push_back(std::move(constraint).value());
      pending_blob += line + '\n';
    } else if (words.front() == "check") {
      std::size_t ordinal = 0;
      std::uint64_t digest = 0;
      if (!has_pending || words.size() != 3 ||
          !parse_number(words[1], ordinal) || !parse_hex(words[2], digest) ||
          ordinal != parsed.records.size()) {
        fail("malformed check line");
        break;
      }
      if (digest != util::fnv1a64(pending_blob)) {
        fail("record " + std::to_string(ordinal) +
             " checksum mismatch (corrupted image record)");
        break;
      }
      // The record is internally consistent — now reject it if an
      // accepted record already has these exact contents (a replayed or
      // doubled write; adopting both would violate the cache invariant).
      const std::uint64_t finger = contents_fingerprint(pending.contents);
      bool duplicate = false;
      for (std::size_t prior : seen_contents[finger]) {
        if (parsed.records[prior].contents == pending.contents) {
          fail("duplicate image record (ordinal " + std::to_string(ordinal) +
               " repeats ordinal " + std::to_string(prior) + ")");
          duplicate = true;
          break;
        }
      }
      if (duplicate) break;
      seen_contents[finger].push_back(parsed.records.size());
      chain = util::fnv1a64(pending_blob, chain);
      parsed.records.push_back(std::move(pending));
      pending = Record{};
      has_pending = false;
    } else if (words.front() == "end") {
      std::size_t count = 0;
      std::uint64_t digest = 0;
      if (has_pending || words.size() != 3 || !parse_number(words[1], count) ||
          !parse_hex(words[2], digest) || count != parsed.records.size() ||
          digest != chain) {
        fail("malformed or mismatched end trailer");
        break;
      }
      saw_end = true;
      break;
    } else {
      fail("unknown directive '" + std::string(words.front()) + "'");
      break;
    }
  }

  if (saw_end) {
    // A clean trailer covers every declared record, so nothing was lost
    // — but bytes after it mean a writer appended past the snapshot (or
    // two snapshots were concatenated). The restored prefix is intact;
    // flag the file so the operator knows it is not what save_cache
    // wrote. Blank lines are tolerated (trailing-newline artifacts).
    while (std::getline(in, line)) {
      ++line_no;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (split_words(line).empty()) continue;
      fail("trailing data after 'end' trailer");
      break;
    }
    parsed.report.records_lost = 0;
    return;
  }
  if (!parsed.report.corrupted) {
    parsed.report.truncated = true;
    parsed.report.error = has_pending
                              ? "snapshot truncated inside image record " +
                                    std::to_string(parsed.records.size())
                              : "snapshot truncated: missing 'end' trailer";
  }
  // Count the image records the unrecovered tail declared, so the report
  // can say exactly how much was lost, not just that something was.
  while (std::getline(in, line)) {
    if (line.rfind("image ", 0) == 0 || line.rfind("image\t", 0) == 0) {
      ++images_seen;
    }
  }
  parsed.report.records_lost = images_seen - parsed.records.size();
}

/// Parses either snapshot format (dispatch on the magic line).
Parsed parse_snapshot(std::istream& in, const pkg::Repository& repo) {
  Parsed parsed;
  std::string line;
  std::size_t line_no = 0;
  if (!std::getline(in, line)) {
    parsed.report.corrupted = true;
    parsed.report.error = "empty cache snapshot";
    parsed.fatal = util::Error{parsed.report.error};
    return parsed;
  }
  ++line_no;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line == kMagicV1) {
    parsed.report.format = 1;
    parse_v1(in, repo, parsed, line_no);
  } else if (line == kMagicV2) {
    parsed.report.format = 2;
    parse_v2(in, repo, parsed, line_no);
  } else {
    parsed.report.corrupted = true;
    parsed.report.error = "line 1: bad magic (expected '" +
                          std::string(kMagicV1) + "' or '" +
                          std::string(kMagicV2) + "')";
    parsed.fatal = util::Error{parsed.report.error};
  }
  // A fatal parse restores nothing, however far it got before failing.
  parsed.report.images_restored =
      parsed.fatal.has_value() ? 0 : parsed.records.size();
  return parsed;
}

}  // namespace

void save_cache(std::ostream& out, const Cache& cache, const pkg::Repository& repo,
                SnapshotFormat format) {
  std::vector<Image> images;
  cache.for_each_image([&images](const Image& image) { images.push_back(image); });
  write_snapshot(out, std::move(images), repo, cache.total_bytes(), format);
}

void save_cache(std::ostream& out, const ShardedCache& cache,
                const pkg::Repository& repo, SnapshotFormat format) {
  write_snapshot(out, cache.snapshot_images(), repo, cache.total_bytes(), format);
}

util::Result<Cache> restore_cache(std::istream& in, const pkg::Repository& repo,
                                  CacheConfig config, RestoreReport* report) {
  auto parsed = parse_snapshot(in, repo);
  if (report != nullptr) *report = parsed.report;
  if (parsed.fatal.has_value()) return *parsed.fatal;

  // Adopt in snapshot (LRU) order. If the new budget is smaller than the
  // snapshot, adopt() evicts the least-recently-adopted images — exactly
  // the right casualties.
  Cache cache(repo, config);
  for (auto& record : parsed.records) {
    (void)cache.adopt(std::move(record.contents), std::move(record.constraints),
                      record.hits, record.merge_count, record.version);
  }
  return cache;
}

util::Result<std::size_t> restore_cache_into(std::istream& in,
                                             const pkg::Repository& repo,
                                             ShardedCache& cache,
                                             RestoreReport* report) {
  auto parsed = parse_snapshot(in, repo);
  if (report != nullptr) *report = parsed.report;
  if (parsed.fatal.has_value()) return *parsed.fatal;
  for (auto& record : parsed.records) {
    (void)cache.adopt(std::move(record.contents), std::move(record.constraints),
                      record.hits, record.merge_count, record.version);
  }
  return parsed.records.size();
}

bool save_cache_file(const std::string& path, const Cache& cache,
                     const pkg::Repository& repo, SnapshotFormat format,
                     fault::FaultInjector* faults) {
  if (faults != nullptr && faults->should_fail(fault::FaultOp::kSnapshotWrite)) {
    // Torn write: the crash happened mid-flush. A deterministic prefix
    // lands on disk — cut at 25/50/75% by injection count, so replays
    // exercise different tear points — and the caller learns the
    // checkpoint failed. v2 restores recover the checked prefix.
    std::ostringstream full;
    save_cache(full, cache, repo, format);
    const std::string text = std::move(full).str();
    const auto tears =
        faults->injected(fault::FaultOp::kSnapshotWrite);  // >= 1 here
    const std::size_t keep = text.size() * ((tears - 1) % 3 + 1) / 4;
    std::ofstream out(path, std::ios::trunc);
    if (out) out.write(text.data(), static_cast<std::streamsize>(keep));
    return false;
  }
  std::ofstream out(path);
  if (!out) return false;
  save_cache(out, cache, repo, format);
  return static_cast<bool>(out);
}

util::Result<Cache> restore_cache_file(const std::string& path,
                                       const pkg::Repository& repo,
                                       CacheConfig config, RestoreReport* report,
                                       fault::FaultInjector* faults) {
  if (faults != nullptr && faults->should_fail(fault::FaultOp::kSnapshotRead)) {
    util::Error error{"injected snapshot read failure: " + path};
    if (report != nullptr) {
      *report = RestoreReport{};
      report->corrupted = true;
      report->error = error.message;
    }
    return error;
  }
  std::ifstream in(path);
  if (!in) return util::Error{"cannot open cache snapshot: " + path};
  return restore_cache(in, repo, config, report);
}

}  // namespace landlord::core
