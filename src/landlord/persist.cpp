#include "landlord/persist.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

namespace landlord::core {

namespace {

constexpr std::string_view kMagic = "landlord-cache v1";

std::vector<std::string_view> split_words(std::string_view line) {
  std::vector<std::string_view> words;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) words.push_back(line.substr(start, i - start));
  }
  return words;
}

template <typename T>
bool parse_number(std::string_view token, T& out) {
  auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc{} && ptr == token.data() + token.size();
}

/// One parsed snapshot image, ready for adoption into either cache kind.
struct Record {
  spec::PackageSet contents;
  std::vector<spec::VersionConstraint> constraints;
  std::uint64_t hits = 0;
  std::uint32_t merge_count = 0;
  std::uint32_t version = 0;
};

/// Writes the shared snapshot format from a pre-collected image list.
void write_snapshot(std::ostream& out, std::vector<Image> images,
                    const pkg::Repository& repo, util::Bytes total_bytes) {
  out << kMagic << '\n';
  out << "# " << images.size() << " images, " << total_bytes << " bytes\n";
  // Stable order: by LRU stamp, so restore reproduces recency.
  std::sort(images.begin(), images.end(), [](const Image& a, const Image& b) {
    if (a.last_used != b.last_used) return a.last_used < b.last_used;
    return to_value(a.id) < to_value(b.id);
  });
  std::size_t ordinal = 0;
  for (const auto& image : images) {
    out << "image " << image.hits << ' ' << image.merge_count << ' '
        << image.version;
    image.contents.for_each([&](pkg::PackageId id) { out << ' ' << repo[id].key(); });
    out << '\n';
    for (const auto& constraint : image.constraints) {
      out << "constraint " << ordinal << ' ' << constraint.package
          << spec::to_string(constraint.op) << constraint.version << '\n';
    }
    ++ordinal;
  }
}

/// Parses the snapshot body (magic line onward) into adoption records.
util::Result<std::vector<Record>> parse_snapshot(std::istream& in,
                                                 const pkg::Repository& repo) {
  std::string line;
  std::size_t line_no = 0;
  if (!std::getline(in, line)) return util::Error{"empty cache snapshot"};
  ++line_no;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line != kMagic) {
    return util::Error::at_line(line_no, "bad magic (expected '" +
                                             std::string(kMagic) + "')");
  }

  // Parse everything first so constraints (which follow their image
  // line) can be attached before adoption.
  std::vector<Record> records;

  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    auto words = split_words(line);
    if (words.empty() || words.front().front() == '#') continue;

    if (words.front() == "image") {
      if (words.size() < 4) {
        return util::Error::at_line(
            line_no, "expected: image <hits> <merges> <version> <key>...");
      }
      Record record;
      record.contents = spec::PackageSet(repo.size());
      if (!parse_number(words[1], record.hits) ||
          !parse_number(words[2], record.merge_count) ||
          !parse_number(words[3], record.version)) {
        return util::Error::at_line(line_no, "bad image counters");
      }
      for (std::size_t w = 4; w < words.size(); ++w) {
        const auto id = repo.find(words[w]);
        if (!id) {
          return util::Error::at_line(
              line_no, "unknown package key '" + std::string(words[w]) + "'");
        }
        record.contents.insert(*id);
      }
      records.push_back(std::move(record));
    } else if (words.front() == "constraint") {
      if (words.size() != 3) {
        return util::Error::at_line(line_no, "expected: constraint <ordinal> <expr>");
      }
      std::size_t ordinal = 0;
      if (!parse_number(words[1], ordinal) || ordinal >= records.size()) {
        return util::Error::at_line(line_no, "constraint references unknown image");
      }
      auto constraint = spec::parse_constraint(words[2]);
      if (!constraint) return util::Error::at_line(line_no, constraint.error().message);
      records[ordinal].constraints.push_back(std::move(constraint).value());
    } else {
      return util::Error::at_line(
          line_no, "unknown directive '" + std::string(words.front()) + "'");
    }
  }
  return records;
}

}  // namespace

void save_cache(std::ostream& out, const Cache& cache, const pkg::Repository& repo) {
  std::vector<Image> images;
  cache.for_each_image([&images](const Image& image) { images.push_back(image); });
  write_snapshot(out, std::move(images), repo, cache.total_bytes());
}

void save_cache(std::ostream& out, const ShardedCache& cache,
                const pkg::Repository& repo) {
  write_snapshot(out, cache.snapshot_images(), repo, cache.total_bytes());
}

util::Result<Cache> restore_cache(std::istream& in, const pkg::Repository& repo,
                                  CacheConfig config) {
  auto records = parse_snapshot(in, repo);
  if (!records.ok()) return records.error();

  // Adopt in snapshot (LRU) order. If the new budget is smaller than the
  // snapshot, adopt() evicts the least-recently-adopted images — exactly
  // the right casualties.
  Cache cache(repo, config);
  for (auto& record : records.value()) {
    (void)cache.adopt(std::move(record.contents), std::move(record.constraints),
                      record.hits, record.merge_count, record.version);
  }
  return cache;
}

util::Result<std::size_t> restore_cache_into(std::istream& in,
                                             const pkg::Repository& repo,
                                             ShardedCache& cache) {
  auto records = parse_snapshot(in, repo);
  if (!records.ok()) return records.error();
  for (auto& record : records.value()) {
    (void)cache.adopt(std::move(record.contents), std::move(record.constraints),
                      record.hits, record.merge_count, record.version);
  }
  return records.value().size();
}

bool save_cache_file(const std::string& path, const Cache& cache,
                     const pkg::Repository& repo) {
  std::ofstream out(path);
  if (!out) return false;
  save_cache(out, cache, repo);
  return static_cast<bool>(out);
}

util::Result<Cache> restore_cache_file(const std::string& path,
                                       const pkg::Repository& repo,
                                       CacheConfig config) {
  std::ifstream in(path);
  if (!in) return util::Error{"cannot open cache snapshot: " + path};
  return restore_cache(in, repo, config);
}

}  // namespace landlord::core
