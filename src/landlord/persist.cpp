#include "landlord/persist.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

namespace landlord::core {

namespace {

constexpr std::string_view kMagic = "landlord-cache v1";

std::vector<std::string_view> split_words(std::string_view line) {
  std::vector<std::string_view> words;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) words.push_back(line.substr(start, i - start));
  }
  return words;
}

template <typename T>
bool parse_number(std::string_view token, T& out) {
  auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc{} && ptr == token.data() + token.size();
}

}  // namespace

void save_cache(std::ostream& out, const Cache& cache, const pkg::Repository& repo) {
  out << kMagic << '\n';
  out << "# " << cache.image_count() << " images, "
      << cache.total_bytes() << " bytes\n";
  // Stable order: by LRU stamp, so restore reproduces recency.
  std::vector<Image> images;
  cache.for_each_image([&images](const Image& image) { images.push_back(image); });
  std::sort(images.begin(), images.end(), [](const Image& a, const Image& b) {
    return a.last_used < b.last_used;
  });
  std::size_t ordinal = 0;
  for (const auto& image : images) {
    out << "image " << image.hits << ' ' << image.merge_count << ' '
        << image.version;
    image.contents.for_each([&](pkg::PackageId id) { out << ' ' << repo[id].key(); });
    out << '\n';
    for (const auto& constraint : image.constraints) {
      out << "constraint " << ordinal << ' ' << constraint.package
          << spec::to_string(constraint.op) << constraint.version << '\n';
    }
    ++ordinal;
  }
}

util::Result<Cache> restore_cache(std::istream& in, const pkg::Repository& repo,
                                  CacheConfig config) {
  std::string line;
  std::size_t line_no = 0;
  if (!std::getline(in, line)) return util::Error{"empty cache snapshot"};
  ++line_no;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line != kMagic) {
    return util::Error::at_line(line_no, "bad magic (expected '" +
                                             std::string(kMagic) + "')");
  }

  // Parse everything first so constraints (which follow their image
  // line) can be attached before adoption.
  struct Record {
    spec::PackageSet contents;
    std::vector<spec::VersionConstraint> constraints;
    std::uint64_t hits = 0;
    std::uint32_t merge_count = 0;
    std::uint32_t version = 0;
  };
  std::vector<Record> records;

  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    auto words = split_words(line);
    if (words.empty() || words.front().front() == '#') continue;

    if (words.front() == "image") {
      if (words.size() < 4) {
        return util::Error::at_line(
            line_no, "expected: image <hits> <merges> <version> <key>...");
      }
      Record record;
      record.contents = spec::PackageSet(repo.size());
      if (!parse_number(words[1], record.hits) ||
          !parse_number(words[2], record.merge_count) ||
          !parse_number(words[3], record.version)) {
        return util::Error::at_line(line_no, "bad image counters");
      }
      for (std::size_t w = 4; w < words.size(); ++w) {
        const auto id = repo.find(words[w]);
        if (!id) {
          return util::Error::at_line(
              line_no, "unknown package key '" + std::string(words[w]) + "'");
        }
        record.contents.insert(*id);
      }
      records.push_back(std::move(record));
    } else if (words.front() == "constraint") {
      if (words.size() != 3) {
        return util::Error::at_line(line_no, "expected: constraint <ordinal> <expr>");
      }
      std::size_t ordinal = 0;
      if (!parse_number(words[1], ordinal) || ordinal >= records.size()) {
        return util::Error::at_line(line_no, "constraint references unknown image");
      }
      auto constraint = spec::parse_constraint(words[2]);
      if (!constraint) return util::Error::at_line(line_no, constraint.error().message);
      records[ordinal].constraints.push_back(std::move(constraint).value());
    } else {
      return util::Error::at_line(
          line_no, "unknown directive '" + std::string(words.front()) + "'");
    }
  }

  // Adopt in snapshot (LRU) order. If the new budget is smaller than the
  // snapshot, adopt() evicts the least-recently-adopted images — exactly
  // the right casualties.
  Cache cache(repo, config);
  for (auto& record : records) {
    (void)cache.adopt(std::move(record.contents), std::move(record.constraints),
                      record.hits, record.merge_count, record.version);
  }
  return cache;
}

bool save_cache_file(const std::string& path, const Cache& cache,
                     const pkg::Repository& repo) {
  std::ofstream out(path);
  if (!out) return false;
  save_cache(out, cache, repo);
  return static_cast<bool>(out);
}

util::Result<Cache> restore_cache_file(const std::string& path,
                                       const pkg::Repository& repo,
                                       CacheConfig config) {
  std::ifstream in(path);
  if (!in) return util::Error{"cannot open cache snapshot: " + path};
  return restore_cache(in, repo, config);
}

}  // namespace landlord::core
