// Cache persistence.
//
// Image-management systems "reflect this reality in using persistent
// image stores" (§II, of Docker and Shifter): a head-node restart must
// not discard terabytes of prepared images. This module serialises the
// cache's *decision state* — each image's package set, constraints and
// usage counters — to a text snapshot and restores it into a fresh
// Cache. Image *contents* are not stored (they live in the image files
// themselves); a restore re-admits images without charging write I/O.
//
// Format:
//   landlord-cache v1
//   image <hits> <merge_count> <version> <pkg-key> ...
//   constraint <image-ordinal> <name><op><version>
#pragma once

#include <iosfwd>
#include <string>

#include "landlord/cache.hpp"
#include "util/result.hpp"

namespace landlord::core {

/// Writes a snapshot of every cached image.
void save_cache(std::ostream& out, const Cache& cache, const pkg::Repository& repo);

/// Restores a snapshot into a new cache with `config`. Images are
/// re-admitted verbatim (ids are reassigned; LRU order follows snapshot
/// order); counters start fresh except that restored images keep their
/// hit/merge history for eviction decisions. Fails on malformed input or
/// unknown package keys.
[[nodiscard]] util::Result<Cache> restore_cache(std::istream& in,
                                                const pkg::Repository& repo,
                                                CacheConfig config);

/// File convenience wrappers.
[[nodiscard]] bool save_cache_file(const std::string& path, const Cache& cache,
                                   const pkg::Repository& repo);
[[nodiscard]] util::Result<Cache> restore_cache_file(const std::string& path,
                                                     const pkg::Repository& repo,
                                                     CacheConfig config);

}  // namespace landlord::core
