// Cache persistence.
//
// Image-management systems "reflect this reality in using persistent
// image stores" (§II, of Docker and Shifter): a head-node restart must
// not discard terabytes of prepared images. This module serialises the
// cache's *decision state* — each image's package set, constraints and
// usage counters — to a text snapshot and restores it into a fresh
// Cache. Image *contents* are not stored (they live in the image files
// themselves); a restore re-admits images without charging write I/O.
//
// Two on-disk formats (full grammar in docs/formats.md):
//
//   landlord-cache v1 — the original plain format. Strict restore: any
//   malformed line or unknown package key fails the whole restore.
//
//   landlord-cache v2 — checksummed records. Every image record (its
//   `image` line plus attached `constraint` lines) is followed by a
//   `check` line carrying an FNV-1a digest of the record's exact bytes,
//   and the file ends with an `end` trailer chaining all records. A
//   torn or bit-flipped snapshot is detected at the first bad record;
//   restore recovers everything before it (the valid prefix) and
//   reports precisely what was lost via RestoreReport. Restoring a v2
//   snapshot never fails outright unless even the magic line is gone.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "fault/fault.hpp"
#include "landlord/cache.hpp"
#include "landlord/sharded.hpp"
#include "util/result.hpp"

namespace landlord::core {

/// Snapshot wire format. v1 stays the default writer so existing
/// deployments (and byte-for-byte snapshot comparisons against older
/// builds) are undisturbed; v2 is opt-in for crash-safe stores. Either
/// restores through the same entry points (auto-detected by magic).
enum class SnapshotFormat : std::uint8_t { kV1, kV2 };

/// What a restore managed to salvage. `clean()` means the snapshot was
/// intact; otherwise `error` pinpoints the first bad record ("line N:
/// ...") and the counts say how much of the tail was lost.
struct RestoreReport {
  std::uint32_t format = 0;          ///< detected snapshot version (1 or 2)
  std::size_t images_restored = 0;   ///< records adopted into the cache
  std::size_t records_lost = 0;      ///< image records dropped (bad or after bad)
  bool truncated = false;            ///< v2: `end` trailer missing/incomplete
  bool corrupted = false;            ///< checksum mismatch or malformed record
  std::string error;                 ///< precise first error, empty if clean

  [[nodiscard]] bool clean() const noexcept { return !truncated && !corrupted; }
};

/// Writes a snapshot of every cached image.
void save_cache(std::ostream& out, const Cache& cache, const pkg::Repository& repo,
                SnapshotFormat format = SnapshotFormat::kV1);

/// Sharded variant: takes every shard lock (ShardedCache::snapshot_images)
/// so the snapshot is one consistent point-in-time state even while other
/// threads keep submitting. Same on-disk formats; a snapshot written by
/// either cache restores into either.
void save_cache(std::ostream& out, const ShardedCache& cache,
                const pkg::Repository& repo,
                SnapshotFormat format = SnapshotFormat::kV1);

/// Restores a snapshot into a new cache with `config`. Images are
/// re-admitted verbatim (ids are reassigned; LRU order follows snapshot
/// order); counters start fresh except that restored images keep their
/// hit/merge history for eviction decisions.
///
/// v1 snapshots fail on malformed input or unknown package keys. v2
/// snapshots recover the valid prefix instead: the result is ok() with
/// everything before the first bad record, and `report` (optional)
/// carries the precise error and loss counts.
[[nodiscard]] util::Result<Cache> restore_cache(std::istream& in,
                                                const pkg::Repository& repo,
                                                CacheConfig config,
                                                RestoreReport* report = nullptr);

/// Restores a snapshot into an existing (typically freshly constructed)
/// ShardedCache, re-homing each image onto its band-signature shard.
/// Returns the number of images adopted. The cache's own config governs
/// capacity, so an over-budget snapshot is trimmed exactly like the
/// sequential restore. Same v1-strict / v2-prefix-recovery semantics.
[[nodiscard]] util::Result<std::size_t> restore_cache_into(
    std::istream& in, const pkg::Repository& repo, ShardedCache& cache,
    RestoreReport* report = nullptr);

/// File convenience wrappers. `faults` (optional) injects snapshot I/O
/// failures: a kSnapshotWrite fault tears the file — a deterministic
/// prefix is written and false is returned, modelling a crash mid-write;
/// a kSnapshotRead fault fails the open, modelling unreadable storage.
[[nodiscard]] bool save_cache_file(const std::string& path, const Cache& cache,
                                   const pkg::Repository& repo,
                                   SnapshotFormat format = SnapshotFormat::kV1,
                                   fault::FaultInjector* faults = nullptr);
[[nodiscard]] util::Result<Cache> restore_cache_file(
    const std::string& path, const pkg::Repository& repo, CacheConfig config,
    RestoreReport* report = nullptr, fault::FaultInjector* faults = nullptr);

}  // namespace landlord::core
