// Cache persistence.
//
// Image-management systems "reflect this reality in using persistent
// image stores" (§II, of Docker and Shifter): a head-node restart must
// not discard terabytes of prepared images. This module serialises the
// cache's *decision state* — each image's package set, constraints and
// usage counters — to a text snapshot and restores it into a fresh
// Cache. Image *contents* are not stored (they live in the image files
// themselves); a restore re-admits images without charging write I/O.
//
// Format:
//   landlord-cache v1
//   image <hits> <merge_count> <version> <pkg-key> ...
//   constraint <image-ordinal> <name><op><version>
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "landlord/cache.hpp"
#include "landlord/sharded.hpp"
#include "util/result.hpp"

namespace landlord::core {

/// Writes a snapshot of every cached image.
void save_cache(std::ostream& out, const Cache& cache, const pkg::Repository& repo);

/// Sharded variant: takes every shard lock (ShardedCache::snapshot_images)
/// so the snapshot is one consistent point-in-time state even while other
/// threads keep submitting. Same on-disk format; a snapshot written by
/// either cache restores into either.
void save_cache(std::ostream& out, const ShardedCache& cache,
                const pkg::Repository& repo);

/// Restores a snapshot into a new cache with `config`. Images are
/// re-admitted verbatim (ids are reassigned; LRU order follows snapshot
/// order); counters start fresh except that restored images keep their
/// hit/merge history for eviction decisions. Fails on malformed input or
/// unknown package keys.
[[nodiscard]] util::Result<Cache> restore_cache(std::istream& in,
                                                const pkg::Repository& repo,
                                                CacheConfig config);

/// Restores a snapshot into an existing (typically freshly constructed)
/// ShardedCache, re-homing each image onto its band-signature shard.
/// Returns the number of images adopted. The cache's own config governs
/// capacity, so an over-budget snapshot is trimmed exactly like the
/// sequential restore.
[[nodiscard]] util::Result<std::size_t> restore_cache_into(std::istream& in,
                                                           const pkg::Repository& repo,
                                                           ShardedCache& cache);

/// File convenience wrappers.
[[nodiscard]] bool save_cache_file(const std::string& path, const Cache& cache,
                                   const pkg::Repository& repo);
[[nodiscard]] util::Result<Cache> restore_cache_file(const std::string& path,
                                                     const pkg::Repository& repo,
                                                     CacheConfig config);

}  // namespace landlord::core
