// Merge-candidate selection policies for Algorithm 1's second loop.
//
// The algorithm says "for j ∈ I such that d_j(s, j) < α" with the note
// "Selection can be sorted by d_j()". How candidates are enumerated is a
// policy choice with cost/quality trade-offs:
//
//  * kFirstFit   — take the oldest (lowest-id) close-enough, compatible
//                  image; no distance sort. Cheapest.
//  * kBestFit    — compute d_j for every cached image, try candidates in
//                  increasing distance. The paper's suggested sort.
//  * kMinHashLsh — prefilter candidates through an LSH index over MinHash
//                  signatures, then exact-check only the candidates. The
//                  constant-time approximation the paper recommends for
//                  very large specifications.
#pragma once

#include <cstdint>

namespace landlord::core {

enum class MergePolicy : std::uint8_t { kFirstFit, kBestFit, kMinHashLsh };

[[nodiscard]] constexpr const char* to_string(MergePolicy policy) noexcept {
  switch (policy) {
    case MergePolicy::kFirstFit: return "first-fit";
    case MergePolicy::kBestFit: return "best-fit";
    case MergePolicy::kMinHashLsh: return "minhash-lsh";
  }
  return "?";
}

}  // namespace landlord::core
