#include "landlord/sharded.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "spec/jaccard.hpp"
#include "util/arena.hpp"

namespace landlord::core {

ShardedCache::ShardedCache(const pkg::Repository& repo, CacheConfig config)
    : repo_(&repo),
      config_(config),
      shards_(std::max<std::uint32_t>(1, config.shards)),
      hasher_(config.minhash_k) {
  assert(config_.alpha >= 0.0 && config_.alpha <= 1.0);
  assert(config_.lsh_bands > 0 && config_.minhash_k % config_.lsh_bands == 0 &&
         "band count must divide the MinHash signature length");
  for (Shard& shard : shards_) {
    shard.lsh = spec::LshIndex(config_.lsh_bands);
    if (config_.decision_index) {
      shard.dindex.emplace(repo.size(), config_.eviction);
    }
  }
}

std::unique_lock<std::mutex> ShardedCache::lock_shard(const Shard& shard) const {
  std::unique_lock<std::mutex> lock(shard.mutex, std::try_to_lock);
  if (!lock.owns_lock()) {
    shard.lock_contentions.fetch_add(1, std::memory_order_relaxed);
    if (hooks_.lock_contentions != nullptr) hooks_.lock_contentions->inc();
    lock.lock();
  }
  shard.lock_acquisitions.fetch_add(1, std::memory_order_relaxed);
  return lock;
}

void ShardedCache::set_observability(obs::Observability* observability) {
  if (observability == nullptr) {
    hooks_ = Hooks{};
    return;
  }
  obs::Registry& reg = observability->registry;
  // Same families the sequential Cache registers: a Landlord routes
  // through exactly one of the two, so the shared series never
  // double-count.
  constexpr const char* kRequestsHelp =
      "Cache requests by Algorithm 1 outcome kind.";
  hooks_.requests_hit =
      &reg.counter("landlord_cache_requests_total", {{"kind", "hit"}}, kRequestsHelp);
  hooks_.requests_merge =
      &reg.counter("landlord_cache_requests_total", {{"kind", "merge"}}, kRequestsHelp);
  hooks_.requests_insert =
      &reg.counter("landlord_cache_requests_total", {{"kind", "insert"}}, kRequestsHelp);
  constexpr const char* kEvictionsHelp =
      "Images removed from the cache, by reason (sums to CacheCounters::deletes).";
  hooks_.evictions_budget =
      &reg.counter("landlord_cache_evictions_total", {{"reason", "budget"}}, kEvictionsHelp);
  hooks_.evictions_idle =
      &reg.counter("landlord_cache_evictions_total", {{"reason", "idle"}}, kEvictionsHelp);
  hooks_.evictions_split =
      &reg.counter("landlord_cache_evictions_total", {{"reason", "split-empty"}},
                   kEvictionsHelp);
  hooks_.splits = &reg.counter("landlord_cache_splits_total", {},
                               "Bloated images split along their merge lineage.");
  hooks_.conflict_rejections =
      &reg.counter("landlord_cache_conflict_rejections_total", {},
                   "Merge candidates rejected for constraint conflicts.");
  hooks_.lock_contentions =
      &reg.counter("landlord_shard_lock_contentions_total", {},
                   "Shard-lock acquisitions that had to wait.");
  hooks_.optimistic_retries =
      &reg.counter("landlord_shard_optimistic_retries_total", {},
                   "Decisions invalidated by a racing writer and re-run.");
  hooks_.cross_shard_moves =
      &reg.counter("landlord_shard_cross_moves_total", {},
                   "Images re-homed to another shard after a merge or split.");
  if (config_.delta_chain_cap > 0) {
    hooks_.cas_delta_merges =
        &reg.counter("landlord_cas_delta_merges_total", {},
                     "Merges charged as delta writes (new chunks + manifest).");
    hooks_.cas_repacks =
        &reg.counter("landlord_cas_repacks_total", {},
                     "Merges that hit the delta-chain cap and rewrote in full.");
    constexpr const char* kCasBytesHelp =
        "Bytes written to image storage, by write kind.";
    hooks_.cas_delta_bytes =
        &reg.counter("landlord_cas_written_bytes_total", {{"kind", "delta"}},
                     kCasBytesHelp);
    hooks_.cas_repack_bytes =
        &reg.counter("landlord_cas_written_bytes_total", {{"kind", "repack"}},
                     kCasBytesHelp);
    hooks_.cas_full_rewrite_bytes = &reg.counter(
        "landlord_cas_full_rewrite_bytes_total", {},
        "Counterfactual write charge under the paper's full-rewrite model.");
  }
  if (config_.decision_index) {
    hooks_.postings_probe = &reg.histogram(
        "landlord_index_postings_probe_length",
        {0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096}, {},
        "Postings entries scanned per indexed superset lookup.");
    constexpr const char* kMemoHelp =
        "Spec-memo lookups by result (hits skip the superset probe).";
    hooks_.memo_hit =
        &reg.counter("landlord_index_memo_total", {{"result", "hit"}}, kMemoHelp);
    hooks_.memo_miss =
        &reg.counter("landlord_index_memo_total", {{"result", "miss"}}, kMemoHelp);
    hooks_.eviction_index_updates =
        &reg.counter("landlord_index_eviction_updates_total", {},
                     "Ordered eviction-index mutations (insert/erase/touch).");
  }
  hooks_.shard_images.clear();
  hooks_.shard_bytes.clear();
  hooks_.shard_contentions.clear();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const obs::Labels labels{{"shard", std::to_string(s)}};
    hooks_.shard_images.push_back(&reg.gauge("landlord_shard_images", labels,
                                             "Images resident per shard."));
    hooks_.shard_bytes.push_back(&reg.gauge("landlord_shard_bytes", labels,
                                            "Bytes resident per shard."));
    hooks_.shard_contentions.push_back(
        &reg.gauge("landlord_shard_contentions", labels,
                   "Lock contention count per shard."));
  }
  hooks_.trace = &observability->trace;
}

void ShardedCache::publish_metrics() {
  if (hooks_.shard_images.empty()) return;
  for (const ShardStats& stats : shard_stats()) {
    hooks_.shard_images[stats.shard]->set(static_cast<double>(stats.images));
    hooks_.shard_bytes[stats.shard]->set(static_cast<double>(stats.bytes));
    hooks_.shard_contentions[stats.shard]->set(
        static_cast<double>(stats.lock_contentions));
  }
}

std::size_t ShardedCache::home_of(const spec::PackageSet& contents) const {
  if (shards_.size() <= 1) return 0;
  // Only band 0 of the signature feeds the homing hash, so sign just
  // those k/bands rows — ~30x cheaper than a full signature and
  // bit-identical to hashing the full signature's band 0.
  const auto prefix =
      hasher_.sign_prefix(contents, hasher_.k() / config_.lsh_bands);
  return static_cast<std::size_t>(spec::band_signature_hash(prefix, 1) %
                                  shards_.size());
}

void ShardedCache::index_insert(Shard& shard, const Image& image) {
  if (config_.policy != MergePolicy::kMinHashLsh) return;
  auto signature = hasher_.sign(image.contents);
  shard.lsh.insert(to_value(image.id), signature);
  shard.signatures.emplace(to_value(image.id), std::move(signature));
}

void ShardedCache::index_erase(Shard& shard, const Image& image) {
  if (config_.policy != MergePolicy::kMinHashLsh) return;
  auto it = shard.signatures.find(to_value(image.id));
  if (it == shard.signatures.end()) return;
  shard.lsh.erase(to_value(image.id), it->second);
  shard.signatures.erase(it);
}

void ShardedCache::dindex_insert(Shard& shard, const Image& image) {
  if (!shard.dindex) return;
  shard.dindex->insert(image);
  memo_.bump();
  if (hooks_.eviction_index_updates != nullptr) hooks_.eviction_index_updates->inc();
}

void ShardedCache::dindex_erase(Shard& shard, const util::DynamicBitset& old_bits,
                                const EvictionKey& old_key) {
  if (!shard.dindex) return;
  shard.dindex->erase(old_bits, old_key);
  memo_.bump();
  if (hooks_.eviction_index_updates != nullptr) hooks_.eviction_index_updates->inc();
}

void ShardedCache::dindex_update(Shard& shard, const Image& image,
                                 const util::DynamicBitset& old_bits,
                                 const EvictionKey& old_key) {
  if (!shard.dindex) return;
  shard.dindex->update(image, old_bits, old_key);
  memo_.bump();
  if (hooks_.eviction_index_updates != nullptr) hooks_.eviction_index_updates->inc();
}

void ShardedCache::dindex_touch(Shard& shard, const EvictionKey& old_key,
                                const Image& image) {
  if (!shard.dindex) return;
  shard.dindex->touch(old_key, eviction_key(image));
  if (hooks_.eviction_index_updates != nullptr) hooks_.eviction_index_updates->inc();
}

Cache::Outcome ShardedCache::request(const spec::Specification& spec) {
  assert(spec.packages().universe() == repo_->size() &&
         "spec universe must match the cache's repository");
  const std::uint64_t now = clock_.fetch_add(1) + 1;
  counters_.requests.fetch_add(1, std::memory_order_relaxed);
  const util::Bytes requested = spec.bytes(*repo_);
  counters_.requested_bytes.fetch_add(requested, std::memory_order_relaxed);

  const Cache::Outcome outcome = serve(spec, now, requested);

  counters_.container_efficiency_sum.fetch_add(
      outcome.image_bytes > 0
          ? static_cast<double>(requested) / static_cast<double>(outcome.image_bytes)
          : 1.0,
      std::memory_order_relaxed);

  enforce_budget(now);
  evict_idle(now);
  return outcome;
}

Cache::Outcome ShardedCache::serve(const spec::Specification& spec,
                                   std::uint64_t now, util::Bytes requested) {
  // Per-thread scratch for this request's short-lived containers
  // (Phase 2 candidate list). thread_local because serve() runs
  // concurrently; reset here reclaims the previous request's scratch.
  thread_local util::ScratchArena scratch_arena;
  scratch_arena.reset();
  // ---- Phase 0: spec memo. A current-epoch entry is exactly what the
  // cross-shard scan below would decide, so apply it directly. A stale
  // apply (racing writer — single-threaded replays never see one) falls
  // through to the full decision loop.
  const std::uint64_t memo_epoch = config_.decision_index ? memo_.epoch() : 0;
  if (config_.decision_index) {
    if (const auto memo = memo_.lookup(spec.packages())) {
      bool stale = false;
      const auto outcome =
          apply_hit(memo->shard, to_value(memo->image), spec, now, requested, stale);
      if (!stale) {
        if (hooks_.memo_hit != nullptr) hooks_.memo_hit->inc();
        return outcome;
      }
      counters_.optimistic_retries.fetch_add(1, std::memory_order_relaxed);
      if (hooks_.optimistic_retries != nullptr) hooks_.optimistic_retries->inc();
    } else if (hooks_.memo_miss != nullptr) {
      hooks_.memo_miss->inc();
    }
  }

  for (;;) {
    // ---- Phase 1: cross-shard superset scan (smallest bytes, then
    // lowest id — the sequential Cache's deterministic hit choice),
    // holding one shard lock at a time. With the decision index on,
    // each shard answers with its own postings-probe minimum; the min
    // of per-shard minima is the same global choice the scan makes.
    bool hit_found = false;
    util::Bytes hit_bytes = 0;
    std::uint64_t hit_id = 0;
    std::size_t hit_shard = 0;
    const auto consider_hit = [&](util::Bytes bytes, std::uint64_t id,
                                  std::size_t s) {
      if (!hit_found || bytes < hit_bytes ||
          (bytes == hit_bytes && id < hit_id)) {
        hit_found = true;
        hit_bytes = bytes;
        hit_id = id;
        hit_shard = s;
      }
    };
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      auto lock = lock_shard(shards_[s]);
      Shard& shard = shards_[s];
      if (shard.dindex && !spec.packages().empty() &&
          shard.images.size() >= config_.scan_cutover) {
        std::size_t probe = 0;
        if (const auto best = shard.dindex->find_superset(spec.packages(),
                                                          shard.images, &probe)) {
          consider_hit(shard.images.at(to_value(*best)).bytes, to_value(*best), s);
        }
        if (hooks_.postings_probe != nullptr) {
          hooks_.postings_probe->observe(static_cast<double>(probe));
        }
      } else {
        for (const auto& [id, image] : shard.images) {
          if (!spec.packages().is_subset_of(image.contents)) continue;
          consider_hit(image.bytes, id, s);
        }
      }
    }
    if (hit_found) {
      // Record the decision before applying it: a split during apply
      // bumps the epoch and correctly invalidates this entry.
      if (config_.decision_index) {
        memo_.store(spec.packages(), ImageId{hit_id}, hit_shard, memo_epoch);
      }
      bool stale = false;
      const auto outcome = apply_hit(hit_shard, hit_id, spec, now, requested, stale);
      if (!stale) return outcome;
      // A racing writer evicted or shrank the chosen image between scan
      // and apply; re-run the decision.
      counters_.optimistic_retries.fetch_add(1, std::memory_order_relaxed);
      if (hooks_.optimistic_retries != nullptr) hooks_.optimistic_retries->inc();
      continue;
    }

    // ---- Phase 2: merge-candidate collection across shards.
    struct MergeCandidate {
      double distance;
      std::uint64_t id;
      std::size_t shard;
    };
    std::vector<MergeCandidate, util::ArenaAllocator<MergeCandidate>>
        candidates{util::ArenaAllocator<MergeCandidate>(scratch_arena)};
    std::optional<spec::MinHashSignature> signature;
    if (config_.policy == MergePolicy::kMinHashLsh) {
      signature = hasher_.sign(spec.packages());
    }
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      auto lock = lock_shard(shards_[s]);
      auto consider = [&](const Image& image) {
        const double d = spec::jaccard_distance(spec.packages(), image.contents);
        if (d < config_.alpha || config_.alpha >= 1.0) {
          candidates.push_back({d, to_value(image.id), s});
        }
      };
      if (config_.policy == MergePolicy::kMinHashLsh) {
        for (std::uint64_t id : shards_[s].lsh.candidates(*signature)) {
          auto it = shards_[s].images.find(id);
          assert(it != shards_[s].images.end() && "LSH index out of sync with shard");
          consider(it->second);
        }
      } else {
        for (const auto& [id, image] : shards_[s].images) consider(image);
      }
    }
    if (config_.policy == MergePolicy::kFirstFit) {
      // Oldest (lowest-id) candidate first — matches the sequential cache.
      std::sort(candidates.begin(), candidates.end(),
                [](const MergeCandidate& a, const MergeCandidate& b) {
                  return a.id < b.id;
                });
    } else {
      std::sort(candidates.begin(), candidates.end(),
                [](const MergeCandidate& a, const MergeCandidate& b) {
                  if (a.distance != b.distance) return a.distance < b.distance;
                  return a.id < b.id;
                });
    }

    bool merged = false;
    Cache::Outcome merge_outcome;
    for (const auto& candidate : candidates) {
      Shard& shard = shards_[candidate.shard];
      auto lock = lock_shard(shard);
      auto it = shard.images.find(candidate.id);
      if (it == shard.images.end()) continue;  // evicted since the scan
      Image& image = it->second;
      // Revalidate under the lock: a racing merge may have grown the
      // image past the α ball since we measured it.
      const double distance =
          spec::jaccard_distance(spec.packages(), image.contents);
      if (!(distance < config_.alpha || config_.alpha >= 1.0)) continue;
      if (!spec::ConflictChecker::compatible(spec.constraints(), image.constraints)) {
        counters_.conflict_rejections.fetch_add(1, std::memory_order_relaxed);
        if (hooks_.conflict_rejections != nullptr) hooks_.conflict_rejections->inc();
        continue;
      }

      // Apply the merge (mirrors the sequential Cache's merge arm).
      std::optional<util::DynamicBitset> pre_merge_bits;
      EvictionKey pre_merge_key{};
      if (shard.dindex) {
        pre_merge_bits = image.contents.bits();
        pre_merge_key = eviction_key(image);
      }
      index_erase(shard, image);
      const util::Bytes pre_merge_bytes = image.bytes;
      total_bytes_.fetch_sub(image.bytes);
      image.contents.merge(spec.packages());
      image.bytes = repo_->bytes_of(image.contents.bits());
      // Append-if-absent, like the sequential merge arm: verbatim
      // appending let a hot image's constraint list grow without bound.
      spec::merge_constraints(image.constraints, spec.constraints());
      image.last_used = now;
      ++image.merge_count;
      ++image.version;
      if (image.lineage.size() >= config_.max_lineage) {
        image.lineage[0].merge(image.lineage[1]);
        image.lineage.erase(image.lineage.begin() + 1);
      }
      image.lineage.push_back(spec.packages());
      total_bytes_.fetch_add(image.bytes);
      // Delta accounting, mirroring the sequential merge arm exactly:
      // full-rewrite counterfactual always, actual charge per the chain.
      counters_.full_rewrite_bytes.fetch_add(image.bytes,
                                             std::memory_order_relaxed);
      if (hooks_.cas_full_rewrite_bytes != nullptr) {
        hooks_.cas_full_rewrite_bytes->inc(image.bytes);
      }
      if (config_.delta_chain_cap == 0) {
        counters_.written_bytes.fetch_add(image.bytes, std::memory_order_relaxed);
      } else if (image.chain_depth >= config_.delta_chain_cap) {
        counters_.written_bytes.fetch_add(image.bytes, std::memory_order_relaxed);
        counters_.repack_written_bytes.fetch_add(image.bytes,
                                                 std::memory_order_relaxed);
        counters_.repacks.fetch_add(1, std::memory_order_relaxed);
        if (hooks_.cas_repacks != nullptr) hooks_.cas_repacks->inc();
        if (hooks_.cas_repack_bytes != nullptr) {
          hooks_.cas_repack_bytes->inc(image.bytes);
        }
        if (hooks_.trace != nullptr) {
          obs::TraceEvent repack_event;
          repack_event.kind = obs::EventKind::kRepack;
          repack_event.image = to_value(image.id);
          repack_event.bytes = image.bytes;
          repack_event.aux = image.chain_depth;
          hooks_.trace->record(repack_event);
        }
        image.chain_depth = 0;
      } else {
        const util::Bytes charge =
            (image.bytes - pre_merge_bytes) + config_.delta_manifest_bytes;
        counters_.written_bytes.fetch_add(charge, std::memory_order_relaxed);
        counters_.delta_written_bytes.fetch_add(charge,
                                                std::memory_order_relaxed);
        counters_.delta_merges.fetch_add(1, std::memory_order_relaxed);
        ++image.chain_depth;
        if (hooks_.cas_delta_merges != nullptr) hooks_.cas_delta_merges->inc();
        if (hooks_.cas_delta_bytes != nullptr) hooks_.cas_delta_bytes->inc(charge);
      }
      counters_.merges.fetch_add(1, std::memory_order_relaxed);
      if (hooks_.requests_merge != nullptr) hooks_.requests_merge->inc();
      merge_outcome = {RequestKind::kMerge, image.id, image.bytes, false};

      // The merged contents may band-hash to a different shard.
      const std::size_t new_home = home_of(image.contents);
      if (new_home == candidate.shard) {
        index_insert(shard, image);
        if (shard.dindex) dindex_update(shard, image, *pre_merge_bits, pre_merge_key);
      } else {
        // The source shard's postings only ever saw the pre-merge
        // contents; retire exactly those before the image moves
        // (rehome_locked registers it with the target's index).
        if (shard.dindex) dindex_erase(shard, *pre_merge_bits, pre_merge_key);
        rehome_locked(lock, candidate.shard, new_home, candidate.id);
        counters_.cross_shard_moves.fetch_add(1, std::memory_order_relaxed);
        if (hooks_.cross_shard_moves != nullptr) hooks_.cross_shard_moves->inc();
      }
      merged = true;
      break;
    }
    if (merged) return merge_outcome;

    // ---- Phase 3: insert a fresh image on its home shard.
    Image image;
    image.id = ImageId{id_counter_.fetch_add(1)};
    image.contents = spec.packages();
    image.bytes = requested;
    image.constraints = spec.constraints();
    image.last_used = now;
    image.lineage.push_back(spec.packages());
    total_bytes_.fetch_add(image.bytes);
    counters_.written_bytes.fetch_add(image.bytes, std::memory_order_relaxed);
    counters_.full_rewrite_bytes.fetch_add(image.bytes, std::memory_order_relaxed);
    if (hooks_.cas_full_rewrite_bytes != nullptr) {
      hooks_.cas_full_rewrite_bytes->inc(image.bytes);
    }
    counters_.inserts.fetch_add(1, std::memory_order_relaxed);
    if (hooks_.requests_insert != nullptr) hooks_.requests_insert->inc();
    const Cache::Outcome outcome{RequestKind::kInsert, image.id, image.bytes, false};
    const std::size_t home =
        signature ? (shards_.size() <= 1
                         ? 0
                         : static_cast<std::size_t>(
                               spec::band_signature_hash(*signature,
                                                         config_.lsh_bands) %
                               shards_.size()))
                  : home_of(spec.packages());
    {
      Shard& shard = shards_[home];
      auto lock = lock_shard(shard);
      ++shard.homed_inserts;
      index_insert(shard, image);
      dindex_insert(shard, image);
      shard.images.emplace(to_value(image.id), std::move(image));
    }
    image_count_.fetch_add(1);
    return outcome;
  }
}

Cache::Outcome ShardedCache::apply_hit(std::size_t shard_index, std::uint64_t id,
                                       const spec::Specification& spec,
                                       std::uint64_t now, util::Bytes requested,
                                       bool& stale) {
  Shard& shard = shards_[shard_index];
  auto lock = lock_shard(shard);
  auto it = shard.images.find(id);
  if (it == shard.images.end() || !spec.satisfied_by(it->second.contents)) {
    stale = true;
    return {};
  }
  Image& image = it->second;
  const EvictionKey pre_touch_key = eviction_key(image);
  image.last_used = now;
  ++image.hits;
  dindex_touch(shard, pre_touch_key, image);
  counters_.hits.fetch_add(1, std::memory_order_relaxed);
  if (hooks_.requests_hit != nullptr) hooks_.requests_hit->inc();
  if (config_.enable_split && image.merge_count > 0 && image.bytes > 0 &&
      static_cast<double>(requested) / static_cast<double>(image.bytes) <
          config_.split_utilization) {
    return split_locked(lock, shard_index, image, spec, now);
  }
  return {RequestKind::kHit, image.id, image.bytes, false};
}

Cache::Outcome ShardedCache::split_locked(std::unique_lock<std::mutex>& source_lock,
                                          std::size_t shard_index, Image& bloated,
                                          const spec::Specification& spec,
                                          std::uint64_t now) {
  Shard& shard = shards_[shard_index];
  // Pre-split state for the decision index (apply_hit already stamped
  // the bloated image, so this key matches what the index holds).
  std::optional<util::DynamicBitset> pre_split_bits;
  EvictionKey pre_split_key{};
  if (shard.dindex) {
    pre_split_bits = bloated.contents.bits();
    pre_split_key = eviction_key(bloated);
  }
  index_erase(shard, bloated);
  const util::Bytes pre_split_bytes = bloated.bytes;
  total_bytes_.fetch_sub(bloated.bytes);

  // Part A exactly covers the request; part B is the union of lineage
  // entries not subsumed by it (see Cache::split_image).
  Image part_a;
  part_a.id = ImageId{id_counter_.fetch_add(1)};
  part_a.contents = spec.packages();
  part_a.bytes = repo_->bytes_of(part_a.contents.bits());
  part_a.constraints = spec.constraints();
  part_a.last_used = now;
  part_a.hits = 1;
  part_a.lineage.push_back(spec.packages());

  spec::PackageSet remainder(repo_->size());
  std::vector<spec::PackageSet> remainder_lineage;
  for (auto& entry : bloated.lineage) {
    if (entry.is_subset_of(part_a.contents)) continue;
    remainder.merge(entry);
    remainder_lineage.push_back(std::move(entry));
  }

  // Both split parts are fresh full writes in either accounting mode.
  counters_.written_bytes.fetch_add(part_a.bytes, std::memory_order_relaxed);
  counters_.full_rewrite_bytes.fetch_add(part_a.bytes, std::memory_order_relaxed);
  if (hooks_.cas_full_rewrite_bytes != nullptr) {
    hooks_.cas_full_rewrite_bytes->inc(part_a.bytes);
  }
  counters_.splits.fetch_add(1, std::memory_order_relaxed);
  if (hooks_.splits != nullptr) hooks_.splits->inc();
  total_bytes_.fetch_add(part_a.bytes);
  // Carry the unsplit image's identity/size so the degradation ladder's
  // rung-3 fallback can report what the worker actually has on disk.
  Cache::Outcome outcome{RequestKind::kHit, part_a.id, part_a.bytes, true};
  outcome.split_from = bloated.id;
  outcome.split_from_bytes = pre_split_bytes;

  if (!remainder.empty()) {
    // The remainder keeps the bloated image's id (continuation, shrunk).
    bloated.contents = std::move(remainder);
    bloated.bytes = repo_->bytes_of(bloated.contents.bits());
    bloated.lineage = std::move(remainder_lineage);
    bloated.merge_count = static_cast<std::uint32_t>(bloated.lineage.size()) - 1;
    ++bloated.version;
    bloated.chain_depth = 0;  // rewritten in full; the old chain is gone
    total_bytes_.fetch_add(bloated.bytes);
    counters_.written_bytes.fetch_add(bloated.bytes, std::memory_order_relaxed);
    counters_.full_rewrite_bytes.fetch_add(bloated.bytes,
                                           std::memory_order_relaxed);
    if (hooks_.cas_full_rewrite_bytes != nullptr) {
      hooks_.cas_full_rewrite_bytes->inc(bloated.bytes);
    }
    index_insert(shard, bloated);
    if (shard.dindex) dindex_update(shard, bloated, *pre_split_bits, pre_split_key);
    // The remainder was rewritten in full: the delta chain built for the
    // pre-split image no longer describes what is on disk. Invalidate it
    // (the next build of this id starts a fresh base).
    if (eviction_listener_) eviction_listener_(bloated.id, 0);
  } else {
    // The erased id's postings entries and eviction key must die with
    // it, or a later probe can resurrect it.
    if (shard.dindex) dindex_erase(shard, *pre_split_bits, pre_split_key);
    const ImageId dying_id = bloated.id;
    shard.images.erase(to_value(bloated.id));  // `bloated` dangles past here
    image_count_.fetch_sub(1);
    counters_.deletes.fetch_add(1, std::memory_order_relaxed);
    if (hooks_.evictions_split != nullptr) hooks_.evictions_split->inc();
    if (eviction_listener_) eviction_listener_(dying_id, pre_split_bytes);
  }

  // Place part A on its home shard. Lock order is increasing index:
  // a higher-index home is locked while still holding the source; a
  // lower-index home is locked only after releasing the source (part A
  // is still private, so it cannot be observed half-placed).
  const std::size_t home = home_of(part_a.contents);
  if (home != shard_index) {
    counters_.cross_shard_moves.fetch_add(1, std::memory_order_relaxed);
    if (hooks_.cross_shard_moves != nullptr) hooks_.cross_shard_moves->inc();
    if (home < shard_index) source_lock.unlock();
    Shard& target = shards_[home];
    auto target_lock = lock_shard(target);
    index_insert(target, part_a);
    dindex_insert(target, part_a);
    target.images.emplace(to_value(part_a.id), std::move(part_a));
  } else {
    index_insert(shard, part_a);
    dindex_insert(shard, part_a);
    shard.images.emplace(to_value(part_a.id), std::move(part_a));
  }
  image_count_.fetch_add(1);
  return outcome;
}

void ShardedCache::rehome_locked(std::unique_lock<std::mutex>& source_lock,
                                 std::size_t source_index,
                                 std::size_t target_index, std::uint64_t id) {
  // Precondition: the caller holds `source_lock` on shards_[source_index]
  // and has already erased the image's index entries there.
  Shard& source = shards_[source_index];
  Shard& target = shards_[target_index];
  auto node = source.images.extract(id);
  assert(!node.empty());
  if (target_index > source_index) {
    // Increasing-index order: safe to acquire while holding the source.
    auto target_lock = lock_shard(target);
    index_insert(target, node.mapped());
    const auto placed = target.images.insert(std::move(node));
    dindex_insert(target, placed.position->second);
  } else {
    // Never lock a lower index while holding a higher one: extract
    // privately, release, then lock the target. The image is briefly
    // invisible to scans but never duplicated or lost.
    source_lock.unlock();
    auto target_lock = lock_shard(target);
    index_insert(target, node.mapped());
    const auto placed = target.images.insert(std::move(node));
    dindex_insert(target, placed.position->second);
  }
}

void ShardedCache::enforce_budget(std::uint64_t now) {
  while (total_bytes_.load(std::memory_order_acquire) > config_.capacity &&
         image_count_.load(std::memory_order_acquire) > 1) {
    // Global victim scan, one shard lock at a time.
    bool found = false;
    EvictionKey best{};
    std::size_t best_shard = 0;
    const auto consider_victim = [&](const EvictionKey& key, std::size_t s) {
      if (!found || evict_before(config_.eviction, key, best)) {
        found = true;
        best = key;
        best_shard = s;
      }
    };
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      auto lock = lock_shard(shards_[s]);
      if (shards_[s].dindex) {
        // Each shard's ordered index yields its local minimum in
        // O(log n); the min of minima is the scan's global victim.
        if (const auto key = shards_[s].dindex->victim(now)) {
          consider_victim(*key, s);
        }
      } else {
        for (const auto& [id, image] : shards_[s].images) {
          if (image.last_used == now) continue;  // never evict the image
                                                 // just served
          consider_victim(EvictionKey{image.last_used, image.hits, image.bytes, id}, s);
        }
      }
    }
    if (!found) break;  // only the just-served image left

    Shard& shard = shards_[best_shard];
    auto lock = lock_shard(shard);
    auto it = shard.images.find(best.id);
    if (it == shard.images.end() || it->second.last_used != best.last_used ||
        it->second.bytes != best.bytes) {
      // The victim was touched or evicted by a racing request; rescan.
      counters_.optimistic_retries.fetch_add(1, std::memory_order_relaxed);
      if (hooks_.optimistic_retries != nullptr) hooks_.optimistic_retries->inc();
      continue;
    }
    total_bytes_.fetch_sub(it->second.bytes);
    index_erase(shard, it->second);
    dindex_erase(shard, it->second.contents.bits(), eviction_key(it->second));
    if (hooks_.evictions_budget != nullptr) hooks_.evictions_budget->inc();
    if (hooks_.trace != nullptr) {
      obs::TraceEvent event;
      event.kind = obs::EventKind::kEviction;
      event.image = best.id;
      event.bytes = it->second.bytes;
      event.detail = "budget";
      hooks_.trace->record(event);
    }
    const util::Bytes victim_bytes = it->second.bytes;
    shard.images.erase(it);
    image_count_.fetch_sub(1);
    counters_.deletes.fetch_add(1, std::memory_order_relaxed);
    if (eviction_listener_) eviction_listener_(ImageId{best.id}, victim_bytes);
  }
}

void ShardedCache::evict_idle(std::uint64_t now) {
  if (config_.max_idle_requests == 0) return;
  for (Shard& shard : shards_) {
    auto lock = lock_shard(shard);
    for (auto it = shard.images.begin(); it != shard.images.end();) {
      const Image& image = it->second;
      // `last_used > now` means a racing request stamped it after us.
      if (image.last_used < now && now - image.last_used > config_.max_idle_requests) {
        total_bytes_.fetch_sub(image.bytes);
        index_erase(shard, image);
        dindex_erase(shard, image.contents.bits(), eviction_key(image));
        if (hooks_.evictions_idle != nullptr) hooks_.evictions_idle->inc();
        const ImageId victim_id = image.id;
        const util::Bytes victim_bytes = image.bytes;
        it = shard.images.erase(it);
        image_count_.fetch_sub(1);
        counters_.deletes.fetch_add(1, std::memory_order_relaxed);
        if (eviction_listener_) eviction_listener_(victim_id, victim_bytes);
      } else {
        ++it;
      }
    }
  }
}

ImageId ShardedCache::adopt(spec::PackageSet contents,
                            std::vector<spec::VersionConstraint> constraints,
                            std::uint64_t hits, std::uint32_t merge_count,
                            std::uint32_t version) {
  assert(contents.universe() == repo_->size());
  const std::uint64_t now = clock_.fetch_add(1) + 1;
  Image image;
  image.id = ImageId{id_counter_.fetch_add(1)};
  image.bytes = repo_->bytes_of(contents.bits());
  image.contents = std::move(contents);
  image.constraints = std::move(constraints);
  image.hits = hits;
  image.merge_count = merge_count;
  image.version = version;
  image.last_used = now;
  image.lineage.push_back(image.contents);
  total_bytes_.fetch_add(image.bytes);
  const ImageId id = image.id;
  const std::size_t home = home_of(image.contents);
  {
    Shard& shard = shards_[home];
    auto lock = lock_shard(shard);
    ++shard.homed_inserts;
    index_insert(shard, image);
    dindex_insert(shard, image);
    shard.images.emplace(to_value(id), std::move(image));
  }
  image_count_.fetch_add(1);
  enforce_budget(now);
  return id;
}

DecisionIndexStats ShardedCache::index_stats() const {
  DecisionIndexStats out;
  for (const Shard& shard : shards_) {
    auto lock = lock_shard(shard);
    if (!shard.dindex) continue;
    const DecisionIndexStats& s = shard.dindex->stats();
    out.postings_probes += s.postings_probes;
    out.postings_probe_entries += s.postings_probe_entries;
    out.postings_compactions += s.postings_compactions;
    out.eviction_updates += s.eviction_updates;
  }
  return out;
}

std::optional<std::string> ShardedCache::check_decision_index() const {
  if (!config_.decision_index) return std::nullopt;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    auto lock = lock_shard(shards_[s]);
    if (auto err = shards_[s].dindex->reconcile(shards_[s].images)) {
      return "shard " + std::to_string(s) + ": " + *err;
    }
  }
  return std::nullopt;
}

util::Bytes ShardedCache::unique_bytes() const {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const Shard& shard : shards_) locks.push_back(lock_shard(shard));
  util::DynamicBitset all(repo_->size());
  bool any = false;
  for (const Shard& shard : shards_) {
    for (const auto& [id, image] : shard.images) {
      all |= image.contents.bits();
      any = true;
    }
  }
  return any ? repo_->bytes_of(all) : 0;
}

double ShardedCache::cache_efficiency() const {
  const util::Bytes unique = unique_bytes();
  const util::Bytes total = total_bytes_.load(std::memory_order_acquire);
  if (total == 0) return 1.0;
  return static_cast<double>(unique) / static_cast<double>(total);
}

CacheCounters ShardedCache::counters() const {
  CacheCounters out;
  out.requests = counters_.requests.load();
  out.hits = counters_.hits.load();
  out.merges = counters_.merges.load();
  out.inserts = counters_.inserts.load();
  out.deletes = counters_.deletes.load();
  out.splits = counters_.splits.load();
  out.conflict_rejections = counters_.conflict_rejections.load();
  out.requested_bytes = counters_.requested_bytes.load();
  out.written_bytes = counters_.written_bytes.load();
  out.delta_merges = counters_.delta_merges.load();
  out.repacks = counters_.repacks.load();
  out.delta_written_bytes = counters_.delta_written_bytes.load();
  out.repack_written_bytes = counters_.repack_written_bytes.load();
  out.full_rewrite_bytes = counters_.full_rewrite_bytes.load();
  out.container_efficiency_sum = counters_.container_efficiency_sum.load();
  out.optimistic_retries = counters_.optimistic_retries.load();
  out.cross_shard_moves = counters_.cross_shard_moves.load();
  std::uint64_t contentions = 0;
  for (const Shard& shard : shards_) {
    contentions += shard.lock_contentions.load(std::memory_order_relaxed);
  }
  out.shard_lock_contentions = contentions;
  return out;
}

std::optional<Image> ShardedCache::find(ImageId id) const {
  for (const Shard& shard : shards_) {
    auto lock = lock_shard(shard);
    auto it = shard.images.find(to_value(id));
    if (it != shard.images.end()) return it->second;
  }
  return std::nullopt;
}

std::vector<ShardStats> ShardedCache::shard_stats() const {
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = shards_[s];
    auto lock = lock_shard(shard);
    ShardStats stats;
    stats.shard = s;
    stats.images = shard.images.size();
    for (const auto& [id, image] : shard.images) stats.bytes += image.bytes;
    stats.homed_inserts = shard.homed_inserts;
    stats.lock_acquisitions = shard.lock_acquisitions.load(std::memory_order_relaxed);
    stats.lock_contentions = shard.lock_contentions.load(std::memory_order_relaxed);
    out.push_back(stats);
  }
  return out;
}

std::vector<Image> ShardedCache::snapshot_images() const {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const Shard& shard : shards_) locks.push_back(lock_shard(shard));
  std::vector<Image> out;
  out.reserve(image_count_.load(std::memory_order_acquire));
  for (const Shard& shard : shards_) {
    for (const auto& [id, image] : shard.images) out.push_back(image);
  }
  std::sort(out.begin(), out.end(), [](const Image& a, const Image& b) {
    return to_value(a.id) < to_value(b.id);
  });
  return out;
}

}  // namespace landlord::core
