// Sharded concurrent LANDLORD cache.
//
// core::ConcurrentCache serialises every request behind one mutex, so a
// head node's Algorithm 1 throughput is capped at single-core speed. The
// ShardedCache partitions the image namespace across N shards keyed by
// the MinHash/LSH band signature of each image's contents
// (spec::band_signature_hash), so near-duplicate specifications — the
// ones likely to hit or merge with each other — tend to co-locate on one
// shard while unrelated traffic proceeds in parallel on the others.
//
// Concurrency protocol (per request):
//   1. *Decision phase* — the superset scan and the merge-candidate scan
//      visit shards one at a time, holding only that shard's lock, and
//      collect (id, bytes/distance) candidates. No two shard locks are
//      ever held during a scan.
//   2. *Apply phase* — the winning shard is re-locked and the decision
//      revalidated (the image may have changed since the scan); a stale
//      decision is retried from the top and counted in
//      CacheCounters::optimistic_retries. Mutations (hit bookkeeping,
//      merge, insert) happen under exactly one shard lock.
//   3. *Cross-shard path* — a merge or split can change an image's band
//      signature so that it homes to a different shard. When the target
//      shard has a higher index the image moves under both locks,
//      acquired in increasing index order (the global lock order; the
//      all-shard snapshot path acquires 0..N-1 the same way, so the
//      system is deadlock-free). When the target index is lower, the
//      image is extracted under the source lock and re-inserted under
//      the target lock — briefly invisible, never duplicated.
//   4. *Budget* — total bytes and image count live in shared atomic
//      ledgers. Eviction re-scans all shards for the globally worst
//      victim (per EvictionPolicy, deterministic id tie-break) and
//      revalidates it under its shard lock before erasing.
//
// Determinism: with one replay thread, every decision (hit choice, merge
// candidate order, victim choice, id assignment) is bit-identical to the
// sequential core::Cache for ANY shard count — the equivalence oracle in
// tests/landlord/sharded_cache_test.cpp replays identical traces through
// both and compares counters and final image sets. Multi-threaded runs
// are linearizable per shard and preserve the cache invariants
// (tests/landlord/sharded_stress_test.cpp) but their interleaving, and
// hence exact counters, depend on the schedule.
//
// Unsupported in sharded mode: CacheConfig::record_time_series (the
// per-request cache-wide union would serialise every request again); the
// flag is ignored.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "landlord/cache.hpp"

namespace landlord::core {

/// Point-in-time observability snapshot of one shard.
struct ShardStats {
  std::size_t shard = 0;
  std::uint64_t images = 0;            ///< images resident on this shard
  util::Bytes bytes = 0;               ///< their total size
  std::uint64_t homed_inserts = 0;     ///< inserts/adopts placed here
  std::uint64_t lock_acquisitions = 0; ///< times this shard's lock was taken
  std::uint64_t lock_contentions = 0;  ///< acquisitions that had to wait
};

class ShardedCache {
 public:
  /// Shard count comes from config.shards (clamped to >= 1).
  ShardedCache(const pkg::Repository& repo, CacheConfig config);

  ShardedCache(const ShardedCache&) = delete;
  ShardedCache& operator=(const ShardedCache&) = delete;

  /// Thread-safe Algorithm 1 request (hit / merge / insert + eviction).
  Cache::Outcome request(const spec::Specification& spec);

  /// Re-admits an image from a persisted snapshot (see Cache::adopt).
  /// Thread-safe, though restores normally run single-threaded.
  ImageId adopt(spec::PackageSet contents,
                std::vector<spec::VersionConstraint> constraints,
                std::uint64_t hits, std::uint32_t merge_count,
                std::uint32_t version);

  // ---- Introspection (each call is individually consistent) ----
  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  [[nodiscard]] std::size_t image_count() const noexcept {
    return image_count_.load(std::memory_order_acquire);
  }
  [[nodiscard]] util::Bytes total_bytes() const noexcept {
    return total_bytes_.load(std::memory_order_acquire);
  }
  /// Deduplicated footprint; takes every shard lock (increasing order).
  [[nodiscard]] util::Bytes unique_bytes() const;
  /// unique/total under the all-shard lock; 1 for an empty cache.
  [[nodiscard]] double cache_efficiency() const;
  /// Materialises the atomic ledgers into a plain counters snapshot.
  [[nodiscard]] CacheCounters counters() const;
  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }
  /// Copy of the image if resident (locks its shard).
  [[nodiscard]] std::optional<Image> find(ImageId id) const;
  /// Per-shard occupancy and lock-contention counters.
  [[nodiscard]] std::vector<ShardStats> shard_stats() const;

  /// Summed postings/eviction-index telemetry across shards (zeros when
  /// decision_index is off). Takes each shard lock in turn.
  [[nodiscard]] DecisionIndexStats index_stats() const;
  /// Spec-memo telemetry (zeros when decision_index is off).
  [[nodiscard]] SpecMemoStats memo_stats() const { return memo_.stats(); }
  /// Reconciles every shard's decision index against a from-scratch
  /// rebuild; nullopt when consistent or the index is disabled.
  [[nodiscard]] std::optional<std::string> check_decision_index() const;

  /// Registers a callback fired whenever an image leaves the cache (see
  /// Cache::set_eviction_listener). Fired while the victim's shard lock
  /// is held; the callback must not re-enter the cache. Set before
  /// concurrent use (the slot itself is unsynchronised). nullptr
  /// detaches.
  void set_eviction_listener(Cache::EvictionListener listener) {
    eviction_listener_ = std::move(listener);
  }

  /// Attaches (or detaches, with nullptr) an observability bundle; see
  /// Cache::set_observability for the contract. Counters are bumped
  /// inline next to their AtomicCounters twins (so the two reconcile
  /// exactly); per-shard occupancy gauges are only refreshed by
  /// publish_metrics().
  void set_observability(obs::Observability* observability);
  /// Copies current per-shard occupancy/contention numbers into the
  /// attached registry's gauges. Call before rendering a snapshot; no-op
  /// when detached.
  void publish_metrics();

  /// Consistent point-in-time copy of every image: all shard locks are
  /// held (in increasing index order) for the duration, so the result is
  /// a true snapshot — the sharded analogue of
  /// ConcurrentCache::with_exclusive for persistence.
  [[nodiscard]] std::vector<Image> snapshot_images() const;

  /// Visits a consistent snapshot of every cached image.
  template <typename Fn>
  void for_each_image(Fn&& fn) const {
    for (const Image& image : snapshot_images()) fn(image);
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, Image> images;
    // MinHash/LSH state (kMinHashLsh policy only), guarded by `mutex`.
    spec::LshIndex lsh;
    std::unordered_map<std::uint64_t, spec::MinHashSignature> signatures;
    /// Sublinear decision path for this shard's images (engaged iff
    /// config.decision_index), guarded by `mutex`.
    std::optional<DecisionIndex> dindex;
    std::uint64_t homed_inserts = 0;  // guarded by `mutex`
    // Lock telemetry; relaxed atomics so readers need not take `mutex`.
    mutable std::atomic<std::uint64_t> lock_acquisitions{0};
    mutable std::atomic<std::uint64_t> lock_contentions{0};
  };

  /// Locks one shard, counting contention when the fast path misses.
  [[nodiscard]] std::unique_lock<std::mutex> lock_shard(const Shard& shard) const;
  /// Shard an image with these contents homes to (band-signature hash).
  [[nodiscard]] std::size_t home_of(const spec::PackageSet& contents) const;

  Cache::Outcome serve(const spec::Specification& spec, std::uint64_t now,
                       util::Bytes requested);
  Cache::Outcome apply_hit(std::size_t shard_index, std::uint64_t id,
                           const spec::Specification& spec, std::uint64_t now,
                           util::Bytes requested, bool& stale);
  Cache::Outcome split_locked(std::unique_lock<std::mutex>& source_lock,
                              std::size_t shard_index, Image& bloated,
                              const spec::Specification& spec,
                              std::uint64_t now);
  void rehome_locked(std::unique_lock<std::mutex>& source_lock,
                     std::size_t source_index, std::size_t target_index,
                     std::uint64_t id);

  void index_insert(Shard& shard, const Image& image);
  void index_erase(Shard& shard, const Image& image);

  // Decision-index maintenance (no-ops when the knob is off); caller
  // holds the shard's lock. Structural changes bump the memo epoch;
  // recency touches do not.
  void dindex_insert(Shard& shard, const Image& image);
  void dindex_erase(Shard& shard, const util::DynamicBitset& old_bits,
                    const EvictionKey& old_key);
  void dindex_update(Shard& shard, const Image& image,
                     const util::DynamicBitset& old_bits,
                     const EvictionKey& old_key);
  void dindex_touch(Shard& shard, const EvictionKey& old_key,
                    const Image& image);

  void enforce_budget(std::uint64_t now);
  void evict_idle(std::uint64_t now);

  const pkg::Repository* repo_;
  CacheConfig config_;
  std::vector<Shard> shards_;
  spec::MinHasher hasher_;
  /// Cache-wide spec memo: a decision names a shard, so one epoch
  /// guards them all. Consulted only when config_.decision_index.
  SpecMemo memo_;

  // Shared ledgers.
  std::atomic<util::Bytes> total_bytes_{0};
  std::atomic<std::uint64_t> image_count_{0};
  std::atomic<std::uint64_t> clock_{0};
  std::atomic<std::uint64_t> id_counter_{0};

  struct AtomicCounters {
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> merges{0};
    std::atomic<std::uint64_t> inserts{0};
    std::atomic<std::uint64_t> deletes{0};
    std::atomic<std::uint64_t> splits{0};
    std::atomic<std::uint64_t> conflict_rejections{0};
    std::atomic<util::Bytes> requested_bytes{0};
    std::atomic<util::Bytes> written_bytes{0};
    std::atomic<std::uint64_t> delta_merges{0};
    std::atomic<std::uint64_t> repacks{0};
    std::atomic<util::Bytes> delta_written_bytes{0};
    std::atomic<util::Bytes> repack_written_bytes{0};
    std::atomic<util::Bytes> full_rewrite_bytes{0};
    std::atomic<double> container_efficiency_sum{0.0};
    std::atomic<std::uint64_t> optimistic_retries{0};
    std::atomic<std::uint64_t> cross_shard_moves{0};
  };
  AtomicCounters counters_;
  Cache::EvictionListener eviction_listener_;

  /// Metric handles resolved at set_observability; null ⇒ no-op.
  struct Hooks {
    obs::Counter* requests_hit = nullptr;
    obs::Counter* requests_merge = nullptr;
    obs::Counter* requests_insert = nullptr;
    obs::Counter* evictions_budget = nullptr;
    obs::Counter* evictions_idle = nullptr;
    obs::Counter* evictions_split = nullptr;
    obs::Counter* splits = nullptr;
    obs::Counter* conflict_rejections = nullptr;
    obs::Counter* lock_contentions = nullptr;
    obs::Counter* optimistic_retries = nullptr;
    obs::Counter* cross_shard_moves = nullptr;
    // Delta-merge CAS families (registered only when delta_chain_cap > 0).
    obs::Counter* cas_delta_merges = nullptr;
    obs::Counter* cas_repacks = nullptr;
    obs::Counter* cas_delta_bytes = nullptr;
    obs::Counter* cas_repack_bytes = nullptr;
    obs::Counter* cas_full_rewrite_bytes = nullptr;
    // Decision-index families (registered only when the knob is on).
    obs::Histogram* postings_probe = nullptr;
    obs::Counter* memo_hit = nullptr;
    obs::Counter* memo_miss = nullptr;
    obs::Counter* eviction_index_updates = nullptr;
    std::vector<obs::Gauge*> shard_images;       ///< indexed by shard
    std::vector<obs::Gauge*> shard_bytes;        ///< indexed by shard
    std::vector<obs::Gauge*> shard_contentions;  ///< indexed by shard
    obs::EventTrace* trace = nullptr;
  };
  Hooks hooks_;
};

}  // namespace landlord::core
