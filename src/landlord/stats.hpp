// Cache operation counters and per-request time series.
//
// These are exactly the quantities the paper plots: operation counts
// (hits / inserts / merges / deletes, Fig. 4a & 5), cached vs. unique
// data (Fig. 4b, cache efficiency), cumulative requested vs. actual
// writes (Fig. 4c, I/O overhead), and per-request container efficiency
// (Fig. 6/7/8).
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace landlord::core {

/// Monotone counters over the life of a cache.
struct CacheCounters {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;      ///< satisfied by an existing image (s ⊆ i)
  std::uint64_t merges = 0;    ///< spec merged into a close image
  std::uint64_t inserts = 0;   ///< brand-new image created
  std::uint64_t deletes = 0;   ///< images evicted (LRU, over budget)
  std::uint64_t splits = 0;    ///< bloated images split along lineage (extension)
  std::uint64_t conflict_rejections = 0;  ///< merge candidates rejected by constraints

  util::Bytes requested_bytes = 0;  ///< Σ size of what each job asked for
  util::Bytes written_bytes = 0;    ///< Σ bytes written creating/merging images

  // ---- Delta-merge accounting (all 0 when delta_chain_cap == 0, the
  // paper's full-rewrite model). Delta mode never changes decisions —
  // only how merge writes are charged — so every counter above stays
  // bit-identical with delta on or off except written_bytes, whose
  // full-rewrite counterfactual is preserved below. ----
  std::uint64_t delta_merges = 0;  ///< merges charged as delta writes
  std::uint64_t repacks = 0;       ///< chain flattenings (cap reached)
  util::Bytes delta_written_bytes = 0;   ///< Σ bytes charged to delta merges
  util::Bytes repack_written_bytes = 0;  ///< Σ bytes charged to repacks
  /// What written_bytes would have been under full-rewrite accounting;
  /// equals written_bytes exactly when delta merges are off.
  util::Bytes full_rewrite_bytes = 0;

  // ---- Concurrency observability (ShardedCache only; always 0 for the
  // sequential Cache and for any sharded run with a single thread). ----
  std::uint64_t shard_lock_contentions = 0;  ///< shard-lock waits (try_lock missed)
  std::uint64_t optimistic_retries = 0;  ///< decisions invalidated by a racing writer
  std::uint64_t cross_shard_moves = 0;   ///< images re-homed after merge/split

  /// Σ over requests of (requested bytes / used-image bytes); divide by
  /// `requests` for the paper's container efficiency.
  double container_efficiency_sum = 0.0;

  [[nodiscard]] double container_efficiency() const noexcept {
    return requests > 0
               ? container_efficiency_sum / static_cast<double>(requests)
               : 1.0;
  }
};

/// How a single request was satisfied.
enum class RequestKind : std::uint8_t { kHit, kMerge, kInsert };

[[nodiscard]] constexpr const char* to_string(RequestKind kind) noexcept {
  switch (kind) {
    case RequestKind::kHit: return "hit";
    case RequestKind::kMerge: return "merge";
    case RequestKind::kInsert: return "insert";
  }
  return "?";
}

/// One row of the Fig. 5 time series, sampled after each request.
struct RequestSample {
  RequestKind kind = RequestKind::kHit;
  std::uint64_t hits = 0;
  std::uint64_t inserts = 0;
  std::uint64_t deletes = 0;
  std::uint64_t merges = 0;
  util::Bytes cached_bytes = 0;        ///< total data in cache
  util::Bytes unique_bytes = 0;        ///< deduplicated data in cache
  util::Bytes cumulative_written = 0;  ///< running actual-write total
  util::Bytes cumulative_requested = 0;
  std::uint64_t image_count = 0;
};

/// Optional per-request recording (costs one cache-wide union per
/// request when enabled; leave off for sweeps).
class TimeSeries {
 public:
  void record(RequestSample sample) { samples_.push_back(sample); }
  [[nodiscard]] const std::vector<RequestSample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

 private:
  std::vector<RequestSample> samples_;
};

}  // namespace landlord::core
