#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

namespace landlord::obs {

namespace {

/// Prometheus number formatting: integers render without a decimal point
/// (counters stay exact up to 2^53 when parsed back as doubles), +Inf as
/// the literal Prometheus uses.
std::string format_value(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(0);
    out << v;
    return out.str();
  }
  std::ostringstream out;
  out.precision(17);
  out << v;
  return out.str();
}

std::string render_labels(const Labels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    // Escape per the exposition format; our label values are static
    // identifiers, so this is belt-and-braces.
    for (char c : value) {
      if (c == '\\' || c == '"') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    out += '"';
  }
  out += '}';
  return out;
}

/// Inserts extra labels (e.g. `le`) into an already-rendered series key.
std::string with_extra_label(const std::string& family, const Labels& labels,
                             const std::string& key, const std::string& value) {
  Labels all = labels;
  all.emplace_back(key, value);
  return family + render_labels(all);
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()) &&
         std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end() &&
         "histogram bounds must be strictly increasing");
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double v) noexcept {
  // First bucket whose upper bound admits v; everything above the last
  // bound lands in the implicit +Inf bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<double> default_seconds_buckets() {
  return {0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0, 1800.0};
}

std::vector<double> default_bytes_buckets() {
  return {1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12};
}

Registry::Series& Registry::find_or_create(std::string_view name,
                                           const Labels& labels, Kind kind,
                                           std::string_view help) {
  std::string key = std::string(name) + render_labels(labels);
  std::scoped_lock lock(mutex_);
  if (auto it = by_key_.find(key); it != by_key_.end()) {
    assert(it->second->kind == kind && "metric re-registered as another type");
    return *it->second;
  }
  auto series = std::make_unique<Series>();
  series->family = std::string(name);
  series->key = key;
  series->labels = labels;
  series->kind = kind;
  series->help = std::string(help);
  Series& ref = *series;
  by_key_.emplace(std::move(key), &ref);
  series_.push_back(std::move(series));
  return ref;
}

Counter& Registry::counter(std::string_view name, const Labels& labels,
                           std::string_view help) {
  Series& series = find_or_create(name, labels, Kind::kCounter, help);
  std::scoped_lock lock(mutex_);
  if (!series.counter) series.counter = std::make_unique<Counter>();
  return *series.counter;
}

Gauge& Registry::gauge(std::string_view name, const Labels& labels,
                       std::string_view help) {
  Series& series = find_or_create(name, labels, Kind::kGauge, help);
  std::scoped_lock lock(mutex_);
  if (!series.gauge) series.gauge = std::make_unique<Gauge>();
  return *series.gauge;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> upper_bounds,
                               const Labels& labels, std::string_view help) {
  Series& series = find_or_create(name, labels, Kind::kHistogram, help);
  std::scoped_lock lock(mutex_);
  if (!series.histogram) {
    series.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return *series.histogram;
}

void Registry::render_text(std::ostream& out) const {
  std::scoped_lock lock(mutex_);
  // Group series by family so # HELP / # TYPE appear once per family,
  // with series in registration order within a family.
  std::vector<const Series*> ordered;
  ordered.reserve(series_.size());
  for (const auto& series : series_) ordered.push_back(series.get());
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Series* a, const Series* b) {
                     return a->family < b->family;
                   });

  std::string_view previous_family;
  for (const Series* series : ordered) {
    if (series->family != previous_family) {
      previous_family = series->family;
      if (!series->help.empty()) {
        out << "# HELP " << series->family << ' ' << series->help << '\n';
      }
      const char* type = series->kind == Kind::kCounter    ? "counter"
                         : series->kind == Kind::kGauge    ? "gauge"
                                                           : "histogram";
      out << "# TYPE " << series->family << ' ' << type << '\n';
    }
    switch (series->kind) {
      case Kind::kCounter:
        out << series->key << ' '
            << format_value(static_cast<double>(series->counter->value()))
            << '\n';
        break;
      case Kind::kGauge:
        out << series->key << ' ' << format_value(series->gauge->value())
            << '\n';
        break;
      case Kind::kHistogram: {
        const Histogram& h = *series->histogram;
        const auto counts = h.bucket_counts();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += counts[i];
          out << with_extra_label(series->family + "_bucket", series->labels,
                                  "le", format_value(h.bounds()[i]))
              << ' ' << cumulative << '\n';
        }
        cumulative += counts[h.bounds().size()];
        out << with_extra_label(series->family + "_bucket", series->labels,
                                "le", "+Inf")
            << ' ' << cumulative << '\n';
        out << series->family << "_sum" << render_labels(series->labels) << ' '
            << format_value(h.sum()) << '\n';
        out << series->family << "_count" << render_labels(series->labels)
            << ' ' << h.count() << '\n';
        break;
      }
    }
  }
}

std::string Registry::render_text() const {
  std::ostringstream out;
  render_text(out);
  return out.str();
}

std::map<std::string, double> Registry::snapshot() const {
  std::ostringstream text;
  render_text(text);
  std::istringstream in(text.str());
  auto parsed = parse_text(in);
  assert(parsed.ok() && "registry rendered unparseable exposition");
  return std::move(parsed).value();
}

void render_text(const Registry& registry, std::ostream& out) {
  registry.render_text(out);
}

util::Result<std::map<std::string, double>> parse_text(std::istream& in) {
  std::map<std::string, double> out;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    // Split on the last space: the series key itself may contain spaces
    // only inside quoted label values, which never end the line.
    const std::size_t space = line.find_last_of(' ');
    if (space == std::string::npos || space == 0 || space + 1 >= line.size()) {
      return util::Error::at_line(line_number, "expected `series value`: " + line);
    }
    const std::string key = line.substr(0, space);
    const std::string value_text = line.substr(space + 1);
    if (key.find(' ') != std::string::npos &&
        key.find('"') == std::string::npos) {
      return util::Error::at_line(line_number, "malformed series name: " + line);
    }
    double value = 0.0;
    if (value_text == "+Inf") {
      value = std::numeric_limits<double>::infinity();
    } else if (value_text == "-Inf") {
      value = -std::numeric_limits<double>::infinity();
    } else {
      char* end = nullptr;
      value = std::strtod(value_text.c_str(), &end);
      if (end == value_text.c_str() || *end != '\0') {
        return util::Error::at_line(line_number,
                                    "unparseable value: " + value_text);
      }
    }
    if (!out.emplace(key, value).second) {
      return util::Error::at_line(line_number, "duplicate series: " + key);
    }
  }
  return out;
}

}  // namespace landlord::obs
