// Lock-free metrics primitives and a named registry with Prometheus-style
// text exposition.
//
// The paper's whole argument is quantitative (hit ratio, written bytes,
// container efficiency under α, §V–§VI), so a run must be able to explain
// itself without a debugger: every layer of the request path publishes
// counters, gauges and fixed-bucket histograms into an obs::Registry, and
// obs::render_text emits the standard `name{label="v"} value` exposition
// any Prometheus-compatible scraper (or scripts/tier1.sh) can parse back.
//
// Concurrency contract: the *hot path* — Counter::inc, Gauge::add/set,
// Histogram::observe — is wait-free (relaxed atomics, no locks), so it is
// safe and cheap from every shard/submit thread. Registration and
// rendering take the registry mutex; callers resolve their handles once
// at attach time and then only touch atomics.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.hpp"

namespace landlord::obs {

/// Monotone event count. Wait-free increment; 64-bit, never resets.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time double value. `add` is a CAS loop (no atomic<double>
/// fetch_add before C++20 libstdc++ exposes it portably for doubles).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  /// Raises the gauge to `v` if it is currently below it. Monotone under
  /// any interleaving — a stale publisher can never regress a peak the
  /// way racing set() calls can.
  void max_to(double v) noexcept {
    double current = value_.load(std::memory_order_relaxed);
    while (current < v &&
           !value_.compare_exchange_weak(current, v,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram (cumulative `le` buckets at render time, like
/// Prometheus). Bucket bounds are set at registration and never change;
/// observe() is wait-free.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing; an implicit +Inf bucket
  /// is appended.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket (non-cumulative) counts; index bounds_.size() is +Inf.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size()+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// `{key, value}` pairs appended to a family name, rendered in the given
/// order as `name{k1="v1",k2="v2"}`.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Useful default bounds: modelled seconds for prep/backoff latencies.
[[nodiscard]] std::vector<double> default_seconds_buckets();
/// Useful default bounds: bytes from 1 MB to 1 TB, decade-ish steps.
[[nodiscard]] std::vector<double> default_bytes_buckets();

/// Named metric registry. Lookup-or-create returns a stable reference
/// that outlives every later registration (deque-backed storage); the
/// same (name, labels) always yields the same handle, so independent
/// layers can share a series. Requesting an existing name with a
/// different metric type is a programming error and asserts.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name, const Labels& labels = {},
                   std::string_view help = {});
  Gauge& gauge(std::string_view name, const Labels& labels = {},
               std::string_view help = {});
  Histogram& histogram(std::string_view name, std::vector<double> upper_bounds,
                       const Labels& labels = {}, std::string_view help = {});

  /// Prometheus text exposition: families sorted by name, `# HELP` /
  /// `# TYPE` headers, histograms expanded into cumulative _bucket /
  /// _sum / _count series.
  void render_text(std::ostream& out) const;
  [[nodiscard]] std::string render_text() const;

  /// Flat snapshot of every series as rendered (histogram expansion
  /// included), keyed by the full series name with labels.
  [[nodiscard]] std::map<std::string, double> snapshot() const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  struct Series {
    std::string family;  ///< name without labels
    std::string key;     ///< family + rendered labels
    Labels labels;
    Kind kind = Kind::kCounter;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Series& find_or_create(std::string_view name, const Labels& labels,
                         Kind kind, std::string_view help);

  mutable std::mutex mutex_;  ///< registration + render only, never inc()
  std::vector<std::unique_ptr<Series>> series_;
  std::map<std::string, Series*> by_key_;
};

/// Renders `registry` in the Prometheus text exposition format.
void render_text(const Registry& registry, std::ostream& out);

/// Parses a text exposition back into {series name with labels → value}.
/// Fails (with the offending line) on anything that is neither a comment,
/// a blank line, nor `name[{labels}] <number>` — the tier-1 gate runs a
/// sim with --metrics-out and feeds the file through this.
[[nodiscard]] util::Result<std::map<std::string, double>> parse_text(
    std::istream& in);

}  // namespace landlord::obs
