// The observability bundle every instrumented layer attaches to.
//
// One Observability instance spans a whole service (head node / sim
// run): core::Cache, core::ShardedCache, core::Landlord and
// fault::FaultInjector each take a non-owning pointer via their
// set_observability() and resolve their metric handles once; the sim
// drivers (sim::run_simulation / run_parallel / run_crash_replay) accept
// one through their configs and publish end-of-run gauges into it.
// Metric names, the event schema and the exposition format are
// documented in docs/observability.md.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace landlord::obs {

struct Observability {
  Observability() = default;
  explicit Observability(std::size_t trace_capacity) : trace(trace_capacity) {}

  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  Registry registry;
  EventTrace trace;
};

}  // namespace landlord::obs
