#include "obs/trace.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace landlord::obs {

EventTrace::EventTrace(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void EventTrace::record(TraceEvent event) {
  std::scoped_lock lock(mutex_);
  event.seq = next_seq_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[static_cast<std::size_t>(event.seq % capacity_)] = event;
  }
}

std::uint64_t EventTrace::recorded() const {
  std::scoped_lock lock(mutex_);
  return next_seq_;
}

std::vector<TraceEvent> EventTrace::snapshot() const {
  std::scoped_lock lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // The ring wrapped: the oldest retained event sits at the write
    // cursor (next_seq_ % capacity_).
    const std::size_t start = static_cast<std::size_t>(next_seq_ % capacity_);
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(start + i) % capacity_]);
    }
  }
  return out;
}

namespace {

/// Doubles in the trace are modelled seconds; shortest round-trippable
/// form keeps the JSONL diffable.
void append_double(std::string& out, double v) {
  std::ostringstream text;
  text.precision(17);
  text << v;
  out += text.str();
}

}  // namespace

void EventTrace::write_jsonl(std::ostream& out) const {
  for (const TraceEvent& event : snapshot()) {
    std::string line = "{\"seq\":" + std::to_string(event.seq) +
                       ",\"event\":\"" + to_string(event.kind) + '"';
    if (event.detail != nullptr) {
      line += ",\"detail\":\"";
      line += event.detail;
      line += '"';
    }
    if (event.image != 0) line += ",\"image\":" + std::to_string(event.image);
    if (event.bytes != 0) line += ",\"bytes\":" + std::to_string(event.bytes);
    if (event.aux != 0) line += ",\"aux\":" + std::to_string(event.aux);
    if (event.seconds != 0.0) {
      line += ",\"seconds\":";
      append_double(line, event.seconds);
    }
    if (event.degraded) line += ",\"degraded\":true";
    if (event.failed) line += ",\"failed\":true";
    line += "}\n";
    out << line;
  }
}

}  // namespace landlord::obs
