// Structured per-request event trace with a bounded ring buffer and a
// JSONL sink.
//
// Metrics answer "how many"; the trace answers "what exactly happened to
// request k" — which rung of the degradation ladder a submit took, which
// victim an eviction chose, which fault class fired. Events are
// fixed-size records (no allocation per event) appended to a ring that
// keeps the most recent `capacity` entries, so a million-request sim can
// leave tracing on and still hand the operator the tail that matters.
// EventTrace::write_jsonl emits one JSON object per line; the schema is
// documented in docs/observability.md.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <vector>

namespace landlord::obs {

enum class EventKind : std::uint8_t {
  kRequest,          ///< one decision-layer request (hit/merge/insert)
  kEviction,         ///< an image left the cache (budget or idle)
  kSplit,            ///< a bloated image was split along its lineage
  kBuildRetry,       ///< a failed build was retried after backoff
  kFallbackExact,    ///< ladder rung 2: merge rewrite -> exact uncached image
  kFallbackUnsplit,  ///< ladder rung 3: split rebuild -> unsplit on-disk image
  kErrorPlacement,   ///< ladder exhausted: job got no image
  kToctouRetry,      ///< decided image evicted mid-submit; decision re-run
  kFaultInjected,    ///< the injector failed an operation
  kCheckpoint,       ///< cache snapshot written (or torn)
  kRestore,          ///< cache snapshot restored after a crash
  kInvariantViolation,  ///< a placement failed the obs invariant check
  kWorkerCrash,         ///< a worker lost its scratch copies and went down
  kTransferFault,       ///< a worker transfer was cut mid-stream
  kSiteOutage,          ///< a site rejected a placement attempt
  kFailover,            ///< a request was served by a non-home site
  kBreakerTransition,   ///< a site breaker changed state
  kServeConnection,     ///< service plane accepted or closed a connection
  kServeOverload,       ///< admission control rejected a submit frame
  kServeDrain,          ///< service plane began or completed graceful drain
  kRepack,              ///< a merge hit the delta-chain cap and rewrote in full
  kServeNetTimeout,     ///< a read idle / write stall timeout closed a socket
  kServeDedup,          ///< a retried submit was answered from the dedup window
  kServeDeadlineShed,   ///< expired specs were shed before execution
};

[[nodiscard]] constexpr const char* to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kRequest: return "request";
    case EventKind::kEviction: return "eviction";
    case EventKind::kSplit: return "split";
    case EventKind::kBuildRetry: return "build-retry";
    case EventKind::kFallbackExact: return "fallback-exact";
    case EventKind::kFallbackUnsplit: return "fallback-unsplit";
    case EventKind::kErrorPlacement: return "error-placement";
    case EventKind::kToctouRetry: return "toctou-retry";
    case EventKind::kFaultInjected: return "fault-injected";
    case EventKind::kCheckpoint: return "checkpoint";
    case EventKind::kRestore: return "restore";
    case EventKind::kInvariantViolation: return "invariant-violation";
    case EventKind::kWorkerCrash: return "worker-crash";
    case EventKind::kTransferFault: return "transfer-fault";
    case EventKind::kSiteOutage: return "site-outage";
    case EventKind::kFailover: return "failover";
    case EventKind::kBreakerTransition: return "breaker-transition";
    case EventKind::kServeConnection: return "serve-connection";
    case EventKind::kServeOverload: return "serve-overload";
    case EventKind::kServeDrain: return "serve-drain";
    case EventKind::kRepack: return "repack";
    case EventKind::kServeNetTimeout: return "serve-net-timeout";
    case EventKind::kServeDedup: return "serve-dedup";
    case EventKind::kServeDeadlineShed: return "serve-deadline-shed";
  }
  return "?";
}

/// One fixed-size trace record. Field meaning depends on `kind` (see
/// docs/observability.md); unused fields stay zero. `detail` must point
/// at a string with static storage duration (operation/outcome names).
struct TraceEvent {
  std::uint64_t seq = 0;  ///< assigned by the buffer, monotone from 0
  EventKind kind = EventKind::kRequest;
  std::uint64_t image = 0;       ///< image id the event concerns
  std::uint64_t bytes = 0;       ///< image bytes involved
  std::uint64_t aux = 0;         ///< kind-specific (requested bytes, records lost, ...)
  double seconds = 0.0;          ///< modelled seconds (prep, backoff)
  const char* detail = nullptr;  ///< static string (outcome kind, fault op, ...)
  bool degraded = false;
  bool failed = false;
};

/// Bounded ring of the most recent events. record() is mutex-guarded and
/// allocation-free after construction; readers snapshot oldest→newest.
class EventTrace {
 public:
  explicit EventTrace(std::size_t capacity = 4096);

  /// Appends, overwriting the oldest event once the ring is full, and
  /// stamps TraceEvent::seq.
  void record(TraceEvent event);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Total events ever recorded (>= retained size).
  [[nodiscard]] std::uint64_t recorded() const;
  /// Events currently retained, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// One JSON object per line, oldest first:
  ///   {"seq":0,"event":"request","detail":"hit","image":3,...}
  void write_jsonl(std::ostream& out) const;

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  std::size_t capacity_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace landlord::obs
