#include "pkg/manifest.hpp"

#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string_view>
#include <vector>

namespace landlord::pkg {

namespace {

/// Splits on runs of spaces/tabs.
std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

util::Result<PackageTier> parse_tier(std::string_view text, std::size_t line_no) {
  if (text == "core") return PackageTier::kCore;
  if (text == "library") return PackageTier::kLibrary;
  if (text == "leaf") return PackageTier::kLeaf;
  return util::Error::at_line(line_no, "unknown tier '" + std::string(text) + "'");
}

}  // namespace

util::Result<Repository> parse_manifest(std::istream& in) {
  RepositoryBuilder builder;
  std::optional<RepositoryBuilder::Declaration> current;
  std::string line;
  std::size_t line_no = 0;

  auto flush = [&builder, &current] {
    if (current) {
      builder.add(std::move(*current));
      current.reset();
    }
  };

  while (std::getline(in, line)) {
    ++line_no;
    // Strip trailing CR from CRLF input.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    auto tokens = tokenize(line);
    if (tokens.empty() || tokens.front().front() == '#') continue;

    if (tokens.front() == "package") {
      if (tokens.size() != 5) {
        return util::Error::at_line(
            line_no, "expected: package <name> <version> <size> <tier>");
      }
      flush();
      RepositoryBuilder::Declaration d;
      d.name = std::string(tokens[1]);
      d.version = std::string(tokens[2]);
      util::Bytes size = 0;
      auto [ptr, ec] =
          std::from_chars(tokens[3].data(), tokens[3].data() + tokens[3].size(), size);
      if (ec != std::errc{} || ptr != tokens[3].data() + tokens[3].size()) {
        return util::Error::at_line(line_no, "bad size '" + std::string(tokens[3]) + "'");
      }
      d.size = size;
      auto tier = parse_tier(tokens[4], line_no);
      if (!tier) return tier.error();
      d.tier = tier.value();
      current = std::move(d);
    } else if (tokens.front() == "dep") {
      if (tokens.size() != 2) {
        return util::Error::at_line(line_no, "expected: dep <name>/<version>");
      }
      if (!current) {
        return util::Error::at_line(line_no, "dep line before any package line");
      }
      current->dep_keys.emplace_back(tokens[1]);
    } else {
      return util::Error::at_line(
          line_no, "unknown directive '" + std::string(tokens.front()) + "'");
    }
  }
  flush();
  return std::move(builder).build();
}

util::Result<Repository> parse_manifest_text(const std::string& text) {
  std::istringstream in(text);
  return parse_manifest(in);
}

util::Result<Repository> load_manifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Error{"cannot open manifest: " + path};
  return parse_manifest(in);
}

void write_manifest(const Repository& repo, std::ostream& out) {
  out << "# landlord package manifest: " << repo.size() << " packages, "
      << repo.total_bytes() << " bytes total\n";
  for (std::uint32_t i = 0; i < repo.size(); ++i) {
    const auto& info = repo[package_id(i)];
    out << "package " << info.name << ' ' << info.version << ' ' << info.size
        << ' ' << to_string(info.tier) << '\n';
    for (PackageId dep : info.deps) {
      out << "dep " << repo[dep].key() << '\n';
    }
  }
}

}  // namespace landlord::pkg
