// Text manifest format for package repositories.
//
// The paper extracted the SFT repository's dependency tree from the build
// metadata CVMFS associates with each package. We define an equivalent
// plain-text manifest so real repository dumps can be loaded, and so the
// synthetic repository can be round-tripped for inspection:
//
//   # comment / blank lines ignored
//   package <name> <version> <size-bytes> <tier>
//   dep <name>/<version>
//   dep <name>/<version>
//   package ...
//
// `dep` lines attach to the most recent `package` line. Tier is one of
// core|library|leaf. Dependencies may reference packages declared later.
#pragma once

#include <iosfwd>
#include <string>

#include "pkg/repository.hpp"
#include "util/result.hpp"

namespace landlord::pkg {

/// Parses a manifest stream into a validated Repository.
[[nodiscard]] util::Result<Repository> parse_manifest(std::istream& in);

/// Parses a manifest from a string (convenience for tests/tools).
[[nodiscard]] util::Result<Repository> parse_manifest_text(const std::string& text);

/// Loads a manifest file from disk.
[[nodiscard]] util::Result<Repository> load_manifest(const std::string& path);

/// Serialises a repository back into the manifest format. Round-trips
/// through parse_manifest() to an equivalent repository.
void write_manifest(const Repository& repo, std::ostream& out);

}  // namespace landlord::pkg
