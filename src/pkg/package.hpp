// Package identity and metadata.
//
// A repository (CVMFS software repo, PyPI, Spack tree, ...) is modelled
// as an immutable universe of packages, each identified by a dense
// PackageId and carrying a name/version key — the paper's unit of
// specification ("each package is usually assigned a name/version string
// that is defined to be unique within the repo", §V).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace landlord::pkg {

/// Dense index into a Repository; valid ids are [0, repository.size()).
enum class PackageId : std::uint32_t {};

[[nodiscard]] constexpr std::uint32_t to_index(PackageId id) noexcept {
  return static_cast<std::uint32_t>(id);
}

[[nodiscard]] constexpr PackageId package_id(std::uint32_t index) noexcept {
  return static_cast<PackageId>(index);
}

/// Package classification, used by the synthetic generator and by
/// workload models to reproduce the SFT repository's hierarchy (§VI:
/// near-universal core frameworks vs. a long tail of rarely used leaves).
enum class PackageTier : std::uint8_t {
  kCore,     ///< base frameworks, setup scripts, calibration data
  kLibrary,  ///< mid-tier shared libraries and toolchains
  kLeaf,     ///< application-level, long-tail packages
};

[[nodiscard]] constexpr const char* to_string(PackageTier tier) noexcept {
  switch (tier) {
    case PackageTier::kCore: return "core";
    case PackageTier::kLibrary: return "library";
    case PackageTier::kLeaf: return "leaf";
  }
  return "?";
}

struct PackageInfo {
  std::string name;                 ///< project name, e.g. "ROOT"
  std::string version;              ///< version + build string, e.g. "6.18.04-x86_64-gcc8"
  util::Bytes size = 0;             ///< installed on-disk size
  PackageTier tier = PackageTier::kLeaf;
  std::vector<PackageId> deps;      ///< direct dependencies (ids within the repo)

  /// Unique key within a repository.
  [[nodiscard]] std::string key() const { return name + "/" + version; }
};

}  // namespace landlord::pkg
