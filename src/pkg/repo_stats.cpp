#include "pkg/repo_stats.hpp"

#include <algorithm>
#include <vector>

namespace landlord::pkg {

RepoStats compute_stats(const Repository& repo) {
  RepoStats stats;
  stats.packages = static_cast<std::uint32_t>(repo.size());
  stats.total_bytes = repo.total_bytes();

  std::uint64_t dep_edges = 0;
  std::uint64_t closure_total = 0;
  for (std::uint32_t i = 0; i < repo.size(); ++i) {
    const auto& info = repo[package_id(i)];
    switch (info.tier) {
      case PackageTier::kCore: ++stats.core_packages; break;
      case PackageTier::kLibrary: ++stats.library_packages; break;
      case PackageTier::kLeaf: ++stats.leaf_packages; break;
    }
    dep_edges += info.deps.size();
    const auto closure_size = static_cast<std::uint32_t>(repo.closure(package_id(i)).count());
    closure_total += closure_size;
    stats.max_closure_packages = std::max(stats.max_closure_packages, closure_size);
  }
  if (repo.size() > 0) {
    stats.mean_direct_deps =
        static_cast<double>(dep_edges) / static_cast<double>(repo.size());
    stats.mean_closure_packages =
        static_cast<double>(closure_total) / static_cast<double>(repo.size());
  }

  // Longest dependency chain via DP over the topological order
  // (dependencies first, so depth(dep) is final when we read it).
  std::vector<std::uint32_t> depth(repo.size(), 0);
  for (PackageId id : repo.topological_order()) {
    std::uint32_t d = 0;
    for (PackageId dep : repo[id].deps) {
      d = std::max(d, depth[to_index(dep)] + 1);
    }
    depth[to_index(id)] = d;
    stats.max_depth = std::max(stats.max_depth, d);
  }
  return stats;
}

}  // namespace landlord::pkg
