// Aggregate repository statistics for reports and calibration checks.
#pragma once

#include <cstdint>

#include "pkg/repository.hpp"
#include "util/bytes.hpp"

namespace landlord::pkg {

struct RepoStats {
  std::uint32_t packages = 0;
  std::uint32_t core_packages = 0;
  std::uint32_t library_packages = 0;
  std::uint32_t leaf_packages = 0;
  util::Bytes total_bytes = 0;
  double mean_direct_deps = 0.0;
  double mean_closure_packages = 0.0;  ///< mean |closure(p)| incl. p
  std::uint32_t max_closure_packages = 0;
  std::uint32_t max_depth = 0;  ///< longest dependency chain
};

[[nodiscard]] RepoStats compute_stats(const Repository& repo);

}  // namespace landlord::pkg
