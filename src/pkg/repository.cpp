#include "pkg/repository.hpp"

#include <algorithm>
#include <cassert>

namespace landlord::pkg {

void RepositoryBuilder::add(Declaration declaration) {
  declarations_.push_back(std::move(declaration));
}

util::Result<Repository> RepositoryBuilder::build() && {
  Repository repo;
  repo.packages_.reserve(declarations_.size());
  repo.by_key_.reserve(declarations_.size());

  // Pass 1: register keys.
  for (std::size_t i = 0; i < declarations_.size(); ++i) {
    const auto& d = declarations_[i];
    if (d.name.empty() || d.version.empty()) {
      return util::Error{"package " + std::to_string(i) + ": empty name or version"};
    }
    PackageInfo info;
    info.name = d.name;
    info.version = d.version;
    info.size = d.size;
    info.tier = d.tier;
    auto [it, inserted] = repo.by_key_.emplace(info.key(), package_id(static_cast<std::uint32_t>(i)));
    if (!inserted) {
      return util::Error{"duplicate package key: " + info.key()};
    }
    repo.packages_.push_back(std::move(info));
  }

  // Pass 2: resolve dependency keys to ids.
  for (std::size_t i = 0; i < declarations_.size(); ++i) {
    auto& info = repo.packages_[i];
    info.deps.reserve(declarations_[i].dep_keys.size());
    for (const auto& dep_key : declarations_[i].dep_keys) {
      auto it = repo.by_key_.find(dep_key);
      if (it == repo.by_key_.end()) {
        return util::Error{"package " + info.key() + ": unresolved dependency " + dep_key};
      }
      if (to_index(it->second) == i) {
        return util::Error{"package " + info.key() + ": depends on itself"};
      }
      info.deps.push_back(it->second);
    }
    // Deduplicate dependency edges; keeps closures and reverse edges tidy.
    std::sort(info.deps.begin(), info.deps.end(),
              [](PackageId a, PackageId b) { return to_index(a) < to_index(b); });
    info.deps.erase(std::unique(info.deps.begin(), info.deps.end()), info.deps.end());
  }

  const std::size_t n = repo.packages_.size();

  // Kahn's algorithm over edges oriented package -> dependency: peel
  // packages whose dependencies have all been placed, so the resulting
  // order lists dependencies before dependents (and detects cycles).
  std::vector<std::uint32_t> unplaced_deps(n);
  for (std::size_t i = 0; i < n; ++i) {
    unplaced_deps[i] = static_cast<std::uint32_t>(repo.packages_[i].deps.size());
  }
  repo.reverse_deps_.assign(n, {});
  for (std::size_t i = 0; i < n; ++i) {
    for (PackageId dep : repo.packages_[i].deps) {
      repo.reverse_deps_[to_index(dep)].push_back(package_id(static_cast<std::uint32_t>(i)));
    }
  }
  std::vector<PackageId> frontier;
  for (std::size_t i = 0; i < n; ++i) {
    if (unplaced_deps[i] == 0) frontier.push_back(package_id(static_cast<std::uint32_t>(i)));
  }
  repo.topo_order_.reserve(n);
  while (!frontier.empty()) {
    const PackageId id = frontier.back();
    frontier.pop_back();
    repo.topo_order_.push_back(id);
    for (PackageId dependent : repo.reverse_deps_[to_index(id)]) {
      if (--unplaced_deps[to_index(dependent)] == 0) frontier.push_back(dependent);
    }
  }
  if (repo.topo_order_.size() != n) {
    return util::Error{"dependency graph contains a cycle"};
  }

  // Precompute closures in topological order: closure(p) = {p} ∪ ⋃ closure(dep).
  repo.closures_.assign(n, util::DynamicBitset(n));
  for (PackageId id : repo.topo_order_) {
    auto& closure = repo.closures_[to_index(id)];
    closure.set(to_index(id));
    for (PackageId dep : repo.packages_[to_index(id)].deps) {
      closure |= repo.closures_[to_index(dep)];
    }
  }

  repo.total_bytes_ = 0;
  for (const auto& info : repo.packages_) repo.total_bytes_ += info.size;

  return repo;
}

std::optional<PackageId> Repository::find(std::string_view key) const {
  auto it = by_key_.find(std::string(key));
  if (it == by_key_.end()) return std::nullopt;
  return it->second;
}

std::vector<PackageId> Repository::packages_in_tier(PackageTier tier) const {
  std::vector<PackageId> out;
  for (std::size_t i = 0; i < packages_.size(); ++i) {
    if (packages_[i].tier == tier) out.push_back(package_id(static_cast<std::uint32_t>(i)));
  }
  return out;
}

util::DynamicBitset Repository::closure_of(std::span<const PackageId> selection) const {
  util::DynamicBitset out(size());
  for (PackageId id : selection) {
    assert(to_index(id) < size());
    out |= closures_[to_index(id)];
  }
  return out;
}

util::Bytes Repository::bytes_of(const util::DynamicBitset& set) const {
  assert(set.size() == size());
  util::Bytes total = 0;
  set.for_each_set([&](std::size_t i) { total += packages_[i].size; });
  return total;
}

}  // namespace landlord::pkg
