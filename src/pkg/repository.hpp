// Immutable, validated package repository with dependency-graph queries.
//
// RepositoryBuilder accumulates packages and name-based dependency edges,
// then Repository::build() resolves edges, rejects duplicates/dangling
// references/cycles, and precomputes per-package transitive closures as
// dense bitsets so workload generation (which computes closures for every
// simulated job) is O(words) per package.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "pkg/package.hpp"
#include "util/bitset.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace landlord::pkg {

class Repository;

/// Accumulates package declarations before validation. Dependencies are
/// declared by key ("name/version") so declaration order is irrelevant.
class RepositoryBuilder {
 public:
  struct Declaration {
    std::string name;
    std::string version;
    util::Bytes size = 0;
    PackageTier tier = PackageTier::kLeaf;
    std::vector<std::string> dep_keys;
  };

  /// Declares a package; duplicate keys are caught at build().
  void add(Declaration declaration);

  [[nodiscard]] std::size_t declared() const noexcept { return declarations_.size(); }

  /// Validates and produces the immutable repository:
  ///  * keys must be unique,
  ///  * every dep key must resolve,
  ///  * the dependency graph must be acyclic.
  [[nodiscard]] util::Result<Repository> build() &&;

 private:
  std::vector<Declaration> declarations_;
};

class Repository {
 public:
  [[nodiscard]] std::size_t size() const noexcept { return packages_.size(); }

  [[nodiscard]] const PackageInfo& operator[](PackageId id) const noexcept {
    return packages_[to_index(id)];
  }

  /// Looks up a package by its "name/version" key.
  [[nodiscard]] std::optional<PackageId> find(std::string_view key) const;

  /// All package ids in a tier, in id order.
  [[nodiscard]] std::vector<PackageId> packages_in_tier(PackageTier tier) const;

  /// Transitive dependency closure of `id`, *including* `id` itself,
  /// as a bitset over the package universe. O(1): precomputed.
  [[nodiscard]] const util::DynamicBitset& closure(PackageId id) const noexcept {
    return closures_[to_index(id)];
  }

  /// Union of closures over a selection (the "image contents" for a
  /// requested package selection, §VI "Simulating HTC Jobs").
  [[nodiscard]] util::DynamicBitset closure_of(std::span<const PackageId> selection) const;

  /// Total on-disk bytes of the packages whose bits are set.
  [[nodiscard]] util::Bytes bytes_of(const util::DynamicBitset& set) const;

  /// Direct reverse dependencies (packages that list `id` as a direct dep).
  [[nodiscard]] std::span<const PackageId> dependents(PackageId id) const noexcept {
    return reverse_deps_[to_index(id)];
  }

  /// Ids in a topological order (dependencies before dependents).
  [[nodiscard]] std::span<const PackageId> topological_order() const noexcept {
    return topo_order_;
  }

  /// Sum of all package sizes — the paper's "full repo" size (Fig. 2).
  [[nodiscard]] util::Bytes total_bytes() const noexcept { return total_bytes_; }

  /// An all-zero bitset over this repository's universe.
  [[nodiscard]] util::DynamicBitset empty_set() const {
    return util::DynamicBitset(size());
  }

 private:
  friend class RepositoryBuilder;
  Repository() = default;

  std::vector<PackageInfo> packages_;
  std::unordered_map<std::string, PackageId> by_key_;
  std::vector<util::DynamicBitset> closures_;
  std::vector<std::vector<PackageId>> reverse_deps_;
  std::vector<PackageId> topo_order_;
  util::Bytes total_bytes_ = 0;
};

}  // namespace landlord::pkg
