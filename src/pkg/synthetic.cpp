#include "pkg/synthetic.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <numeric>

#include "util/rng.hpp"

namespace landlord::pkg {

namespace {

using util::Rng;

/// A project is a named family of consecutively versioned packages.
struct Project {
  std::string name;
  PackageTier tier = PackageTier::kLeaf;
  std::uint32_t first_package = 0;  ///< dense index of version 0
  std::uint32_t versions = 1;
  std::vector<std::uint32_t> dep_projects;  ///< indices of earlier projects
};

constexpr std::array<const char*, 20> kCoreStems = {
    "base-env",   "gcc-runtime", "python",     "cmake-tools", "binutils",
    "openssl",    "zlib",        "setup-scripts", "calib-data", "root-core",
    "geant-core", "boost",       "fftw",       "hdf5",        "xrootd",
    "davix",      "cling",       "tbb",        "eigen",       "protobuf"};

constexpr std::array<const char*, 24> kLibraryStems = {
    "io-lib",      "geom-lib",    "math-lib",   "net-lib",    "gen-lib",
    "sim-toolkit", "reco-lib",    "digi-lib",   "trk-lib",    "calo-lib",
    "muon-lib",    "trigger-lib", "cond-db",    "event-model", "analysis-fw",
    "plotting",    "fitting",     "unfolding",  "mc-tools",   "grid-tools",
    "stream-lib",  "monitor-lib", "align-lib",  "lumi-lib"};

constexpr std::array<const char*, 16> kLeafStems = {
    "gen",        "sim",       "digi",      "reco",      "analysis",
    "skim",       "ntuple",    "validation", "tutorial",  "workflow",
    "trigger-cfg", "calib-job", "dqm",       "prod-cfg",  "user-tools",
    "derivation"};

constexpr std::array<const char*, 6> kPlatforms = {
    "x86_64-centos7-gcc8-opt", "x86_64-centos7-gcc9-opt",
    "x86_64-slc6-gcc7-opt",    "x86_64-centos8-gcc10-opt",
    "x86_64-centos7-gcc8-dbg", "aarch64-centos7-gcc9-opt"};

std::string version_string(std::uint32_t major, std::uint32_t minor,
                           const char* platform) {
  return "v" + std::to_string(major) + "." + std::to_string(minor) + "-" + platform;
}

/// Picks an experiment index by weight.
std::size_t pick_experiment(Rng& rng, const std::vector<double>& cumulative) {
  const double u = rng.uniform_double() * cumulative.back();
  auto it = std::upper_bound(cumulative.begin(), cumulative.end(), u);
  return static_cast<std::size_t>(std::distance(cumulative.begin(), it));
}

util::Bytes sample_size(Rng& rng, double mu, double sigma) {
  // Clamp to [4 KiB, 64 GiB]; a package is at least a directory entry and
  // never a whole repository.
  const double raw = rng.lognormal(mu, sigma);
  const double clamped = std::clamp(raw, 4096.0, 64.0 * 1024 * 1024 * 1024);
  return static_cast<util::Bytes>(clamped);
}

}  // namespace

util::Result<Repository> generate_repository(const SyntheticRepoParams& params,
                                             std::uint64_t seed) {
  if (params.total_packages == 0) {
    return util::Error{"total_packages must be positive"};
  }
  if (params.core_fraction < 0 || params.library_fraction < 0 ||
      params.core_fraction + params.library_fraction >= 1.0) {
    return util::Error{"tier fractions must be non-negative and sum below 1"};
  }
  if (params.min_versions == 0 || params.min_versions > params.max_versions) {
    return util::Error{"version range must satisfy 1 <= min <= max"};
  }
  if (params.experiments.empty() ||
      params.experiments.size() != params.experiment_weights.size()) {
    return util::Error{"experiments and experiment_weights must match and be non-empty"};
  }

  Rng rng(seed);
  const auto n_total = params.total_packages;
  const auto n_core = std::max<std::uint32_t>(
      params.base_projects,
      static_cast<std::uint32_t>(std::llround(params.core_fraction * n_total)));
  const auto n_library =
      static_cast<std::uint32_t>(std::llround(params.library_fraction * n_total));

  std::vector<double> cumulative(params.experiment_weights.size());
  std::partial_sum(params.experiment_weights.begin(), params.experiment_weights.end(),
                   cumulative.begin());

  // ---- Phase 1: lay out projects tier by tier until the package budget
  // for each tier is spent. Projects only depend on earlier projects, so
  // the project graph (and hence the package graph) is acyclic.
  std::vector<Project> projects;
  std::uint32_t package_cursor = 0;

  auto add_projects = [&](PackageTier tier, std::uint32_t tier_budget,
                          auto&& name_fn) {
    std::uint32_t used = 0;
    std::uint32_t serial = 0;
    while (used < tier_budget) {
      Project project;
      project.tier = tier;
      project.name = name_fn(serial++);
      project.versions = static_cast<std::uint32_t>(
          rng.uniform(params.min_versions, params.max_versions));
      project.versions = std::min(project.versions, tier_budget - used);
      project.first_package = package_cursor;
      package_cursor += project.versions;
      used += project.versions;
      projects.push_back(std::move(project));
    }
  };

  add_projects(PackageTier::kCore, n_core, [&](std::uint32_t serial) {
    const char* stem = kCoreStems[serial % kCoreStems.size()];
    std::string name = stem;
    if (serial >= kCoreStems.size()) name += "-" + std::to_string(serial / kCoreStems.size());
    return name;
  });
  const std::size_t core_projects_end = projects.size();

  // Library and leaf projects belong to experiments.
  std::vector<std::size_t> project_experiment(core_projects_end, params.experiments.size());

  // Framework hubs: the first library projects of each experiment, with
  // few versions (CVMFS experiments keep a small number of production
  // framework lines) and wide fan-in from the rest of the experiment.
  std::vector<std::vector<std::uint32_t>> experiment_hubs(params.experiments.size());
  std::uint32_t hub_packages = 0;
  for (std::size_t exp = 0; exp < params.experiments.size(); ++exp) {
    for (std::uint32_t h = 0; h < params.hubs_per_experiment; ++h) {
      Project project;
      project.tier = PackageTier::kLibrary;
      project.name = params.experiments[exp] + "-framework-" + std::to_string(h);
      project.versions = static_cast<std::uint32_t>(
          rng.uniform(1, std::max<std::uint32_t>(1, params.hub_max_versions)));
      project.first_package = package_cursor;
      package_cursor += project.versions;
      hub_packages += project.versions;
      experiment_hubs[exp].push_back(static_cast<std::uint32_t>(projects.size()));
      project_experiment.push_back(exp);
      projects.push_back(std::move(project));
    }
  }
  const std::size_t hub_projects_end = projects.size();

  const std::uint32_t n_library_rest =
      n_library > hub_packages ? n_library - hub_packages : 0;
  add_projects(PackageTier::kLibrary, n_library_rest, [&](std::uint32_t serial) {
    const std::size_t exp = pick_experiment(rng, cumulative);
    project_experiment.push_back(exp);
    const char* stem = kLibraryStems[serial % kLibraryStems.size()];
    return params.experiments[exp] + "-" + stem + "-" +
           std::to_string(serial / kLibraryStems.size());
  });
  const std::size_t library_projects_end = projects.size();

  const std::uint32_t n_leaf = n_total - package_cursor;
  add_projects(PackageTier::kLeaf, n_leaf, [&](std::uint32_t serial) {
    const std::size_t exp = pick_experiment(rng, cumulative);
    project_experiment.push_back(exp);
    const char* stem = kLeafStems[serial % kLeafStems.size()];
    return params.experiments[exp] + "-" + stem + "-" +
           std::to_string(serial / kLeafStems.size());
  });

  // ---- Phase 2: project-level dependency edges.
  //
  // Core projects beyond the universal base depend on a couple of earlier
  // core projects (always reaching back into the base). Library projects
  // depend on 1-2 base projects plus earlier libraries, preferring the
  // same experiment. Leaf projects depend on libraries of their own
  // experiment plus occasionally a cross-experiment or core project.
  auto pick_earlier = [&](std::size_t lo, std::size_t hi) -> std::uint32_t {
    assert(hi > lo);
    return static_cast<std::uint32_t>(lo + rng.uniform(hi - lo));
  };

  for (std::size_t p = 0; p < projects.size(); ++p) {
    Project& project = projects[p];
    std::uint32_t want = 0;
    switch (project.tier) {
      case PackageTier::kCore:
        if (p < params.base_projects) break;  // the base depends on nothing
        want = static_cast<std::uint32_t>(
            rng.uniform(params.core_deps_min, params.core_deps_max));
        for (std::uint32_t d = 0; d < want; ++d) {
          project.dep_projects.push_back(pick_earlier(0, p));
        }
        // Always anchor to the universal base.
        project.dep_projects.push_back(
            static_cast<std::uint32_t>(rng.uniform(params.base_projects)));
        break;
      case PackageTier::kLibrary: {
        const std::size_t exp = project_experiment[p];
        if (p < hub_projects_end) {
          // Framework hub: pulls a broad slice of core plus earlier hubs
          // of the same experiment, so its closure is the experiment's
          // shared foundation.
          for (std::uint32_t d = 0; d < params.hub_core_deps; ++d) {
            project.dep_projects.push_back(pick_earlier(0, core_projects_end));
          }
          const auto& hubs = experiment_hubs[exp];
          for (std::uint32_t d = 0; d < params.hub_library_deps && d < hubs.size(); ++d) {
            const std::uint32_t earlier = hubs[rng.uniform(hubs.size())];
            if (earlier < p) project.dep_projects.push_back(earlier);
          }
          break;
        }
        want = static_cast<std::uint32_t>(
            rng.uniform(params.library_deps_min, params.library_deps_max));
        // 1-2 universal base deps make core components near-universal.
        project.dep_projects.push_back(
            static_cast<std::uint32_t>(rng.uniform(params.base_projects)));
        if (rng.chance(0.6)) {
          project.dep_projects.push_back(
              static_cast<std::uint32_t>(rng.uniform(params.base_projects)));
        }
        if (!experiment_hubs[exp].empty() &&
            rng.chance(params.library_hub_probability)) {
          project.dep_projects.push_back(
              experiment_hubs[exp][rng.uniform(experiment_hubs[exp].size())]);
        }
        for (std::uint32_t d = 0; d < want; ++d) {
          // Prefer same-experiment earlier libraries; fall back to core.
          if (p > core_projects_end && rng.chance(params.library_chain_probability)) {
            // Try a few times to hit the same experiment, else accept any.
            std::uint32_t candidate = pick_earlier(core_projects_end, p);
            for (int attempt = 0; attempt < 4; ++attempt) {
              if (project_experiment[candidate] == project_experiment[p]) break;
              candidate = pick_earlier(core_projects_end, p);
            }
            project.dep_projects.push_back(candidate);
          } else {
            project.dep_projects.push_back(pick_earlier(0, core_projects_end));
          }
        }
        break;
      }
      case PackageTier::kLeaf: {
        const std::size_t exp = project_experiment[p];
        if (!experiment_hubs[exp].empty() && rng.chance(params.leaf_hub_probability)) {
          project.dep_projects.push_back(
              experiment_hubs[exp][rng.uniform(experiment_hubs[exp].size())]);
          if (rng.chance(0.35)) {
            project.dep_projects.push_back(
                experiment_hubs[exp][rng.uniform(experiment_hubs[exp].size())]);
          }
        }
        want = static_cast<std::uint32_t>(
            rng.uniform(params.leaf_deps_min, params.leaf_deps_max));
        for (std::uint32_t d = 0; d < want; ++d) {
          if (library_projects_end > core_projects_end && rng.chance(0.85)) {
            std::uint32_t candidate =
                pick_earlier(core_projects_end, library_projects_end);
            for (int attempt = 0; attempt < 4; ++attempt) {
              if (project_experiment[candidate] == project_experiment[p]) break;
              candidate = pick_earlier(core_projects_end, library_projects_end);
            }
            project.dep_projects.push_back(candidate);
          } else {
            project.dep_projects.push_back(pick_earlier(0, core_projects_end));
          }
        }
        break;
      }
    }
    std::sort(project.dep_projects.begin(), project.dep_projects.end());
    project.dep_projects.erase(
        std::unique(project.dep_projects.begin(), project.dep_projects.end()),
        project.dep_projects.end());
  }

  // ---- Phase 3: expand projects into versioned packages. Version j of a
  // project depends on the *contemporaneous* version of each dependency
  // project (proportional index mapping), so adjacent versions share most
  // of their transitive closure — the property LANDLORD's merging exploits.
  //
  // Keys for every (project, version) pair are derived up front so
  // dependency edges can reference packages declared later.
  Rng naming_rng = rng.split(0x6b657973);  // "keys"
  std::vector<std::vector<std::string>> project_keys(projects.size());
  std::vector<const char*> project_platform(projects.size());
  std::vector<std::uint32_t> project_major(projects.size());
  std::vector<double> project_base_size(projects.size());
  for (std::size_t p = 0; p < projects.size(); ++p) {
    const Project& project = projects[p];
    project_platform[p] = kPlatforms[naming_rng.uniform(kPlatforms.size())];
    project_major[p] = static_cast<std::uint32_t>(1 + naming_rng.uniform(12));
    double mu = 0.0, sigma = 0.0;
    switch (project.tier) {
      case PackageTier::kCore:
        mu = params.core_size_mu; sigma = params.core_size_sigma; break;
      case PackageTier::kLibrary:
        mu = params.library_size_mu; sigma = params.library_size_sigma; break;
      case PackageTier::kLeaf:
        mu = params.leaf_size_mu; sigma = params.leaf_size_sigma; break;
    }
    project_base_size[p] = static_cast<double>(sample_size(naming_rng, mu, sigma));
    project_keys[p].reserve(project.versions);
    for (std::uint32_t v = 0; v < project.versions; ++v) {
      project_keys[p].push_back(
          project.name + "/" +
          version_string(project_major[p], v, project_platform[p]));
    }
  }

  RepositoryBuilder final_builder;
  for (std::size_t p = 0; p < projects.size(); ++p) {
    const Project& project = projects[p];
    for (std::uint32_t v = 0; v < project.versions; ++v) {
      RepositoryBuilder::Declaration d;
      d.name = project.name;
      d.version = version_string(project_major[p], v, project_platform[p]);
      d.tier = project.tier;
      const double jitter = 0.9 + 0.2 * naming_rng.uniform_double();
      d.size = static_cast<util::Bytes>(std::max(4096.0, project_base_size[p] * jitter));
      for (std::uint32_t dep_project_idx : project.dep_projects) {
        const Project& dep = projects[dep_project_idx];
        const std::uint32_t dep_version =
            project.versions <= 1
                ? dep.versions - 1
                : std::min<std::uint32_t>(
                      dep.versions - 1,
                      static_cast<std::uint32_t>(
                          (static_cast<std::uint64_t>(v) * dep.versions) /
                          project.versions));
        d.dep_keys.push_back(project_keys[dep_project_idx][dep_version]);
      }
      final_builder.add(std::move(d));
    }
  }

  return std::move(final_builder).build();
}

SyntheticRepoParams pypi_like_params() {
  SyntheticRepoParams params;
  params.core_fraction = 0.005;       // a handful of interpreter/runtime pkgs
  params.base_projects = 3;
  params.hubs_per_experiment = 0;     // no per-domain frameworks
  params.leaf_hub_probability = 0.0;
  params.library_hub_probability = 0.0;
  params.leaf_deps_min = 0;
  params.leaf_deps_max = 3;
  params.library_deps_min = 0;
  params.library_deps_max = 1;
  params.library_chain_probability = 0.15;  // shallow chains
  return params;
}

Repository default_repository(std::uint64_t seed) {
  auto result = generate_repository(SyntheticRepoParams{}, seed);
  assert(result.ok() && "default parameters must always validate");
  return std::move(result).value();
}

}  // namespace landlord::pkg
