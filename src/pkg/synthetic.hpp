// Synthetic SFT-like repository generator.
//
// The paper's simulations run against a dependency tree extracted from the
// CERN SFT CVMFS repository: 9,660 packages where "a program or library
// typically provides packages for multiple versions, platforms, and
// configurations", with a small set of core components that are transitive
// dependencies of nearly everything, a mid-tier of shared libraries, and a
// long tail of application-level leaves (§VI).
//
// That metadata is not redistributable, so we generate a repository with
// the same observable structure:
//
//  * three tiers (core / library / leaf) with configurable proportions;
//  * "projects" carrying several versioned builds each; version j of a
//    project depends on the contemporaneous version of each dependency
//    project, so adjacent versions share most of their closure — the
//    property LANDLORD's Jaccard merging exploits;
//  * a small universal base (setup scripts, toolchain, calibration data)
//    reachable from almost every closure — reproducing the paper's
//    near-universal core components;
//  * heavy-tailed (log-normal) package sizes per tier, calibrated so the
//    Fig. 3 aggregates hold: ~5x package amplification for small
//    selections, flattening toward repository saturation for large ones;
//  * leaf/library projects are partitioned among named experiments
//    (alice/atlas/cms/lhcb/sft) so HEP application profiles can draw from
//    coherent subtrees (Fig. 2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pkg/repository.hpp"
#include "util/result.hpp"

namespace landlord::pkg {

struct SyntheticRepoParams {
  /// Total package count; the SFT dump in the paper has 9,660.
  std::uint32_t total_packages = 9660;

  /// Tier proportions (leaf takes the remainder).
  double core_fraction = 0.015;
  double library_fraction = 0.28;

  /// Number of core projects forming the universal base environment.
  std::uint32_t base_projects = 8;

  /// Versions per project are uniform in [min_versions, max_versions].
  std::uint32_t min_versions = 1;
  std::uint32_t max_versions = 6;

  /// Direct dependency count ranges (project-level, uniform inclusive).
  /// Calibrated against Fig. 3: random selections of <=100 packages close
  /// to ~5x as many packages; 1000-package selections close to ~3300.
  std::uint32_t core_deps_min = 0, core_deps_max = 1;
  std::uint32_t library_deps_min = 0, library_deps_max = 2;
  std::uint32_t leaf_deps_min = 2, leaf_deps_max = 5;

  /// Probability that a library's non-base dependency targets another
  /// library (vs. a core project); controls dependency-chain depth.
  double library_chain_probability = 0.40;

  /// Per-experiment "framework hub" libraries (the ATLAS/CMS/LHCb base
  /// frameworks the paper describes as near-universal within an
  /// experiment). Hubs are generated first in the library tier with few
  /// versions and wide fan-in: most leaves of an experiment depend on a
  /// hub, so same-experiment specifications share a sizable common
  /// closure — the hierarchical structure LANDLORD's merging exploits.
  std::uint32_t hubs_per_experiment = 4;
  std::uint32_t hub_max_versions = 2;
  std::uint32_t hub_core_deps = 16;    ///< core projects each hub pulls in
  std::uint32_t hub_library_deps = 3; ///< earlier same-experiment hubs/libraries
  double leaf_hub_probability = 0.95;  ///< leaf depends on >=1 hub of its experiment
  double library_hub_probability = 0.5;

  /// Log-normal size parameters (of the underlying normal, bytes).
  /// Defaults give medians of ~100 MiB (core), ~32 MiB (library),
  /// ~12 MiB (leaf) with heavy right tails — calibrated so a single
  /// application's dependency-closed image lands in Fig. 2's 2.7-8.4 GB
  /// band while the full repository stays at a few hundred GB.
  double core_size_mu = 18.4, core_size_sigma = 1.0;
  double library_size_mu = 17.3, library_size_sigma = 1.2;
  double leaf_size_mu = 16.3, leaf_size_sigma = 1.3;

  /// Experiment groups leaf/library projects are partitioned into; the
  /// relative weights skew project counts (CMS and ATLAS dominate SFT).
  std::vector<std::string> experiments = {"alice", "atlas", "cms", "lhcb", "sft"};
  std::vector<double> experiment_weights = {1.0, 2.0, 2.5, 1.0, 1.5};
};

/// Generates a validated repository. Deterministic in (params, seed).
/// Fails only if params are inconsistent (e.g. zero packages, fractions
/// outside [0,1], weight/name arity mismatch).
[[nodiscard]] util::Result<Repository> generate_repository(
    const SyntheticRepoParams& params, std::uint64_t seed);

/// Convenience: the default paper-scale repository for a seed.
[[nodiscard]] Repository default_repository(std::uint64_t seed = 42);

/// Preset: a flat, PyPI-like repository — no experiment framework hubs,
/// a minimal universal base, and shallow dependency fan-out. The paper's
/// first conclusion is that LANDLORD's "techniques are most effective
/// when the dependency structures are hierarchical"; sweeping this
/// preset against the SFT-like default quantifies that claim
/// (bench/ext_structures).
[[nodiscard]] SyntheticRepoParams pypi_like_params();

}  // namespace landlord::pkg
