#include "pkg/versions.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "util/version.hpp"

namespace landlord::pkg {

VersionChains::VersionChains(const Repository& repo) {
  successor_.assign(repo.size(), -1);
  predecessor_.assign(repo.size(), -1);

  std::unordered_map<std::string, std::vector<PackageId>> by_project;
  for (std::uint32_t i = 0; i < repo.size(); ++i) {
    by_project[repo[package_id(i)].name].push_back(package_id(i));
  }
  for (auto& [name, versions] : by_project) {
    std::sort(versions.begin(), versions.end(), [&repo](PackageId a, PackageId b) {
      return util::version_compare(repo[a].version, repo[b].version) < 0;
    });
    for (std::size_t v = 0; v + 1 < versions.size(); ++v) {
      successor_[to_index(versions[v])] =
          static_cast<std::int32_t>(to_index(versions[v + 1]));
      predecessor_[to_index(versions[v + 1])] =
          static_cast<std::int32_t>(to_index(versions[v]));
    }
  }
}

PackageId VersionChains::newest(PackageId id) const {
  PackageId current = id;
  while (auto next = successor(current)) current = *next;
  return current;
}

}  // namespace landlord::pkg
