// Version-chain queries over a repository.
//
// Projects carry multiple versioned builds; several components (workload
// drift, cross-version file sharing) need to walk a project's version
// chain. This helper computes, once per repository, each package's
// predecessor and successor within its project under natural version
// order.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "pkg/repository.hpp"

namespace landlord::pkg {

class VersionChains {
 public:
  explicit VersionChains(const Repository& repo);

  /// The next (newer) version of the same project, if any.
  [[nodiscard]] std::optional<PackageId> successor(PackageId id) const {
    const auto s = successor_[to_index(id)];
    return s < 0 ? std::nullopt
                 : std::optional<PackageId>(package_id(static_cast<std::uint32_t>(s)));
  }

  /// The previous (older) version of the same project, if any.
  [[nodiscard]] std::optional<PackageId> predecessor(PackageId id) const {
    const auto p = predecessor_[to_index(id)];
    return p < 0 ? std::nullopt
                 : std::optional<PackageId>(package_id(static_cast<std::uint32_t>(p)));
  }

  /// The newest version of the package's project.
  [[nodiscard]] PackageId newest(PackageId id) const;

 private:
  std::vector<std::int32_t> successor_;
  std::vector<std::int32_t> predecessor_;
};

}  // namespace landlord::pkg
