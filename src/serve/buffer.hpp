// Rolling receive buffer for length-prefixed frame reassembly.
//
// The serve plane's readers used to erase consumed frames from the front
// of a std::string, which costs a memmove of every still-buffered byte —
// O(n²) across a pipelined burst. RollingBuffer instead tracks a read
// cursor into a flat byte region: consume() is a pointer bump, and the
// bytes are physically moved only when the region must make room for the
// next recv, and then only when at least as many bytes have been consumed
// as would be copied — so reassembly stays amortized O(1) per byte no
// matter how deeply the peer pipelines.
//
// Usage is a strict produce/consume cycle:
//   ensure_writable(n); recv(fd, write_ptr(), writable()); commit(got);
//   ... parse view(), consume(frame_size) per complete frame ...
//
// Not thread-safe; each connection's reader owns exactly one.
#pragma once

#include <cstddef>
#include <cstring>
#include <string_view>
#include <vector>

namespace landlord::serve {

class RollingBuffer {
 public:
  /// Bytes received but not yet consumed, in arrival order.
  [[nodiscard]] std::string_view view() const noexcept {
    return {storage_.data() + head_, tail_ - head_};
  }

  [[nodiscard]] std::size_t readable() const noexcept { return tail_ - head_; }

  /// Retires `n` leading bytes (n <= readable()). No bytes move.
  void consume(std::size_t n) noexcept {
    head_ += n;
    if (head_ == tail_) head_ = tail_ = 0;  // empty: rewind for free
  }

  /// Where the next recv should land; valid for `writable()` bytes after
  /// ensure_writable(). Invalidated by ensure_writable()/consume-to-empty.
  [[nodiscard]] char* write_ptr() noexcept { return storage_.data() + tail_; }

  [[nodiscard]] std::size_t writable() const noexcept {
    return storage_.size() - tail_;
  }

  /// Makes room for at least `n` more bytes. Compacts (shifts the
  /// unconsumed tail to the front) only when the bytes moved are covered
  /// by bytes already consumed; otherwise grows geometrically so repeated
  /// large frames cost O(log) reallocations.
  void ensure_writable(std::size_t n) {
    if (writable() >= n) return;
    if (head_ >= readable()) {
      std::memmove(storage_.data(), storage_.data() + head_, readable());
      tail_ -= head_;
      head_ = 0;
      if (writable() >= n) return;
    }
    // Growth relocates to the front of the new region, so the copy rides
    // along with the reallocation the geometric schedule already pays for.
    std::size_t next = storage_.empty() ? kInitialBytes : storage_.size();
    while (next < readable() + n) next *= 2;
    std::vector<char> grown(next);
    std::memcpy(grown.data(), storage_.data() + head_, readable());
    tail_ = readable();
    head_ = 0;
    storage_ = std::move(grown);
  }

  /// Publishes `n` bytes written at write_ptr() (n <= writable()).
  void commit(std::size_t n) noexcept { tail_ += n; }

  /// Drops everything, consumed and pending. A reconnecting client must
  /// call this: a half-received frame from the old connection would
  /// misalign every frame the new connection delivers.
  void clear() noexcept { head_ = tail_ = 0; }

  /// Backing capacity (diagnostics/tests).
  [[nodiscard]] std::size_t capacity() const noexcept {
    return storage_.size();
  }

 private:
  static constexpr std::size_t kInitialBytes = 4096;

  std::vector<char> storage_;
  std::size_t head_ = 0;  ///< first unconsumed byte
  std::size_t tail_ = 0;  ///< one past the last received byte
};

}  // namespace landlord::serve
