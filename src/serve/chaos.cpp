#include "serve/chaos.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>

#include "serve/io.hpp"

namespace landlord::serve {

namespace {

/// Arms an abortive close: close(2) after this sends an RST-style abort
/// instead of an orderly FIN drain.
void arm_linger_zero(int fd) {
  linger lg{};
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
}

/// Direction-salting constant for the outbound injector seed, so the two
/// pump directions consume independent (but individually replayable)
/// verdict streams from one plan.
constexpr std::uint64_t kOutboundSeedSalt = 0x9e3779b97f4a7c15ULL;

}  // namespace

ChaosProxy::ChaosProxy(ChaosProxyConfig config) : config_(std::move(config)) {
  if (config_.chunk_bytes == 0) config_.chunk_bytes = 16 * 1024;
  fault::FaultPlan inbound_plan = config_.plan;
  fault::FaultPlan outbound_plan = config_.plan;
  outbound_plan.seed = config_.plan.seed ^ kOutboundSeedSalt;
  inbound_.injector = std::make_unique<fault::FaultInjector>(inbound_plan);
  outbound_.injector = std::make_unique<fault::FaultInjector>(outbound_plan);
  inbound_.frag_rng = util::Rng(config_.plan.seed).split(11);
  outbound_.frag_rng = util::Rng(config_.plan.seed).split(12);
}

ChaosProxy::~ChaosProxy() { stop(); }

util::Result<bool> ChaosProxy::start() {
  if (started_.exchange(true)) return util::Error{"proxy already started"};

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return util::Error{std::string{"socket: "} + std::strerror(errno)};
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.listen_port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::string why = std::string{"bind: "} + std::strerror(errno);
    ::close(fd);
    return util::Error{why};
  }
  if (::listen(fd, config_.backlog) < 0) {
    std::string why = std::string{"listen: "} + std::strerror(errno);
    ::close(fd);
    return util::Error{why};
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    std::string why = std::string{"getsockname: "} + std::strerror(errno);
    ::close(fd);
    return util::Error{why};
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_.store(fd, std::memory_order_release);
  acceptor_ = std::thread([this] { accept_loop(); });
  return true;
}

void ChaosProxy::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int client_fd =
        ::accept(listen_fd_.load(std::memory_order_acquire), nullptr, nullptr);
    if (client_fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down by stop()
    }
    bool accept_fail = false;
    {
      std::scoped_lock lock(inbound_.mutex);
      accept_fail = inbound_.injector->should_fail(fault::FaultOp::kAcceptFail);
    }
    if (accept_fail) {
      tally_.accept_failures.fetch_add(1, std::memory_order_relaxed);
      arm_linger_zero(client_fd);
      ::close(client_fd);
      continue;
    }

    const int upstream_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (upstream_fd < 0) {
      ::close(client_fd);
      continue;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(config_.target_port);
    if (::connect(upstream_fd, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      ::close(upstream_fd);
      ::close(client_fd);
      continue;
    }
    int one = 1;
    ::setsockopt(client_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ::setsockopt(upstream_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto relay = std::make_unique<Relay>();
    relay->client_fd = client_fd;
    relay->upstream_fd = upstream_fd;
    Relay* raw = relay.get();
    tally_.connections.fetch_add(1, std::memory_order_relaxed);
    {
      std::scoped_lock lock(relays_mutex_);
      reap_relays(/*all=*/false);
      relays_.push_back(std::move(relay));
    }
    raw->up = std::thread(
        [this, raw] { pump(raw, raw->client_fd, raw->upstream_fd, inbound_); });
    raw->down = std::thread([this, raw] {
      pump(raw, raw->upstream_fd, raw->client_fd, outbound_);
    });
  }
}

void ChaosProxy::pump(Relay* relay, int src, int dst, Direction& direction) {
  std::vector<char> chunk(config_.chunk_bytes);
  bool killed = false;
  while (!relay->dead.load(std::memory_order_acquire)) {
    const ssize_t n = ::recv(src, chunk.data(), chunk.size(), 0);
    if (n == 0) break;  // orderly EOF: propagate the half-close below
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // src shut down (kill_relay/stop) or hard error
    }
    // A kill may land while we were blocked in recv; anything read after
    // it must not advance this direction's occurrence stream, or the
    // tape would depend on teardown scheduling.
    if (relay->dead.load(std::memory_order_acquire)) break;
    // One verdict set per chunk, drawn under the direction lock so the
    // occurrence index k == this direction's k-th delivered chunk.
    bool reset = false;
    bool stall = false;
    bool partial = false;
    std::size_t deliver = static_cast<std::size_t>(n);
    {
      std::scoped_lock lock(direction.mutex);
      reset = direction.injector->should_fail(fault::FaultOp::kConnReset);
      stall = direction.injector->should_fail(fault::FaultOp::kConnStall);
      partial =
          direction.injector->should_fail(fault::FaultOp::kPartialDelivery);
      if (!reset && partial && deliver > 1) {
        deliver = 1 + static_cast<std::size_t>(
                          direction.frag_rng.uniform(deliver - 1));
      }
    }
    if (reset) {
      tally_.resets.fetch_add(1, std::memory_order_relaxed);
      kill_relay(relay, /*abortive=*/true);
      killed = true;
      break;
    }
    if (stall) {
      tally_.stalls.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(config_.stall_ms));
    }
    if (partial) {
      // Dead BEFORE the fragment leaves: whatever the fragment provokes
      // from the peer (an echo, an error reply) must never be consumed
      // by the opposite pump, or its occurrence stream would depend on
      // scheduling instead of the plan.
      relay->dead.store(true, std::memory_order_release);
    }
    const bool delivered =
        net::write_all(dst, chunk.data(), deliver) == net::IoStatus::kOk;
    if (!delivered && !partial) {
      kill_relay(relay, /*abortive=*/false);
      killed = true;
      break;
    }
    if (delivered) {
      tally_.chunks.fetch_add(1, std::memory_order_relaxed);
      tally_.forwarded_bytes.fetch_add(deliver, std::memory_order_relaxed);
    }
    if (partial) {
      // The fragment made it out; now both sides get an abrupt FIN
      // mid-frame — the classic lost-reply shape the retry layer must
      // survive. Shutdowns are explicit here (not kill_relay) because
      // the dead flag is already ours.
      tally_.partials.fetch_add(1, std::memory_order_relaxed);
      ::shutdown(relay->client_fd, SHUT_RDWR);
      ::shutdown(relay->upstream_fd, SHUT_RDWR);
      killed = true;
      break;
    }
  }
  if (!killed) {
    // Orderly EOF (or a peer-side shutdown): propagate the half-close so
    // in-flight replies in the other direction still drain.
    ::shutdown(dst, SHUT_WR);
    ::shutdown(src, SHUT_RD);
  }
  relay->pumps_done.fetch_add(1, std::memory_order_acq_rel);
}

void ChaosProxy::kill_relay(Relay* relay, bool abortive) {
  if (abortive) relay->abortive.store(true, std::memory_order_release);
  if (relay->dead.exchange(true, std::memory_order_acq_rel)) return;
  // Both pumps unblock on the shutdowns; close() waits for the reaper so
  // a racing recv can never touch a recycled descriptor.
  ::shutdown(relay->client_fd, SHUT_RDWR);
  ::shutdown(relay->upstream_fd, SHUT_RDWR);
}

void ChaosProxy::reap_relays(bool all) {
  // Caller holds relays_mutex_.
  std::erase_if(relays_, [all](const std::unique_ptr<Relay>& r) {
    if (!all && r->pumps_done.load(std::memory_order_acquire) < 2) {
      return false;
    }
    if (r->up.joinable()) r->up.join();
    if (r->down.joinable()) r->down.join();
    if (r->abortive.load(std::memory_order_acquire)) {
      arm_linger_zero(r->client_fd);
      arm_linger_zero(r->upstream_fd);
    }
    ::close(r->client_fd);
    ::close(r->upstream_fd);
    return true;
  });
}

void ChaosProxy::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (stopping_.exchange(true)) return;
  if (const int fd = listen_fd_.load(std::memory_order_acquire); fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  if (const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
      fd >= 0) {
    ::close(fd);
  }
  {
    std::scoped_lock lock(relays_mutex_);
    for (const auto& relay : relays_) kill_relay(relay.get(), false);
    reap_relays(/*all=*/true);
  }
}

ChaosTally ChaosProxy::tally() const {
  ChaosTally out;
  out.connections = tally_.connections.load(std::memory_order_relaxed);
  out.accept_failures = tally_.accept_failures.load(std::memory_order_relaxed);
  out.resets = tally_.resets.load(std::memory_order_relaxed);
  out.stalls = tally_.stalls.load(std::memory_order_relaxed);
  out.partials = tally_.partials.load(std::memory_order_relaxed);
  out.chunks = tally_.chunks.load(std::memory_order_relaxed);
  out.forwarded_bytes = tally_.forwarded_bytes.load(std::memory_order_relaxed);
  return out;
}

}  // namespace landlord::serve
