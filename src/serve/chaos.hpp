// Seeded socket fault shim for the serve plane.
//
// ChaosProxy is an in-process TCP relay: it listens on 127.0.0.1, and
// every accepted connection is forwarded to the real server on
// `target_port` through two pump threads (one per direction). The server
// and the load generator are simply pointed at the proxy's port — no
// code under test knows it is there — and the proxy injects the four
// network fault classes of fault::FaultOp on a seeded schedule:
//
//   kAcceptFail       the connection is closed immediately at accept;
//   kConnReset        the relay is torn down abortively mid-stream
//                     (SO_LINGER 0, so the peers see an RST-style abort);
//   kConnStall        delivery of one chunk pauses for `stall_ms` —
//                     long enough to trip read-idle / write-stall
//                     timeouts when they are configured tighter;
//   kPartialDelivery  a seeded fragment of one chunk is delivered, then
//                     both sides get an abrupt FIN mid-frame.
//
// Determinism: each direction owns its own fault::FaultInjector (same
// plan, direction-salted seed) and fragment Rng, consulted once per
// forwarded chunk under a per-direction mutex. The verdict for the k-th
// chunk of a direction is therefore a pure function of (plan, direction,
// k) — replayable bit-for-bit like the rest of the fault plane. With a
// strict request/response client the chunk sequence itself is
// deterministic, so the whole fault tape is.
//
// The chaos suite (tests/serve/net_fault_test.cpp) drives the loadgen
// and the resilient client through this shim and asserts end-state
// equivalence against a fault-free oracle.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace landlord::serve {

struct ChaosProxyConfig {
  /// The real server's port on 127.0.0.1.
  std::uint16_t target_port = 0;
  /// Proxy listen port; 0 picks an ephemeral one (read back via port()).
  std::uint16_t listen_port = 0;
  /// How long a kConnStall verdict pauses one chunk's delivery.
  std::uint32_t stall_ms = 40;
  /// Relay read size; one verdict is drawn per chunk actually received.
  std::size_t chunk_bytes = 16 * 1024;
  int backlog = 64;
  /// Fault plan; only the network classes (kConnReset, kConnStall,
  /// kPartialDelivery, kAcceptFail) are consulted. An empty plan makes
  /// the proxy a transparent relay.
  fault::FaultPlan plan;
};

/// Monotone shim-side tallies (what the proxy actually did).
struct ChaosTally {
  std::uint64_t connections = 0;      ///< relays established
  std::uint64_t accept_failures = 0;  ///< connections killed at accept
  std::uint64_t resets = 0;           ///< abortive mid-stream teardowns
  std::uint64_t stalls = 0;           ///< chunks delayed by stall_ms
  std::uint64_t partials = 0;         ///< chunks cut short + FIN
  std::uint64_t chunks = 0;           ///< chunks forwarded (both directions)
  std::uint64_t forwarded_bytes = 0;  ///< bytes actually delivered

  [[nodiscard]] std::uint64_t injected() const noexcept {
    return accept_failures + resets + stalls + partials;
  }
};

class ChaosProxy {
 public:
  explicit ChaosProxy(ChaosProxyConfig config);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Binds the listen socket and spawns the acceptor.
  [[nodiscard]] util::Result<bool> start();

  /// The bound proxy port (meaningful after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Tears down the listener and every live relay; joins all threads.
  /// Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] ChaosTally tally() const;

 private:
  /// One proxied connection: two fds, two pump threads.
  struct Relay {
    int client_fd = -1;
    int upstream_fd = -1;
    std::atomic<bool> dead{false};
    std::atomic<bool> abortive{false};  ///< close with SO_LINGER 0 (reset)
    std::atomic<int> pumps_done{0};
    std::thread up;    ///< client -> server
    std::thread down;  ///< server -> client
  };

  /// Per-direction deterministic fault state.
  struct Direction {
    std::mutex mutex;
    std::unique_ptr<fault::FaultInjector> injector;
    util::Rng frag_rng{1};
  };

  void accept_loop();
  void pump(Relay* relay, int src, int dst, Direction& direction);
  /// Shuts both relay sockets down (both pumps unblock); fds are closed
  /// only at reap/stop, after the pump threads are joined.
  void kill_relay(Relay* relay, bool abortive);
  void reap_relays(bool all);

  ChaosProxyConfig config_;
  std::uint16_t port_ = 0;
  std::atomic<int> listen_fd_{-1};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;

  Direction inbound_;   ///< client -> server (also owns accept verdicts)
  Direction outbound_;  ///< server -> client

  std::mutex relays_mutex_;
  std::vector<std::unique_ptr<Relay>> relays_;

  struct AtomicTally {
    std::atomic<std::uint64_t> connections{0};
    std::atomic<std::uint64_t> accept_failures{0};
    std::atomic<std::uint64_t> resets{0};
    std::atomic<std::uint64_t> stalls{0};
    std::atomic<std::uint64_t> partials{0};
    std::atomic<std::uint64_t> chunks{0};
    std::atomic<std::uint64_t> forwarded_bytes{0};
  };
  AtomicTally tally_;
};

}  // namespace landlord::serve
