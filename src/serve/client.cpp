#include "serve/client.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "serve/io.hpp"

namespace landlord::serve {

namespace {

bool write_all(int fd, const char* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

util::Result<bool> Client::connect(std::uint16_t port) {
  if (fd_ >= 0) return util::Error{"client already connected"};
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return util::Error{std::string{"socket: "} + std::strerror(errno)};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::string why = std::string{"connect: "} + std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    return util::Error{why};
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  // A later connect() starts a fresh byte stream; a half-received frame
  // from this connection must never prefix it.
  recv_buffer_.clear();
}

void Client::shutdown() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

bool Client::send_frame(std::string_view bytes) {
  if (fd_ < 0) return false;
  return write_all(fd_, bytes.data(), bytes.size());
}

Decoded<Frame> Client::recv_frame() { return recv_frame_within(-1); }

Decoded<Frame> Client::recv_frame_within(int timeout_ms) {
  Decoded<Frame> out;
  if (fd_ < 0) {
    out.status = DecodeStatus::kShortHeader;
    return out;
  }
  while (true) {
    const std::string_view buffered = recv_buffer_.view();
    std::size_t want = 4096;
    if (buffered.size() >= kHeaderSize) {
      const Decoded<FrameHeader> header =
          decode_header(buffered.substr(0, kHeaderSize));
      if (!header.ok()) {
        out.status = header.status;
        return out;
      }
      const std::size_t total = kHeaderSize + header.value.payload_size;
      if (buffered.size() >= total) {
        out = decode_frame(buffered.substr(0, total), 0);
        recv_buffer_.consume(total);
        return out;
      }
      want = total - buffered.size();
    }
    recv_buffer_.ensure_writable(want);
    if (timeout_ms >= 0 &&
        net::wait_readable(fd_, timeout_ms) != net::IoStatus::kOk) {
      out.status = recv_buffer_.readable() < kHeaderSize
                       ? DecodeStatus::kShortHeader
                       : DecodeStatus::kTruncated;
      return out;
    }
    const ssize_t r =
        ::recv(fd_, recv_buffer_.write_ptr(), recv_buffer_.writable(), 0);
    if (r > 0) {
      recv_buffer_.commit(static_cast<std::size_t>(r));
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    out.status = recv_buffer_.readable() < kHeaderSize
                     ? DecodeStatus::kShortHeader
                     : DecodeStatus::kTruncated;
    return out;
  }
}

namespace {

/// Strict request/response: the reply must be `expected`; rejection,
/// errors and drain goodbyes become Error messages.
util::Result<Frame> expect_reply(Client& client, FrameType expected,
                                 std::uint64_t request_id) {
  Decoded<Frame> frame = client.recv_frame();
  if (!frame.ok()) {
    return util::Error{std::string{"reply failed to decode: "} +
                       to_string(frame.status)};
  }
  const Frame& value = frame.value;
  if (value.header.type == FrameType::kRejected) {
    return util::Error{std::string{"rejected: "} +
                       to_string(value.reject_reason)};
  }
  if (value.header.type == FrameType::kError) {
    return util::Error{std::string{"server error: "} +
                       to_string(value.error_status)};
  }
  if (value.header.type == FrameType::kDrained) {
    return util::Error{"server drained"};
  }
  if (value.header.type != expected) {
    return util::Error{std::string{"unexpected reply type: "} +
                       to_string(value.header.type)};
  }
  if (value.header.request_id != request_id) {
    return util::Error{"reply correlation id mismatch"};
  }
  return std::move(frame.value);
}

}  // namespace

util::Result<PlacementReply> Client::submit(const SubmitRequest& request) {
  const std::uint64_t id = next_request_id();
  if (!send_frame(encode_submit(id, request))) {
    return util::Error{"send failed"};
  }
  util::Result<Frame> reply = expect_reply(*this, FrameType::kPlacement, id);
  if (!reply.ok()) return reply.error();
  return std::move(reply.value().placements.front());
}

util::Result<std::vector<PlacementReply>> Client::submit_batch(
    std::span<const SubmitRequest> requests) {
  const std::uint64_t id = next_request_id();
  if (!send_frame(encode_batch_submit(id, requests))) {
    return util::Error{"send failed"};
  }
  util::Result<Frame> reply =
      expect_reply(*this, FrameType::kBatchPlacement, id);
  if (!reply.ok()) return reply.error();
  return std::move(reply.value().placements);
}

util::Result<bool> Client::ping() {
  const std::uint64_t id = next_request_id();
  if (!send_frame(encode_ping(id))) return util::Error{"send failed"};
  util::Result<Frame> reply = expect_reply(*this, FrameType::kPong, id);
  if (!reply.ok()) return reply.error();
  return true;
}

util::Result<StatsReply> Client::stats() {
  const std::uint64_t id = next_request_id();
  if (!send_frame(encode_stats_request(id))) return util::Error{"send failed"};
  util::Result<Frame> reply = expect_reply(*this, FrameType::kStatsReply, id);
  if (!reply.ok()) return reply.error();
  return reply.value().stats;
}

}  // namespace landlord::serve
