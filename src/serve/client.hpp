// Blocking TCP client for the head-node service plane.
//
// One Client owns one connection. The simple calls (submit, submit_batch,
// ping, stats) are strict request/response; the raw send_frame /
// recv_frame pair lets the load generator pipeline many requests before
// reading replies (matching them by FrameHeader::request_id). A Client is
// NOT thread-safe — the load generator gives each client thread its own.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "serve/buffer.hpp"
#include "serve/protocol.hpp"
#include "util/result.hpp"

namespace landlord::serve {

class Client {
 public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept
      : fd_(other.fd_),
        next_request_id_(other.next_request_id_),
        recv_buffer_(std::move(other.recv_buffer_)) {
    other.fd_ = -1;
  }
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      next_request_id_ = other.next_request_id_;
      recv_buffer_ = std::move(other.recv_buffer_);
      other.fd_ = -1;
    }
    return *this;
  }

  /// Connects to 127.0.0.1:port.
  [[nodiscard]] util::Result<bool> connect(std::uint16_t port);
  void close();
  /// Shuts both directions down without releasing the fd — unblocks a
  /// thread parked in recv_frame() (the open-loop receiver).
  void shutdown() noexcept;
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// One spec in, one frame back. kPlacement yields the reply;
  /// kRejected / kError / kDrained surface as an Error naming the
  /// reason — strict callers treat any of them as failure. Use
  /// send_frame/recv_frame to handle rejection explicitly.
  [[nodiscard]] util::Result<PlacementReply> submit(
      const SubmitRequest& request);

  /// N specs in one frame, N placements back (server order = input
  /// order).
  [[nodiscard]] util::Result<std::vector<PlacementReply>> submit_batch(
      std::span<const SubmitRequest> requests);

  /// Liveness probe; resolves when the matching pong arrives.
  [[nodiscard]] util::Result<bool> ping();

  /// Decision-layer counter snapshot from the server.
  [[nodiscard]] util::Result<StatsReply> stats();

  // ---- Pipelined building blocks ----

  /// Writes one pre-encoded frame; does not wait for a reply.
  [[nodiscard]] bool send_frame(std::string_view bytes);

  /// Reads one frame (header + payload) and decodes it; frames beyond
  /// the first that arrived in the same recv are served out of the
  /// rolling buffer without another syscall. The client skips the
  /// package range check (universe 0) — the server already validated
  /// ids on the way in.
  [[nodiscard]] Decoded<Frame> recv_frame();

  /// recv_frame with a bound: if no bytes become readable for
  /// `timeout_ms` the call gives up (kShortHeader / kTruncated depending
  /// on how much of the frame had arrived). The retry layer treats that
  /// like a dead connection: reconnect and retransmit under the same
  /// request_id. Pass -1 to block forever (== recv_frame()).
  [[nodiscard]] Decoded<Frame> recv_frame_within(int timeout_ms);

  /// Fresh correlation id for send_frame users.
  [[nodiscard]] std::uint64_t next_request_id() noexcept {
    return next_request_id_++;
  }

 private:
  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  RollingBuffer recv_buffer_;
};

}  // namespace landlord::serve
