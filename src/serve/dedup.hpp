// Idempotent-retry dedup window for the serve plane.
//
// A v2 client stamps every submit with a (session_id, request_id)
// identity and *reuses it verbatim on retry*. The server records each
// identity before executing the frame and the finished replies after, so
// a retransmit whose original reply was lost on the wire is answered
// from the window — the specs are never placed twice. Three outcomes per
// claim:
//
//   kNew        first sighting; the caller owns execution and must end
//               with complete() (replies stored) or abort() (the frame
//               was rejected by admission — rejection is not a placement
//               and a retry should re-attempt it);
//   kDone       the original finished; the stored replies come back;
//   kInFlight   the original is still executing (the retry raced it) —
//               wait() parks until complete()/abort() resolves it.
//
// Eviction is FIFO over *completed* entries beyond `capacity` (in-flight
// entries are never evicted: their owner is about to complete them). A
// retry arriving after its entry was evicted is simply re-executed —
// the window bounds memory, not correctness, and the eviction test pins
// that re-execution explicitly.
//
// Thread-safe; one mutex. Entries store reply *copies*, so the arena
// lifetime of the original encode never leaks in here.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "serve/protocol.hpp"

namespace landlord::serve {

class DedupWindow {
 public:
  struct Key {
    std::uint64_t session_id = 0;
    std::uint64_t request_id = 0;

    [[nodiscard]] bool operator==(const Key&) const = default;
  };

  enum class Claim : std::uint8_t { kNew, kInFlight, kDone };

  /// `capacity` bounds completed entries; 0 disables the window (every
  /// claim is kNew and nothing is recorded).
  explicit DedupWindow(std::size_t capacity) : capacity_(capacity) {}

  /// Atomically looks the identity up, registering it in-flight when
  /// absent. On kDone, `*reply_type` / `*replies` receive the stored
  /// reply.
  [[nodiscard]] Claim claim(const Key& key, FrameType* reply_type,
                            std::vector<PlacementReply>* replies) {
    if (capacity_ == 0) return Claim::kNew;
    std::scoped_lock lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      entries_.emplace(key, Entry{});
      return Claim::kNew;
    }
    if (!it->second.done) return Claim::kInFlight;
    *reply_type = it->second.reply_type;
    *replies = it->second.replies;
    return Claim::kDone;
  }

  /// Parks until the in-flight entry for `key` resolves. True with the
  /// stored reply when it completed; false when it was aborted (or
  /// evicted) — the caller should re-claim and re-execute.
  [[nodiscard]] bool wait(const Key& key, FrameType* reply_type,
                          std::vector<PlacementReply>* replies) {
    std::unique_lock lock(mutex_);
    while (true) {
      auto it = entries_.find(key);
      if (it == entries_.end()) return false;
      if (it->second.done) {
        *reply_type = it->second.reply_type;
        *replies = it->second.replies;
        return true;
      }
      cv_.wait(lock);
    }
  }

  /// Publishes the finished replies for a kNew claim and wakes waiting
  /// retries. Returns how many completed entries were evicted to stay
  /// within capacity.
  std::size_t complete(const Key& key, FrameType reply_type,
                       std::vector<PlacementReply> replies) {
    if (capacity_ == 0) return 0;
    std::size_t evicted = 0;
    {
      std::scoped_lock lock(mutex_);
      auto it = entries_.find(key);
      if (it == entries_.end()) return 0;  // aborted concurrently
      it->second.done = true;
      it->second.reply_type = reply_type;
      it->second.replies = std::move(replies);
      fifo_.push_back(key);
      while (fifo_.size() > capacity_) {
        entries_.erase(fifo_.front());
        fifo_.pop_front();
        ++evicted;
      }
    }
    cv_.notify_all();
    return evicted;
  }

  /// Withdraws a kNew claim whose frame was rejected before execution;
  /// waiting retries re-claim and re-attempt.
  void abort(const Key& key) {
    if (capacity_ == 0) return;
    {
      std::scoped_lock lock(mutex_);
      auto it = entries_.find(key);
      if (it != entries_.end() && !it->second.done) entries_.erase(it);
    }
    cv_.notify_all();
  }

  /// Entries currently held (in-flight + completed).
  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lock(mutex_);
    return entries_.size();
  }

 private:
  struct Entry {
    bool done = false;
    FrameType reply_type = FrameType::kPlacement;
    std::vector<PlacementReply> replies;
  };

  struct KeyHash {
    [[nodiscard]] std::size_t operator()(const Key& key) const noexcept {
      // splitmix-style mix; the two ids are client-chosen so mix both.
      std::uint64_t x = key.session_id * 0x9e3779b97f4a7c15ULL;
      x ^= key.request_id + 0x9e3779b97f4a7c15ULL + (x << 6) + (x >> 2);
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ULL;
      x ^= x >> 27;
      return static_cast<std::size_t>(x);
    }
  };

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::unordered_map<Key, Entry, KeyHash> entries_;
  /// Completion order; completed entries beyond capacity_ evict FIFO.
  std::deque<Key> fifo_;
};

}  // namespace landlord::serve
