#include "serve/io.hpp"

#include <limits.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>

#include <cerrno>

namespace landlord::serve::net {

namespace {

/// Blocks until `fd` can take more bytes; false on poll error or a
/// socket-level error/hangup (POLLERR without POLLOUT).
bool wait_writable(int fd) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLOUT;
  while (true) {
    const int r = ::poll(&pfd, 1, -1);
    if (r > 0) return (pfd.revents & POLLOUT) != 0;
    if (r < 0 && errno == EINTR) continue;
    return false;
  }
}

}  // namespace

bool write_all(int fd, const char* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!wait_writable(fd)) return false;
      continue;
    }
    return false;
  }
  return true;
}

bool writev_all(int fd, std::span<const ConstBuffer> buffers) {
  // iovec window into `buffers`, rebuilt as whole buffers retire. `skip`
  // is the partial-write offset into the first live buffer.
  std::size_t next = 0;   ///< first buffer not yet fully written
  std::size_t skip = 0;   ///< bytes of buffers[next] already written
  iovec iov[64];
  constexpr std::size_t kMaxIov = sizeof(iov) / sizeof(iov[0]);
  static_assert(kMaxIov <= IOV_MAX);

  while (next < buffers.size()) {
    std::size_t count = 0;
    for (std::size_t i = next; i < buffers.size() && count < kMaxIov; ++i) {
      const ConstBuffer& b = buffers[i];
      const std::size_t offset = (i == next) ? skip : 0;
      if (b.size == offset) continue;  // empty (or fully-written) segment
      iov[count].iov_base = const_cast<char*>(b.data + offset);
      iov[count].iov_len = b.size - offset;
      ++count;
    }
    if (count == 0) break;  // only empty buffers remained

    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = count;
    const ssize_t w = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!wait_writable(fd)) return false;
        continue;
      }
      return false;
    }
    // Retire whole buffers the kernel consumed; remember the offset into
    // the first one it only partially took.
    std::size_t taken = static_cast<std::size_t>(w);
    while (next < buffers.size()) {
      const std::size_t live = buffers[next].size - skip;
      if (taken < live) {
        skip += taken;
        break;
      }
      taken -= live;
      skip = 0;
      ++next;
    }
  }
  return true;
}

}  // namespace landlord::serve::net
