#include "serve/io.hpp"

#include <limits.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>

#include <cerrno>
#include <chrono>

namespace landlord::serve::net {

namespace {

using Clock = std::chrono::steady_clock;

/// Bounded poll for one event set. `timeout_ms < 0` waits forever; the
/// deadline is re-derived across EINTR so interrupts cannot extend it.
IoStatus wait_for(int fd, short events, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = events;
  const bool bounded = timeout_ms >= 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(bounded ? timeout_ms : 0);
  while (true) {
    int wait_ms = -1;
    if (bounded) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      wait_ms = static_cast<int>(std::max<std::int64_t>(left.count(), 0));
    }
    const int r = ::poll(&pfd, 1, wait_ms);
    if (r > 0) {
      // POLLERR/POLLHUP without the requested event: for reads the next
      // recv() reports the condition; for writes there is nothing left
      // to wait for — surface the error here.
      if ((pfd.revents & events) != 0) return IoStatus::kOk;
      return (events & POLLIN) != 0 ? IoStatus::kOk : IoStatus::kError;
    }
    if (r == 0) return IoStatus::kTimeout;
    if (errno == EINTR) continue;
    return IoStatus::kError;
  }
}

}  // namespace

IoStatus wait_readable(int fd, int timeout_ms) {
  return wait_for(fd, POLLIN, timeout_ms);
}

IoStatus write_all(int fd, const char* data, std::size_t n,
                   int stall_timeout_ms) {
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_DONTWAIT even on blocking sockets: all waiting happens in the
    // bounded poll below, so the stall timeout governs either way.
    const ssize_t w =
        ::send(fd, data + sent, n - sent, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const IoStatus st = wait_for(fd, POLLOUT, stall_timeout_ms);
      if (st != IoStatus::kOk) return st;
      continue;
    }
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

IoStatus writev_all(int fd, std::span<const ConstBuffer> buffers,
                    int stall_timeout_ms) {
  // iovec window into `buffers`, rebuilt as whole buffers retire. `skip`
  // is the partial-write offset into the first live buffer.
  std::size_t next = 0;   ///< first buffer not yet fully written
  std::size_t skip = 0;   ///< bytes of buffers[next] already written
  iovec iov[64];
  constexpr std::size_t kMaxIov = sizeof(iov) / sizeof(iov[0]);
  static_assert(kMaxIov <= IOV_MAX);

  while (next < buffers.size()) {
    std::size_t count = 0;
    for (std::size_t i = next; i < buffers.size() && count < kMaxIov; ++i) {
      const ConstBuffer& b = buffers[i];
      const std::size_t offset = (i == next) ? skip : 0;
      if (b.size == offset) continue;  // empty (or fully-written) segment
      iov[count].iov_base = const_cast<char*>(b.data + offset);
      iov[count].iov_len = b.size - offset;
      ++count;
    }
    if (count == 0) break;  // only empty buffers remained

    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = count;
    const ssize_t w = ::sendmsg(fd, &msg, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        const IoStatus st = wait_for(fd, POLLOUT, stall_timeout_ms);
        if (st != IoStatus::kOk) return st;
        continue;
      }
      return IoStatus::kError;
    }
    // Retire whole buffers the kernel consumed; remember the offset into
    // the first one it only partially took.
    std::size_t taken = static_cast<std::size_t>(w);
    while (next < buffers.size()) {
      const std::size_t live = buffers[next].size - skip;
      if (taken < live) {
        skip += taken;
        break;
      }
      taken -= live;
      skip = 0;
      ++next;
    }
  }
  return IoStatus::kOk;
}

}  // namespace landlord::serve::net
