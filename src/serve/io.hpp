// Socket write helpers for the serve plane.
//
// Both helpers write *everything or report failure*: partial progress is
// resumed, EINTR is retried, and EAGAIN/EWOULDBLOCK (a socket whose send
// buffer is full, or one a test has switched to non-blocking) parks in
// poll(POLLOUT) until the kernel can take more — the callers' framing
// invariants do not survive a half-written frame. Hard errors (peer gone,
// shutdown(2), EPIPE) return false with the stream position unspecified;
// the connection is abandoned at that point.
//
// writev_all is the gathered-write path: each ConstBuffer is one encoded
// frame, and the whole span goes to the kernel in as few sendmsg(2) calls
// as IOV_MAX and the socket buffer allow. Exposed as a tiny seam (rather
// than folded into server.cpp) so the short-write/EINTR unit tests can
// drive it over a socketpair without standing up a server.
#pragma once

#include <cstddef>
#include <span>

namespace landlord::serve::net {

/// One gather segment; points at caller-owned bytes that must stay alive
/// for the duration of the call.
struct ConstBuffer {
  const char* data = nullptr;
  std::size_t size = 0;
};

/// Writes all `n` bytes of `data` to `fd`. False on hard error.
[[nodiscard]] bool write_all(int fd, const char* data, std::size_t n);

/// Writes every buffer in `buffers`, in order, coalescing them into
/// gathered sendmsg(2) calls. False on hard error.
[[nodiscard]] bool writev_all(int fd, std::span<const ConstBuffer> buffers);

}  // namespace landlord::serve::net
