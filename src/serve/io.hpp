// Socket write helpers for the serve plane.
//
// Both helpers write *everything or report a typed failure*: partial
// progress is resumed, EINTR is retried, and EAGAIN/EWOULDBLOCK (a
// socket whose send buffer is full, or one a test has switched to
// non-blocking) parks in poll(POLLOUT) until the kernel can take more —
// the callers' framing invariants do not survive a half-written frame.
//
// The poll is *bounded*: `stall_timeout_ms` caps how long a write may
// make no progress before the helper gives up with IoStatus::kTimeout
// (the slow-client defense — a peer that stops reading can no longer
// wedge a flusher thread forever). Progress resets the clock: only a
// contiguous stall of the full budget times out. Pass -1 to wait
// forever (the pre-timeout behavior). Hard errors (peer gone,
// shutdown(2), EPIPE) return kError with the stream position
// unspecified; the connection is abandoned at that point.
//
// writev_all is the gathered-write path: each ConstBuffer is one encoded
// frame, and the whole span goes to the kernel in as few sendmsg(2) calls
// as IOV_MAX and the socket buffer allow. Exposed as a tiny seam (rather
// than folded into server.cpp) so the short-write/EINTR/stall unit tests
// can drive it over a socketpair without standing up a server.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace landlord::serve::net {

/// One gather segment; points at caller-owned bytes that must stay alive
/// for the duration of the call.
struct ConstBuffer {
  const char* data = nullptr;
  std::size_t size = 0;
};

/// How a bounded write (or wait) ended.
enum class IoStatus : std::uint8_t {
  kOk = 0,
  kTimeout,  ///< no progress for the whole stall budget; bytes may be lost
  kError,    ///< hard socket error (peer gone, shutdown, EPIPE, ...)
};

[[nodiscard]] constexpr const char* to_string(IoStatus status) noexcept {
  switch (status) {
    case IoStatus::kOk: return "ok";
    case IoStatus::kTimeout: return "timeout";
    case IoStatus::kError: return "error";
  }
  return "?";
}

/// Writes all `n` bytes of `data` to `fd`. kTimeout after
/// `stall_timeout_ms` ms without progress (-1 = wait forever).
[[nodiscard]] IoStatus write_all(int fd, const char* data, std::size_t n,
                                 int stall_timeout_ms = -1);

/// Writes every buffer in `buffers`, in order, coalescing them into
/// gathered sendmsg(2) calls. Same stall semantics as write_all.
[[nodiscard]] IoStatus writev_all(int fd, std::span<const ConstBuffer> buffers,
                                  int stall_timeout_ms = -1);

/// Blocks until `fd` is readable, with the same bounded-poll semantics:
/// kOk when readable (or the peer hung up — the next recv reports it),
/// kTimeout after `timeout_ms` idle ms, kError on poll failure. -1 waits
/// forever. The server's per-connection read idle timeout and the
/// client's reply deadline both sit on this.
[[nodiscard]] IoStatus wait_readable(int fd, int timeout_ms);

}  // namespace landlord::serve::net
