#include "serve/loadgen.hpp"

#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <memory>
#include <mutex>
#include <numeric>
#include <thread>
#include <unordered_map>

#include "hep/profiles.hpp"
#include "serve/client.hpp"
#include "sim/workload.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace landlord::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Concurrent distinct-id bitmap over the client universe (one bit per
/// logical client; 2M clients = 250 KB).
class ClientBitmap {
 public:
  explicit ClientBitmap(std::uint64_t universe)
      : words_((universe + 63) / 64),
        bits_(std::make_unique<std::atomic<std::uint64_t>[]>(words_)) {}

  void set(std::uint64_t id) noexcept {
    bits_[id / 64].fetch_or(1ULL << (id % 64), std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < words_; ++i) {
      total += static_cast<std::uint64_t>(
          std::popcount(bits_[i].load(std::memory_order_relaxed)));
    }
    return total;
  }

 private:
  std::size_t words_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> bits_;
};

/// Per-thread tallies merged into the report after the run.
struct ThreadTally {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;
  std::uint64_t frames = 0;
  std::uint64_t hits = 0;
  std::uint64_t merges = 0;
  std::uint64_t inserts = 0;
  std::uint64_t degraded = 0;
  std::uint64_t failed = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t reconnects = 0;
  std::vector<double> latencies;  ///< per-frame RTT seconds
  bool error = false;
  bool drain_timed_out = false;
};

void tally_placements(ThreadTally& tally,
                      const std::vector<PlacementReply>& placements) {
  for (const PlacementReply& p : placements) {
    switch (p.kind) {
      case core::RequestKind::kHit: ++tally.hits; break;
      case core::RequestKind::kMerge: ++tally.merges; break;
      case core::RequestKind::kInsert: ++tally.inserts; break;
    }
    if (p.degraded) ++tally.degraded;
    if (p.failed) ++tally.failed;
  }
  tally.ok += placements.size();
}

}  // namespace

std::vector<SubmitRequest> make_catalog(const pkg::Repository& repo,
                                        const LoadGenConfig& config) {
  sim::WorkloadConfig workload;
  workload.unique_jobs = config.catalog_specs;
  workload.max_initial_selection = config.max_initial_selection;
  sim::WorkloadGenerator generator(repo, workload,
                                   util::Rng(config.seed).split(1));
  std::vector<SubmitRequest> catalog;
  catalog.reserve(config.catalog_specs + 8);
  for (spec::Specification& spec : generator.unique_specifications()) {
    catalog.push_back(to_request(spec, 0));
  }
  if (config.include_hep_apps) {
    for (const hep::HepApp& app : hep::benchmark_apps()) {
      catalog.push_back(
          to_request(hep::app_specification(repo, app, config.seed), 0));
    }
  }
  return catalog;
}

std::vector<TraceEntry> make_trace(const LoadGenConfig& config,
                                   std::size_t catalog_size,
                                   std::uint32_t connection_index,
                                   std::uint64_t count) {
  // Popularity rank r is Zipf-sampled, then mapped through a seeded
  // permutation so the popular specs are spread across the catalog
  // instead of being the first few generated.
  util::Rng root(config.seed);
  std::vector<std::uint32_t> ranks(catalog_size);
  std::iota(ranks.begin(), ranks.end(), 0u);
  util::Rng perm_rng = root.split(2);
  perm_rng.shuffle(std::span<std::uint32_t>(ranks));

  util::Rng rng = root.split(100 + connection_index);
  std::vector<TraceEntry> trace;
  trace.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceEntry entry;
    entry.spec = ranks[rng.zipf(catalog_size, config.zipf_s)];
    entry.client_id = rng.uniform(config.clients);
    trace.push_back(entry);
  }
  return trace;
}

util::Result<LoadGenReport> run_load(const pkg::Repository& repo,
                                     const LoadGenConfig& config) {
  if (config.connections == 0 || config.batch == 0) {
    return util::Error{"connections and batch must be positive"};
  }
  const std::vector<SubmitRequest> catalog = make_catalog(repo, config);
  if (catalog.empty()) return util::Error{"empty spec catalog"};

  const auto port_for = [&config](std::uint32_t t) -> std::uint16_t {
    if (config.ports.empty()) return config.port;
    return config.ports[t % config.ports.size()];
  };

  if (config.warmup) {
    // One closed-loop pass over the whole catalog per head, outside the
    // timed window: the open loop's tail was dominated by every unique
    // spec's first-touch insert/merge, not by serving.
    std::vector<std::uint16_t> heads =
        !config.warmup_ports.empty() ? config.warmup_ports
        : config.ports.empty()       ? std::vector<std::uint16_t>{config.port}
                                     : config.ports;
    for (const std::uint16_t head_port : heads) {
      Client warmer;
      if (!warmer.connect(head_port).ok()) continue;
      std::size_t cursor = 0;
      while (cursor < catalog.size()) {
        const std::size_t end =
            std::min(catalog.size(), cursor + config.batch);
        const std::span<const SubmitRequest> chunk(catalog.data() + cursor,
                                                   end - cursor);
        cursor = end;
        // Best-effort: a rejected warmup batch just leaves those specs
        // cold; the timed run still measures them correctly.
        (void)warmer.submit_batch(chunk);
      }
    }
  }

  const std::uint32_t threads = config.connections;
  ClientBitmap clients_seen(config.clients);
  std::vector<ThreadTally> tallies(threads);
  std::vector<std::thread> drivers;
  drivers.reserve(threads);

  // Per-connection spec quota.
  std::vector<std::uint64_t> quotas(threads, 0);
  if (config.mode == LoadMode::kClosed) {
    for (std::uint32_t i = 0; i < threads; ++i) {
      quotas[i] = config.total_requests / threads +
                  (i < config.total_requests % threads ? 1 : 0);
    }
  } else {
    // Open loop: precompute a trace long enough for the whole window and
    // wrap if pacing overshoots the estimate.
    const double per_connection_rate =
        config.rate_per_second / static_cast<double>(threads);
    for (std::uint32_t i = 0; i < threads; ++i) {
      quotas[i] = static_cast<std::uint64_t>(
                      per_connection_rate * config.duration_seconds * 1.25) +
                  config.batch;
    }
  }

  const auto run_start = Clock::now();
  const double deadline = config.duration_seconds;

  for (std::uint32_t t = 0; t < threads; ++t) {
    drivers.emplace_back([&, t] {
      ThreadTally& tally = tallies[t];
      std::vector<TraceEntry> trace =
          make_trace(config, catalog.size(), t, quotas[t]);
      std::vector<SubmitRequest> batch;
      batch.reserve(config.batch);

      if (config.mode == LoadMode::kClosed && config.retry.has_value()) {
        // Fault-tolerant closed loop: each driver owns a ResilientClient
        // whose (seeded) session identity makes retransmits idempotent.
        ResilientClient resilient(port_for(t), *config.retry,
                                  util::Rng(config.seed).split(200 + t)());
        std::size_t cursor = 0;
        while (cursor < trace.size()) {
          if (deadline > 0 && seconds_since(run_start) >= deadline) break;
          batch.clear();
          const std::size_t end =
              std::min(trace.size(), cursor + config.batch);
          for (; cursor < end; ++cursor) {
            const TraceEntry& entry = trace[cursor];
            SubmitRequest request = catalog[entry.spec];
            request.client_id = entry.client_id;
            clients_seen.set(entry.client_id);
            batch.push_back(std::move(request));
          }
          const auto sent_at = Clock::now();
          util::Result<std::vector<PlacementReply>> placed =
              resilient.submit_batch(batch);
          tally.frames += 1;
          tally.sent += batch.size();
          if (placed.ok()) {
            tally.latencies.push_back(seconds_since(sent_at));
            tally_placements(tally, placed.value());
          } else {
            // Retries exhausted (persistent rejection or dead server):
            // these specs were offered but never placed.
            tally.rejected += batch.size();
          }
        }
        tally.retransmits = resilient.tally().retransmits;
        tally.reconnects = resilient.tally().reconnects;
        return;
      }

      Client client;
      if (!client.connect(port_for(t)).ok()) {
        tally.error = true;
        return;
      }

      if (config.mode == LoadMode::kClosed) {
        std::size_t cursor = 0;
        while (cursor < trace.size()) {
          if (deadline > 0 && seconds_since(run_start) >= deadline) break;
          batch.clear();
          const std::size_t end =
              std::min(trace.size(), cursor + config.batch);
          for (; cursor < end; ++cursor) {
            const TraceEntry& entry = trace[cursor];
            SubmitRequest request = catalog[entry.spec];
            request.client_id = entry.client_id;
            clients_seen.set(entry.client_id);
            batch.push_back(std::move(request));
          }
          const std::uint64_t id = client.next_request_id();
          const auto sent_at = Clock::now();
          if (!client.send_frame(encode_batch_submit(id, batch))) {
            tally.error = true;
            break;
          }
          tally.frames += 1;
          tally.sent += batch.size();
          Decoded<Frame> reply = client.recv_frame();
          if (!reply.ok()) {
            tally.error = true;
            break;
          }
          tally.latencies.push_back(seconds_since(sent_at));
          if (reply.value.header.type == FrameType::kBatchPlacement) {
            tally_placements(tally, reply.value.placements);
          } else if (reply.value.header.type == FrameType::kRejected) {
            tally.rejected += batch.size();
          } else {
            tally.error = true;
            break;
          }
        }
      } else {
        // Open loop: pace frames at the offered rate on this thread; a
        // receiver matches replies by correlation id so in-flight depth
        // floats with server queueing instead of being clamped at one.
        std::mutex inflight_mutex;
        std::unordered_map<std::uint64_t, Clock::time_point> inflight;
        std::atomic<bool> sender_done{false};
        std::atomic<std::uint64_t> outstanding{0};

        std::thread receiver([&] {
          while (true) {
            if (sender_done.load(std::memory_order_acquire) &&
                outstanding.load(std::memory_order_acquire) == 0) {
              break;
            }
            Decoded<Frame> reply = client.recv_frame();
            if (!reply.ok()) break;  // socket closed after drain
            const std::uint64_t id = reply.value.header.request_id;
            Clock::time_point sent_at;
            {
              std::scoped_lock lock(inflight_mutex);
              auto it = inflight.find(id);
              if (it == inflight.end()) continue;  // pong/stats/drained
              sent_at = it->second;
              inflight.erase(it);
            }
            if (reply.value.header.type == FrameType::kBatchPlacement) {
              tally_placements(tally, reply.value.placements);
            } else if (reply.value.header.type == FrameType::kRejected) {
              tally.rejected += config.batch;
            }
            tally.latencies.push_back(
                std::chrono::duration<double>(Clock::now() - sent_at)
                    .count());
            outstanding.fetch_sub(1, std::memory_order_acq_rel);
          }
        });

        const double frame_period =
            static_cast<double>(config.batch) * threads /
            config.rate_per_second;
        std::size_t cursor = 0;
        auto next_send = Clock::now();
        while (seconds_since(run_start) < deadline) {
          batch.clear();
          for (std::uint32_t i = 0; i < config.batch; ++i) {
            const TraceEntry& entry = trace[cursor++ % trace.size()];
            SubmitRequest request = catalog[entry.spec];
            request.client_id = entry.client_id;
            clients_seen.set(entry.client_id);
            batch.push_back(std::move(request));
          }
          const std::uint64_t id = client.next_request_id();
          {
            std::scoped_lock lock(inflight_mutex);
            inflight.emplace(id, Clock::now());
          }
          outstanding.fetch_add(1, std::memory_order_acq_rel);
          if (!client.send_frame(encode_batch_submit(id, batch))) {
            outstanding.fetch_sub(1, std::memory_order_acq_rel);
            tally.error = true;
            break;
          }
          tally.frames += 1;
          tally.sent += batch.size();
          next_send += std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double>(frame_period));
          std::this_thread::sleep_until(next_send);
        }
        sender_done.store(true, std::memory_order_release);
        // The server answers every in-flight frame (placed or rejected);
        // wait briefly for the receiver to drain, then cut the socket so
        // it can never block forever on a reply that will not come.
        const auto drain_deadline =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   config.drain_timeout_s));
        while (outstanding.load(std::memory_order_acquire) > 0 &&
               Clock::now() < drain_deadline) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        if (outstanding.load(std::memory_order_acquire) > 0) {
          tally.drain_timed_out = true;
        }
        client.shutdown();
        receiver.join();
      }
      client.close();
    });
  }
  for (std::thread& driver : drivers) driver.join();
  const double elapsed = seconds_since(run_start);

  LoadGenReport report;
  util::Summary latency;
  bool connected = false;
  for (const ThreadTally& tally : tallies) {
    if (!(tally.error && tally.sent == 0)) connected = true;
    report.requests_sent += tally.sent;
    report.requests_ok += tally.ok;
    report.requests_rejected += tally.rejected;
    report.frames_sent += tally.frames;
    report.placements_hit += tally.hits;
    report.placements_merge += tally.merges;
    report.placements_insert += tally.inserts;
    report.placements_degraded += tally.degraded;
    report.placements_failed += tally.failed;
    report.drain_timeouts += tally.drain_timed_out ? 1 : 0;
    report.retransmits += tally.retransmits;
    report.reconnects += tally.reconnects;
    for (double l : tally.latencies) latency.add(l);
  }
  if (!connected) return util::Error{"no connection could be established"};
  report.distinct_clients = clients_seen.count();
  report.duration_seconds = elapsed;
  report.qps = elapsed > 0
                   ? static_cast<double>(report.requests_ok) / elapsed
                   : 0.0;
  if (!latency.empty()) {
    report.latency_p50 = latency.quantile(0.50);
    report.latency_p99 = latency.quantile(0.99);
    report.latency_p999 = latency.quantile(0.999);
    report.latency_mean = latency.mean();
  }
  return report;
}

}  // namespace landlord::serve
