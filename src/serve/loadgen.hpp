// Online load generator for the head-node service plane.
//
// Synthesizes the paper's target regime — "heavy traffic from millions
// of users" — against a live serve::Server: a catalog of unique
// container specifications (sim::WorkloadGenerator dependency-closure
// specs plus the seven Fig. 2 HEP applications) is sampled with
// heavy-tailed Zipf popularity, each request stamped with a client id
// drawn from a universe of millions of distinct logical submitters.
//
// Two driving modes:
//   * closed loop — `connections` threads each keep exactly one batch
//     frame in flight (send, wait, repeat) until `total_requests` specs
//     are answered; throughput is offered-load-free and latency is pure
//     service RTT.
//   * open loop — each thread paces frames at a fixed offered rate
//     regardless of completions (a receiver thread matches replies by
//     correlation id), so queueing delay and admission-control rejections
//     become visible when the offered rate exceeds capacity.
//
// Every random draw derives from LoadGenConfig::seed via util::Rng
// splits, so two runs with the same config offer the same request
// sequence per connection.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "pkg/repository.hpp"
#include "serve/protocol.hpp"
#include "serve/retry.hpp"
#include "util/result.hpp"

namespace landlord::serve {

enum class LoadMode : std::uint8_t { kClosed, kOpen };

struct LoadGenConfig {
  /// Server port on 127.0.0.1.
  std::uint16_t port = 0;
  /// Multi-head runs: when non-empty, connection t targets
  /// ports[t % ports.size()] instead of `port` — several servers over
  /// one shared repository split the socket load round-robin.
  std::vector<std::uint16_t> ports;
  /// Submit the whole catalog once per head before the timed window
  /// (uncounted), so the measurement sees steady-state serving instead
  /// of the cold-cache insert/merge transient.
  bool warmup = false;
  /// Warmup destinations, when they must differ from `ports` — the
  /// chaos bench points `ports` at the fault shim but warms the cache
  /// directly against the heads (warmup is not part of the experiment).
  /// Empty = warm through `ports`/`port`.
  std::vector<std::uint16_t> warmup_ports;
  std::uint64_t seed = 1;
  LoadMode mode = LoadMode::kClosed;
  /// Concurrent connections (one driving thread each).
  std::uint32_t connections = 4;
  /// Specifications per batch frame.
  std::uint32_t batch = 32;
  /// Closed loop: stop once this many specs have been answered.
  std::uint64_t total_requests = 100000;
  /// Open loop: run for this long; also an optional closed-loop deadline
  /// (0 = no deadline).
  double duration_seconds = 0.0;
  /// Open loop: offered specs/second across all connections.
  double rate_per_second = 50000.0;
  /// Logical client universe; each request's client id is uniform over
  /// it ("millions of users").
  std::uint64_t clients = 2'000'000;
  /// Zipf popularity exponent over the spec catalog (s=0 → uniform;
  /// ~1 matches observed container-registry popularity skew).
  double zipf_s = 1.1;
  /// Unique sim-generated specs in the catalog (HEP apps are appended).
  std::uint32_t catalog_specs = 500;
  std::uint32_t max_initial_selection = 100;
  bool include_hep_apps = true;
  /// Open loop: how long to wait for in-flight replies after the send
  /// window closes before cutting the socket. A drain that hits this
  /// bound is reported in LoadGenReport::drain_timeouts instead of
  /// silently abandoning the tail.
  double drain_timeout_s = 10.0;
  /// When set, closed-loop drivers submit through a ResilientClient
  /// (protocol v2, reconnect-with-backoff, idempotent retry) instead of
  /// a raw Client — the chaos bench and the fault suite drive the
  /// generator through the fault shim this way.
  std::optional<RetryPolicy> retry;
};

struct LoadGenReport {
  std::uint64_t requests_sent = 0;      ///< specs offered
  std::uint64_t requests_ok = 0;        ///< specs answered with a placement
  std::uint64_t requests_rejected = 0;  ///< specs in rejected frames
  std::uint64_t frames_sent = 0;
  std::uint64_t distinct_clients = 0;  ///< distinct client ids observed
  std::uint64_t placements_hit = 0;
  std::uint64_t placements_merge = 0;
  std::uint64_t placements_insert = 0;
  std::uint64_t placements_degraded = 0;
  std::uint64_t placements_failed = 0;
  /// Open loop: connections whose post-run drain hit drain_timeout_s
  /// with replies still outstanding.
  std::uint64_t drain_timeouts = 0;
  /// Retry mode only: frames retransmitted / sockets re-dialled across
  /// all connections.
  std::uint64_t retransmits = 0;
  std::uint64_t reconnects = 0;
  double duration_seconds = 0.0;
  double qps = 0.0;  ///< requests_ok / duration
  /// Per-frame round-trip latency quantiles, seconds.
  double latency_p50 = 0.0;
  double latency_p99 = 0.0;
  double latency_p999 = 0.0;
  double latency_mean = 0.0;
};

/// The deterministic spec catalog the generator samples from: `config`'s
/// sim workload specs (flattened to wire form, client ids filled per
/// request later) plus the HEP application specs. Exposed so the
/// loopback equivalence test can replay the exact same trace in-process.
[[nodiscard]] std::vector<SubmitRequest> make_catalog(
    const pkg::Repository& repo, const LoadGenConfig& config);

/// Deterministic request trace for one connection: indices into the
/// catalog (Zipf-sampled through a seeded rank permutation) paired with
/// client ids. `count` specs for connection `connection_index`.
struct TraceEntry {
  std::uint32_t spec = 0;
  std::uint64_t client_id = 0;
};
[[nodiscard]] std::vector<TraceEntry> make_trace(const LoadGenConfig& config,
                                                 std::size_t catalog_size,
                                                 std::uint32_t connection_index,
                                                 std::uint64_t count);

/// Drives the configured load against 127.0.0.1:config.port. Blocks
/// until the run completes; fails if no connection can be established.
[[nodiscard]] util::Result<LoadGenReport> run_load(
    const pkg::Repository& repo, const LoadGenConfig& config);

}  // namespace landlord::serve
