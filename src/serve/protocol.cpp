#include "serve/protocol.hpp"

#include <cstring>

namespace landlord::serve {
namespace {

// ---- Little-endian primitive writers ----

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void put_string(std::string& out, std::string_view s) {
  put_u16(out, static_cast<std::uint16_t>(s.size()));
  out.append(s);
}

// ---- Bounds-checked primitive readers ----
//
// A Cursor walks the payload; every read checks the remaining length and
// latches kTruncated instead of advancing past the end, so decode code
// can read a whole record and test failure once.

class Cursor {
 public:
  explicit Cursor(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] bool failed() const noexcept { return failed_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }

  std::uint8_t u8() {
    const auto b = take(1);
    if (failed_) return 0;
    return static_cast<std::uint8_t>(b[0]);
  }

  std::uint16_t u16() {
    const auto b = take(2);
    if (failed_) return 0;
    return static_cast<std::uint16_t>(static_cast<std::uint8_t>(b[0]) |
                                      (static_cast<std::uint8_t>(b[1]) << 8));
  }

  std::uint32_t u32() {
    const auto b = take(4);
    if (failed_) return 0;
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<std::uint8_t>(b[static_cast<std::size_t>(i)]);
    return v;
  }

  std::uint64_t u64() {
    const auto b = take(8);
    if (failed_) return 0;
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<std::uint8_t>(b[static_cast<std::size_t>(i)]);
    return v;
  }

  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string_view raw(std::size_t n) { return take(n); }

 private:
  std::string_view take(std::size_t n) {
    if (failed_ || remaining() < n) {
      failed_ = true;
      return {};
    }
    const auto out = bytes_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

void put_header(std::string& out, FrameType type, std::uint64_t request_id,
                std::uint32_t payload_size,
                std::uint8_t version = kProtocolVersion) {
  put_u16(out, kMagic);
  put_u8(out, version);
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u32(out, payload_size);
  put_u64(out, request_id);
}

// ---- Raw single-pass writers (the sized-encoding path) ----
//
// Same little-endian layout as the string writers above; these bump a raw
// pointer through a buffer the caller has already sized exactly.

char* w_u8(char* p, std::uint8_t v) {
  *p++ = static_cast<char>(v);
  return p;
}

char* w_u16(char* p, std::uint16_t v) {
  *p++ = static_cast<char>(v & 0xff);
  *p++ = static_cast<char>((v >> 8) & 0xff);
  return p;
}

char* w_u32(char* p, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    *p++ = static_cast<char>((v >> shift) & 0xff);
  }
  return p;
}

char* w_u64(char* p, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    *p++ = static_cast<char>((v >> shift) & 0xff);
  }
  return p;
}

char* w_f64(char* p, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return w_u64(p, bits);
}

char* w_string(char* p, std::string_view s) {
  p = w_u16(p, static_cast<std::uint16_t>(s.size()));
  std::memcpy(p, s.data(), s.size());
  return p + s.size();
}

char* w_header(char* p, FrameType type, std::uint64_t request_id,
               std::size_t payload_size) {
  p = w_u16(p, kMagic);
  p = w_u8(p, kProtocolVersion);
  p = w_u8(p, static_cast<std::uint8_t>(type));
  p = w_u32(p, static_cast<std::uint32_t>(payload_size));
  return w_u64(p, request_id);
}

char* w_placement(char* p, const PlacementReply& reply) {
  p = w_u64(p, reply.client_id);
  p = w_u8(p, static_cast<std::uint8_t>(reply.kind));
  p = w_u8(p, static_cast<std::uint8_t>((reply.degraded ? 1u : 0u) |
                                        (reply.failed ? 2u : 0u)));
  p = w_u32(p, reply.build_retries);
  p = w_u64(p, reply.image);
  p = w_u64(p, reply.image_bytes);
  p = w_u64(p, reply.requested_bytes);
  p = w_f64(p, reply.prep_seconds);
  return w_string(p, reply.error);
}

/// Payload bytes of one flattened placement.
std::size_t placement_payload_size(const PlacementReply& reply) {
  return 8 + 1 + 1 + 4 + 8 + 8 + 8 + 8 + 2 + reply.error.size();
}

std::string frame_of(FrameType type, std::uint64_t request_id,
                     std::string_view payload,
                     std::uint8_t version = kProtocolVersion) {
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  put_header(out, type, request_id, static_cast<std::uint32_t>(payload.size()),
             version);
  out.append(payload);
  return out;
}

void put_submit(std::string& out, const SubmitRequest& request) {
  put_u64(out, request.client_id);
  put_u32(out, static_cast<std::uint32_t>(request.packages.size()));
  for (const std::uint32_t id : request.packages) put_u32(out, id);
  put_u16(out, static_cast<std::uint16_t>(request.constraints.size()));
  for (const auto& constraint : request.constraints) {
    put_u8(out, static_cast<std::uint8_t>(constraint.op));
    put_string(out, constraint.package);
    put_string(out, constraint.version);
  }
}

DecodeStatus read_submit(Cursor& cursor, std::size_t universe,
                         SubmitRequest& out) {
  out.client_id = cursor.u64();
  const std::uint32_t package_count = cursor.u32();
  if (cursor.failed()) return DecodeStatus::kTruncated;
  if (universe != 0 && package_count > universe) {
    return DecodeStatus::kPackageOutOfRange;
  }
  // Allocation cap: each package id takes 4 payload bytes, so a count
  // the remaining payload cannot hold is hostile (or truncated) and must
  // be refused *before* reserve() — with universe == 0 (client side,
  // corpus tooling) the range check above does not bound it, and a
  // 16-byte header + u32 count could otherwise demand a multi-GB
  // allocation.
  if (package_count > cursor.remaining() / 4) return DecodeStatus::kTruncated;
  out.packages.clear();
  out.packages.reserve(package_count);
  std::uint32_t previous = 0;
  for (std::uint32_t i = 0; i < package_count; ++i) {
    const std::uint32_t id = cursor.u32();
    if (cursor.failed()) return DecodeStatus::kTruncated;
    if (universe != 0 && id >= universe) return DecodeStatus::kPackageOutOfRange;
    if (i > 0 && id <= previous) return DecodeStatus::kUnsortedPackages;
    previous = id;
    out.packages.push_back(id);
  }
  const std::uint16_t constraint_count = cursor.u16();
  if (cursor.failed()) return DecodeStatus::kTruncated;
  out.constraints.clear();
  out.constraints.reserve(constraint_count);
  for (std::uint16_t i = 0; i < constraint_count; ++i) {
    const std::uint8_t op = cursor.u8();
    if (cursor.failed()) return DecodeStatus::kTruncated;
    if (op > static_cast<std::uint8_t>(spec::ConstraintOp::kGe)) {
      return DecodeStatus::kBadConstraintOp;
    }
    spec::VersionConstraint constraint;
    constraint.op = static_cast<spec::ConstraintOp>(op);
    for (std::string* field : {&constraint.package, &constraint.version}) {
      const std::uint16_t length = cursor.u16();
      if (cursor.failed()) return DecodeStatus::kTruncated;
      if (length > kMaxStringBytes) return DecodeStatus::kStringTooLong;
      const auto bytes = cursor.raw(length);
      if (cursor.failed()) return DecodeStatus::kTruncated;
      field->assign(bytes);
    }
    out.constraints.push_back(std::move(constraint));
  }
  return DecodeStatus::kOk;
}

DecodeStatus read_placement(Cursor& cursor, PlacementReply& out) {
  out.client_id = cursor.u64();
  const std::uint8_t kind = cursor.u8();
  const std::uint8_t flags = cursor.u8();
  out.build_retries = cursor.u32();
  out.image = cursor.u64();
  out.image_bytes = cursor.u64();
  out.requested_bytes = cursor.u64();
  out.prep_seconds = cursor.f64();
  const std::uint16_t error_length = cursor.u16();
  if (cursor.failed()) return DecodeStatus::kTruncated;
  if (kind > static_cast<std::uint8_t>(core::RequestKind::kInsert)) {
    return DecodeStatus::kBadKind;
  }
  if (error_length > kMaxStringBytes) return DecodeStatus::kStringTooLong;
  const auto bytes = cursor.raw(error_length);
  if (cursor.failed()) return DecodeStatus::kTruncated;
  out.kind = static_cast<core::RequestKind>(kind);
  out.degraded = (flags & 1u) != 0;
  out.failed = (flags & 2u) != 0;
  out.error.assign(bytes);
  return DecodeStatus::kOk;
}

}  // namespace

std::string encode_submit(std::uint64_t request_id, const SubmitRequest& request) {
  std::string payload;
  put_submit(payload, request);
  return frame_of(FrameType::kSubmit, request_id, payload);
}

std::string encode_batch_submit(std::uint64_t request_id,
                                std::span<const SubmitRequest> requests) {
  std::string payload;
  put_u32(payload, static_cast<std::uint32_t>(requests.size()));
  for (const auto& request : requests) put_submit(payload, request);
  return frame_of(FrameType::kBatchSubmit, request_id, payload);
}

std::string encode_submit_v2(std::uint64_t request_id,
                             const SubmitRequest& request,
                             std::uint64_t session_id,
                             std::uint32_t deadline_ms) {
  std::string payload;
  put_u64(payload, session_id);
  put_u32(payload, deadline_ms);
  put_submit(payload, request);
  return frame_of(FrameType::kSubmit, request_id, payload, kProtocolVersion2);
}

std::string encode_batch_submit_v2(std::uint64_t request_id,
                                   std::span<const SubmitRequest> requests,
                                   std::uint64_t session_id,
                                   std::uint32_t deadline_ms) {
  std::string payload;
  put_u64(payload, session_id);
  put_u32(payload, deadline_ms);
  put_u32(payload, static_cast<std::uint32_t>(requests.size()));
  for (const auto& request : requests) put_submit(payload, request);
  return frame_of(FrameType::kBatchSubmit, request_id, payload,
                  kProtocolVersion2);
}

std::string encode_placement(std::uint64_t request_id, const PlacementReply& reply) {
  std::string out(placement_wire_size(reply), '\0');
  encode_placement_at(out.data(), request_id, reply);
  return out;
}

std::string encode_batch_placement(std::uint64_t request_id,
                                   std::span<const PlacementReply> replies) {
  std::string out(batch_placement_wire_size(replies), '\0');
  encode_batch_placement_at(out.data(), request_id, replies);
  return out;
}

std::string encode_ping(std::uint64_t request_id) {
  return frame_of(FrameType::kPing, request_id, {});
}

std::string encode_pong(std::uint64_t request_id) {
  std::string out(kEmptyFrameWireSize, '\0');
  encode_pong_at(out.data(), request_id);
  return out;
}

std::string encode_stats_request(std::uint64_t request_id) {
  return frame_of(FrameType::kStats, request_id, {});
}

std::string encode_stats_reply(std::uint64_t request_id, const StatsReply& stats) {
  std::string out(kStatsReplyWireSize, '\0');
  encode_stats_reply_at(out.data(), request_id, stats);
  return out;
}

std::string encode_rejected(std::uint64_t request_id, RejectReason reason) {
  std::string out(kStatusFrameWireSize, '\0');
  encode_rejected_at(out.data(), request_id, reason);
  return out;
}

std::string encode_drained(std::uint64_t request_id) {
  std::string out(kEmptyFrameWireSize, '\0');
  encode_drained_at(out.data(), request_id);
  return out;
}

std::string encode_error(std::uint64_t request_id, DecodeStatus status) {
  std::string out(kStatusFrameWireSize, '\0');
  encode_error_at(out.data(), request_id, status);
  return out;
}

std::size_t placement_wire_size(const PlacementReply& reply) {
  return kHeaderSize + placement_payload_size(reply);
}

std::size_t batch_placement_wire_size(std::span<const PlacementReply> replies) {
  std::size_t payload = 4;  // u32 count
  for (const auto& reply : replies) payload += placement_payload_size(reply);
  return kHeaderSize + payload;
}

char* encode_placement_at(char* out, std::uint64_t request_id,
                          const PlacementReply& reply) {
  out = w_header(out, FrameType::kPlacement, request_id,
                 placement_payload_size(reply));
  return w_placement(out, reply);
}

char* encode_batch_placement_at(char* out, std::uint64_t request_id,
                                std::span<const PlacementReply> replies) {
  std::size_t payload = 4;
  for (const auto& reply : replies) payload += placement_payload_size(reply);
  out = w_header(out, FrameType::kBatchPlacement, request_id, payload);
  out = w_u32(out, static_cast<std::uint32_t>(replies.size()));
  for (const auto& reply : replies) out = w_placement(out, reply);
  return out;
}

char* encode_pong_at(char* out, std::uint64_t request_id) {
  return w_header(out, FrameType::kPong, request_id, 0);
}

char* encode_stats_reply_at(char* out, std::uint64_t request_id,
                            const StatsReply& stats) {
  out = w_header(out, FrameType::kStatsReply, request_id,
                 kStatsReplyWireSize - kHeaderSize);
  out = w_u64(out, stats.requests);
  out = w_u64(out, stats.hits);
  out = w_u64(out, stats.merges);
  out = w_u64(out, stats.inserts);
  out = w_u64(out, stats.deletes);
  out = w_u64(out, stats.splits);
  out = w_u64(out, stats.conflict_rejections);
  out = w_u64(out, stats.requested_bytes);
  out = w_u64(out, stats.written_bytes);
  out = w_u64(out, stats.image_count);
  out = w_u64(out, stats.total_bytes);
  out = w_u64(out, stats.unique_bytes);
  out = w_f64(out, stats.container_efficiency_sum);
  return w_f64(out, stats.prep_seconds);
}

char* encode_rejected_at(char* out, std::uint64_t request_id,
                         RejectReason reason) {
  out = w_header(out, FrameType::kRejected, request_id, 1);
  return w_u8(out, static_cast<std::uint8_t>(reason));
}

char* encode_drained_at(char* out, std::uint64_t request_id) {
  return w_header(out, FrameType::kDrained, request_id, 0);
}

char* encode_error_at(char* out, std::uint64_t request_id,
                      DecodeStatus status) {
  out = w_header(out, FrameType::kError, request_id, 1);
  return w_u8(out, static_cast<std::uint8_t>(status));
}

Decoded<FrameHeader> decode_header(std::string_view bytes) {
  Decoded<FrameHeader> out;
  if (bytes.size() < kHeaderSize) {
    out.status = DecodeStatus::kShortHeader;
    return out;
  }
  Cursor cursor(bytes.substr(0, kHeaderSize));
  out.value.magic = cursor.u16();
  out.value.version = cursor.u8();
  const std::uint8_t type = cursor.u8();
  out.value.payload_size = cursor.u32();
  out.value.request_id = cursor.u64();
  if (out.value.magic != kMagic) {
    out.status = DecodeStatus::kBadMagic;
  } else if (out.value.version != kProtocolVersion &&
             out.value.version != kProtocolVersion2) {
    out.status = DecodeStatus::kBadVersion;
  } else if (type < static_cast<std::uint8_t>(FrameType::kSubmit) ||
             type > static_cast<std::uint8_t>(FrameType::kError)) {
    out.status = DecodeStatus::kBadType;
  } else if (out.value.payload_size > kMaxPayloadBytes) {
    out.status = DecodeStatus::kOversized;
  } else {
    out.value.type = static_cast<FrameType>(type);
  }
  return out;
}

Decoded<Frame> decode_frame(std::string_view bytes, std::size_t universe) {
  Decoded<Frame> out;
  const auto header = decode_header(bytes);
  if (!header.ok()) {
    out.status = header.status;
    return out;
  }
  out.value.header = header.value;
  const std::string_view payload = bytes.substr(kHeaderSize);
  if (payload.size() < header.value.payload_size) {
    out.status = DecodeStatus::kTruncated;
    return out;
  }
  if (payload.size() > header.value.payload_size) {
    out.status = DecodeStatus::kTrailingBytes;
    return out;
  }
  Cursor cursor(payload);
  const auto fail = [&](DecodeStatus status) {
    out.status = status;
    return out;
  };
  // v2 extends the two submit payloads with a fixed prefix; every other
  // frame type is version-invariant.
  if (header.value.version == kProtocolVersion2 &&
      (header.value.type == FrameType::kSubmit ||
       header.value.type == FrameType::kBatchSubmit)) {
    out.value.session_id = cursor.u64();
    out.value.deadline_ms = cursor.u32();
    if (cursor.failed()) return fail(DecodeStatus::kTruncated);
  }
  switch (header.value.type) {
    case FrameType::kSubmit: {
      SubmitRequest request;
      const auto status = read_submit(cursor, universe, request);
      if (status != DecodeStatus::kOk) return fail(status);
      out.value.submits.push_back(std::move(request));
      break;
    }
    case FrameType::kBatchSubmit: {
      const std::uint32_t count = cursor.u32();
      if (cursor.failed()) return fail(DecodeStatus::kTruncated);
      if (count > kMaxBatch) return fail(DecodeStatus::kBatchTooLarge);
      out.value.submits.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        SubmitRequest request;
        const auto status = read_submit(cursor, universe, request);
        if (status != DecodeStatus::kOk) return fail(status);
        out.value.submits.push_back(std::move(request));
      }
      break;
    }
    case FrameType::kPlacement: {
      PlacementReply reply;
      const auto status = read_placement(cursor, reply);
      if (status != DecodeStatus::kOk) return fail(status);
      out.value.placements.push_back(std::move(reply));
      break;
    }
    case FrameType::kBatchPlacement: {
      const std::uint32_t count = cursor.u32();
      if (cursor.failed()) return fail(DecodeStatus::kTruncated);
      if (count > kMaxBatch) return fail(DecodeStatus::kBatchTooLarge);
      out.value.placements.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        PlacementReply reply;
        const auto status = read_placement(cursor, reply);
        if (status != DecodeStatus::kOk) return fail(status);
        out.value.placements.push_back(std::move(reply));
      }
      break;
    }
    case FrameType::kStatsReply: {
      StatsReply& stats = out.value.stats;
      stats.requests = cursor.u64();
      stats.hits = cursor.u64();
      stats.merges = cursor.u64();
      stats.inserts = cursor.u64();
      stats.deletes = cursor.u64();
      stats.splits = cursor.u64();
      stats.conflict_rejections = cursor.u64();
      stats.requested_bytes = cursor.u64();
      stats.written_bytes = cursor.u64();
      stats.image_count = cursor.u64();
      stats.total_bytes = cursor.u64();
      stats.unique_bytes = cursor.u64();
      stats.container_efficiency_sum = cursor.f64();
      stats.prep_seconds = cursor.f64();
      if (cursor.failed()) return fail(DecodeStatus::kTruncated);
      break;
    }
    case FrameType::kRejected: {
      const std::uint8_t reason = cursor.u8();
      if (cursor.failed()) return fail(DecodeStatus::kTruncated);
      if (reason < static_cast<std::uint8_t>(RejectReason::kQueueFull) ||
          reason > static_cast<std::uint8_t>(RejectReason::kDraining)) {
        return fail(DecodeStatus::kBadReason);
      }
      out.value.reject_reason = static_cast<RejectReason>(reason);
      break;
    }
    case FrameType::kError: {
      const std::uint8_t status = cursor.u8();
      if (cursor.failed()) return fail(DecodeStatus::kTruncated);
      if (status > static_cast<std::uint8_t>(DecodeStatus::kUnexpectedType)) {
        return fail(DecodeStatus::kBadReason);
      }
      out.value.error_status = static_cast<DecodeStatus>(status);
      break;
    }
    case FrameType::kPing:
    case FrameType::kPong:
    case FrameType::kStats:
    case FrameType::kDrained:
      break;  // empty payloads; trailing bytes already rejected above
  }
  if (cursor.remaining() != 0) return fail(DecodeStatus::kTrailingBytes);
  return out;
}

SubmitRequest to_request(const spec::Specification& spec, std::uint64_t client_id) {
  SubmitRequest request;
  request.client_id = client_id;
  request.packages.reserve(spec.size());
  spec.packages().bits().for_each_set([&request](std::size_t i) {
    request.packages.push_back(static_cast<std::uint32_t>(i));
  });
  request.constraints = spec.constraints();
  return request;
}

spec::Specification to_specification(const SubmitRequest& request,
                                     std::size_t universe) {
  spec::PackageSet packages(universe);
  for (const std::uint32_t id : request.packages) {
    packages.insert(pkg::PackageId{id});
  }
  spec::Specification spec(std::move(packages), "wire");
  for (const auto& constraint : request.constraints) {
    spec.add_constraint(constraint);
  }
  return spec;
}

PlacementReply to_reply(const core::JobPlacement& placement,
                        std::uint64_t client_id) {
  PlacementReply reply;
  reply.client_id = client_id;
  reply.kind = placement.kind;
  reply.degraded = placement.degraded;
  reply.failed = placement.failed;
  reply.build_retries = placement.build_retries;
  reply.image = core::to_value(placement.image);
  reply.image_bytes = placement.image_bytes;
  reply.requested_bytes = placement.requested_bytes;
  reply.prep_seconds = placement.prep_seconds;
  reply.error = placement.error;
  return reply;
}

}  // namespace landlord::serve
