// Wire protocol for the head-node service plane (docs/serve.md).
//
// Frames are length-prefixed binary records: a fixed 16-byte header
// (magic, version, type, payload size, request id) followed by a typed
// payload. All integers are little-endian fixed width; doubles travel as
// their IEEE-754 bit pattern, so a placement decoded on the client is
// bit-identical to the one the server computed — the loopback
// equivalence suite depends on that.
//
// Encoding and decoding are pure functions over byte buffers: nothing in
// this header touches a socket, so the codec corpus tests
// (tests/serve/codec_corpus_test.cpp) can drive the decoder with
// malformed frames under ASan/UBSan without standing up a server. The
// decoder never throws and never reads past the buffer; every malformed
// input maps to a typed DecodeStatus.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "landlord/landlord.hpp"
#include "spec/specification.hpp"
#include "util/bytes.hpp"

namespace landlord::serve {

/// "PL" on the wire (little-endian u16 0x4C50).
inline constexpr std::uint16_t kMagic = 0x4C50;
inline constexpr std::uint8_t kProtocolVersion = 1;
/// Version 2 keeps every v1 frame byte-identical and adds one thing: a
/// 12-byte `[u64 session_id][u32 deadline_ms]` prefix on kSubmit /
/// kBatchSubmit payloads. session_id keys the server's idempotent-retry
/// dedup window (0 = no retry identity); deadline_ms is a relative time
/// budget — workers shed specs whose budget expired before execution
/// (0 = no deadline). Both decoders accept both versions; v1 frames
/// decode with session_id = deadline_ms = 0.
inline constexpr std::uint8_t kProtocolVersion2 = 2;
inline constexpr std::size_t kHeaderSize = 16;
/// Bytes of the v2 submit payload prefix.
inline constexpr std::size_t kSubmitPrefixV2Bytes = 12;
/// Hard cap on a frame payload; anything larger is rejected unread so a
/// hostile length field cannot make the server allocate.
inline constexpr std::uint32_t kMaxPayloadBytes = 8u << 20;
/// Specs per batch frame.
inline constexpr std::uint32_t kMaxBatch = 4096;
/// Constraint name/version strings and error messages.
inline constexpr std::uint32_t kMaxStringBytes = 4096;

enum class FrameType : std::uint8_t {
  kSubmit = 1,          ///< client → server: one container specification
  kPlacement = 2,       ///< server → client: one placement decision
  kBatchSubmit = 3,     ///< client → server: N specifications, one frame
  kBatchPlacement = 4,  ///< server → client: N placements, one frame
  kPing = 5,            ///< client → server: liveness probe (empty)
  kPong = 6,            ///< server → client: probe echo (empty)
  kStats = 7,           ///< client → server: counter snapshot request
  kStatsReply = 8,      ///< server → client: decision-layer counters
  kRejected = 9,        ///< server → client: admission control said no
  kDrained = 10,        ///< server → client: graceful-drain goodbye
  kError = 11,          ///< server → client: your frame failed to decode
};

[[nodiscard]] constexpr const char* to_string(FrameType type) noexcept {
  switch (type) {
    case FrameType::kSubmit: return "submit";
    case FrameType::kPlacement: return "placement";
    case FrameType::kBatchSubmit: return "batch-submit";
    case FrameType::kBatchPlacement: return "batch-placement";
    case FrameType::kPing: return "ping";
    case FrameType::kPong: return "pong";
    case FrameType::kStats: return "stats";
    case FrameType::kStatsReply: return "stats-reply";
    case FrameType::kRejected: return "rejected";
    case FrameType::kDrained: return "drained";
    case FrameType::kError: return "error";
  }
  return "?";
}

/// Why admission control turned a submit away (kRejected payload).
enum class RejectReason : std::uint8_t {
  kQueueFull = 1,  ///< the bounded work queue is at capacity; back off
  kDraining = 2,   ///< the server is draining; no new work is admitted
};

[[nodiscard]] constexpr const char* to_string(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::kQueueFull: return "queue-full";
    case RejectReason::kDraining: return "draining";
  }
  return "?";
}

/// Every way a frame can fail to decode. The decoder returns exactly one
/// of these per malformed input and never crashes — proven file by file
/// against the checked-in corpus (tests/serve/corpus/).
enum class DecodeStatus : std::uint8_t {
  kOk = 0,
  kShortHeader,        ///< fewer than kHeaderSize bytes
  kBadMagic,           ///< first two bytes are not "PL"
  kBadVersion,         ///< protocol version this build does not speak
  kBadType,            ///< FrameType byte outside the enum
  kOversized,          ///< payload length exceeds kMaxPayloadBytes
  kTruncated,          ///< payload shorter than a field needs
  kTrailingBytes,      ///< payload longer than its fields consume
  kBatchTooLarge,      ///< batch count exceeds kMaxBatch
  kPackageOutOfRange,  ///< package id >= the repository universe
  kUnsortedPackages,   ///< package ids not strictly increasing
  kStringTooLong,      ///< constraint/error string exceeds kMaxStringBytes
  kBadConstraintOp,    ///< constraint op byte outside the enum
  kBadKind,            ///< placement kind byte outside RequestKind
  kBadReason,          ///< reject reason byte outside RejectReason
  kUnexpectedType,     ///< well-formed frame the receiver cannot serve
};

[[nodiscard]] constexpr const char* to_string(DecodeStatus status) noexcept {
  switch (status) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kShortHeader: return "short-header";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadVersion: return "bad-version";
    case DecodeStatus::kBadType: return "bad-type";
    case DecodeStatus::kOversized: return "oversized";
    case DecodeStatus::kTruncated: return "truncated";
    case DecodeStatus::kTrailingBytes: return "trailing-bytes";
    case DecodeStatus::kBatchTooLarge: return "batch-too-large";
    case DecodeStatus::kPackageOutOfRange: return "package-out-of-range";
    case DecodeStatus::kUnsortedPackages: return "unsorted-packages";
    case DecodeStatus::kStringTooLong: return "string-too-long";
    case DecodeStatus::kBadConstraintOp: return "bad-constraint-op";
    case DecodeStatus::kBadKind: return "bad-kind";
    case DecodeStatus::kBadReason: return "bad-reason";
    case DecodeStatus::kUnexpectedType: return "unexpected-type";
  }
  return "?";
}

/// Decoder result: `value` is meaningful iff status == kOk.
template <typename T>
struct Decoded {
  DecodeStatus status = DecodeStatus::kOk;
  T value{};

  [[nodiscard]] bool ok() const noexcept { return status == DecodeStatus::kOk; }
};

/// The fixed 16-byte frame prelude.
struct FrameHeader {
  std::uint16_t magic = kMagic;
  std::uint8_t version = kProtocolVersion;
  FrameType type = FrameType::kPing;
  std::uint32_t payload_size = 0;
  /// Client-chosen correlation id, echoed verbatim in every response —
  /// pipelined clients match replies to requests with it.
  std::uint64_t request_id = 0;
};

/// One container-specification request. `packages` carries the
/// dependency-closed package-id set (strictly increasing ids into the
/// repository universe); the server does not re-close it. `client_id`
/// identifies the logical submitter (the load generator synthesizes
/// millions of them) and is echoed in the placement.
struct SubmitRequest {
  std::uint64_t client_id = 0;
  std::vector<std::uint32_t> packages;
  std::vector<spec::VersionConstraint> constraints;
};

/// One placement decision — core::JobPlacement, flattened for the wire.
struct PlacementReply {
  std::uint64_t client_id = 0;
  core::RequestKind kind = core::RequestKind::kHit;
  bool degraded = false;
  bool failed = false;
  std::uint32_t build_retries = 0;
  std::uint64_t image = 0;
  util::Bytes image_bytes = 0;
  util::Bytes requested_bytes = 0;
  double prep_seconds = 0.0;
  std::string error;

  [[nodiscard]] bool operator==(const PlacementReply&) const = default;
};

/// Decision-layer counter snapshot (kStatsReply payload).
struct StatsReply {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t merges = 0;
  std::uint64_t inserts = 0;
  std::uint64_t deletes = 0;
  std::uint64_t splits = 0;
  std::uint64_t conflict_rejections = 0;
  util::Bytes requested_bytes = 0;
  util::Bytes written_bytes = 0;
  std::uint64_t image_count = 0;
  util::Bytes total_bytes = 0;
  util::Bytes unique_bytes = 0;
  double container_efficiency_sum = 0.0;
  double prep_seconds = 0.0;

  [[nodiscard]] bool operator==(const StatsReply&) const = default;
};

/// A fully decoded frame. Which members carry data depends on
/// header.type: submits for kSubmit (one entry) / kBatchSubmit,
/// placements for kPlacement / kBatchPlacement, stats for kStatsReply,
/// reject_reason for kRejected, error_status for kError. kPing / kPong /
/// kStats / kDrained have empty payloads.
struct Frame {
  FrameHeader header;
  std::vector<SubmitRequest> submits;
  std::vector<PlacementReply> placements;
  StatsReply stats;
  RejectReason reject_reason = RejectReason::kQueueFull;
  DecodeStatus error_status = DecodeStatus::kOk;
  /// v2 submit prefix (zero on v1 frames): retry-identity session and
  /// relative deadline budget in milliseconds.
  std::uint64_t session_id = 0;
  std::uint32_t deadline_ms = 0;
};

// ---- Encoding (pure; each returns one complete frame) ----

[[nodiscard]] std::string encode_submit(std::uint64_t request_id,
                                        const SubmitRequest& request);
[[nodiscard]] std::string encode_batch_submit(
    std::uint64_t request_id, std::span<const SubmitRequest> requests);
/// v2 submits: same payload as v1 preceded by the
/// [session_id][deadline_ms] prefix, header version byte = 2.
[[nodiscard]] std::string encode_submit_v2(std::uint64_t request_id,
                                           const SubmitRequest& request,
                                           std::uint64_t session_id,
                                           std::uint32_t deadline_ms);
[[nodiscard]] std::string encode_batch_submit_v2(
    std::uint64_t request_id, std::span<const SubmitRequest> requests,
    std::uint64_t session_id, std::uint32_t deadline_ms);
[[nodiscard]] std::string encode_placement(std::uint64_t request_id,
                                           const PlacementReply& reply);
[[nodiscard]] std::string encode_batch_placement(
    std::uint64_t request_id, std::span<const PlacementReply> replies);
[[nodiscard]] std::string encode_ping(std::uint64_t request_id);
[[nodiscard]] std::string encode_pong(std::uint64_t request_id);
[[nodiscard]] std::string encode_stats_request(std::uint64_t request_id);
[[nodiscard]] std::string encode_stats_reply(std::uint64_t request_id,
                                             const StatsReply& stats);
[[nodiscard]] std::string encode_rejected(std::uint64_t request_id,
                                          RejectReason reason);
[[nodiscard]] std::string encode_drained(std::uint64_t request_id);
[[nodiscard]] std::string encode_error(std::uint64_t request_id,
                                       DecodeStatus status);

// ---- Sized encoding (single-pass, for the zero-copy reply path) ----
//
// Every server-emitted reply type has an exact wire-size function and an
// in-place writer that emits the complete frame (header + payload) into
// a caller-provided buffer of exactly that many bytes, returning one past
// the last byte written. The payload length is known before the first
// byte is laid down, so the header is written once — no intermediate
// payload string, no length patching. The string encoders above are thin
// wrappers over these writers, so both paths emit byte-identical frames;
// the protocol suite pins that equivalence.

/// kPing / kPong / kStats / kDrained: header only.
inline constexpr std::size_t kEmptyFrameWireSize = kHeaderSize;
/// kRejected / kError: header plus one status byte.
inline constexpr std::size_t kStatusFrameWireSize = kHeaderSize + 1;
/// kStatsReply: header plus twelve u64 and two f64 fields.
inline constexpr std::size_t kStatsReplyWireSize = kHeaderSize + 112;

[[nodiscard]] std::size_t placement_wire_size(const PlacementReply& reply);
[[nodiscard]] std::size_t batch_placement_wire_size(
    std::span<const PlacementReply> replies);

char* encode_placement_at(char* out, std::uint64_t request_id,
                          const PlacementReply& reply);
char* encode_batch_placement_at(char* out, std::uint64_t request_id,
                                std::span<const PlacementReply> replies);
char* encode_pong_at(char* out, std::uint64_t request_id);
char* encode_stats_reply_at(char* out, std::uint64_t request_id,
                            const StatsReply& stats);
char* encode_rejected_at(char* out, std::uint64_t request_id,
                         RejectReason reason);
char* encode_drained_at(char* out, std::uint64_t request_id);
char* encode_error_at(char* out, std::uint64_t request_id,
                      DecodeStatus status);

// ---- Decoding (pure; never throws, never over-reads) ----

/// Decodes just the 16-byte prelude: magic, version, type and payload
/// bounds are validated; the payload is not touched. Servers call this
/// first so an oversized length is refused before any payload read.
[[nodiscard]] Decoded<FrameHeader> decode_header(std::string_view bytes);

/// Decodes one complete frame (header + payload). `universe` is the
/// repository package-universe size used to range-check submit package
/// ids; pass 0 to skip the range check (client side, corpus tooling).
[[nodiscard]] Decoded<Frame> decode_frame(std::string_view bytes,
                                          std::size_t universe);

// ---- Bridges to the core types ----

/// Flattens a specification for the wire.
[[nodiscard]] SubmitRequest to_request(const spec::Specification& spec,
                                       std::uint64_t client_id);

/// Rebuilds the specification a decoded submit names. The decoder has
/// already range-checked the ids against `universe`.
[[nodiscard]] spec::Specification to_specification(const SubmitRequest& request,
                                                   std::size_t universe);

/// Flattens a placement for the wire.
[[nodiscard]] PlacementReply to_reply(const core::JobPlacement& placement,
                                      std::uint64_t client_id);

}  // namespace landlord::serve
