#include "serve/retry.hpp"

#include <chrono>
#include <string>
#include <thread>
#include <utility>

namespace landlord::serve {

ResilientClient::ResilientClient(std::uint16_t port, RetryPolicy policy,
                                 std::uint64_t seed)
    : port_(port), policy_(std::move(policy)), rng_(seed) {
  // 0 is the "no dedup identity" sentinel on the wire; never draw it.
  do {
    session_id_ = rng_();
  } while (session_id_ == 0);
}

bool ResilientClient::ensure_connected() {
  if (client_.connected()) return true;
  client_ = Client{};
  if (!client_.connect(port_).ok()) return false;
  ++tally_.connects;
  return true;
}

void ResilientClient::back_off(std::uint32_t attempt) {
  const double modelled = policy_.backoff.delay_for(attempt, rng_);
  ++tally_.backoffs;
  tally_.backoff_seconds += modelled;
  const double real = modelled * policy_.backoff_scale;
  if (real > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(real));
  }
}

util::Result<Frame> ResilientClient::round_trip(std::string_view wire,
                                                std::uint64_t request_id,
                                                FrameType expected) {
  std::string last_error = "no attempt made";
  for (std::uint32_t attempt = 0;
       attempt <= policy_.backoff.max_retries; ++attempt) {
    if (attempt > 0) {
      ++tally_.reconnects;
      ++tally_.retransmits;
      back_off(attempt - 1);
    }
    if (!ensure_connected()) {
      last_error = "connect failed";
      continue;
    }
    if (!client_.send_frame(wire)) {
      last_error = "send failed";
      client_.close();
      continue;
    }
    // Drain frames until the one matching our id: a reply to an earlier
    // attempt of this same identity is also acceptable (the dedup window
    // makes them interchangeable), and anything undecodable or stale
    // means the connection is suspect — drop it and retransmit.
    for (;;) {
      Decoded<Frame> frame = client_.recv_frame_within(policy_.reply_timeout_ms);
      if (!frame.ok()) {
        last_error = std::string{"recv failed: "} + to_string(frame.status);
        client_.close();
        break;
      }
      if (frame.value.header.request_id != request_id) continue;
      const FrameType type = frame.value.header.type;
      if (type == FrameType::kRejected) {
        // Admission rejection is not a placement; the server aborted the
        // dedup claim, so a retransmit genuinely re-attempts.
        last_error = std::string{"rejected: "} +
                     to_string(frame.value.reject_reason);
        break;
      }
      if (type != expected) {
        last_error = std::string{"unexpected reply type: "} + to_string(type);
        client_.close();
        break;
      }
      return std::move(frame.value);
    }
  }
  ++tally_.exhausted;
  return util::Error{std::string{"retries exhausted: "} + last_error};
}

util::Result<PlacementReply> ResilientClient::submit(
    const SubmitRequest& request) {
  const std::uint64_t id = next_request_id();
  const std::string wire =
      encode_submit_v2(id, request, session_id_, policy_.deadline_ms);
  util::Result<Frame> reply = round_trip(wire, id, FrameType::kPlacement);
  if (!reply.ok()) return reply.error();
  return std::move(reply.value().placements.front());
}

util::Result<std::vector<PlacementReply>> ResilientClient::submit_batch(
    std::span<const SubmitRequest> requests) {
  const std::uint64_t id = next_request_id();
  const std::string wire =
      encode_batch_submit_v2(id, requests, session_id_, policy_.deadline_ms);
  util::Result<Frame> reply = round_trip(wire, id, FrameType::kBatchPlacement);
  if (!reply.ok()) return reply.error();
  return std::move(reply.value().placements);
}

void ResilientClient::disconnect() { client_.close(); }

}  // namespace landlord::serve
