// Reconnecting, idempotently-retrying client for the serve plane.
//
// ResilientClient wraps a serve::Client with the two halves of
// client-side network fault tolerance:
//
//   reconnect-with-backoff   any send/recv failure tears the socket down
//                            and re-dials, sleeping per
//                            fault::BackoffPolicy (scaled by
//                            `backoff_scale` so tests run in
//                            milliseconds while the modelled schedule
//                            stays the policy's);
//   idempotent retry         every submit carries a protocol-v2
//                            (session_id, request_id) identity that is
//                            REUSED verbatim across retransmits. If the
//                            original executed but its reply was lost on
//                            the wire, the server's dedup window answers
//                            the retransmit from the stored reply — the
//                            specs are never placed twice.
//
// The session_id is drawn once per ResilientClient from its seed, so a
// chaos run is replayable: same seed, same identities, same backoff
// jitter. Not thread-safe (same contract as Client).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fault/fault.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace landlord::serve {

struct RetryPolicy {
  /// Backoff schedule between reconnect attempts. max_retries bounds the
  /// extra attempts per operation (first try + max_retries retransmits).
  fault::BackoffPolicy backoff;
  /// Real-sleep multiplier applied to the modelled delay (tests use
  /// ~1e-3 so a chaos suite does not actually wait seconds). 0 disables
  /// sleeping entirely while still recording the modelled schedule.
  double backoff_scale = 1.0;
  /// Per-attempt reply wait; -1 blocks forever (only the connection
  /// dying can then trigger a retransmit).
  int reply_timeout_ms = 2000;
  /// Deadline stamped into every v2 submit (0 = none). Relative budget,
  /// restarted on each retransmit.
  std::uint32_t deadline_ms = 0;
};

/// What the client actually did, for chaos-suite assertions.
struct RetryTally {
  std::uint64_t connects = 0;     ///< successful dials (incl. the first)
  std::uint64_t reconnects = 0;   ///< re-dials after a failure
  std::uint64_t retransmits = 0;  ///< submit frames sent beyond the first
  std::uint64_t backoffs = 0;     ///< waits taken between attempts
  double backoff_seconds = 0.0;   ///< modelled (unscaled) waiting
  std::uint64_t exhausted = 0;    ///< operations that ran out of attempts
};

class ResilientClient {
 public:
  /// `seed` fixes the session identity and all backoff jitter.
  ResilientClient(std::uint16_t port, RetryPolicy policy, std::uint64_t seed);

  ResilientClient(const ResilientClient&) = delete;
  ResilientClient& operator=(const ResilientClient&) = delete;

  /// One spec, placed exactly once. Retries transparently across resets,
  /// stalls and lost replies; an Error means every attempt failed.
  [[nodiscard]] util::Result<PlacementReply> submit(
      const SubmitRequest& request);

  /// N specs in one frame, all-or-nothing under the same identity.
  [[nodiscard]] util::Result<std::vector<PlacementReply>> submit_batch(
      std::span<const SubmitRequest> requests);

  /// Drops the connection (the next submit re-dials). For tests that
  /// force a mid-pipeline reconnect.
  void disconnect();

  [[nodiscard]] const RetryTally& tally() const noexcept { return tally_; }
  [[nodiscard]] std::uint64_t session_id() const noexcept {
    return session_id_;
  }
  /// Exposed so tests can pre-wind or pin identities.
  [[nodiscard]] std::uint64_t next_request_id() noexcept {
    return next_request_id_++;
  }

 private:
  /// Ensures a live connection, dialling if needed. False when the dial
  /// itself fails (caller backs off and retries).
  [[nodiscard]] bool ensure_connected();
  /// Sleeps the scaled backoff for `attempt` and records the modelled
  /// wait.
  void back_off(std::uint32_t attempt);
  /// Sends `wire` and waits for the matching reply, under one identity.
  [[nodiscard]] util::Result<Frame> round_trip(std::string_view wire,
                                               std::uint64_t request_id,
                                               FrameType expected);

  std::uint16_t port_;
  RetryPolicy policy_;
  util::Rng rng_;
  std::uint64_t session_id_;
  std::uint64_t next_request_id_ = 1;
  Client client_;
  RetryTally tally_;
};

}  // namespace landlord::serve
