#include "serve/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "serve/buffer.hpp"

namespace landlord::serve {

namespace {

/// One recv(2)'s worth of pipelined traffic; bigger frames widen the
/// read to land in one call.
constexpr std::size_t kReadChunkBytes = 64 * 1024;

}  // namespace

Server::Server(core::Landlord& landlord, ServerConfig config)
    : landlord_(&landlord),
      config_(std::move(config)),
      dedup_(config_.dedup_window) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.max_queue == 0) config_.max_queue = 1;
  if (const char* env = std::getenv("LANDLORD_SERVE_PIPELINE_DEPTH")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') {
      config_.pipeline_depth = static_cast<std::size_t>(v);
    }
  }
  // A sequential decision layer (shards <= 1) is not safe under
  // concurrent submit(); serialise it so any worker count is correct.
  serialize_submits_ = landlord_->sharded() == nullptr;
}

Server::~Server() { stop(); }

util::Result<bool> Server::start() {
  if (started_.exchange(true)) return util::Error{"server already started"};

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return util::Error{std::string{"socket: "} + std::strerror(errno)};
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::string why = std::string{"bind: "} + std::strerror(errno);
    ::close(fd);
    return util::Error{why};
  }
  if (::listen(fd, config_.backlog) < 0) {
    std::string why = std::string{"listen: "} + std::strerror(errno);
    ::close(fd);
    return util::Error{why};
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    std::string why = std::string{"getsockname: "} + std::strerror(errno);
    ::close(fd);
    return util::Error{why};
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_.store(fd, std::memory_order_release);

  pool_ = std::make_unique<util::ThreadPool>(config_.workers);
  acceptor_ = std::thread([this] { accept_loop(); });
  return true;
}

void Server::accept_loop() {
  while (!draining_.load(std::memory_order_acquire) &&
         !stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_.load(std::memory_order_acquire), nullptr,
                      nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by drain()/stop()
    }
    if (draining_.load(std::memory_order_acquire)) {
      // Drain won the race with accept(2): this connection arrived after
      // drain began and must not be served.
      ::close(fd);
      break;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (config_.so_sndbuf > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config_.so_sndbuf,
                   sizeof(config_.so_sndbuf));
    }

    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    Connection* raw = connection.get();
    bump(tallies_.connections_accepted, hooks_.connections_accepted);
    if (hooks_.trace != nullptr) {
      hooks_.trace->record(
          {.kind = obs::EventKind::kServeConnection, .detail = "accepted"});
    }
    {
      std::scoped_lock lock(connections_mutex_);
      reap_closed_connections();
      connections_.push_back(std::move(connection));
    }
    raw->reader = std::thread([this, raw] { reader_loop(raw); });
  }
}

void Server::reap_closed_connections() {
  // Caller holds connections_mutex_. Joins readers that have exited on
  // their own (client hung up) so long-lived servers don't accumulate
  // dead threads.
  std::erase_if(connections_, [](const std::unique_ptr<Connection>& c) {
    if (!c->done.load(std::memory_order_acquire)) return false;
    // The reader is gone, but a worker may still hold this Connection*
    // for an admitted frame; freeing it now would be use-after-free.
    if (c->inflight.load(std::memory_order_acquire) != 0) return false;
    if (c->reader.joinable()) c->reader.join();
    return true;
  });
}

void Server::reader_loop(Connection* connection) {
  const std::size_t universe = landlord_->repository().size();
  RollingBuffer rx;
  bool alive = true;
  while (alive) {
    // Drain every complete frame already buffered before reading again —
    // a pipelined burst that arrived in one recv is parsed in one pass,
    // and consume() never moves bytes.
    while (alive) {
      const std::string_view buffered = rx.view();
      if (buffered.size() < kHeaderSize) break;
      const Decoded<FrameHeader> header =
          decode_header(buffered.substr(0, kHeaderSize));
      if (!header.ok()) {
        // Framing is unrecoverable (bad magic/version/length): report the
        // typed error and hang up rather than resynchronise on garbage.
        bump(tallies_.decode_errors, hooks_.decode_errors);
        send_reply(connection, kStatusFrameWireSize, [&](char* out) {
          return encode_error_at(out, 0, header.status);
        });
        alive = false;
        break;
      }
      const std::size_t total = kHeaderSize + header.value.payload_size;
      if (buffered.size() < total) break;  // frame still arriving
      Decoded<Frame> frame = decode_frame(buffered.substr(0, total), universe);
      rx.consume(total);
      bump(tallies_.frames_in, hooks_.frames_in);
      if (!frame.ok()) {
        // Frame boundaries are intact (the header told us the length), so
        // a malformed payload only poisons this frame, not the stream.
        bump(tallies_.decode_errors, hooks_.decode_errors);
        send_reply(connection, kStatusFrameWireSize, [&](char* out) {
          return encode_error_at(out, header.value.request_id, frame.status);
        });
        continue;
      }
      alive = handle_frame(connection, std::move(frame.value));
    }
    if (!alive) break;
    // Bulk receive: enough for the rest of a known pending frame, and
    // never less than one chunk so back-to-back small frames coalesce.
    std::size_t want = kReadChunkBytes;
    const std::string_view buffered = rx.view();
    if (buffered.size() >= kHeaderSize) {
      // The header decoded cleanly above (a bad one closed the loop), so
      // this re-decode is just reading the length back out.
      const Decoded<FrameHeader> header =
          decode_header(buffered.substr(0, kHeaderSize));
      const std::size_t total = kHeaderSize + header.value.payload_size;
      want = std::max(want, total - buffered.size());
    }
    rx.ensure_writable(want);
    // Read idle timeout: a peer that goes silent (including a slow-loris
    // holding a half-sent frame open) is disconnected after the budget
    // instead of pinning this reader forever. The pipeline wait above is
    // exempt — a backpressured client is making progress, not idling.
    if (config_.read_idle_timeout_ms > 0) {
      const net::IoStatus readable = net::wait_readable(
          connection->fd, static_cast<int>(config_.read_idle_timeout_ms));
      if (readable == net::IoStatus::kTimeout) {
        bump(tallies_.net_read_timeouts, hooks_.net_read_timeouts);
        if (hooks_.trace != nullptr) {
          hooks_.trace->record({.kind = obs::EventKind::kServeNetTimeout,
                                .detail = "read-idle"});
        }
        break;
      }
      if (readable != net::IoStatus::kOk) break;
    }
    const ssize_t r = ::recv(connection->fd, rx.write_ptr(), rx.writable(), 0);
    if (r > 0) {
      rx.commit(static_cast<std::size_t>(r));
      bump(tallies_.bytes_in, hooks_.bytes_in, static_cast<std::uint64_t>(r));
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    break;  // peer closed, shutdown(), or hard error
  }
  ::shutdown(connection->fd, SHUT_RDWR);
  bump(tallies_.connections_closed, hooks_.connections_closed);
  if (hooks_.trace != nullptr) {
    hooks_.trace->record(
        {.kind = obs::EventKind::kServeConnection, .detail = "closed"});
  }
  connection->done.store(true, std::memory_order_release);
}

bool Server::handle_frame(Connection* connection, Frame frame) {
  const std::uint64_t request_id = frame.header.request_id;
  switch (frame.header.type) {
    case FrameType::kPing:
      bump(tallies_.pings, hooks_.pings);
      send_reply(connection, kEmptyFrameWireSize, [&](char* out) {
        return encode_pong_at(out, request_id);
      });
      return true;
    case FrameType::kStats: {
      bump(tallies_.stats_requests, hooks_.stats_requests);
      const StatsReply stats = stats_snapshot();
      send_reply(connection, kStatsReplyWireSize, [&](char* out) {
        return encode_stats_reply_at(out, request_id, stats);
      });
      return true;
    }
    case FrameType::kSubmit:
    case FrameType::kBatchSubmit: {
      const std::size_t specs = frame.submits.size();
      // Idempotent retry (v2): claim the (session_id, request_id)
      // identity before admission. A duplicate of a finished original is
      // answered from the window — the specs are never placed twice; a
      // duplicate racing an in-flight original parks until it resolves
      // (bounded: the owner always completes or aborts).
      const DedupWindow::Key dedup_key{frame.session_id, request_id};
      bool dedup_claimed = false;
      if (config_.dedup_window > 0 && frame.session_id != 0) {
        FrameType reply_type = FrameType::kPlacement;
        std::vector<PlacementReply> window_replies;
        for (;;) {
          const DedupWindow::Claim claim =
              dedup_.claim(dedup_key, &reply_type, &window_replies);
          if (claim == DedupWindow::Claim::kNew) {
            dedup_claimed = true;
            break;
          }
          if (claim == DedupWindow::Claim::kInFlight &&
              !dedup_.wait(dedup_key, &reply_type, &window_replies)) {
            continue;  // the original was rejected; this retry re-attempts
          }
          bump(tallies_.dedup_hits, hooks_.dedup_hits);
          if (hooks_.trace != nullptr) {
            hooks_.trace->record({.kind = obs::EventKind::kServeDedup,
                                  .aux = window_replies.size(),
                                  .detail = "hit"});
          }
          reply_from_window(connection, request_id, reply_type,
                            window_replies);
          return true;
        }
      }
      // Deadline budget (v2): stamped against the server clock at
      // arrival, so queueing time counts against it.
      std::optional<std::chrono::steady_clock::time_point> expiry;
      if (frame.deadline_ms > 0) {
        expiry = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(frame.deadline_ms);
      }
      // Per-connection pipelining: park this reader (read-side
      // backpressure via TCP flow control) until the connection has room
      // for `specs` more in-flight specs. Never rejects.
      acquire_pipeline(connection, specs);
      // Admission control: reserve the slots first, then check the drain
      // flag, so drain() can never observe an empty queue while a reader
      // is between "admitted" and "handed to the pool".
      outstanding_frames_.fetch_add(1);
      const std::size_t prev = outstanding_specs_.fetch_add(specs);
      const std::size_t depth = prev + specs;
      if (draining_.load(std::memory_order_acquire)) {
        release_slots(specs);
        release_pipeline(connection, specs);
        if (dedup_claimed) dedup_.abort(dedup_key);
        bump(tallies_.rejected_draining, hooks_.rejected_draining);
        bump(tallies_.rejected_requests, hooks_.rejected_requests, specs);
        if (hooks_.trace != nullptr) {
          hooks_.trace->record({.kind = obs::EventKind::kServeOverload,
                                .aux = specs,
                                .detail = "draining"});
        }
        send_reply(connection, kStatusFrameWireSize, [&](char* out) {
          return encode_rejected_at(out, request_id, RejectReason::kDraining);
        });
        return true;
      }
      // Spec-granular shed: a batch frame costs its spec count, so batch
      // and single-spec clients hit the same ceiling. `prev == 0` admits
      // an oversize batch alone instead of starving it forever.
      if (specs > 0 && depth > config_.max_queue && prev != 0) {
        release_slots(specs);
        release_pipeline(connection, specs);
        if (dedup_claimed) dedup_.abort(dedup_key);
        bump(tallies_.rejected_queue_full, hooks_.rejected_queue_full);
        bump(tallies_.rejected_requests, hooks_.rejected_requests, specs);
        if (hooks_.trace != nullptr) {
          hooks_.trace->record({.kind = obs::EventKind::kServeOverload,
                                .aux = specs,
                                .detail = "queue-full"});
        }
        send_reply(connection, kStatusFrameWireSize, [&](char* out) {
          return encode_rejected_at(out, request_id, RejectReason::kQueueFull);
        });
        return true;
      }
      // Admitted. The peak tally and both gauges are published from the
      // same accounting: the peak only ever rises (max_to), and the depth
      // gauge moves by the exact deltas the atomics move by, so a stale
      // snapshot can never overwrite a newer value.
      std::uint64_t peak =
          tallies_.queue_depth_peak.load(std::memory_order_relaxed);
      while (depth > peak &&
             !tallies_.queue_depth_peak.compare_exchange_weak(
                 peak, depth, std::memory_order_relaxed)) {
      }
      if (hooks_.queue_depth_peak != nullptr) {
        hooks_.queue_depth_peak->max_to(static_cast<double>(depth));
      }
      if (hooks_.queue_depth != nullptr) {
        hooks_.queue_depth->add(static_cast<double>(specs));
      }
      bump(tallies_.frames_admitted, hooks_.frames_admitted);
      bump(tallies_.specs_admitted, hooks_.specs_admitted, specs);
      if (frame.header.type == FrameType::kBatchSubmit) {
        bump(tallies_.batches, hooks_.batches);
      }
      if (hooks_.batch_size != nullptr) {
        hooks_.batch_size->observe(static_cast<double>(specs));
      }
      connection->inflight.fetch_add(1, std::memory_order_acq_rel);
      auto task = [this, connection, expiry, dedup_claimed,
                   moved = std::move(frame)]() mutable {
        process_submit(connection, moved, expiry, dedup_claimed);
        const std::size_t n = moved.submits.size();
        // The slots are released only after the reply is on the
        // connection's write queue, so drain() returning means every
        // admitted frame was answered (the queue's writer flushes it
        // before going idle).
        release_slots(n);
        if (hooks_.queue_depth != nullptr) {
          hooks_.queue_depth->add(-static_cast<double>(n));
        }
        release_pipeline(connection, n);
        // Last touch of `connection` in this task: after this, a reaped
        // reader's connection may be freed.
        connection->inflight.fetch_sub(1, std::memory_order_acq_rel);
      };
      // The future is intentionally dropped: completion is tracked by
      // outstanding_frames_, and the task cannot throw.
      (void)pool_->submit(std::move(task));
      return true;
    }
    default:
      // Well-formed frame of a type only servers send (placement, pong,
      // stats-reply, ...): a confused peer. Tell it and hang up.
      bump(tallies_.decode_errors, hooks_.decode_errors);
      send_reply(connection, kStatusFrameWireSize, [&](char* out) {
        return encode_error_at(out, request_id, DecodeStatus::kUnexpectedType);
      });
      return false;
  }
}

void Server::process_submit(
    Connection* connection, const Frame& frame,
    std::optional<std::chrono::steady_clock::time_point> expiry,
    bool dedup_claimed) {
  if (process_hook_) process_hook_();
  const std::size_t universe = landlord_->repository().size();
  const auto started = std::chrono::steady_clock::now();

  std::vector<PlacementReply> replies;
  replies.reserve(frame.submits.size());
  std::size_t shed = 0;
  for (const SubmitRequest& request : frame.submits) {
    // Deadline-aware execution: a spec whose budget ran out while it
    // queued gets a failed reply instead of a placement the client has
    // already given up on — the decision layer never sees it.
    if (expiry && std::chrono::steady_clock::now() > *expiry) {
      PlacementReply expired;
      expired.client_id = request.client_id;
      expired.failed = true;
      expired.error = "deadline-expired";
      replies.push_back(std::move(expired));
      ++shed;
      continue;
    }
    spec::Specification spec = to_specification(request, universe);
    core::JobPlacement placement;
    if (serialize_submits_) {
      std::scoped_lock lock(sequential_submit_mutex_);
      placement = landlord_->submit(spec);
    } else {
      placement = landlord_->submit(spec);
    }
    switch (placement.kind) {
      case core::RequestKind::kHit:
        bump(tallies_.placements_hit, hooks_.placements_hit);
        break;
      case core::RequestKind::kMerge:
        bump(tallies_.placements_merge, hooks_.placements_merge);
        break;
      case core::RequestKind::kInsert:
        bump(tallies_.placements_insert, hooks_.placements_insert);
        break;
    }
    if (placement.degraded) {
      bump(tallies_.placements_degraded, hooks_.placements_degraded);
    }
    if (placement.failed) {
      bump(tallies_.placements_failed, hooks_.placements_failed);
    }
    replies.push_back(to_reply(placement, request.client_id));
  }
  bump(tallies_.requests_served, hooks_.requests_served,
       replies.size() - shed);
  if (shed > 0) {
    bump(tallies_.specs_shed_expired, hooks_.specs_shed_expired, shed);
    if (hooks_.trace != nullptr) {
      hooks_.trace->record({.kind = obs::EventKind::kServeDeadlineShed,
                            .aux = shed,
                            .detail = "deadline-expired"});
    }
  }

  const std::uint64_t request_id = frame.header.request_id;
  const FrameType reply_type = frame.header.type == FrameType::kSubmit
                                   ? FrameType::kPlacement
                                   : FrameType::kBatchPlacement;
  if (reply_type == FrameType::kPlacement) {
    const PlacementReply& reply = replies.front();
    send_reply(connection, placement_wire_size(reply), [&](char* out) {
      return encode_placement_at(out, request_id, reply);
    });
  } else {
    send_reply(connection, batch_placement_wire_size(replies), [&](char* out) {
      return encode_batch_placement_at(out, request_id, replies);
    });
  }
  if (dedup_claimed) {
    // Publish after the reply hits the write path: a retry claiming now
    // sees kDone and is answered from the window instead of re-placing.
    const std::size_t evicted = dedup_.complete(
        {frame.session_id, request_id}, reply_type, std::move(replies));
    if (evicted > 0) {
      bump(tallies_.dedup_evictions, hooks_.dedup_evictions, evicted);
    }
  }
  bump(tallies_.frames_processed, hooks_.frames_processed);
  if (hooks_.process_seconds != nullptr) {
    hooks_.process_seconds->observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count());
  }
}

void Server::reply_from_window(Connection* connection,
                               std::uint64_t request_id, FrameType reply_type,
                               const std::vector<PlacementReply>& replies) {
  if (reply_type == FrameType::kPlacement) {
    const PlacementReply& reply = replies.front();
    send_reply(connection, placement_wire_size(reply), [&](char* out) {
      return encode_placement_at(out, request_id, reply);
    });
  } else {
    send_reply(connection, batch_placement_wire_size(replies), [&](char* out) {
      return encode_batch_placement_at(out, request_id, replies);
    });
  }
}

template <typename Encode>
void Server::send_reply(Connection* connection, std::size_t size,
                        Encode&& encode) {
  std::unique_lock<std::mutex> lock(connection->write_mutex);
  if (connection->write_failed) return;
  char* out = static_cast<char*>(
      connection->reply_arena.allocate(size, alignof(std::max_align_t)));
  [[maybe_unused]] char* end = encode(out);
  assert(end == out + size);
  connection->reply_pending.push_back({out, size});
  if (connection->writer_active) return;  // the active writer takes it
  connection->writer_active = true;
  flush_replies(connection, lock);
}

void Server::flush_replies(Connection* connection,
                           std::unique_lock<std::mutex>& lock) {
  // Caller holds `lock` and claimed writer_active. Replies queued while
  // the socket write is in flight are picked up by the next iteration —
  // all of them in one gathered write — so a burst of worker completions
  // on one connection costs one syscall, not one per frame, and workers
  // never block on the socket behind this writer.
  while (!connection->reply_pending.empty() && !connection->write_failed) {
    connection->reply_writing.clear();
    std::swap(connection->reply_writing, connection->reply_pending);
    std::size_t bytes = 0;
    for (const net::ConstBuffer& b : connection->reply_writing) {
      bytes += b.size;
    }
    const std::size_t frames = connection->reply_writing.size();
    lock.unlock();
    const int stall_ms = config_.write_stall_timeout_ms == 0
                             ? -1
                             : static_cast<int>(config_.write_stall_timeout_ms);
    const net::IoStatus status =
        net::writev_all(connection->fd, connection->reply_writing, stall_ms);
    lock.lock();
    if (status == net::IoStatus::kOk) {
      bump(tallies_.frames_out, hooks_.frames_out, frames);
      bump(tallies_.bytes_out, hooks_.bytes_out, bytes);
      bump(tallies_.gathered_writes, hooks_.gathered_writes);
      if (hooks_.gather_frames != nullptr) {
        hooks_.gather_frames->observe(static_cast<double>(frames));
      }
    } else {
      // Slow-client defense: a stalled (or dead) peer may not drain the
      // socket for minutes. Fail the connection and shut the fd down so
      // the reader unblocks too — the worker pool never wedges behind
      // one receive window.
      if (status == net::IoStatus::kTimeout) {
        bump(tallies_.net_write_timeouts, hooks_.net_write_timeouts);
        if (hooks_.trace != nullptr) {
          hooks_.trace->record({.kind = obs::EventKind::kServeNetTimeout,
                                .aux = bytes,
                                .detail = "write-stall"});
        }
      } else {
        bump(tallies_.net_write_errors, hooks_.net_write_errors);
      }
      connection->write_failed = true;
      ::shutdown(connection->fd, SHUT_RDWR);
    }
  }
  connection->reply_writing.clear();
  if (connection->write_failed) connection->reply_pending.clear();
  // Every queued frame was flushed (or abandoned): no arena pointer is
  // live, so the writer can hand the arena back for reuse.
  connection->reply_arena.reset();
  connection->writer_active = false;
}

void Server::acquire_pipeline(Connection* connection, std::size_t specs) {
  if (config_.pipeline_depth == 0 || specs == 0) return;
  std::unique_lock<std::mutex> lock(connection->pipeline_mutex);
  // An idle connection always proceeds, so one frame larger than the
  // whole depth cannot deadlock its own connection.
  connection->pipeline_cv.wait(lock, [&] {
    return connection->inflight_specs == 0 ||
           connection->inflight_specs + specs <= config_.pipeline_depth;
  });
  connection->inflight_specs += specs;
}

void Server::release_pipeline(Connection* connection, std::size_t specs) {
  if (config_.pipeline_depth == 0 || specs == 0) return;
  {
    std::scoped_lock lock(connection->pipeline_mutex);
    connection->inflight_specs -= specs;
  }
  // Only the connection's own reader ever waits.
  connection->pipeline_cv.notify_one();
}

StatsReply Server::stats_snapshot() const {
  // The sequential Cache's counters are plain fields; hold the submit
  // mutex so the snapshot never races a worker mid-update. The sharded
  // layer aggregates atomics and needs no lock.
  std::unique_lock<std::mutex> lock;
  if (serialize_submits_) {
    lock = std::unique_lock<std::mutex>(sequential_submit_mutex_);
  }
  const core::CacheCounters counters = landlord_->counters();
  StatsReply stats;
  stats.requests = counters.requests;
  stats.hits = counters.hits;
  stats.merges = counters.merges;
  stats.inserts = counters.inserts;
  stats.deletes = counters.deletes;
  stats.splits = counters.splits;
  stats.conflict_rejections = counters.conflict_rejections;
  stats.requested_bytes = counters.requested_bytes;
  stats.written_bytes = counters.written_bytes;
  stats.image_count = landlord_->image_count();
  stats.total_bytes = landlord_->total_bytes();
  stats.unique_bytes = landlord_->unique_bytes();
  stats.container_efficiency_sum = counters.container_efficiency_sum;
  stats.prep_seconds = landlord_->total_prep_seconds();
  return stats;
}

void Server::close_listener() {
  // shutdown() wakes a blocked accept(2). The descriptor is closed only
  // after the acceptor joins (drain()), so its number cannot be recycled
  // under a concurrent accept().
  const int fd = listen_fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void Server::drain() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (draining_.exchange(true)) {
    // A second drainer still waits for quiescence before returning.
    std::unique_lock<std::mutex> lock(drain_mutex_);
    drain_cv_.wait(lock, [this] { return outstanding_frames_.load() == 0; });
    return;
  }
  if (hooks_.trace != nullptr) {
    hooks_.trace->record(
        {.kind = obs::EventKind::kServeDrain, .detail = "begin"});
  }
  close_listener();
  if (acceptor_.joinable()) acceptor_.join();
  if (const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
      fd >= 0) {
    ::close(fd);  // releases the port
  }
  {
    std::unique_lock<std::mutex> lock(drain_mutex_);
    drain_cv_.wait(lock, [this] { return outstanding_frames_.load() == 0; });
  }
  // Every admitted frame has been answered; say goodbye on each open
  // connection (readers that already exited fail the write harmlessly).
  {
    std::scoped_lock lock(connections_mutex_);
    for (const auto& connection : connections_) {
      if (!connection->done.load(std::memory_order_acquire)) {
        send_reply(connection.get(), kEmptyFrameWireSize, [&](char* out) {
          return encode_drained_at(out, 0);
        });
      }
    }
  }
  if (hooks_.trace != nullptr) {
    hooks_.trace->record(
        {.kind = obs::EventKind::kServeDrain,
         .aux = tallies_.frames_processed.load(std::memory_order_relaxed),
         .detail = "complete"});
  }
}

void Server::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (stopping_.exchange(true)) return;
  drain();
  // Unblock every reader, join them, then retire the pool. Readers are
  // the only producers of pool tasks, so after the joins the pool can
  // only hold already-admitted work, which drain() proved is done.
  {
    std::scoped_lock lock(connections_mutex_);
    for (const auto& connection : connections_) {
      ::shutdown(connection->fd, SHUT_RDWR);
    }
    for (const auto& connection : connections_) {
      if (connection->reader.joinable()) connection->reader.join();
    }
  }
  pool_.reset();
  {
    std::scoped_lock lock(connections_mutex_);
    for (const auto& connection : connections_) {
      ::close(connection->fd);
    }
    connections_.clear();
  }
}

ServeCounters Server::counters() const {
  ServeCounters out;
  out.connections_accepted = tallies_.connections_accepted.load();
  out.connections_closed = tallies_.connections_closed.load();
  out.frames_in = tallies_.frames_in.load();
  out.frames_out = tallies_.frames_out.load();
  out.bytes_in = tallies_.bytes_in.load();
  out.bytes_out = tallies_.bytes_out.load();
  out.frames_admitted = tallies_.frames_admitted.load();
  out.specs_admitted = tallies_.specs_admitted.load();
  out.frames_processed = tallies_.frames_processed.load();
  out.requests_served = tallies_.requests_served.load();
  out.batches = tallies_.batches.load();
  out.gathered_writes = tallies_.gathered_writes.load();
  out.rejected_queue_full = tallies_.rejected_queue_full.load();
  out.rejected_draining = tallies_.rejected_draining.load();
  out.rejected_requests = tallies_.rejected_requests.load();
  out.decode_errors = tallies_.decode_errors.load();
  out.pings = tallies_.pings.load();
  out.stats_requests = tallies_.stats_requests.load();
  out.placements_hit = tallies_.placements_hit.load();
  out.placements_merge = tallies_.placements_merge.load();
  out.placements_insert = tallies_.placements_insert.load();
  out.placements_degraded = tallies_.placements_degraded.load();
  out.placements_failed = tallies_.placements_failed.load();
  out.queue_depth_peak = tallies_.queue_depth_peak.load();
  out.net_read_timeouts = tallies_.net_read_timeouts.load();
  out.net_write_timeouts = tallies_.net_write_timeouts.load();
  out.net_write_errors = tallies_.net_write_errors.load();
  out.dedup_hits = tallies_.dedup_hits.load();
  out.dedup_evictions = tallies_.dedup_evictions.load();
  out.specs_shed_expired = tallies_.specs_shed_expired.load();
  return out;
}

void Server::set_observability(obs::Observability* observability) {
  if (observability == nullptr) {
    hooks_ = Hooks{};
    return;
  }
  obs::Registry& r = observability->registry;
  hooks_.connections_accepted =
      &r.counter("serve_connections_total", {{"state", "accepted"}},
                 "Service-plane connections by lifecycle state");
  hooks_.connections_closed =
      &r.counter("serve_connections_total", {{"state", "closed"}},
                 "Service-plane connections by lifecycle state");
  hooks_.frames_in = &r.counter("serve_frames_total", {{"direction", "in"}},
                                "Protocol frames by direction");
  hooks_.frames_out = &r.counter("serve_frames_total", {{"direction", "out"}},
                                 "Protocol frames by direction");
  hooks_.bytes_in = &r.counter("serve_bytes_total", {{"direction", "in"}},
                               "Wire bytes by direction");
  hooks_.bytes_out = &r.counter("serve_bytes_total", {{"direction", "out"}},
                                "Wire bytes by direction");
  hooks_.frames_admitted =
      &r.counter("serve_frames_admitted_total", {},
                 "Submit frames past admission control");
  hooks_.specs_admitted =
      &r.counter("serve_specs_admitted_total", {},
                 "Specifications inside admitted submit frames");
  hooks_.frames_processed =
      &r.counter("serve_frames_processed_total", {},
                 "Admitted submit frames fully answered");
  hooks_.requests_served = &r.counter("serve_requests_served_total", {},
                                      "Individual specifications placed");
  hooks_.batches =
      &r.counter("serve_batches_total", {}, "Batch submit frames admitted");
  hooks_.gathered_writes =
      &r.counter("serve_gathered_writes_total", {},
                 "Reply-queue flushes (each one gathered write)");
  hooks_.rejected_queue_full =
      &r.counter("serve_rejected_total", {{"reason", "queue-full"}},
                 "Submit frames rejected by admission control");
  hooks_.rejected_draining =
      &r.counter("serve_rejected_total", {{"reason", "draining"}},
                 "Submit frames rejected by admission control");
  hooks_.rejected_requests =
      &r.counter("serve_rejected_requests_total", {},
                 "Specifications inside rejected submit frames");
  hooks_.decode_errors =
      &r.counter("serve_decode_errors_total", {},
                 "Frames that failed to decode or had unexpected types");
  hooks_.pings = &r.counter("serve_pings_total", {}, "Ping frames answered");
  hooks_.stats_requests =
      &r.counter("serve_stats_requests_total", {}, "Stats frames answered");
  hooks_.placements_hit =
      &r.counter("serve_placements_total", {{"kind", "hit"}},
                 "Placements served over the wire by decision kind");
  hooks_.placements_merge =
      &r.counter("serve_placements_total", {{"kind", "merge"}},
                 "Placements served over the wire by decision kind");
  hooks_.placements_insert =
      &r.counter("serve_placements_total", {{"kind", "insert"}},
                 "Placements served over the wire by decision kind");
  hooks_.placements_degraded =
      &r.counter("serve_placements_degraded_total", {},
                 "Placements served via a degradation-ladder fallback");
  hooks_.placements_failed =
      &r.counter("serve_placements_failed_total", {},
                 "Placements whose degradation ladder was exhausted");
  hooks_.net_read_timeouts =
      &r.counter("serve_net_read_idle_timeouts_total", {},
                 "Connections closed for exceeding the read idle timeout");
  hooks_.net_write_timeouts =
      &r.counter("serve_net_write_stall_timeouts_total", {},
                 "Connections closed for stalling the reply writer");
  hooks_.net_write_errors =
      &r.counter("serve_net_write_errors_total", {},
                 "Reply writes failed by a hard socket error");
  hooks_.dedup_hits =
      &r.counter("serve_dedup_hits_total", {},
                 "Retried submits answered from the dedup window");
  hooks_.dedup_evictions =
      &r.counter("serve_dedup_evictions_total", {},
                 "Completed dedup entries evicted to bound the window");
  hooks_.specs_shed_expired =
      &r.counter("serve_deadline_shed_total", {},
                 "Specifications shed because their deadline expired");
  hooks_.queue_depth = &r.gauge("serve_queue_depth", {},
                                "Admitted specifications awaiting workers");
  hooks_.queue_depth_peak =
      &r.gauge("serve_queue_depth_peak", {},
               "High-water mark of admitted specifications");
  hooks_.batch_size = &r.histogram(
      "serve_batch_size", {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}, {},
      "Specifications per admitted submit frame");
  hooks_.gather_frames = &r.histogram(
      "serve_gather_frames", {1, 2, 4, 8, 16, 32, 64, 128}, {},
      "Reply frames coalesced per gathered write");
  hooks_.process_seconds =
      &r.histogram("serve_process_seconds", obs::default_seconds_buckets(), {},
                   "Wall seconds from worker pickup to reply written");
  hooks_.trace = &observability->trace;
}

}  // namespace landlord::serve
