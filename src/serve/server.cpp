#include "serve/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace landlord::serve {

namespace {

/// Reads exactly `n` bytes; false on EOF/error/shutdown.
bool read_exact(int fd, char* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return false;  // peer closed, shutdown(), or hard error
  }
  return true;
}

/// Writes the whole buffer; false on error (peer gone, shutdown()).
bool write_all(int fd, const char* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

Server::Server(core::Landlord& landlord, ServerConfig config)
    : landlord_(&landlord), config_(std::move(config)) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.max_queue == 0) config_.max_queue = 1;
  // A sequential decision layer (shards <= 1) is not safe under
  // concurrent submit(); serialise it so any worker count is correct.
  serialize_submits_ = landlord_->sharded() == nullptr;
}

Server::~Server() { stop(); }

util::Result<bool> Server::start() {
  if (started_.exchange(true)) return util::Error{"server already started"};

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return util::Error{std::string{"socket: "} + std::strerror(errno)};
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::string why = std::string{"bind: "} + std::strerror(errno);
    ::close(fd);
    return util::Error{why};
  }
  if (::listen(fd, config_.backlog) < 0) {
    std::string why = std::string{"listen: "} + std::strerror(errno);
    ::close(fd);
    return util::Error{why};
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    std::string why = std::string{"getsockname: "} + std::strerror(errno);
    ::close(fd);
    return util::Error{why};
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_.store(fd, std::memory_order_release);

  pool_ = std::make_unique<util::ThreadPool>(config_.workers);
  acceptor_ = std::thread([this] { accept_loop(); });
  return true;
}

void Server::accept_loop() {
  while (!draining_.load(std::memory_order_acquire) &&
         !stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_.load(std::memory_order_acquire), nullptr,
                      nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by drain()/stop()
    }
    if (draining_.load(std::memory_order_acquire)) {
      // Drain won the race with accept(2): this connection arrived after
      // drain began and must not be served.
      ::close(fd);
      break;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    Connection* raw = connection.get();
    bump(tallies_.connections_accepted, hooks_.connections_accepted);
    if (hooks_.trace != nullptr) {
      hooks_.trace->record(
          {.kind = obs::EventKind::kServeConnection, .detail = "accepted"});
    }
    {
      std::scoped_lock lock(connections_mutex_);
      reap_closed_connections();
      connections_.push_back(std::move(connection));
    }
    raw->reader = std::thread([this, raw] { reader_loop(raw); });
  }
}

void Server::reap_closed_connections() {
  // Caller holds connections_mutex_. Joins readers that have exited on
  // their own (client hung up) so long-lived servers don't accumulate
  // dead threads.
  std::erase_if(connections_, [](const std::unique_ptr<Connection>& c) {
    if (!c->done.load(std::memory_order_acquire)) return false;
    // The reader is gone, but a worker may still hold this Connection*
    // for an admitted frame; freeing it now would be use-after-free.
    if (c->inflight.load(std::memory_order_acquire) != 0) return false;
    if (c->reader.joinable()) c->reader.join();
    return true;
  });
}

void Server::reader_loop(Connection* connection) {
  const std::size_t universe = landlord_->repository().size();
  std::string buffer;
  char header_bytes[kHeaderSize];
  bool alive = true;
  while (alive && read_exact(connection->fd, header_bytes, kHeaderSize)) {
    bump(tallies_.bytes_in, hooks_.bytes_in, kHeaderSize);
    Decoded<FrameHeader> header =
        decode_header(std::string_view(header_bytes, kHeaderSize));
    if (!header.ok()) {
      // Framing is unrecoverable (bad magic/version/length): report the
      // typed error and hang up rather than resynchronise on garbage.
      bump(tallies_.decode_errors, hooks_.decode_errors);
      write_frame(connection, encode_error(0, header.status));
      break;
    }
    buffer.resize(header.value.payload_size);
    if (header.value.payload_size > 0 &&
        !read_exact(connection->fd, buffer.data(), buffer.size())) {
      break;
    }
    bump(tallies_.bytes_in, hooks_.bytes_in, buffer.size());
    bump(tallies_.frames_in, hooks_.frames_in);

    std::string frame_bytes(header_bytes, kHeaderSize);
    frame_bytes.append(buffer);
    Decoded<Frame> frame = decode_frame(frame_bytes, universe);
    if (!frame.ok()) {
      // Frame boundaries are intact (the header told us the length), so
      // a malformed payload only poisons this frame, not the stream.
      bump(tallies_.decode_errors, hooks_.decode_errors);
      write_frame(connection,
                  encode_error(header.value.request_id, frame.status));
      continue;
    }
    alive = handle_frame(connection, std::move(frame.value));
  }
  ::shutdown(connection->fd, SHUT_RDWR);
  bump(tallies_.connections_closed, hooks_.connections_closed);
  if (hooks_.trace != nullptr) {
    hooks_.trace->record(
        {.kind = obs::EventKind::kServeConnection, .detail = "closed"});
  }
  connection->done.store(true, std::memory_order_release);
}

bool Server::handle_frame(Connection* connection, Frame frame) {
  const std::uint64_t request_id = frame.header.request_id;
  switch (frame.header.type) {
    case FrameType::kPing:
      bump(tallies_.pings, hooks_.pings);
      write_frame(connection, encode_pong(request_id));
      return true;
    case FrameType::kStats:
      bump(tallies_.stats_requests, hooks_.stats_requests);
      write_frame(connection, encode_stats_reply(request_id, stats_snapshot()));
      return true;
    case FrameType::kSubmit:
    case FrameType::kBatchSubmit: {
      // Admission control: reserve a queue slot first, then check the
      // drain flag, so drain() can never observe outstanding_ == 0 while
      // a reader is between "admitted" and "handed to the pool".
      std::size_t depth = outstanding_.fetch_add(1) + 1;
      const std::size_t specs = frame.submits.size();
      if (draining_.load(std::memory_order_acquire)) {
        release_slot();
        bump(tallies_.rejected_draining, hooks_.rejected_draining);
        bump(tallies_.rejected_requests, hooks_.rejected_requests, specs);
        if (hooks_.trace != nullptr) {
          hooks_.trace->record({.kind = obs::EventKind::kServeOverload,
                                .aux = specs,
                                .detail = "draining"});
        }
        write_frame(connection,
                    encode_rejected(request_id, RejectReason::kDraining));
        return true;
      }
      if (depth > config_.max_queue) {
        release_slot();
        bump(tallies_.rejected_queue_full, hooks_.rejected_queue_full);
        bump(tallies_.rejected_requests, hooks_.rejected_requests, specs);
        if (hooks_.trace != nullptr) {
          hooks_.trace->record({.kind = obs::EventKind::kServeOverload,
                                .aux = specs,
                                .detail = "queue-full"});
        }
        write_frame(connection,
                    encode_rejected(request_id, RejectReason::kQueueFull));
        return true;
      }
      // Admitted. Track the high-water mark, then hand off.
      std::uint64_t peak = tallies_.queue_depth_peak.load(std::memory_order_relaxed);
      while (depth > peak &&
             !tallies_.queue_depth_peak.compare_exchange_weak(
                 peak, depth, std::memory_order_relaxed)) {
      }
      if (hooks_.queue_depth != nullptr) {
        hooks_.queue_depth->set(static_cast<double>(depth));
      }
      if (hooks_.queue_depth_peak != nullptr) {
        hooks_.queue_depth_peak->set(static_cast<double>(
            tallies_.queue_depth_peak.load(std::memory_order_relaxed)));
      }
      bump(tallies_.frames_admitted, hooks_.frames_admitted);
      if (frame.header.type == FrameType::kBatchSubmit) {
        bump(tallies_.batches, hooks_.batches);
      }
      if (hooks_.batch_size != nullptr) {
        hooks_.batch_size->observe(static_cast<double>(specs));
      }
      connection->inflight.fetch_add(1, std::memory_order_acq_rel);
      auto task = [this, connection, moved = std::move(frame)]() mutable {
        process_submit(connection, moved);
        // The slot is released only after the reply hit the socket, so
        // drain() returning means every admitted frame was answered.
        release_slot();
        if (hooks_.queue_depth != nullptr) {
          hooks_.queue_depth->set(
              static_cast<double>(outstanding_.load(std::memory_order_acquire)));
        }
        // Last touch of `connection` in this task: after this, a reaped
        // reader's connection may be freed.
        connection->inflight.fetch_sub(1, std::memory_order_acq_rel);
      };
      // The future is intentionally dropped: completion is tracked by
      // outstanding_, and the task cannot throw.
      (void)pool_->submit(std::move(task));
      return true;
    }
    default:
      // Well-formed frame of a type only servers send (placement, pong,
      // stats-reply, ...): a confused peer. Tell it and hang up.
      bump(tallies_.decode_errors, hooks_.decode_errors);
      write_frame(connection,
                  encode_error(request_id, DecodeStatus::kUnexpectedType));
      return false;
  }
}

void Server::process_submit(Connection* connection, const Frame& frame) {
  if (process_hook_) process_hook_();
  const std::size_t universe = landlord_->repository().size();
  const auto started = std::chrono::steady_clock::now();

  std::vector<PlacementReply> replies;
  replies.reserve(frame.submits.size());
  for (const SubmitRequest& request : frame.submits) {
    spec::Specification spec = to_specification(request, universe);
    core::JobPlacement placement;
    if (serialize_submits_) {
      std::scoped_lock lock(sequential_submit_mutex_);
      placement = landlord_->submit(spec);
    } else {
      placement = landlord_->submit(spec);
    }
    switch (placement.kind) {
      case core::RequestKind::kHit:
        bump(tallies_.placements_hit, hooks_.placements_hit);
        break;
      case core::RequestKind::kMerge:
        bump(tallies_.placements_merge, hooks_.placements_merge);
        break;
      case core::RequestKind::kInsert:
        bump(tallies_.placements_insert, hooks_.placements_insert);
        break;
    }
    if (placement.degraded) {
      bump(tallies_.placements_degraded, hooks_.placements_degraded);
    }
    if (placement.failed) {
      bump(tallies_.placements_failed, hooks_.placements_failed);
    }
    replies.push_back(to_reply(placement, request.client_id));
  }
  bump(tallies_.requests_served, hooks_.requests_served, replies.size());

  const std::uint64_t request_id = frame.header.request_id;
  if (frame.header.type == FrameType::kSubmit) {
    write_frame(connection, encode_placement(request_id, replies.front()));
  } else {
    write_frame(connection, encode_batch_placement(request_id, replies));
  }
  bump(tallies_.frames_processed, hooks_.frames_processed);
  if (hooks_.process_seconds != nullptr) {
    hooks_.process_seconds->observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count());
  }
}

void Server::write_frame(Connection* connection, const std::string& bytes) {
  std::scoped_lock lock(connection->write_mutex);
  if (write_all(connection->fd, bytes.data(), bytes.size())) {
    bump(tallies_.frames_out, hooks_.frames_out);
    bump(tallies_.bytes_out, hooks_.bytes_out, bytes.size());
  }
}

StatsReply Server::stats_snapshot() const {
  // The sequential Cache's counters are plain fields; hold the submit
  // mutex so the snapshot never races a worker mid-update. The sharded
  // layer aggregates atomics and needs no lock.
  std::unique_lock<std::mutex> lock;
  if (serialize_submits_) {
    lock = std::unique_lock<std::mutex>(sequential_submit_mutex_);
  }
  const core::CacheCounters counters = landlord_->counters();
  StatsReply stats;
  stats.requests = counters.requests;
  stats.hits = counters.hits;
  stats.merges = counters.merges;
  stats.inserts = counters.inserts;
  stats.deletes = counters.deletes;
  stats.splits = counters.splits;
  stats.conflict_rejections = counters.conflict_rejections;
  stats.requested_bytes = counters.requested_bytes;
  stats.written_bytes = counters.written_bytes;
  stats.image_count = landlord_->image_count();
  stats.total_bytes = landlord_->total_bytes();
  stats.unique_bytes = landlord_->unique_bytes();
  stats.container_efficiency_sum = counters.container_efficiency_sum;
  stats.prep_seconds = landlord_->total_prep_seconds();
  return stats;
}

void Server::close_listener() {
  // shutdown() wakes a blocked accept(2). The descriptor is closed only
  // after the acceptor joins (drain()), so its number cannot be recycled
  // under a concurrent accept().
  const int fd = listen_fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void Server::drain() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (draining_.exchange(true)) {
    // A second drainer still waits for quiescence before returning.
    std::unique_lock<std::mutex> lock(drain_mutex_);
    drain_cv_.wait(lock, [this] { return outstanding_.load() == 0; });
    return;
  }
  if (hooks_.trace != nullptr) {
    hooks_.trace->record(
        {.kind = obs::EventKind::kServeDrain, .detail = "begin"});
  }
  close_listener();
  if (acceptor_.joinable()) acceptor_.join();
  if (const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
      fd >= 0) {
    ::close(fd);  // releases the port
  }
  {
    std::unique_lock<std::mutex> lock(drain_mutex_);
    drain_cv_.wait(lock, [this] { return outstanding_.load() == 0; });
  }
  // Every admitted frame has been answered; say goodbye on each open
  // connection (readers that already exited fail the write harmlessly).
  {
    std::scoped_lock lock(connections_mutex_);
    for (const auto& connection : connections_) {
      if (!connection->done.load(std::memory_order_acquire)) {
        write_frame(connection.get(), encode_drained(0));
      }
    }
  }
  if (hooks_.trace != nullptr) {
    hooks_.trace->record(
        {.kind = obs::EventKind::kServeDrain,
         .aux = tallies_.frames_processed.load(std::memory_order_relaxed),
         .detail = "complete"});
  }
}

void Server::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (stopping_.exchange(true)) return;
  drain();
  // Unblock every reader, join them, then retire the pool. Readers are
  // the only producers of pool tasks, so after the joins the pool can
  // only hold already-admitted work, which drain() proved is done.
  {
    std::scoped_lock lock(connections_mutex_);
    for (const auto& connection : connections_) {
      ::shutdown(connection->fd, SHUT_RDWR);
    }
    for (const auto& connection : connections_) {
      if (connection->reader.joinable()) connection->reader.join();
    }
  }
  pool_.reset();
  {
    std::scoped_lock lock(connections_mutex_);
    for (const auto& connection : connections_) {
      ::close(connection->fd);
    }
    connections_.clear();
  }
}

ServeCounters Server::counters() const {
  ServeCounters out;
  out.connections_accepted = tallies_.connections_accepted.load();
  out.connections_closed = tallies_.connections_closed.load();
  out.frames_in = tallies_.frames_in.load();
  out.frames_out = tallies_.frames_out.load();
  out.bytes_in = tallies_.bytes_in.load();
  out.bytes_out = tallies_.bytes_out.load();
  out.frames_admitted = tallies_.frames_admitted.load();
  out.frames_processed = tallies_.frames_processed.load();
  out.requests_served = tallies_.requests_served.load();
  out.batches = tallies_.batches.load();
  out.rejected_queue_full = tallies_.rejected_queue_full.load();
  out.rejected_draining = tallies_.rejected_draining.load();
  out.rejected_requests = tallies_.rejected_requests.load();
  out.decode_errors = tallies_.decode_errors.load();
  out.pings = tallies_.pings.load();
  out.stats_requests = tallies_.stats_requests.load();
  out.placements_hit = tallies_.placements_hit.load();
  out.placements_merge = tallies_.placements_merge.load();
  out.placements_insert = tallies_.placements_insert.load();
  out.placements_degraded = tallies_.placements_degraded.load();
  out.placements_failed = tallies_.placements_failed.load();
  out.queue_depth_peak = tallies_.queue_depth_peak.load();
  return out;
}

void Server::set_observability(obs::Observability* observability) {
  if (observability == nullptr) {
    hooks_ = Hooks{};
    return;
  }
  obs::Registry& r = observability->registry;
  hooks_.connections_accepted =
      &r.counter("serve_connections_total", {{"state", "accepted"}},
                 "Service-plane connections by lifecycle state");
  hooks_.connections_closed =
      &r.counter("serve_connections_total", {{"state", "closed"}},
                 "Service-plane connections by lifecycle state");
  hooks_.frames_in = &r.counter("serve_frames_total", {{"direction", "in"}},
                                "Protocol frames by direction");
  hooks_.frames_out = &r.counter("serve_frames_total", {{"direction", "out"}},
                                 "Protocol frames by direction");
  hooks_.bytes_in = &r.counter("serve_bytes_total", {{"direction", "in"}},
                               "Wire bytes by direction");
  hooks_.bytes_out = &r.counter("serve_bytes_total", {{"direction", "out"}},
                                "Wire bytes by direction");
  hooks_.frames_admitted =
      &r.counter("serve_frames_admitted_total", {},
                 "Submit frames past admission control");
  hooks_.frames_processed =
      &r.counter("serve_frames_processed_total", {},
                 "Admitted submit frames fully answered");
  hooks_.requests_served = &r.counter("serve_requests_served_total", {},
                                      "Individual specifications placed");
  hooks_.batches =
      &r.counter("serve_batches_total", {}, "Batch submit frames admitted");
  hooks_.rejected_queue_full =
      &r.counter("serve_rejected_total", {{"reason", "queue-full"}},
                 "Submit frames rejected by admission control");
  hooks_.rejected_draining =
      &r.counter("serve_rejected_total", {{"reason", "draining"}},
                 "Submit frames rejected by admission control");
  hooks_.rejected_requests =
      &r.counter("serve_rejected_requests_total", {},
                 "Specifications inside rejected submit frames");
  hooks_.decode_errors =
      &r.counter("serve_decode_errors_total", {},
                 "Frames that failed to decode or had unexpected types");
  hooks_.pings = &r.counter("serve_pings_total", {}, "Ping frames answered");
  hooks_.stats_requests =
      &r.counter("serve_stats_requests_total", {}, "Stats frames answered");
  hooks_.placements_hit =
      &r.counter("serve_placements_total", {{"kind", "hit"}},
                 "Placements served over the wire by decision kind");
  hooks_.placements_merge =
      &r.counter("serve_placements_total", {{"kind", "merge"}},
                 "Placements served over the wire by decision kind");
  hooks_.placements_insert =
      &r.counter("serve_placements_total", {{"kind", "insert"}},
                 "Placements served over the wire by decision kind");
  hooks_.placements_degraded =
      &r.counter("serve_placements_degraded_total", {},
                 "Placements served via a degradation-ladder fallback");
  hooks_.placements_failed =
      &r.counter("serve_placements_failed_total", {},
                 "Placements whose degradation ladder was exhausted");
  hooks_.queue_depth = &r.gauge("serve_queue_depth", {},
                                "Admitted submit frames awaiting workers");
  hooks_.queue_depth_peak =
      &r.gauge("serve_queue_depth_peak", {},
               "High-water mark of the bounded admission queue");
  hooks_.batch_size = &r.histogram(
      "serve_batch_size", {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}, {},
      "Specifications per admitted submit frame");
  hooks_.process_seconds =
      &r.histogram("serve_process_seconds", obs::default_seconds_buckets(), {},
                   "Wall seconds from worker pickup to reply written");
  hooks_.trace = &observability->trace;
}

}  // namespace landlord::serve
