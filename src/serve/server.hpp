// Networked head-node service plane: a multi-threaded TCP server around
// core::Landlord (docs/serve.md).
//
// Threading model:
//   * one acceptor thread blocks in accept() and registers connections;
//   * one reader thread per connection reassembles length-prefixed frames
//     (serve/protocol.hpp) out of a rolling receive buffer and answers
//     pings/stats inline;
//   * submit frames pass spec-granular admission control and are handed
//     to a util::ThreadPool of decision workers, which call
//     core::Landlord::submit per spec and enqueue the placement reply.
//
// Reply path: replies are encoded once, straight into a per-connection
// ScratchArena, and queued; whichever thread finds the connection's
// writer idle claims it and flushes every queued frame with one gathered
// sendmsg(2) (serve/io.hpp). Replies to one connection go out in enqueue
// order; threads never block on another connection's socket.
//
// Admission control (spec-granular): at most ServerConfig::max_queue
// *specifications* may be outstanding (admitted, not yet answered) across
// all connections — a 64-spec batch frame costs 64 slots, not one, so
// batch and single-spec clients see the same shed point. A frame that
// would overflow the limit gets an immediate kRejected{queue-full}
// response from the reader thread, except when the queue is empty: an
// oversize batch is then admitted alone rather than starved forever.
//
// Per-connection pipelining: a client may pipeline at most
// ServerConfig::pipeline_depth specs on one connection. The limit is
// enforced with read-side backpressure — the reader simply stops parsing
// (and, via TCP flow control, the client stops sending) until in-flight
// specs complete — never with rejection, so a compliant pipelined client
// cannot be shed by its own burst.
//
// Graceful drain: drain() stops accepting connections, turns subsequent
// submits into kRejected{draining}, waits for every admitted frame to be
// answered, then says kDrained on each open connection. No in-flight
// request is dropped; no connection is accepted after drain begins.
//
// With a sequential decision layer (CacheConfig::shards <= 1) submits
// are serialised behind an internal mutex, so a single-worker server
// processes a pipelined connection's requests in exact arrival order —
// the loopback equivalence suite replays a trace through the server and
// an in-process Landlord and requires bit-identical placements.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "landlord/landlord.hpp"
#include "obs/obs.hpp"
#include "serve/dedup.hpp"
#include "serve/io.hpp"
#include "serve/protocol.hpp"
#include "util/arena.hpp"
#include "util/result.hpp"
#include "util/thread_pool.hpp"

namespace landlord::serve {

struct ServerConfig {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
  /// back with Server::port()).
  std::uint16_t port = 0;
  /// Decision worker threads (util::ThreadPool size). With 1 worker and
  /// one connection, processing order equals arrival order.
  std::uint32_t workers = 4;
  /// Bounded admission queue: maximum outstanding *specifications*
  /// before the server answers kRejected{queue-full}. An oversize batch
  /// is admitted alone when the queue is empty.
  std::size_t max_queue = 1024;
  /// Per-connection pipelining limit, in specs: a reader pauses (read-
  /// side backpressure, not rejection) while its connection has this
  /// many specs in flight. 0 = unlimited. The environment variable
  /// LANDLORD_SERVE_PIPELINE_DEPTH overrides it at construction.
  std::size_t pipeline_depth = 1024;
  /// listen(2) backlog.
  int backlog = 128;
  /// Per-connection read idle timeout, milliseconds: a connection that
  /// sends nothing for this long is closed (slow-loris defense). 0 =
  /// never time out (the default — idle keep-alive clients are fine).
  std::uint32_t read_idle_timeout_ms = 0;
  /// Per-flush write stall timeout, milliseconds: a reply write that
  /// makes no progress for this long (client stopped reading) abandons
  /// the connection instead of wedging the flusher forever. 0 = wait
  /// forever.
  std::uint32_t write_stall_timeout_ms = 5000;
  /// Idempotent-retry dedup window capacity, in completed (session_id,
  /// request_id) entries; a retried v2 submit whose identity is still in
  /// the window is answered from it, never re-placed. 0 disables dedup.
  std::size_t dedup_window = 4096;
  /// When > 0, SO_SNDBUF for accepted connections (bytes). The write-
  /// stall tests shrink it so a non-reading client trips the stall
  /// timeout with little traffic; 0 keeps the kernel default.
  int so_sndbuf = 0;
};

/// Monotone service-plane counters. Every field has a serve_* metric
/// family bumped in lockstep (same helper, same increment), so an obs
/// registry snapshot must reconcile exactly with this struct — the
/// serve obs suite asserts it after every load-generator run.
struct ServeCounters {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t frames_admitted = 0;   ///< submit frames past admission
  std::uint64_t specs_admitted = 0;    ///< specs inside admitted frames
  std::uint64_t frames_processed = 0;  ///< admitted frames fully answered
  std::uint64_t requests_served = 0;   ///< individual specs placed
  std::uint64_t batches = 0;           ///< kBatchSubmit frames admitted
  std::uint64_t gathered_writes = 0;   ///< reply flushes (>= 1 frame each)
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_draining = 0;
  std::uint64_t rejected_requests = 0;  ///< specs inside rejected frames
  std::uint64_t decode_errors = 0;
  std::uint64_t pings = 0;
  std::uint64_t stats_requests = 0;
  std::uint64_t placements_hit = 0;
  std::uint64_t placements_merge = 0;
  std::uint64_t placements_insert = 0;
  std::uint64_t placements_degraded = 0;
  std::uint64_t placements_failed = 0;
  std::uint64_t queue_depth_peak = 0;  ///< high-water admitted-spec depth
  // -- Network-robustness counters (PR 10) --
  std::uint64_t net_read_timeouts = 0;   ///< connections closed as idle
  std::uint64_t net_write_timeouts = 0;  ///< flushes abandoned mid-stall
  std::uint64_t net_write_errors = 0;    ///< flushes failed hard (peer gone)
  std::uint64_t dedup_hits = 0;          ///< submits answered from the window
  std::uint64_t dedup_evictions = 0;     ///< completed entries aged out
  std::uint64_t specs_shed_expired = 0;  ///< specs shed past their deadline
};

class Server {
 public:
  /// The landlord must outlive the server. Its decision layer must be
  /// sharded (CacheConfig::shards > 1) for true multi-worker decision
  /// concurrency; with a sequential layer the server still accepts
  /// `workers` threads but serialises submit() behind a mutex.
  Server(core::Landlord& landlord, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds 127.0.0.1:port, spawns the acceptor and the worker pool.
  /// Fails (with errno text) if the socket cannot be bound.
  [[nodiscard]] util::Result<bool> start();

  /// The bound port (meaningful after start(); resolves port = 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Graceful drain: stop accepting, reject new submits with
  /// kRejected{draining}, wait until every admitted frame is answered,
  /// then send kDrained on each open connection. Idempotent.
  void drain();

  /// drain(), then close every connection and join all threads.
  /// Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] bool draining() const noexcept {
    return draining_.load(std::memory_order_acquire);
  }

  /// Snapshot of the service-plane counters.
  [[nodiscard]] ServeCounters counters() const;

  /// Current admitted-but-unanswered specifications.
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return outstanding_specs_.load(std::memory_order_acquire);
  }

  /// The effective per-connection pipelining limit (after the
  /// LANDLORD_SERVE_PIPELINE_DEPTH override); 0 = unlimited.
  [[nodiscard]] std::size_t pipeline_depth() const noexcept {
    return config_.pipeline_depth;
  }

  [[nodiscard]] const core::Landlord& landlord() const noexcept {
    return *landlord_;
  }

  /// Attaches serve_* metric families and the event trace. Call before
  /// start(); handles resolve once. Pass nullptr to detach.
  void set_observability(obs::Observability* observability);

  /// Test-only: runs at the start of every admitted frame's processing,
  /// before any submit. The overload suite parks workers here to
  /// saturate the bounded queue deterministically.
  void set_process_test_hook(std::function<void()> hook) {
    process_hook_ = std::move(hook);
  }

 private:
  struct Connection {
    int fd = -1;
    std::atomic<bool> done{false};  ///< reader exited
    /// Admitted frames not yet answered. Workers hold a raw Connection*
    /// while processing, so a connection whose client hung up mid-flight
    /// must not be reaped until this drops to zero.
    std::atomic<std::size_t> inflight{0};
    std::thread reader;

    // -- Reply path (all guarded by write_mutex unless noted) --
    std::mutex write_mutex;
    /// Backs every queued reply frame; reset when the queue empties.
    /// Growth chains new blocks without moving old ones, so queued
    /// ConstBuffers stay valid across concurrent encodes.
    util::ScratchArena reply_arena{0};
    /// Encoded frames awaiting the writer, one buffer per frame.
    std::vector<net::ConstBuffer> reply_pending;
    /// The active writer's claimed batch (owned by it while unlocked).
    std::vector<net::ConstBuffer> reply_writing;
    bool writer_active = false;
    bool write_failed = false;  ///< peer gone; drop further replies

    // -- Per-connection pipelining (guarded by pipeline_mutex) --
    std::mutex pipeline_mutex;
    std::condition_variable pipeline_cv;
    std::size_t inflight_specs = 0;
  };

  void accept_loop();
  void reader_loop(Connection* connection);
  /// Handles one well-formed frame from `connection`; returns false when
  /// the connection should close (protocol violation).
  bool handle_frame(Connection* connection, Frame frame);
  /// Executes an admitted submit frame. `expiry` is the v2 deadline as a
  /// server-clock instant (nullopt = none): specs past it are shed with
  /// a failed "deadline-expired" reply instead of executed.
  /// `dedup_claimed` marks a frame whose identity this worker registered
  /// in the dedup window and must complete.
  void process_submit(
      Connection* connection, const Frame& frame,
      std::optional<std::chrono::steady_clock::time_point> expiry,
      bool dedup_claimed);
  /// Replies to a retried submit from the dedup window's stored replies.
  void reply_from_window(Connection* connection, std::uint64_t request_id,
                         FrameType reply_type,
                         const std::vector<PlacementReply>& replies);

  /// Encodes one reply of exactly `size` wire bytes into the
  /// connection's arena via `encode(char*) -> char*` and queues it; if no
  /// writer is active, becomes the writer and flushes the queue with
  /// gathered writes until it is empty.
  template <typename Encode>
  void send_reply(Connection* connection, std::size_t size, Encode&& encode);
  /// Writer body: caller holds `lock` and has claimed writer_active.
  void flush_replies(Connection* connection,
                     std::unique_lock<std::mutex>& lock);

  /// Blocks until `connection` may put `specs` more specs in flight
  /// (pipeline_depth; an idle connection always may), then reserves them.
  void acquire_pipeline(Connection* connection, std::size_t specs);
  void release_pipeline(Connection* connection, std::size_t specs);

  [[nodiscard]] StatsReply stats_snapshot() const;
  void reap_closed_connections();
  void close_listener();

  core::Landlord* landlord_;
  ServerConfig config_;
  std::uint16_t port_ = 0;
  /// Atomic because drain() shuts the listener down while the acceptor
  /// thread is blocked in accept(2) on it.
  std::atomic<int> listen_fd_{-1};
  std::thread acceptor_;
  std::unique_ptr<util::ThreadPool> pool_;
  /// Serialises Landlord::submit when the decision layer is sequential
  /// (shards <= 1); unused (never locked) when it is sharded. mutable so
  /// the const stats snapshot can exclude in-flight submits.
  mutable std::mutex sequential_submit_mutex_;
  bool serialize_submits_ = false;

  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;

  /// Idempotent-retry window keyed by (session_id, request_id); sized by
  /// ServerConfig::dedup_window.
  DedupWindow dedup_;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  /// Admitted specs not yet answered — the admission threshold and the
  /// value queue_depth() reports.
  std::atomic<std::size_t> outstanding_specs_{0};
  /// Admitted frames not yet answered — the drain predicate (a zero-spec
  /// batch frame still occupies the pipeline until it is answered).
  std::atomic<std::size_t> outstanding_frames_{0};
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;

  std::function<void()> process_hook_;

  /// Counter twins: the atomic is the source of truth; the metric handle
  /// (null when no registry is attached) is bumped in the same call.
  struct AtomicCounters {
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> connections_closed{0};
    std::atomic<std::uint64_t> frames_in{0};
    std::atomic<std::uint64_t> frames_out{0};
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> bytes_out{0};
    std::atomic<std::uint64_t> frames_admitted{0};
    std::atomic<std::uint64_t> specs_admitted{0};
    std::atomic<std::uint64_t> frames_processed{0};
    std::atomic<std::uint64_t> requests_served{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> gathered_writes{0};
    std::atomic<std::uint64_t> rejected_queue_full{0};
    std::atomic<std::uint64_t> rejected_draining{0};
    std::atomic<std::uint64_t> rejected_requests{0};
    std::atomic<std::uint64_t> decode_errors{0};
    std::atomic<std::uint64_t> pings{0};
    std::atomic<std::uint64_t> stats_requests{0};
    std::atomic<std::uint64_t> placements_hit{0};
    std::atomic<std::uint64_t> placements_merge{0};
    std::atomic<std::uint64_t> placements_insert{0};
    std::atomic<std::uint64_t> placements_degraded{0};
    std::atomic<std::uint64_t> placements_failed{0};
    std::atomic<std::uint64_t> queue_depth_peak{0};
    std::atomic<std::uint64_t> net_read_timeouts{0};
    std::atomic<std::uint64_t> net_write_timeouts{0};
    std::atomic<std::uint64_t> net_write_errors{0};
    std::atomic<std::uint64_t> dedup_hits{0};
    std::atomic<std::uint64_t> dedup_evictions{0};
    std::atomic<std::uint64_t> specs_shed_expired{0};
  };
  AtomicCounters tallies_;

  /// Metric handles resolved at set_observability; null ⇒ no-op.
  struct Hooks {
    obs::Counter* connections_accepted = nullptr;
    obs::Counter* connections_closed = nullptr;
    obs::Counter* frames_in = nullptr;
    obs::Counter* frames_out = nullptr;
    obs::Counter* bytes_in = nullptr;
    obs::Counter* bytes_out = nullptr;
    obs::Counter* frames_admitted = nullptr;
    obs::Counter* specs_admitted = nullptr;
    obs::Counter* frames_processed = nullptr;
    obs::Counter* requests_served = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* gathered_writes = nullptr;
    obs::Counter* rejected_queue_full = nullptr;
    obs::Counter* rejected_draining = nullptr;
    obs::Counter* rejected_requests = nullptr;
    obs::Counter* decode_errors = nullptr;
    obs::Counter* pings = nullptr;
    obs::Counter* stats_requests = nullptr;
    obs::Counter* placements_hit = nullptr;
    obs::Counter* placements_merge = nullptr;
    obs::Counter* placements_insert = nullptr;
    obs::Counter* placements_degraded = nullptr;
    obs::Counter* placements_failed = nullptr;
    obs::Counter* net_read_timeouts = nullptr;
    obs::Counter* net_write_timeouts = nullptr;
    obs::Counter* net_write_errors = nullptr;
    obs::Counter* dedup_hits = nullptr;
    obs::Counter* dedup_evictions = nullptr;
    obs::Counter* specs_shed_expired = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Gauge* queue_depth_peak = nullptr;
    obs::Histogram* batch_size = nullptr;
    obs::Histogram* gather_frames = nullptr;
    obs::Histogram* process_seconds = nullptr;
    obs::EventTrace* trace = nullptr;
  };
  Hooks hooks_;

  void bump(std::atomic<std::uint64_t>& tally, obs::Counter* metric,
            std::uint64_t n = 1) {
    tally.fetch_add(n, std::memory_order_relaxed);
    if (metric != nullptr) metric->inc(n);
  }

  /// Releases an admitted frame's `specs` admission slots and wakes
  /// drain(). The empty critical section pairs with the drainer's
  /// predicate check so the notify can never be lost between check and
  /// wait.
  void release_slots(std::size_t specs) {
    outstanding_specs_.fetch_sub(specs);
    outstanding_frames_.fetch_sub(1);
    { std::scoped_lock lock(drain_mutex_); }
    drain_cv_.notify_all();
  }
};

}  // namespace landlord::serve
