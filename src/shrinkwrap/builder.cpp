#include "shrinkwrap/builder.hpp"

namespace landlord::shrinkwrap {

namespace {
constexpr std::uint64_t digest_mix(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t h = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}
}  // namespace

ImageBuilder::ImageBuilder(const pkg::Repository& repo,
                           FileTreeParams tree_params, BuildTimeModel time_model,
                           BuildNoiseModel noise)
    : repo_(&repo),
      trees_(repo, tree_params),
      time_model_(time_model),
      noise_(noise) {}

double ImageBuilder::model_seconds(util::Bytes bytes, util::Bytes fetched,
                                   std::uint64_t files) const noexcept {
  return time_model_.fixed_overhead_s +
         static_cast<double>(fetched) / time_model_.download_bytes_per_s +
         static_cast<double>(bytes) / time_model_.compress_bytes_per_s +
         static_cast<double>(files) * time_model_.per_file_s;
}

util::Result<BuiltImage> ImageBuilder::try_build(const spec::Specification& spec,
                                                 fault::FaultInjector* faults,
                                                 fault::FaultOp op) {
  if (faults != nullptr && faults->should_fail(op)) {
    return util::Error{std::string("injected ") + fault::to_string(op) +
                       " failure (occurrence " +
                       std::to_string(faults->occurrences(op) - 1) + ")"};
  }
  return build(spec);
}

BuiltImage ImageBuilder::build(const spec::Specification& spec) {
  ++build_counter_;
  BuiltImage out;
  // Order-independent content digest: XOR of per-file mixed hashes, so
  // two images with identical file contents digest identically.
  std::uint64_t digest = 0;
  spec.packages().for_each([&](pkg::PackageId id) {
    for (const auto& file : trees_.files(id)) {
      out.bytes += file.size;
      ++out.files;
      if (!cache_.contains(file.content)) {
        out.fetched_bytes += file.size;
      }
      cache_.add_chunk(file.content, file.size);
      digest ^= digest_mix(file.content, file.size);
    }
  });
  // Build noise: timestamps, logs, byproducts unique to this invocation.
  for (std::uint32_t n = 0; n < noise_.noise_files; ++n) {
    const ChunkHash noise_chunk =
        digest_mix(0x6e6f697365ULL + build_counter_, n);
    out.bytes += noise_.noise_file_bytes;
    ++out.files;
    out.fetched_bytes += 0;  // generated locally, not downloaded
    cache_.add_chunk(noise_chunk, noise_.noise_file_bytes);
    digest ^= digest_mix(noise_chunk, noise_.noise_file_bytes);
  }
  out.content_digest = digest;
  out.prep_seconds = model_seconds(out.bytes, out.fetched_bytes, out.files);
  return out;
}

}  // namespace landlord::shrinkwrap
