#include "shrinkwrap/builder.hpp"

#include <cassert>
#include <vector>

namespace landlord::shrinkwrap {

namespace {
constexpr std::uint64_t digest_mix(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t h = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}
}  // namespace

ImageBuilder::ImageBuilder(const pkg::Repository& repo,
                           FileTreeParams tree_params, BuildTimeModel time_model,
                           BuildNoiseModel noise, DeltaBuildConfig delta)
    : repo_(&repo),
      trees_(repo, tree_params),
      time_model_(time_model),
      noise_(noise),
      delta_(delta),
      store_(delta.store) {}

double ImageBuilder::model_seconds(util::Bytes bytes, util::Bytes fetched,
                                   std::uint64_t files) const noexcept {
  return model_seconds(bytes, fetched, files, bytes);
}

double ImageBuilder::model_seconds(util::Bytes bytes, util::Bytes fetched,
                                   std::uint64_t files,
                                   util::Bytes written) const noexcept {
  (void)bytes;
  return time_model_.fixed_overhead_s +
         static_cast<double>(fetched) / time_model_.download_bytes_per_s +
         static_cast<double>(written) / time_model_.compress_bytes_per_s +
         static_cast<double>(files) * time_model_.per_file_s;
}

util::Result<BuiltImage> ImageBuilder::try_build(const spec::Specification& spec,
                                                 fault::FaultInjector* faults,
                                                 fault::FaultOp op,
                                                 std::uint64_t image_key) {
  if (faults != nullptr && faults->should_fail(op)) {
    return util::Error{std::string("injected ") + fault::to_string(op) +
                       " failure (occurrence " +
                       std::to_string(faults->occurrences(op) - 1) + ")"};
  }
  return build(spec, image_key);
}

BuiltImage ImageBuilder::build(const spec::Specification& spec,
                               std::uint64_t image_key) {
  ++build_counter_;
  BuiltImage out;
  const bool track = delta_.enabled && image_key != kNoImageKey;
  std::vector<ChunkRef> tree;
  // Order-independent content digest: XOR of per-file mixed hashes, so
  // two images with identical file contents digest identically.
  std::uint64_t digest = 0;
  const auto record_file = [&](ChunkHash content, util::Bytes size,
                               bool local) {
    out.bytes += size;
    ++out.files;
    // Locally generated files (build noise) are never downloaded.
    if (!local && !cache_.contains(content)) out.fetched_bytes += size;
    // Same content always re-registers with the same size (sizes are
    // derived from the content hash), so this cannot fail.
    auto added = cache_.add_chunk(content, size);
    assert(added.ok());
    (void)added;
    digest ^= digest_mix(content, size);
    if (track) {
      const auto spans = model_chunks(content, size, delta_.store.chunker);
      tree.insert(tree.end(), spans.begin(), spans.end());
    }
  };
  spec.packages().for_each([&](pkg::PackageId id) {
    for (const auto& file : trees_.files(id)) {
      record_file(file.content, file.size, /*local=*/false);
    }
  });
  // Build noise: timestamps, logs, byproducts unique to this invocation.
  for (std::uint32_t n = 0; n < noise_.noise_files; ++n) {
    const ChunkHash noise_chunk =
        digest_mix(0x6e6f697365ULL + build_counter_, n);
    record_file(noise_chunk, noise_.noise_file_bytes, /*local=*/true);
  }
  out.content_digest = digest;

  out.written_bytes = out.bytes;  // the paper's full-rewrite charge
  bool delta_write = false;
  if (track) {
    auto receipt = store_.put(image_key, tree);
    // A put error (chunk-identity collision) falls back to full-rewrite
    // accounting rather than failing the build: the image itself is
    // fine, only its delta bookkeeping is not.
    if (receipt.ok()) {
      out.written_bytes = receipt.value().bytes_written;
      out.chain_depth = receipt.value().chain_depth;
      out.delta_write = receipt.value().delta;
      out.repacked = receipt.value().repacked;
      delta_write = receipt.value().delta;
    }
  }
  out.prep_seconds =
      model_seconds(out.bytes, out.fetched_bytes, out.files, out.written_bytes) +
      (delta_write ? time_model_.delta_overhead_s : 0.0);
  return out;
}

}  // namespace landlord::shrinkwrap
