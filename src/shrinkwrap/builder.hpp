// Shrinkwrap image builder: materialises a specification into a
// container image, reporting the quantities the paper measures (Fig. 2):
// image byte size, file count, and modelled preparation time
// ("the amount of time required to create such an image by downloading
// the contents via Shrinkwrap and compressing the resulting data").
//
// The time model is calibrated against Fig. 2's empirical band — a few
// GB of minimal image takes roughly 40-120 s to prepare — and is a
// deterministic function of bytes and file count, so merge-cost
// accounting in the simulator is hardware-independent (the paper makes
// the same choice, using cumulative bytes written as the overhead metric).
//
// Delta builds: the paper charges every merge with a full image rewrite.
// When a DeltaBuildConfig is enabled and the caller names the image being
// (re)built, the builder expands the image into content-defined chunks
// (chunker.hpp) and records it in a delta-chained ImageStore — the write
// charge becomes only the chunks new to the chain plus a manifest, with
// periodic repacks. Decision-relevant outputs (bytes, fetched_bytes,
// files, content_digest) are bit-identical with the store on or off; only
// the write accounting and prep time differ.
#pragma once

#include <cstdint>

#include "fault/fault.hpp"
#include "pkg/repository.hpp"
#include "shrinkwrap/cas.hpp"
#include "shrinkwrap/filetree.hpp"
#include "shrinkwrap/imagestore.hpp"
#include "spec/specification.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace landlord::shrinkwrap {

/// Sentinel for "not a tracked image" — the build bypasses the delta
/// store (exact-match rebuilds, probes) and is charged as a full write.
inline constexpr std::uint64_t kNoImageKey = ~std::uint64_t{0};

/// Result of materialising one image.
struct BuiltImage {
  util::Bytes bytes = 0;          ///< logical image size (sum of file sizes)
  util::Bytes fetched_bytes = 0;  ///< bytes actually downloaded (CAS misses)
  std::uint64_t files = 0;        ///< file count in the image
  double prep_seconds = 0.0;      ///< modelled preparation time
  /// Combined digest of every file's content hash — the identity a
  /// content-level cache would compare. With build noise enabled this
  /// differs between builds of identical specifications (§IV).
  std::uint64_t content_digest = 0;
  /// Bytes written to image storage: `bytes` under full-rewrite
  /// accounting; the delta receipt (new chunks + manifest) otherwise.
  util::Bytes written_bytes = 0;
  std::uint32_t chain_depth = 0;  ///< delta generations after this build
  bool delta_write = false;       ///< written as a delta generation
  bool repacked = false;          ///< this build flattened the chain
};

struct BuildTimeModel {
  double fixed_overhead_s = 18.0;        ///< mount, catalog walk, image init
  double download_bytes_per_s = 180e6;   ///< WAN fetch of missing chunks
  double compress_bytes_per_s = 350e6;   ///< squashfs/compression pass
  double per_file_s = 0.0006;            ///< metadata and small-file cost
  /// Flat cost of a delta write (open the chain, diff manifests, fsync
  /// the new generation) — paid instead of compressing the full image.
  double delta_overhead_s = 1.5;
};

/// Build nondeterminism model (§IV: "almost all build systems will
/// produce variations in timestamps, logs, configuration files, etc.
/// that make direct comparison of images difficult"). When enabled,
/// every build invocation emits `noise_files` files with build-unique
/// content, so two builds of the *same* specification produce images
/// with different content digests — demonstrating why LANDLORD compares
/// specifications rather than image contents.
struct BuildNoiseModel {
  std::uint32_t noise_files = 0;  ///< per-build unique files (0 = deterministic)
  util::Bytes noise_file_bytes = 64 * util::kKiB;
};

/// Chunk-level delta storage for built images. Disabled by default —
/// every build is then charged as a full rewrite, the paper's model.
struct DeltaBuildConfig {
  bool enabled = false;
  ImageStoreConfig store;
};

/// Builds images from specifications against a repository. A local CAS
/// cache persists across builds (chunks already fetched are not fetched
/// again), mirroring Shrinkwrap's cache directory on the head node.
class ImageBuilder {
 public:
  ImageBuilder(const pkg::Repository& repo, FileTreeParams tree_params = {},
               BuildTimeModel time_model = {}, BuildNoiseModel noise = {},
               DeltaBuildConfig delta = {});

  /// Materialises `spec` (whose package set must already be
  /// dependency-closed). Updates the local chunk cache. When the delta
  /// store is enabled and `image_key` names a tracked image, the result
  /// is recorded there and `written_bytes` reflects the delta receipt.
  [[nodiscard]] BuiltImage build(const spec::Specification& spec,
                                 std::uint64_t image_key = kNoImageKey);

  /// Fallible build: consults `faults` (may be null) before any state
  /// changes, so a failed attempt leaves the builder — chunk cache and
  /// build counter — untouched and is safely retryable. With a null
  /// injector or an empty plan this is bit-identical to build().
  /// `op` names the operation class being attempted (a fresh download
  /// vs. the rewrite of a merged image) so fault plans can target them
  /// independently.
  [[nodiscard]] util::Result<BuiltImage> try_build(
      const spec::Specification& spec, fault::FaultInjector* faults = nullptr,
      fault::FaultOp op = fault::FaultOp::kBuilderDownload,
      std::uint64_t image_key = kNoImageKey);

  /// The persistent local chunk cache (download dedup).
  [[nodiscard]] const Cas& chunk_cache() const noexcept { return cache_; }

  /// The delta-chained image store (meaningful when delta is enabled).
  /// Mutable: the cache owner drops evicted images and clears the store
  /// on restore.
  [[nodiscard]] ImageStore& image_store() noexcept { return store_; }
  [[nodiscard]] const ImageStore& image_store() const noexcept { return store_; }

  [[nodiscard]] bool delta_enabled() const noexcept { return delta_.enabled; }

  /// Prep time for an image of `bytes`/`files` when `fetched` bytes must
  /// be downloaded; exposed for direct calibration tests. The four-arg
  /// overload charges the compression pass on `written` bytes instead of
  /// the full image (the delta path); with written == bytes the two
  /// agree exactly.
  [[nodiscard]] double model_seconds(util::Bytes bytes, util::Bytes fetched,
                                     std::uint64_t files) const noexcept;
  [[nodiscard]] double model_seconds(util::Bytes bytes, util::Bytes fetched,
                                     std::uint64_t files,
                                     util::Bytes written) const noexcept;

 private:
  const pkg::Repository* repo_;
  FileTreeModel trees_;
  BuildTimeModel time_model_;
  BuildNoiseModel noise_;
  DeltaBuildConfig delta_;
  std::uint64_t build_counter_ = 0;
  Cas cache_;
  ImageStore store_;
};

}  // namespace landlord::shrinkwrap
