#include "shrinkwrap/cas.hpp"

#include <cassert>

namespace landlord::shrinkwrap {

void Cas::add_chunk(ChunkHash hash, util::Bytes size) {
  auto [it, inserted] = chunks_.try_emplace(hash, Entry{size, 0});
  if (inserted) {
    unique_bytes_ += size;
  } else {
    assert(it->second.size == size && "chunk hash re-registered with new size");
  }
  ++it->second.refs;
  logical_bytes_ += it->second.size;
}

void Cas::drop_chunk(ChunkHash hash) {
  auto it = chunks_.find(hash);
  if (it == chunks_.end()) return;
  logical_bytes_ -= it->second.size;
  if (--it->second.refs == 0) {
    unique_bytes_ -= it->second.size;
    chunks_.erase(it);
  }
}

}  // namespace landlord::shrinkwrap
