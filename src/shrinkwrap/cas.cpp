#include "shrinkwrap/cas.hpp"

#include <string>

namespace landlord::shrinkwrap {

util::Result<bool> Cas::add_chunk(ChunkHash hash, util::Bytes size) {
  auto [it, inserted] = chunks_.try_emplace(hash, Entry{size, 0});
  if (inserted) {
    unique_bytes_ += size;
  } else if (it->second.size != size) {
    return util::Error{"chunk " + std::to_string(hash) +
                       " re-registered with size " + std::to_string(size) +
                       " but the store holds " +
                       std::to_string(it->second.size)};
  }
  ++it->second.refs;
  logical_bytes_ += it->second.size;
  return inserted;
}

void Cas::drop_chunk(ChunkHash hash) {
  auto it = chunks_.find(hash);
  if (it == chunks_.end()) return;
  logical_bytes_ -= it->second.size;
  if (--it->second.refs == 0) {
    unique_bytes_ -= it->second.size;
    chunks_.erase(it);
  }
}

}  // namespace landlord::shrinkwrap
