// Content-addressed storage (CAS), modelling the CVMFS object store.
//
// CVMFS stores every file as a content-addressed chunk, so two package
// versions sharing files store them once. The simulator never holds real
// data; the store tracks chunk-hash -> size with reference counts and
// answers the two questions the experiments need: how many *logical*
// bytes does a set of chunks represent, and how many *unique* bytes after
// deduplication.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace landlord::shrinkwrap {

/// Content hash of a chunk (already-mixed 64-bit value).
using ChunkHash = std::uint64_t;

class Cas {
 public:
  /// Registers a reference to a chunk; inserts it on first reference and
  /// returns true exactly then. Re-registering a hash with a different
  /// size is a typed error — a content-model bug or a manifest corrupted
  /// on disk (hash collisions are out of model) — and leaves the store
  /// untouched, so callers can surface it instead of silently corrupting
  /// the byte ledgers (this used to be a debug-only assert).
  [[nodiscard]] util::Result<bool> add_chunk(ChunkHash hash, util::Bytes size);

  /// Drops one reference; the chunk is freed when the count reaches zero.
  /// Dropping an unknown chunk is a no-op (idempotent cleanup).
  void drop_chunk(ChunkHash hash);

  [[nodiscard]] bool contains(ChunkHash hash) const noexcept {
    return chunks_.contains(hash);
  }

  /// Live reference count for a chunk; 0 when absent.
  [[nodiscard]] std::uint32_t refs(ChunkHash hash) const noexcept {
    const auto it = chunks_.find(hash);
    return it == chunks_.end() ? 0 : it->second.refs;
  }

  /// Registered size of a chunk, when present.
  [[nodiscard]] std::optional<util::Bytes> size_of(ChunkHash hash) const {
    const auto it = chunks_.find(hash);
    if (it == chunks_.end()) return std::nullopt;
    return it->second.size;
  }

  /// Number of distinct chunks currently referenced.
  [[nodiscard]] std::size_t chunk_count() const noexcept { return chunks_.size(); }

  /// Total bytes of distinct chunks (deduplicated footprint).
  [[nodiscard]] util::Bytes unique_bytes() const noexcept { return unique_bytes_; }

  /// Total logical bytes across all references (pre-dedup footprint).
  [[nodiscard]] util::Bytes logical_bytes() const noexcept { return logical_bytes_; }

  /// Visits every chunk as fn(hash, size, refs) in unspecified order —
  /// what the from-scratch ledger reconciliation recomputes from.
  template <typename Fn>
  void for_each_chunk(Fn&& fn) const {
    for (const auto& [hash, entry] : chunks_) fn(hash, entry.size, entry.refs);
  }

 private:
  struct Entry {
    util::Bytes size = 0;
    std::uint32_t refs = 0;
  };
  std::unordered_map<ChunkHash, Entry> chunks_;
  util::Bytes unique_bytes_ = 0;
  util::Bytes logical_bytes_ = 0;
};

}  // namespace landlord::shrinkwrap
