#include "shrinkwrap/chunker.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/checksum.hpp"
#include "util/rng.hpp"

namespace landlord::shrinkwrap {

namespace {

/// Number of mask bits giving an expected run of ~`span` bytes between
/// cut hits (P(cut) = 2^-bits per byte).
[[nodiscard]] int mask_bits_for(util::Bytes span) noexcept {
  int bits = 1;
  while ((1ULL << bits) < span && bits < 48) ++bits;
  return bits;
}

/// A mask of `bits` set bits spread across the gear hash's upper half,
/// where bytes from the whole window have mixed in (the low bits only
/// see the most recent byte).
[[nodiscard]] std::uint64_t spread_mask(int bits, std::uint64_t seed) noexcept {
  std::uint64_t mask = 0;
  std::uint64_t state = seed ^ 0x6d61736bULL;  // "mask"
  int placed = 0;
  while (placed < bits) {
    const int bit = 16 + static_cast<int>(util::splitmix64(state) % 48);
    const std::uint64_t flag = 1ULL << bit;
    if ((mask & flag) == 0) {
      mask |= flag;
      ++placed;
    }
  }
  return mask;
}

}  // namespace

Chunker::Chunker(ChunkerParams params) : params_(params) {
  assert(params_.valid() && "chunker params must satisfy min <= target <= max");
  std::uint64_t state = params_.seed;
  for (auto& entry : gear_) entry = util::splitmix64(state);
  // FastCDC normalisation: harder mask before the normal (target) point
  // so small chunks are rare, easier mask after it so oversized chunks
  // are rare. +2/-2 bits shifts the cut probability by 4x each way.
  const int bits = mask_bits_for(params_.target_size);
  mask_strict_ = spread_mask(std::min(bits + 2, 48), params_.seed);
  mask_relaxed_ = spread_mask(std::max(bits - 2, 1), params_.seed + 1);
}

std::size_t Chunker::cut_point(const std::uint8_t* data,
                               std::size_t size) const noexcept {
  if (size <= params_.min_size) return size;
  const std::size_t normal = std::min<std::size_t>(size, params_.target_size);
  const std::size_t cap = std::min<std::size_t>(size, params_.max_size);
  std::uint64_t hash = 0;
  // The gear hash warms up over the skipped minimum-size prefix's tail
  // so the first eligible position already sees a full window.
  std::size_t i = params_.min_size >= 64 ? params_.min_size - 64 : 0;
  for (; i < params_.min_size; ++i) hash = (hash << 1) + gear_[data[i]];
  for (; i < normal; ++i) {
    hash = (hash << 1) + gear_[data[i]];
    if ((hash & mask_strict_) == 0) return i + 1;
  }
  for (; i < cap; ++i) {
    hash = (hash << 1) + gear_[data[i]];
    if ((hash & mask_relaxed_) == 0) return i + 1;
  }
  return cap;
}

std::vector<ChunkSpan> Chunker::chunk(const std::uint8_t* data,
                                      std::size_t size) const {
  std::vector<ChunkSpan> out;
  std::size_t offset = 0;
  while (offset < size) {
    const std::size_t len = cut_point(data + offset, size - offset);
    ChunkSpan span;
    span.offset = offset;
    span.size = len;
    span.hash = util::fnv1a64(
        std::string_view(reinterpret_cast<const char*>(data + offset), len),
        util::kFnv1aOffset ^ params_.seed);
    out.push_back(span);
    offset += len;
  }
  return out;
}

ChunkHash chunk_id(ChunkHash file_content, std::uint64_t ordinal,
                   std::uint64_t seed) noexcept {
  // Weyl-step the ordinal rather than XOR-folding it: XOR lets files
  // whose content hashes differ only in low bits collide at shifted
  // ordinals ((c ^ 2, ord) vs (c, ord + 1)), which matters when callers
  // feed small synthetic content ids.
  std::uint64_t state = file_content + 0x9e3779b97f4a7c15ULL * (ordinal + 1);
  state ^= seed * 0xff51afd7ed558ccdULL;
  const std::uint64_t a = util::splitmix64(state);
  return a ^ util::splitmix64(state);
}

std::vector<ChunkRef> model_chunks(ChunkHash file_content,
                                   util::Bytes file_size,
                                   const ChunkerParams& params) {
  assert(params.valid());
  std::vector<ChunkRef> out;
  if (file_size == 0) return out;
  // Cut-point stream seeded by the file's content identity alone, so a
  // file shared across package versions expands to identical chunks and
  // dedups in the chunk CAS exactly like its whole-file hash used to.
  std::uint64_t state = file_content ^ (params.seed * 0xff51afd7ed558ccdULL);
  util::Bytes offset = 0;
  std::uint64_t ordinal = 0;
  const double spread =
      static_cast<double>(params.target_size - params.min_size + 1);
  while (offset < file_size) {
    const util::Bytes remaining = file_size - offset;
    util::Bytes len = remaining;
    if (remaining > params.min_size) {
      // Exponential gap past the minimum — the renewal process a
      // mask-hit chunker induces — clamped to the FastCDC max.
      const double u =
          static_cast<double>(util::splitmix64(state) >> 11) * 0x1.0p-53;
      const auto gap = static_cast<util::Bytes>(-std::log1p(-u) * spread);
      len = std::min({params.min_size + gap, params.max_size, remaining});
    }
    out.push_back(ChunkRef{chunk_id(file_content, ordinal, params.seed), len});
    offset += len;
    ++ordinal;
  }
  return out;
}

}  // namespace landlord::shrinkwrap
