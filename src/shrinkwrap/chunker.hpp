// Content-defined chunking for the shrinkwrap CAS.
//
// CVMFS (and Charliecloud's Git-backed build cache) deduplicate at block
// granularity, not file granularity: a rebuilt package whose files shift
// by a few bytes still shares almost every block with its predecessor.
// This module provides the two forms the simulator needs:
//
//   1. Chunker::chunk() — a real, seeded FastCDC-style chunker over byte
//      buffers. Boundaries are chosen where a gear rolling hash meets a
//      mask, so they depend only on local content: inserting or deleting
//      bytes mid-stream disturbs O(1) chunks before the boundaries
//      re-synchronise. The property suite (tests/shrinkwrap/
//      chunker_test.cpp) drives this implementation directly.
//
//   2. model_chunks() — the analytic twin used on the simulator hot
//      path. Modelled files carry only (content hash, size); expanding
//      them byte-for-byte per build would be absurd, so we sample cut
//      points from the same (min, target, max) size distribution,
//      seeded by the file's content hash. Identical content hash ⇒
//      identical chunk list, so cross-version file sharing dedups at
//      chunk granularity exactly as it would with real bytes.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "shrinkwrap/cas.hpp"
#include "util/bytes.hpp"

namespace landlord::shrinkwrap {

struct ChunkerParams {
  util::Bytes min_size = 256 * util::kKiB;
  util::Bytes target_size = util::kMiB;  ///< expected chunk size (normal point)
  util::Bytes max_size = 4 * util::kMiB;
  /// Seeds the gear table (real chunker) and the cut-point stream
  /// (modelled chunker). Two parties sharing a seed agree on identity.
  std::uint64_t seed = 0x63646331ULL;  // "cdc1"

  [[nodiscard]] bool valid() const noexcept {
    return min_size > 0 && min_size <= target_size && target_size <= max_size;
  }
};

/// One chunk of a byte stream.
struct ChunkSpan {
  std::size_t offset = 0;
  util::Bytes size = 0;
  ChunkHash hash = 0;  ///< FNV-1a over the chunk's bytes, seeded
};

/// A (hash, size) chunk reference — what manifests and the CAS store.
struct ChunkRef {
  ChunkHash hash = 0;
  util::Bytes size = 0;

  [[nodiscard]] bool operator==(const ChunkRef&) const noexcept = default;
};

/// Seeded FastCDC-style content-defined chunker. Stateless between
/// calls; two Chunkers with equal params agree exactly.
class Chunker {
 public:
  explicit Chunker(ChunkerParams params = {});

  /// Splits `data` into content-defined chunks covering it exactly.
  /// Every chunk is in [min_size, max_size] except a final runt.
  [[nodiscard]] std::vector<ChunkSpan> chunk(const std::uint8_t* data,
                                             std::size_t size) const;
  [[nodiscard]] std::vector<ChunkSpan> chunk(
      const std::vector<std::uint8_t>& data) const {
    return chunk(data.data(), data.size());
  }

  [[nodiscard]] const ChunkerParams& params() const noexcept { return params_; }

 private:
  /// Finds the next cut point in [min, max] bytes from `data`.
  [[nodiscard]] std::size_t cut_point(const std::uint8_t* data,
                                      std::size_t size) const noexcept;

  ChunkerParams params_;
  std::array<std::uint64_t, 256> gear_{};
  std::uint64_t mask_strict_ = 0;   ///< before the normal point: cut rarely
  std::uint64_t mask_relaxed_ = 0;  ///< past the normal point: cut eagerly
};

/// Stable chunk identity for modelled content: mixes the owning file's
/// content hash, the chunk ordinal, and the chunker seed.
[[nodiscard]] ChunkHash chunk_id(ChunkHash file_content, std::uint64_t ordinal,
                                 std::uint64_t seed) noexcept;

/// Analytically expands a modelled file (content hash + size) into the
/// chunk list the real chunker would plausibly produce: deterministic in
/// (content, size, params), sizes sum exactly to `size`, every chunk in
/// [min_size, max_size] except a final runt. Identical inputs across
/// builds, versions, and processes yield identical chunk identities.
[[nodiscard]] std::vector<ChunkRef> model_chunks(ChunkHash file_content,
                                                 util::Bytes file_size,
                                                 const ChunkerParams& params);

}  // namespace landlord::shrinkwrap
