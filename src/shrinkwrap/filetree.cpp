#include "shrinkwrap/filetree.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/rng.hpp"

namespace landlord::shrinkwrap {

namespace {

/// Stable 64-bit hash of a string (FNV-1a).
std::uint64_t hash_string(const std::string& text) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char ch : text) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001b3ULL;
  }
  return h;
}

constexpr std::uint64_t mix(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t h = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

}  // namespace

FileTreeModel::FileTreeModel(const pkg::Repository& repo, FileTreeParams params)
    : repo_(&repo), params_(params) {
  // Identify each package's predecessor version: same project name, the
  // greatest version below it in declaration order. The synthetic
  // generator declares versions consecutively, so a linear scan keyed on
  // name finds predecessors for any repository layout.
  prev_version_.assign(repo.size(), -1);
  std::unordered_map<std::string, std::uint32_t> last_seen;
  for (std::uint32_t i = 0; i < repo.size(); ++i) {
    const auto& info = repo[pkg::package_id(i)];
    auto it = last_seen.find(info.name);
    if (it != last_seen.end()) {
      prev_version_[i] = static_cast<std::int32_t>(it->second);
      it->second = i;
    } else {
      last_seen.emplace(info.name, i);
    }
  }
}

namespace {

/// Number of virtual files a package expands into.
std::uint32_t file_count(const pkg::PackageInfo& info, const FileTreeParams& params) {
  const auto want = static_cast<std::uint32_t>(
      info.size / std::max<util::Bytes>(1, params.mean_file_size));
  return std::clamp(want, params.min_files, params.max_files);
}

/// Did this package's build change file index f relative to its
/// predecessor version? Always true for the first version.
bool changed_file(std::uint64_t pkg_hash, std::uint32_t f, bool has_prev,
                  double share_probability) {
  if (!has_prev) return true;
  util::Rng coin(mix(pkg_hash, f));
  return coin.uniform_double() >= share_probability;
}

}  // namespace

std::vector<VirtualFile> FileTreeModel::files(pkg::PackageId id) const {
  const auto& info = (*repo_)[id];
  const std::uint32_t count = file_count(info, params_);

  std::vector<VirtualFile> out;
  out.reserve(count);

  for (std::uint32_t f = 0; f < count; ++f) {
    // Walk the version chain back to the *anchor*: the most recent
    // ancestor (possibly this package) whose build changed file f. All
    // versions sharing the anchor share content hash AND size, which is
    // what a content-addressed store requires.
    auto owner_index = pkg::to_index(id);
    for (;;) {
      const auto& owner_info = (*repo_)[pkg::package_id(owner_index)];
      const std::uint64_t owner_hash = hash_string(owner_info.key());
      const std::int32_t prev = prev_version_[owner_index];
      if (changed_file(owner_hash, f, prev >= 0,
                       params_.version_share_probability)) {
        break;
      }
      owner_index = static_cast<std::uint32_t>(prev);
    }

    const auto& owner_info = (*repo_)[pkg::package_id(owner_index)];
    const std::uint64_t owner_hash = hash_string(owner_info.key());
    VirtualFile file;
    file.path = "f" + std::to_string(f);
    file.content = mix(owner_hash, 0x66696c65ULL + f);
    // File size is derived from the anchor owner's per-file budget, so
    // every package inheriting this content agrees on the size and tree
    // totals stay near the declared package size.
    const double base = static_cast<double>(owner_info.size) /
                        static_cast<double>(file_count(owner_info, params_));
    util::Rng size_rng(mix(file.content, 1));
    file.size = std::max<util::Bytes>(
        1, static_cast<util::Bytes>(base * (0.5 + size_rng.uniform_double())));
    out.push_back(std::move(file));
  }
  return out;
}

util::Bytes FileTreeModel::tree_bytes(pkg::PackageId id) const {
  util::Bytes total = 0;
  for (const auto& file : files(id)) total += file.size;
  return total;
}

}  // namespace landlord::shrinkwrap
