// Virtual per-package file trees.
//
// Shrinkwrap materialises images at file granularity from CVMFS. We
// model each package as a deterministic list of virtual files (path,
// size, content hash) derived from the package's identity and size.
// Consecutive versions of the same project share most file contents —
// matching CVMFS, where a rebuild changes only some files — which is what
// makes the CAS dedup numbers (and the full-repo-image economics the
// paper discusses in §III) realistic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pkg/repository.hpp"
#include "shrinkwrap/cas.hpp"
#include "util/bytes.hpp"

namespace landlord::shrinkwrap {

struct VirtualFile {
  std::string path;    ///< path inside the package prefix
  util::Bytes size = 0;
  ChunkHash content = 0;
};

struct FileTreeParams {
  /// Mean file size; file count scales as package size / mean (clamped).
  util::Bytes mean_file_size = 4 * util::kMiB;
  std::uint32_t min_files = 3;
  std::uint32_t max_files = 256;
  /// Probability that a file's content is identical to the same path in
  /// the project's previous version (CVMFS-style cross-version sharing).
  double version_share_probability = 0.7;
};

/// Deterministically expands packages into virtual file trees. Two
/// FileTreeModels over the same repository and params agree exactly.
class FileTreeModel {
 public:
  explicit FileTreeModel(const pkg::Repository& repo, FileTreeParams params = {});

  /// The file listing for a package. Deterministic; computed on demand.
  [[nodiscard]] std::vector<VirtualFile> files(pkg::PackageId id) const;

  /// Sum of file sizes for a package; equals the repository package size
  /// up to rounding (the last file absorbs the remainder).
  [[nodiscard]] util::Bytes tree_bytes(pkg::PackageId id) const;

 private:
  const pkg::Repository* repo_;
  FileTreeParams params_;
  // id of the previous version of the same project, if any (for sharing).
  std::vector<std::int32_t> prev_version_;
};

}  // namespace landlord::shrinkwrap
