#include "shrinkwrap/imagestore.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace landlord::shrinkwrap {

namespace {

/// Encoded size of a manifest with `entries` chunk entries.
[[nodiscard]] util::Bytes manifest_encoded_bytes(std::size_t entries) noexcept {
  return kManifestHeaderSize + entries * kManifestEntrySize +
         sizeof(std::uint64_t);
}

/// Canonical entry order so a manifest's encoding (and so its digest) is
/// independent of hash-map iteration order.
void sort_chunks(std::vector<ChunkRef>& chunks) {
  std::sort(chunks.begin(), chunks.end(),
            [](const ChunkRef& a, const ChunkRef& b) { return a.hash < b.hash; });
}

}  // namespace

ImageStore::ImageStore(ImageStoreConfig config) : config_(config) {}

util::Result<WriteReceipt> ImageStore::put(std::uint64_t key,
                                           const std::vector<ChunkRef>& tree) {
  std::scoped_lock lock(mutex_);

  // Deduplicate the tree: an image stores each distinct chunk once even
  // when several files share content.
  std::unordered_map<ChunkHash, util::Bytes> live;
  live.reserve(tree.size());
  util::Bytes live_bytes = 0;
  for (const ChunkRef& chunk : tree) {
    auto [it, inserted] = live.try_emplace(chunk.hash, chunk.size);
    if (inserted) {
      live_bytes += chunk.size;
    } else if (it->second != chunk.size) {
      return util::Error{"chunk " + std::to_string(chunk.hash) +
                         " appears twice in one tree with sizes " +
                         std::to_string(it->second) + " and " +
                         std::to_string(chunk.size)};
    }
  }

  auto [entry_it, fresh] = images_.try_emplace(key);
  Entry& entry = entry_it->second;
  ++stats_.puts;

  if (fresh) {
    auto receipt = put_base_locked(key, entry, std::move(live), live_bytes);
    if (!receipt.ok()) images_.erase(entry_it);
    return receipt;
  }

  // A put while a repack is prepared first finishes the repack (the new
  // base is durable; the old chain is garbage either way).
  if (entry.pending_base.has_value()) {
    const WriteReceipt committed = commit_locked(entry);
    stats_.reclaimed_bytes += committed.reclaimed_bytes;
  }

  // Chain at the cap: flatten to the *incoming* tree rather than stack
  // one more delta. Everything in the old chain the new tree no longer
  // names is reclaimed.
  if (entry.chain.size() > config_.chain_cap) {
    util::Bytes retained = 0;
    for (const auto& [hash, size] : live) {
      if (entry.chain_set.contains(hash)) retained += size;
    }
    const util::Bytes reclaimed = entry.chain_bytes - retained;
    release_chain_locked(entry);
    entry.live = std::move(live);
    entry.live_bytes = live_bytes;
    auto receipt = put_base_locked(key, entry, entry.live, entry.live_bytes);
    if (!receipt.ok()) {
      // The old chain's refs are gone and the base rolled itself back;
      // forget the image rather than leave a headless chain behind.
      images_.erase(entry_it);
      return receipt;
    }
    ++stats_.repacks;
    stats_.reclaimed_bytes += reclaimed;
    receipt.value().repacked = true;
    receipt.value().reclaimed_bytes = reclaimed;
    return receipt;
  }

  // Delta generation: only chunks the chain has never stored.
  ChunkManifest delta;
  delta.kind = ManifestKind::kDelta;
  delta.image_key = key;
  delta.generation = static_cast<std::uint32_t>(entry.chain.size());
  delta.parent_digest = manifest_digest(entry.chain.back());
  util::Bytes payload = 0;
  for (const auto& [hash, size] : live) {
    if (entry.chain_set.contains(hash)) continue;
    delta.chunks.push_back({hash, size});
    payload += size;
  }
  sort_chunks(delta.chunks);

  std::size_t added = 0;
  for (const ChunkRef& chunk : delta.chunks) {
    auto r = cas_.add_chunk(chunk.hash, chunk.size);
    if (!r.ok()) {
      // Roll back the refs taken so far; the store stays consistent.
      for (std::size_t i = 0; i < added; ++i) {
        cas_.drop_chunk(delta.chunks[i].hash);
      }
      return util::Error{std::move(r).error().message};
    }
    ++added;
  }
  for (const ChunkRef& chunk : delta.chunks) {
    entry.chain_set.insert(chunk.hash);
    entry.chain_bytes += chunk.size;
  }

  WriteReceipt receipt;
  receipt.manifest_bytes = manifest_encoded_bytes(delta.chunks.size());
  receipt.payload_bytes = payload;
  receipt.bytes_written = payload + receipt.manifest_bytes;
  receipt.new_chunks = static_cast<std::uint32_t>(delta.chunks.size());
  receipt.delta = true;
  entry.chain.push_back(std::move(delta));
  receipt.chain_depth = static_cast<std::uint32_t>(entry.chain.size() - 1);
  entry.live = std::move(live);
  entry.live_bytes = live_bytes;

  ++stats_.delta_writes;
  stats_.bytes_written += receipt.bytes_written;
  stats_.manifest_bytes_written += receipt.manifest_bytes;
  return receipt;
}

util::Result<WriteReceipt> ImageStore::put_base_locked(
    std::uint64_t key, Entry& entry,
    std::unordered_map<ChunkHash, util::Bytes> tree, util::Bytes tree_bytes) {
  ChunkManifest base;
  base.kind = ManifestKind::kBase;
  base.image_key = key;
  base.chunks.reserve(tree.size());
  for (const auto& [hash, size] : tree) base.chunks.push_back({hash, size});
  sort_chunks(base.chunks);

  std::size_t added = 0;
  for (const ChunkRef& chunk : base.chunks) {
    auto r = cas_.add_chunk(chunk.hash, chunk.size);
    if (!r.ok()) {
      for (std::size_t i = 0; i < added; ++i) {
        cas_.drop_chunk(base.chunks[i].hash);
      }
      return util::Error{std::move(r).error().message};
    }
    ++added;
  }

  WriteReceipt receipt;
  receipt.manifest_bytes = manifest_encoded_bytes(base.chunks.size());
  receipt.payload_bytes = tree_bytes;
  receipt.bytes_written = tree_bytes + receipt.manifest_bytes;
  receipt.new_chunks = static_cast<std::uint32_t>(base.chunks.size());

  entry.chain.clear();
  entry.chain_set.clear();
  entry.chain_set.reserve(base.chunks.size());
  for (const ChunkRef& chunk : base.chunks) entry.chain_set.insert(chunk.hash);
  entry.chain_bytes = tree_bytes;
  entry.chain.push_back(std::move(base));
  entry.live = std::move(tree);
  entry.live_bytes = tree_bytes;

  ++stats_.base_writes;
  stats_.bytes_written += receipt.bytes_written;
  stats_.manifest_bytes_written += receipt.manifest_bytes;
  return receipt;
}

void ImageStore::drop(std::uint64_t key) {
  std::scoped_lock lock(mutex_);
  auto it = images_.find(key);
  if (it == images_.end()) return;
  release_chain_locked(it->second);
  if (it->second.pending_base.has_value()) {
    for (const ChunkRef& chunk : it->second.pending_base->chunks) {
      cas_.drop_chunk(chunk.hash);
    }
  }
  images_.erase(it);
  ++stats_.drops;
}

void ImageStore::release_chain_locked(Entry& entry) {
  for (const ChunkManifest& manifest : entry.chain) {
    for (const ChunkRef& chunk : manifest.chunks) cas_.drop_chunk(chunk.hash);
  }
  entry.chain.clear();
  entry.chain_set.clear();
  entry.chain_bytes = 0;
}

util::Result<WriteReceipt> ImageStore::repack(std::uint64_t key) {
  std::scoped_lock lock(mutex_);
  auto it = images_.find(key);
  if (it == images_.end() || it->second.chain.size() <= 1 ||
      it->second.pending_base.has_value()) {
    return WriteReceipt{};
  }
  if (!prepare_locked(key, it->second)) return WriteReceipt{};
  WriteReceipt receipt = commit_locked(it->second);
  ++stats_.repacks;
  stats_.bytes_written += receipt.bytes_written;
  stats_.manifest_bytes_written += receipt.manifest_bytes;
  stats_.reclaimed_bytes += receipt.reclaimed_bytes;
  return receipt;
}

bool ImageStore::repack_prepare(std::uint64_t key) {
  std::scoped_lock lock(mutex_);
  auto it = images_.find(key);
  if (it == images_.end() || it->second.chain.size() <= 1 ||
      it->second.pending_base.has_value()) {
    return false;
  }
  return prepare_locked(key, it->second);
}

bool ImageStore::prepare_locked(std::uint64_t key, Entry& entry) {
  ChunkManifest base;
  base.kind = ManifestKind::kBase;
  base.image_key = key;
  base.chunks.reserve(entry.live.size());
  for (const auto& [hash, size] : entry.live) base.chunks.push_back({hash, size});
  sort_chunks(base.chunks);
  // The new base holds its own references: live chunks are pinned by both
  // the old chain and the prepared base, so a kill between the phases
  // never leaves a live chunk unreferenced.
  for (const ChunkRef& chunk : base.chunks) {
    auto r = cas_.add_chunk(chunk.hash, chunk.size);
    assert(r.ok());  // live chunks already registered with these sizes
    (void)r;
  }
  entry.pending_base = std::move(base);
  return true;
}

util::Result<WriteReceipt> ImageStore::repack_commit(std::uint64_t key) {
  std::scoped_lock lock(mutex_);
  auto it = images_.find(key);
  if (it == images_.end() || !it->second.pending_base.has_value()) {
    return WriteReceipt{};
  }
  WriteReceipt receipt = commit_locked(it->second);
  ++stats_.repacks;
  stats_.bytes_written += receipt.bytes_written;
  stats_.manifest_bytes_written += receipt.manifest_bytes;
  stats_.reclaimed_bytes += receipt.reclaimed_bytes;
  return receipt;
}

WriteReceipt ImageStore::commit_locked(Entry& entry) {
  WriteReceipt receipt;
  receipt.repacked = true;
  receipt.manifest_bytes = manifest_encoded_bytes(entry.pending_base->chunks.size());
  receipt.payload_bytes = entry.live_bytes;
  receipt.bytes_written = entry.live_bytes + receipt.manifest_bytes;
  receipt.new_chunks =
      static_cast<std::uint32_t>(entry.pending_base->chunks.size());
  receipt.reclaimed_bytes = entry.chain_bytes - entry.live_bytes;

  release_chain_locked(entry);
  entry.chain_set.reserve(entry.pending_base->chunks.size());
  for (const ChunkRef& chunk : entry.pending_base->chunks) {
    entry.chain_set.insert(chunk.hash);
  }
  entry.chain_bytes = entry.live_bytes;
  entry.chain.push_back(std::move(*entry.pending_base));
  entry.pending_base.reset();
  receipt.chain_depth = 0;
  return receipt;
}

std::size_t ImageStore::recover() {
  std::scoped_lock lock(mutex_);
  std::size_t finished = 0;
  for (auto& [key, entry] : images_) {
    if (!entry.pending_base.has_value()) continue;
    // The prepared base was durably written before the kill; committing
    // only retires the old chain, so nothing new is charged.
    const WriteReceipt receipt = commit_locked(entry);
    stats_.reclaimed_bytes += receipt.reclaimed_bytes;
    ++stats_.repacks;
    ++finished;
  }
  return finished;
}

std::optional<std::string> ImageStore::reconcile() const {
  std::scoped_lock lock(mutex_);
  std::unordered_map<ChunkHash, std::pair<util::Bytes, std::uint32_t>> expected;
  for (const auto& [key, entry] : images_) {
    const auto add_refs = [&](const ChunkManifest& manifest) {
      for (const ChunkRef& chunk : manifest.chunks) {
        auto [it, inserted] =
            expected.try_emplace(chunk.hash, chunk.size, std::uint32_t{0});
        ++it->second.second;
      }
    };
    for (const ChunkManifest& manifest : entry.chain) add_refs(manifest);
    if (entry.pending_base.has_value()) add_refs(*entry.pending_base);
  }

  if (expected.size() != cas_.chunk_count()) {
    return "chunk count: manifests imply " + std::to_string(expected.size()) +
           ", cas holds " + std::to_string(cas_.chunk_count());
  }
  std::optional<std::string> divergence;
  util::Bytes unique = 0;
  util::Bytes logical = 0;
  cas_.for_each_chunk([&](ChunkHash hash, util::Bytes size, std::uint32_t refs) {
    if (divergence) return;
    const auto it = expected.find(hash);
    if (it == expected.end()) {
      divergence = "cas holds chunk " + std::to_string(hash) +
                   " that no manifest references";
      return;
    }
    if (it->second.first != size) {
      divergence = "chunk " + std::to_string(hash) + " size: manifests say " +
                   std::to_string(it->second.first) + ", cas holds " +
                   std::to_string(size);
      return;
    }
    if (it->second.second != refs) {
      divergence = "chunk " + std::to_string(hash) + " refs: manifests imply " +
                   std::to_string(it->second.second) + ", cas holds " +
                   std::to_string(refs);
      return;
    }
    unique += size;
    logical += static_cast<util::Bytes>(refs) * size;
  });
  if (divergence) return divergence;
  if (unique != cas_.unique_bytes()) {
    return "unique bytes: recomputed " + std::to_string(unique) +
           ", ledger holds " + std::to_string(cas_.unique_bytes());
  }
  if (logical != cas_.logical_bytes()) {
    return "logical bytes: recomputed " + std::to_string(logical) +
           ", ledger holds " + std::to_string(cas_.logical_bytes());
  }
  return std::nullopt;
}

void ImageStore::clear() {
  std::scoped_lock lock(mutex_);
  for (auto& [key, entry] : images_) {
    release_chain_locked(entry);
    if (entry.pending_base.has_value()) {
      for (const ChunkRef& chunk : entry.pending_base->chunks) {
        cas_.drop_chunk(chunk.hash);
      }
    }
  }
  images_.clear();
}

bool ImageStore::contains(std::uint64_t key) const {
  std::scoped_lock lock(mutex_);
  return images_.contains(key);
}

std::size_t ImageStore::image_count() const {
  std::scoped_lock lock(mutex_);
  return images_.size();
}

std::uint32_t ImageStore::chain_depth(std::uint64_t key) const {
  std::scoped_lock lock(mutex_);
  const auto it = images_.find(key);
  if (it == images_.end() || it->second.chain.empty()) return 0;
  return static_cast<std::uint32_t>(it->second.chain.size() - 1);
}

std::vector<ChunkManifest> ImageStore::manifests(std::uint64_t key) const {
  std::scoped_lock lock(mutex_);
  const auto it = images_.find(key);
  if (it == images_.end()) return {};
  return it->second.chain;
}

util::Bytes ImageStore::dead_bytes() const {
  std::scoped_lock lock(mutex_);
  util::Bytes dead = 0;
  for (const auto& [key, entry] : images_) {
    dead += entry.chain_bytes - entry.live_bytes;
  }
  return dead;
}

util::Bytes ImageStore::unique_bytes() const {
  std::scoped_lock lock(mutex_);
  return cas_.unique_bytes();
}

util::Bytes ImageStore::logical_bytes() const {
  std::scoped_lock lock(mutex_);
  return cas_.logical_bytes();
}

std::size_t ImageStore::chunk_count() const {
  std::scoped_lock lock(mutex_);
  return cas_.chunk_count();
}

ImageStoreStats ImageStore::stats() const {
  std::scoped_lock lock(mutex_);
  return stats_;
}

}  // namespace landlord::shrinkwrap
