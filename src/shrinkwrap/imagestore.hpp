// Delta-chained image store: the builder-side model of images on disk.
//
// The paper charges every merge with a full image rewrite ("the
// resulting image must be written out in its entirety", §VI) — that cost
// is the whole reason α must stay small. Charliecloud's Git-backed build
// cache shows the alternative: store images as content-addressed chunk
// DAGs and write only what changed. This store models exactly that:
//
//   * An image (keyed by its decision-layer id) is a *chain* of
//     manifests: one base + up to `chain_cap` delta generations, each
//     holding the chunks new to that generation (manifest.hpp).
//   * put() with the image's current chunk tree writes a base (unknown
//     key), a delta (only chunks the chain has never seen, plus the
//     manifest), or — when the chain is at the cap — a repack.
//   * Chunks superseded by later generations (per-build noise files,
//     replaced file versions) stay referenced by their generation until
//     a *repack* flattens the chain to a fresh base of live chunks and
//     reclaims them — the GC.
//   * Repack is two-phase, modelling crash-safe on-disk GC: prepare()
//     writes the new base alongside the old chain (both referenced);
//     commit() drops the old chain. recover() finishes any prepared
//     repack a kill interrupted — at no point is a live chunk
//     unreferenced (the chaos test in tests/shrinkwrap/
//     manifest_corpus_test.cpp kills between the phases).
//
// All byte ledgers live in a chunk-granular Cas; reconcile() recomputes
// refcounts and ledgers from the manifests and diffs them against the
// incremental state — the oracle the ledger test battery leans on.
//
// Thread safety: every public method locks the internal mutex (leaf
// lock; never calls out), so decision-layer eviction callbacks may fire
// concurrently with builds.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "shrinkwrap/cas.hpp"
#include "shrinkwrap/chunker.hpp"
#include "shrinkwrap/manifest.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace landlord::shrinkwrap {

struct ImageStoreConfig {
  /// Maximum stacked delta generations before put() repacks (0 = every
  /// put rewrites in full, the paper's accounting).
  std::uint32_t chain_cap = 8;
  ChunkerParams chunker;
};

/// Write accounting for one put()/repack().
struct WriteReceipt {
  util::Bytes bytes_written = 0;    ///< payload + manifest charged to the op
  util::Bytes payload_bytes = 0;    ///< chunk payload written
  util::Bytes manifest_bytes = 0;   ///< encoded manifest size
  util::Bytes reclaimed_bytes = 0;  ///< dead chunk payload a repack freed
  std::uint32_t new_chunks = 0;
  std::uint32_t chain_depth = 0;    ///< delta generations after the op
  bool delta = false;               ///< written as a delta generation
  bool repacked = false;            ///< the op flattened the chain
};

/// Lifetime counters (monotone).
struct ImageStoreStats {
  std::uint64_t puts = 0;
  std::uint64_t base_writes = 0;
  std::uint64_t delta_writes = 0;
  std::uint64_t repacks = 0;
  std::uint64_t drops = 0;
  util::Bytes bytes_written = 0;
  util::Bytes manifest_bytes_written = 0;
  util::Bytes reclaimed_bytes = 0;
};

class ImageStore {
 public:
  explicit ImageStore(ImageStoreConfig config = {});

  /// Records that image `key` now consists of `tree` (the full chunk
  /// expansion of its contents; duplicate hashes are stored once).
  /// Unknown key -> base write; known key -> delta, or repack + base
  /// when the chain is at the cap. Errors (chunk size conflicts) leave
  /// the store unchanged.
  [[nodiscard]] util::Result<WriteReceipt> put(std::uint64_t key,
                                               const std::vector<ChunkRef>& tree);

  /// Eviction: drops every generation (and any prepared repack base) and
  /// releases their chunk references. Unknown keys are a no-op.
  void drop(std::uint64_t key);

  /// Explicit repack GC: prepare + commit in one call. No-op receipt for
  /// unknown keys or single-generation chains (nothing to flatten).
  [[nodiscard]] util::Result<WriteReceipt> repack(std::uint64_t key);

  /// Phase 1: writes the flattened base next to the live chain. Both
  /// hold chunk references until commit. Returns false when there is
  /// nothing to repack (unknown key, depth 0, or already prepared).
  [[nodiscard]] bool repack_prepare(std::uint64_t key);
  /// Phase 2: retires the old chain, reclaiming dead chunks.
  [[nodiscard]] util::Result<WriteReceipt> repack_commit(std::uint64_t key);
  /// Crash recovery: commits every prepared repack left behind by a
  /// kill between the phases; returns how many were finished.
  std::size_t recover();

  /// Re-derives every refcount and byte ledger from the manifests and
  /// diffs against the incremental Cas; a description of the first
  /// divergence, or nullopt when exact.
  [[nodiscard]] std::optional<std::string> reconcile() const;

  /// Forgets every image and chunk (head-node restart: decision-layer
  /// ids restart from zero, so stale chains must not collide).
  void clear();

  // ---- Introspection (each call individually consistent) ----
  [[nodiscard]] bool contains(std::uint64_t key) const;
  [[nodiscard]] std::size_t image_count() const;
  /// Delta generations stacked on `key` (0 for base-only or unknown).
  [[nodiscard]] std::uint32_t chain_depth(std::uint64_t key) const;
  /// Copy of the manifest chain, base first (empty for unknown keys).
  [[nodiscard]] std::vector<ChunkManifest> manifests(std::uint64_t key) const;
  /// Payload bytes held by superseded (dead-until-repack) chunks.
  [[nodiscard]] util::Bytes dead_bytes() const;
  /// Deduplicated payload bytes across all chains.
  [[nodiscard]] util::Bytes unique_bytes() const;
  /// Pre-dedup payload bytes across all chains.
  [[nodiscard]] util::Bytes logical_bytes() const;
  [[nodiscard]] std::size_t chunk_count() const;
  [[nodiscard]] ImageStoreStats stats() const;
  [[nodiscard]] const ImageStoreConfig& config() const noexcept { return config_; }

 private:
  struct Entry {
    std::vector<ChunkManifest> chain;          ///< base first
    std::unordered_set<ChunkHash> chain_set;   ///< every chunk in the chain
    util::Bytes chain_bytes = 0;               ///< their payload sum
    std::unordered_map<ChunkHash, util::Bytes> live;  ///< current tree
    util::Bytes live_bytes = 0;
    std::optional<ChunkManifest> pending_base;  ///< mid-repack (phase 1 done)
  };

  [[nodiscard]] util::Result<WriteReceipt> put_base_locked(
      std::uint64_t key, Entry& entry,
      std::unordered_map<ChunkHash, util::Bytes> tree, util::Bytes tree_bytes);
  [[nodiscard]] bool prepare_locked(std::uint64_t key, Entry& entry);
  [[nodiscard]] WriteReceipt commit_locked(Entry& entry);
  void release_chain_locked(Entry& entry);

  mutable std::mutex mutex_;
  ImageStoreConfig config_;
  std::unordered_map<std::uint64_t, Entry> images_;
  Cas cas_;
  ImageStoreStats stats_;
};

}  // namespace landlord::shrinkwrap
