#include "shrinkwrap/manifest.hpp"

#include <cstring>
#include <unordered_set>

#include "util/checksum.hpp"

namespace landlord::shrinkwrap {

namespace {

template <typename T>
void put(std::string& out, T value) {
  char raw[sizeof(T)];
  std::memcpy(raw, &value, sizeof(T));
  out.append(raw, sizeof(T));
}

template <typename T>
[[nodiscard]] T get(std::string_view bytes, std::size_t offset) {
  T value;
  std::memcpy(&value, bytes.data() + offset, sizeof(T));
  return value;
}

[[nodiscard]] std::string encode_without_checksum(const ChunkManifest& m) {
  std::string out;
  out.reserve(kManifestHeaderSize + m.chunks.size() * kManifestEntrySize + 8);
  put<std::uint32_t>(out, kManifestMagic);
  put<std::uint8_t>(out, kManifestVersion);
  put<std::uint8_t>(out, static_cast<std::uint8_t>(m.kind));
  put<std::uint16_t>(out, 0);  // reserved
  put<std::uint64_t>(out, m.image_key);
  put<std::uint32_t>(out, m.generation);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(m.chunks.size()));
  put<std::uint64_t>(out, m.parent_digest);
  for (const ChunkRef& chunk : m.chunks) {
    put<std::uint64_t>(out, chunk.hash);
    put<std::uint64_t>(out, chunk.size);
  }
  return out;
}

}  // namespace

std::string encode_manifest(const ChunkManifest& manifest) {
  std::string out = encode_without_checksum(manifest);
  put<std::uint64_t>(out, util::fnv1a64(out));
  return out;
}

std::uint64_t manifest_digest(const ChunkManifest& manifest) {
  return util::fnv1a64(encode_without_checksum(manifest));
}

DecodedManifest decode_manifest(std::string_view bytes) {
  DecodedManifest out;
  const auto fail = [&](ManifestStatus status) {
    out.status = status;
    return out;
  };
  if (bytes.size() < kManifestHeaderSize) return fail(ManifestStatus::kShortHeader);
  if (get<std::uint32_t>(bytes, 0) != kManifestMagic) {
    return fail(ManifestStatus::kBadMagic);
  }
  if (get<std::uint8_t>(bytes, 4) != kManifestVersion) {
    return fail(ManifestStatus::kBadVersion);
  }
  const std::uint8_t kind = get<std::uint8_t>(bytes, 5);
  if (kind != static_cast<std::uint8_t>(ManifestKind::kBase) &&
      kind != static_cast<std::uint8_t>(ManifestKind::kDelta)) {
    return fail(ManifestStatus::kBadKind);
  }
  const std::uint32_t count = get<std::uint32_t>(bytes, 20);
  if (count > kManifestMaxChunks) return fail(ManifestStatus::kCountOverflow);
  const std::size_t expected = kManifestHeaderSize +
                               static_cast<std::size_t>(count) * kManifestEntrySize +
                               sizeof(std::uint64_t);
  if (bytes.size() < expected) return fail(ManifestStatus::kTruncated);
  if (bytes.size() > expected) return fail(ManifestStatus::kTrailingBytes);
  const std::uint64_t declared =
      get<std::uint64_t>(bytes, expected - sizeof(std::uint64_t));
  if (util::fnv1a64(bytes.substr(0, expected - sizeof(std::uint64_t))) !=
      declared) {
    return fail(ManifestStatus::kChecksumMismatch);
  }

  ChunkManifest& m = out.manifest;
  m.kind = static_cast<ManifestKind>(kind);
  m.image_key = get<std::uint64_t>(bytes, 8);
  m.generation = get<std::uint32_t>(bytes, 16);
  m.parent_digest = get<std::uint64_t>(bytes, 24);
  if (m.kind == ManifestKind::kBase && m.parent_digest != 0) {
    return fail(ManifestStatus::kBaseWithParent);
  }
  if (m.kind == ManifestKind::kDelta && m.parent_digest == 0) {
    return fail(ManifestStatus::kDeltaWithoutParent);
  }
  m.chunks.reserve(count);
  std::unordered_set<ChunkHash> seen;
  seen.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t at = kManifestHeaderSize + i * kManifestEntrySize;
    ChunkRef chunk;
    chunk.hash = get<std::uint64_t>(bytes, at);
    chunk.size = get<std::uint64_t>(bytes, at + 8);
    if (chunk.size == 0) return fail(ManifestStatus::kZeroChunkSize);
    if (!seen.insert(chunk.hash).second) {
      return fail(ManifestStatus::kDuplicateChunk);
    }
    m.chunks.push_back(chunk);
  }
  return out;
}

ManifestStatus validate_chain(const std::vector<ChunkManifest>& chain) {
  std::unordered_set<ChunkHash> seen;
  std::uint64_t parent = 0;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const ChunkManifest& m = chain[i];
    if (m.generation != i) return ManifestStatus::kBadGeneration;
    if (i == 0) {
      if (m.kind != ManifestKind::kBase) return ManifestStatus::kDanglingParent;
    } else {
      if (m.kind != ManifestKind::kDelta) return ManifestStatus::kBadGeneration;
      if (m.parent_digest != parent) return ManifestStatus::kDanglingParent;
    }
    for (const ChunkRef& chunk : m.chunks) {
      if (!seen.insert(chunk.hash).second) {
        return ManifestStatus::kDuplicateChunk;
      }
    }
    parent = manifest_digest(m);
  }
  return ManifestStatus::kOk;
}

}  // namespace landlord::shrinkwrap
