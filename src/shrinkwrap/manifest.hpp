// Chunk-manifest wire format: the durable description of one image
// generation in the delta-chained image store.
//
// An image on disk is a chain of manifests: a *base* (generation 0,
// every chunk of the image as first written) plus zero or more *deltas*,
// each naming only the chunks new to that generation and the digest of
// its parent manifest. A repack flattens the chain back to a single
// base. Manifests are what a crashed head node re-reads to reconstruct
// its chunk refcounts, so — like the v2 cache snapshot format — decoding
// is total: every malformed input maps to a typed status, never UB (the
// corpus in tests/shrinkwrap/corpus/ pins each case, and tier1.sh runs
// the suite under ASan/UBSan and TSan).
//
// Layout (little-endian, 32-byte header):
//   u32 magic "LCM1"        u8 version (=1)       u8 kind (1 base, 2 delta)
//   u16 reserved (=0)       u64 image_key         u32 generation
//   u32 chunk_count         u64 parent_digest (0 for a base)
//   chunk_count x { u64 chunk_hash, u64 chunk_size }
//   u64 fnv1a checksum of every preceding byte
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "shrinkwrap/chunker.hpp"
#include "util/bytes.hpp"

namespace landlord::shrinkwrap {

inline constexpr std::uint32_t kManifestMagic = 0x314D434CU;  // "LCM1"
inline constexpr std::uint8_t kManifestVersion = 1;
inline constexpr std::size_t kManifestHeaderSize = 32;
inline constexpr std::size_t kManifestEntrySize = 16;
/// Hard cap on declared entries: rejects absurd counts before any
/// allocation is sized from attacker-controlled input.
inline constexpr std::uint32_t kManifestMaxChunks = 1U << 20;

enum class ManifestKind : std::uint8_t { kBase = 1, kDelta = 2 };

enum class ManifestStatus : std::uint8_t {
  kOk,
  kShortHeader,         ///< fewer than 32 bytes
  kBadMagic,
  kBadVersion,
  kBadKind,             ///< kind byte is neither base nor delta
  kCountOverflow,       ///< declared chunk count exceeds the hard cap
  kTruncated,           ///< body shorter than the declared entries + checksum
  kTrailingBytes,       ///< body longer than declared
  kChecksumMismatch,
  kBaseWithParent,      ///< generation-0 base names a parent digest
  kDeltaWithoutParent,  ///< delta with a zero parent digest
  kZeroChunkSize,
  kDuplicateChunk,      ///< same chunk hash twice (one manifest or one chain)
  kDanglingParent,      ///< chain link: parent digest matches no manifest
  kBadGeneration,       ///< chain link: generations not consecutive from 0
};

[[nodiscard]] constexpr const char* to_string(ManifestStatus status) noexcept {
  switch (status) {
    case ManifestStatus::kOk: return "ok";
    case ManifestStatus::kShortHeader: return "short-header";
    case ManifestStatus::kBadMagic: return "bad-magic";
    case ManifestStatus::kBadVersion: return "bad-version";
    case ManifestStatus::kBadKind: return "bad-kind";
    case ManifestStatus::kCountOverflow: return "count-overflow";
    case ManifestStatus::kTruncated: return "truncated";
    case ManifestStatus::kTrailingBytes: return "trailing-bytes";
    case ManifestStatus::kChecksumMismatch: return "checksum-mismatch";
    case ManifestStatus::kBaseWithParent: return "base-with-parent";
    case ManifestStatus::kDeltaWithoutParent: return "delta-without-parent";
    case ManifestStatus::kZeroChunkSize: return "zero-chunk-size";
    case ManifestStatus::kDuplicateChunk: return "duplicate-chunk";
    case ManifestStatus::kDanglingParent: return "dangling-parent";
    case ManifestStatus::kBadGeneration: return "bad-generation";
  }
  return "?";
}

struct ChunkManifest {
  ManifestKind kind = ManifestKind::kBase;
  std::uint64_t image_key = 0;
  std::uint32_t generation = 0;
  std::uint64_t parent_digest = 0;  ///< digest() of the parent; 0 for a base
  std::vector<ChunkRef> chunks;

  [[nodiscard]] util::Bytes total_bytes() const noexcept {
    util::Bytes sum = 0;
    for (const ChunkRef& chunk : chunks) sum += chunk.size;
    return sum;
  }
};

/// Serialises a manifest (always well-formed output).
[[nodiscard]] std::string encode_manifest(const ChunkManifest& manifest);

/// Identity of a manifest as referenced by its children: the checksum of
/// its encoding (checksum field excluded, so digest(decode(encode(m)))
/// is stable).
[[nodiscard]] std::uint64_t manifest_digest(const ChunkManifest& manifest);

struct DecodedManifest {
  ManifestStatus status = ManifestStatus::kOk;
  ChunkManifest manifest;  ///< valid only when ok()

  [[nodiscard]] bool ok() const noexcept {
    return status == ManifestStatus::kOk;
  }
};

/// Total decode: every byte string maps to a status; entries are only
/// read after the length and checksum checks passed.
[[nodiscard]] DecodedManifest decode_manifest(std::string_view bytes);

/// Validates a decoded chain, base first: generation 0 must be a base,
/// generations consecutive, every delta's parent digest must equal the
/// preceding manifest's digest (else kDanglingParent), and no chunk hash
/// may repeat across the chain (a chain stores each chunk exactly once;
/// a repeat means a corrupt delta would double-count refs on recovery).
[[nodiscard]] ManifestStatus validate_chain(
    const std::vector<ChunkManifest>& chain);

}  // namespace landlord::shrinkwrap
