#include "sim/crash.hpp"

#include <sstream>
#include <string>

namespace landlord::sim {

namespace {

/// Decision counters survive a crash in the observer's ledger even
/// though the live cache dies: the jobs those counters describe already
/// ran. Summed at every kill and once at the end.
void accumulate(core::CacheCounters& into, const core::CacheCounters& from) {
  into.requests += from.requests;
  into.hits += from.hits;
  into.merges += from.merges;
  into.inserts += from.inserts;
  into.deletes += from.deletes;
  into.splits += from.splits;
  into.conflict_rejections += from.conflict_rejections;
  into.requested_bytes += from.requested_bytes;
  into.written_bytes += from.written_bytes;
  into.shard_lock_contentions += from.shard_lock_contentions;
  into.optimistic_retries += from.optimistic_retries;
  into.cross_shard_moves += from.cross_shard_moves;
  into.container_efficiency_sum += from.container_efficiency_sum;
  into.delta_merges += from.delta_merges;
  into.repacks += from.repacks;
  into.delta_written_bytes += from.delta_written_bytes;
  into.repack_written_bytes += from.repack_written_bytes;
  into.full_rewrite_bytes += from.full_rewrite_bytes;
}

/// Serialises a checkpoint to the in-memory "disk", tearing it when the
/// injector fails the write — same deterministic 25/50/75% tear points
/// as core::save_cache_file.
bool write_checkpoint(std::string& disk, const core::Landlord& landlord,
                      const pkg::Repository& repo, core::SnapshotFormat format,
                      fault::FaultInjector& injector) {
  std::ostringstream out;
  if (landlord.sharded() != nullptr) {
    core::save_cache(out, *landlord.sharded(), repo, format);
  } else {
    core::save_cache(out, landlord.cache(), repo, format);
  }
  std::string text = std::move(out).str();
  if (injector.should_fail(fault::FaultOp::kSnapshotWrite)) {
    const auto tears = injector.injected(fault::FaultOp::kSnapshotWrite);
    disk = text.substr(0, text.size() * ((tears - 1) % 3 + 1) / 4);
    return false;
  }
  disk = std::move(text);
  return true;
}

}  // namespace

CrashReplayResult run_crash_replay(const pkg::Repository& repo,
                                   const CrashReplayConfig& config) {
  // Same stream derivation as run_simulation, so a zero-fault, no-crash
  // replay is comparable request-for-request.
  util::Rng root(config.seed);
  WorkloadGenerator generator(repo, config.workload, root.split(1));
  const auto specs = generator.unique_specifications();
  const auto stream = generator.request_stream();

  core::Landlord landlord(repo, config.cache, {}, {}, {}, config.delta);
  fault::FaultInjector injector(config.faults);
  landlord.set_fault_injector(&injector);
  landlord.set_backoff_policy(config.backoff);

  obs::Counter* checkpoints_ok = nullptr;
  obs::Counter* checkpoints_torn = nullptr;
  obs::Counter* crashes = nullptr;
  obs::EventTrace* trace = nullptr;
  if (config.obs != nullptr) {
    landlord.set_observability(config.obs);
    injector.set_observability(config.obs);
    obs::Registry& reg = config.obs->registry;
    constexpr const char* kCheckpointHelp =
        "Cache snapshots attempted, by write outcome.";
    checkpoints_ok = &reg.counter("landlord_checkpoints_total",
                                  {{"result", "ok"}}, kCheckpointHelp);
    checkpoints_torn = &reg.counter("landlord_checkpoints_total",
                                    {{"result", "torn"}}, kCheckpointHelp);
    crashes = &reg.counter("landlord_crashes_total", {},
                           "Simulated head-node kill+restore cycles.");
    trace = &config.obs->trace;
  }

  CrashReplayResult result;

  // The checkpoint "disk" starts with an empty-cache snapshot, so a
  // crash before the first checkpoint restores to a cold cache rather
  // than failing the restore.
  std::string disk;
  {
    std::ostringstream out;
    core::save_cache(out, landlord.cache(), repo, config.crash.format);
    disk = std::move(out).str();
  }

  for (const std::uint32_t index : stream) {
    const auto placement = landlord.submit(specs[index]);
    ++result.requests;
    result.total_prep_seconds += placement.prep_seconds;
    if (placement.degraded) ++result.degraded_placements;
    if (placement.failed) ++result.failed_placements;

    if (config.crash.checkpoint_every != 0 &&
        result.requests % config.crash.checkpoint_every == 0) {
      ++result.checkpoints;
      const bool ok =
          write_checkpoint(disk, landlord, repo, config.crash.format, injector);
      if (!ok) ++result.torn_checkpoints;
      if (ok && checkpoints_ok != nullptr) checkpoints_ok->inc();
      if (!ok && checkpoints_torn != nullptr) checkpoints_torn->inc();
      if (trace != nullptr) {
        obs::TraceEvent event;
        event.kind = obs::EventKind::kCheckpoint;
        event.detail = ok ? "ok" : "torn";
        event.bytes = disk.size();
        event.aux = result.requests;
        event.failed = !ok;
        trace->record(event);
      }
    }

    if (config.crash.crash_every != 0 &&
        result.requests % config.crash.crash_every == 0) {
      // Kill: the live decision state evaporates. Bank its counters
      // first — the external observer saw those jobs run.
      accumulate(result.counters, landlord.counters());
      ++result.crashes;
      if (crashes != nullptr) crashes->inc();

      // Restart: restore whatever the last checkpoint managed to write.
      core::RestoreReport report;
      std::istringstream snapshot(disk);
      auto restored = landlord.restore(snapshot, &report);
      if (restored.ok()) {
        result.images_recovered += restored.value();
        result.records_lost += report.records_lost;
      } else {
        // Checkpoint too mangled to even parse a header: cold restart.
        // Everything the dead cache held is lost.
        std::ostringstream empty;
        core::save_cache(empty, core::Cache(repo, config.cache), repo,
                         config.crash.format);
        std::istringstream cold(empty.str());
        (void)landlord.restore(cold, nullptr);
        result.records_lost += report.records_lost;
      }
      // Every restore rebuilds the sublinear decision index from the
      // adopted images; reconcile it against a from-scratch rebuild so a
      // crash can never leave stale postings or a skewed eviction order.
      if (auto divergence = landlord.check_decision_index()) {
        ++result.index_divergences;
        if (result.first_index_divergence.empty()) {
          result.first_index_divergence = std::move(*divergence);
        }
      }
    }
  }

  accumulate(result.counters, landlord.counters());
  result.degraded = landlord.degraded();
  result.final_image_count = landlord.image_count();
  result.final_total_bytes = landlord.total_bytes();
  result.final_unique_bytes = landlord.unique_bytes();
  return result;
}

}  // namespace landlord::sim
