// Crash-restart replay driver.
//
// A head node running LANDLORD is a long-lived service: it periodically
// checkpoints its cache snapshot and, after a crash, restores the last
// checkpoint and keeps serving ("persistent image stores", §II/§V).
// This driver simulates that lifecycle deterministically: replay a
// workload through a core::Landlord, snapshot every `checkpoint_every`
// requests (optionally torn by an injected kSnapshotWrite fault), kill
// and restore every `crash_every` requests, and keep going. Because the
// workload, the fault schedule, and the tear points are all seeded, two
// runs with the same config produce identical counters — the property
// tests/integration/crash_recovery_test.cpp leans on.
#pragma once

#include <cstdint>
#include <string>

#include "fault/fault.hpp"
#include "landlord/landlord.hpp"
#include "landlord/persist.hpp"
#include "sim/workload.hpp"

namespace landlord::sim {

/// When to checkpoint and when to die.
struct CrashPlan {
  std::uint64_t checkpoint_every = 64;  ///< requests between snapshots (0 = never)
  std::uint64_t crash_every = 0;        ///< requests between kill+restore (0 = never)
  core::SnapshotFormat format = core::SnapshotFormat::kV2;
};

struct CrashReplayConfig {
  core::CacheConfig cache;
  WorkloadConfig workload;
  std::uint64_t seed = 1;
  CrashPlan crash;
  fault::FaultPlan faults;  ///< builder + snapshot I/O fault plan
  fault::BackoffPolicy backoff;
  /// Delta-merge storage plan for the builder's image store. Never
  /// changes placements or decision counters — only the byte ledgers
  /// and prep-time stats (tests/sim/delta_oracle_test.cpp pins this,
  /// including across the kill+restore cycles below).
  shrinkwrap::DeltaBuildConfig delta;
  /// Optional observability bundle attached to the Landlord, the fault
  /// injector, and the driver's own checkpoint/crash counters for the
  /// whole service lifetime (non-owning). Never perturbs the replay.
  obs::Observability* obs = nullptr;
};

/// Everything a chaos study needs from one crash-replay run.
struct CrashReplayResult {
  /// Decision counters summed across every service incarnation (a crash
  /// loses the live cache, not the history of what it already served).
  core::CacheCounters counters;
  fault::DegradedCounters degraded;  ///< from the Landlord, lifetime-wide

  std::uint64_t requests = 0;
  std::uint64_t crashes = 0;
  std::uint64_t checkpoints = 0;        ///< snapshots attempted
  std::uint64_t torn_checkpoints = 0;   ///< of those, torn by a write fault
  std::uint64_t degraded_placements = 0;
  std::uint64_t failed_placements = 0;
  std::uint64_t images_recovered = 0;   ///< re-admitted across all restores
  std::uint64_t records_lost = 0;       ///< snapshot records lost to tears
  double total_prep_seconds = 0.0;

  /// Restores after which the decision index failed to reconcile against
  /// a from-scratch rebuild (core::Landlord::check_decision_index).
  /// Always 0: the restore path rebuilds postings/eviction order from
  /// the adopted images, and the chaos suites assert on it.
  std::uint64_t index_divergences = 0;
  std::string first_index_divergence;   ///< what diverged, empty if none

  std::uint64_t final_image_count = 0;
  util::Bytes final_total_bytes = 0;
  util::Bytes final_unique_bytes = 0;
};

/// Replays the seeded workload through a Landlord under the crash plan.
/// Deterministic in `config`. With an empty fault plan and no crashes,
/// the decision counters equal run_simulation()'s for the same workload.
[[nodiscard]] CrashReplayResult run_crash_replay(const pkg::Repository& repo,
                                                 const CrashReplayConfig& config);

}  // namespace landlord::sim
