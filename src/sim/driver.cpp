#include "sim/driver.hpp"

namespace landlord::sim {

SimulationResult run_simulation(const pkg::Repository& repo,
                                const SimulationConfig& config) {
  // Independent RNG streams for spec generation and stream shuffling so
  // changing repetitions does not perturb the specs themselves.
  util::Rng root(config.seed);
  WorkloadGenerator generator(repo, config.workload, root.split(1));

  const auto specs = generator.unique_specifications();
  const auto stream = generator.request_stream();

  core::Cache cache(repo, config.cache);
  if (config.obs != nullptr) cache.set_observability(config.obs);
  for (std::uint32_t index : stream) {
    cache.request(specs[index]);
  }

  SimulationResult result;
  result.counters = cache.counters();
  result.final_total_bytes = cache.total_bytes();
  result.final_unique_bytes = cache.unique_bytes();
  result.cache_efficiency = cache.cache_efficiency();
  result.container_efficiency = result.counters.container_efficiency();
  result.final_image_count = cache.image_count();
  result.series = cache.time_series();
  return result;
}

}  // namespace landlord::sim
