// Single-simulation driver: one workload stream through one cache.
#pragma once

#include <cstdint>

#include "landlord/cache.hpp"
#include "pkg/repository.hpp"
#include "sim/workload.hpp"

namespace landlord::sim {

struct SimulationConfig {
  core::CacheConfig cache;
  WorkloadConfig workload;
  std::uint64_t seed = 1;
  /// Optional observability bundle attached to the run's cache for the
  /// whole replay (non-owning). Metrics/tracing never perturb decisions.
  obs::Observability* obs = nullptr;
};

/// Everything the figures need from one run.
struct SimulationResult {
  core::CacheCounters counters;
  util::Bytes final_total_bytes = 0;
  util::Bytes final_unique_bytes = 0;
  double cache_efficiency = 1.0;      ///< unique/total at end of run
  double container_efficiency = 1.0;  ///< mean requested/used over requests
  std::uint64_t final_image_count = 0;
  core::TimeSeries series;  ///< populated iff cache.record_time_series
};

/// Generates the workload from (seed), runs every request through a fresh
/// cache, and summarises. Deterministic in `config`.
[[nodiscard]] SimulationResult run_simulation(const pkg::Repository& repo,
                                              const SimulationConfig& config);

}  // namespace landlord::sim
