#include "sim/multisite.hpp"

#include <memory>

namespace landlord::sim {

namespace {

/// Content-stable site assignment: hash the spec's member indices.
std::uint32_t affinity_site(const spec::Specification& spec, std::uint32_t sites) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  spec.packages().for_each([&h](pkg::PackageId id) {
    h ^= pkg::to_index(id) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  });
  return static_cast<std::uint32_t>(h % sites);
}

/// One site's circuit breaker. Transitions are counted into the
/// SiteHealth telemetry and (when attached) the breaker-transition
/// counter families + trace.
struct Breaker {
  BreakerState state = BreakerState::kClosed;
  std::uint32_t consecutive_failures = 0;
  std::uint64_t opened_at = 0;  ///< stream position at the last trip
  SiteHealth health;
};

struct BreakerHooks {
  obs::Counter* site_outages = nullptr;
  obs::Counter* failovers = nullptr;
  obs::Counter* failed_requests = nullptr;
  obs::Counter* failover_written_bytes = nullptr;
  obs::Counter* to_open = nullptr;
  obs::Counter* to_half_open = nullptr;
  obs::Counter* to_closed = nullptr;
  obs::EventTrace* trace = nullptr;
};

void trace_transition(BreakerHooks& hooks, std::uint32_t site,
                      BreakerState to) {
  if (hooks.trace == nullptr) return;
  obs::TraceEvent event;
  event.kind = obs::EventKind::kBreakerTransition;
  event.aux = site;
  event.detail = to_string(to);
  hooks.trace->record(event);
}

void trip_open(Breaker& breaker, std::uint32_t site, std::uint64_t position,
               BreakerHooks& hooks) {
  breaker.state = BreakerState::kOpen;
  breaker.opened_at = position;
  breaker.consecutive_failures = 0;
  ++breaker.health.opens;
  if (hooks.to_open != nullptr) hooks.to_open->inc();
  trace_transition(hooks, site, BreakerState::kOpen);
}

}  // namespace

MultiSiteResult run_multisite(const pkg::Repository& repo,
                              const MultiSiteConfig& config,
                              const std::vector<spec::Specification>& specs,
                              const std::vector<std::uint32_t>& stream,
                              std::uint64_t seed) {
  std::vector<std::unique_ptr<core::Cache>> sites;
  sites.reserve(config.sites);
  for (std::uint32_t s = 0; s < config.sites; ++s) {
    sites.push_back(std::make_unique<core::Cache>(repo, config.cache));
  }

  const bool faulty = !config.faults.empty();
  fault::FaultInjector injector(config.faults);
  std::vector<Breaker> breakers(config.sites);
  BreakerHooks hooks;
  if (config.obs != nullptr) {
    injector.set_observability(config.obs);
    obs::Registry& reg = config.obs->registry;
    hooks.site_outages =
        &reg.counter("landlord_dispatch_site_outages_total", {},
                     "Placement attempts rejected by an injected outage.");
    hooks.failovers =
        &reg.counter("landlord_dispatch_failovers_total", {},
                     "Requests served by a non-home site.");
    hooks.failed_requests =
        &reg.counter("landlord_dispatch_failed_requests_total", {},
                     "Requests drained as errors: no reachable site.");
    hooks.failover_written_bytes =
        &reg.counter("landlord_dispatch_failover_written_bytes_total", {},
                     "Bytes written at fallback sites (failover duplication).");
    hooks.to_open = &reg.counter("landlord_dispatch_breaker_transitions_total",
                                 {{"to", "open"}},
                                 "Site breaker transitions by target state.");
    hooks.to_half_open =
        &reg.counter("landlord_dispatch_breaker_transitions_total",
                     {{"to", "half-open"}},
                     "Site breaker transitions by target state.");
    hooks.to_closed =
        &reg.counter("landlord_dispatch_breaker_transitions_total",
                     {{"to", "closed"}},
                     "Site breaker transitions by target state.");
    hooks.trace = &config.obs->trace;
  }

  MultiSiteResult result;
  util::Rng rng(seed);
  std::uint32_t next_site = 0;
  std::uint64_t position = 0;
  for (std::uint32_t index : stream) {
    const auto& spec = specs[index];
    std::uint32_t home = 0;
    switch (config.routing) {
      case Routing::kRoundRobin:
        home = next_site;
        next_site = (next_site + 1) % config.sites;
        break;
      case Routing::kRandom:
        home = static_cast<std::uint32_t>(rng.uniform(config.sites));
        break;
      case Routing::kAffinity:
        home = affinity_site(spec, config.sites);
        break;
    }

    if (!faulty) {
      // Fault-free fast path: breakers never trip, home always serves —
      // bit-identical to the model before health gating existed.
      (void)sites[home]->request(spec);
      ++position;
      continue;
    }

    bool served = false;
    for (std::uint32_t offset = 0; offset < config.sites; ++offset) {
      const std::uint32_t s = (home + offset) % config.sites;
      Breaker& breaker = breakers[s];
      if (breaker.state == BreakerState::kOpen) {
        if (position - breaker.opened_at < config.breaker.open_cooldown) {
          continue;  // unreachable: skip to the next site in hash order
        }
        breaker.state = BreakerState::kHalfOpen;
        ++breaker.health.half_opens;
        if (hooks.to_half_open != nullptr) hooks.to_half_open->inc();
        trace_transition(hooks, s, BreakerState::kHalfOpen);
      }
      if (breaker.state == BreakerState::kHalfOpen) ++breaker.health.probes;

      if (injector.should_fail(fault::FaultOp::kSiteOutage)) {
        ++breaker.health.outage_failures;
        ++result.outage_failures;
        if (hooks.site_outages != nullptr) hooks.site_outages->inc();
        if (hooks.trace != nullptr) {
          obs::TraceEvent event;
          event.kind = obs::EventKind::kSiteOutage;
          event.aux = s;
          event.failed = true;
          hooks.trace->record(event);
        }
        if (breaker.state == BreakerState::kHalfOpen) {
          // Failed probe: straight back to open, restart the cooldown.
          trip_open(breaker, s, position, hooks);
        } else if (++breaker.consecutive_failures >=
                   config.breaker.failure_threshold) {
          trip_open(breaker, s, position, hooks);
        }
        continue;
      }

      if (breaker.state == BreakerState::kHalfOpen) {
        breaker.state = BreakerState::kClosed;
        ++breaker.health.closes;
        if (hooks.to_closed != nullptr) hooks.to_closed->inc();
        trace_transition(hooks, s, BreakerState::kClosed);
      }
      breaker.consecutive_failures = 0;

      if (offset == 0) {
        (void)sites[s]->request(spec);
      } else {
        // Failover: quantify the duplication the fallback site pays —
        // whatever it writes here is an image its home already has (or
        // would have had).
        const util::Bytes before = sites[s]->counters().written_bytes;
        (void)sites[s]->request(spec);
        const util::Bytes delta = sites[s]->counters().written_bytes - before;
        ++result.failover_placements;
        result.failover_written_bytes += delta;
        if (hooks.failovers != nullptr) hooks.failovers->inc();
        if (hooks.failover_written_bytes != nullptr) {
          hooks.failover_written_bytes->inc(delta);
        }
        if (hooks.trace != nullptr) {
          obs::TraceEvent event;
          event.kind = obs::EventKind::kFailover;
          event.aux = s;
          event.bytes = delta;
          event.degraded = true;
          hooks.trace->record(event);
        }
      }
      served = true;
      break;
    }
    if (!served) {
      ++result.failed_requests;
      if (hooks.failed_requests != nullptr) hooks.failed_requests->inc();
    }
    ++position;
  }

  util::DynamicBitset global(repo.size());
  for (std::uint32_t s = 0; s < config.sites; ++s) {
    const auto& site = sites[s];
    result.per_site.push_back(site->counters());
    result.total_cached_bytes += site->total_bytes();
    result.total_hits += site->counters().hits;
    result.total_merges += site->counters().merges;
    result.total_inserts += site->counters().inserts;
    result.total_written_bytes += site->counters().written_bytes;
    site->for_each_image(
        [&global](const core::Image& image) { global |= image.contents.bits(); });
    result.site_health.push_back(breakers[s].health);
    result.site_health.back().state = breakers[s].state;
    result.breaker_transitions += breakers[s].health.opens +
                                  breakers[s].health.half_opens +
                                  breakers[s].health.closes;
  }
  result.global_unique_bytes = repo.bytes_of(global);
  return result;
}

}  // namespace landlord::sim
