#include "sim/multisite.hpp"

#include <memory>

namespace landlord::sim {

namespace {

/// Content-stable site assignment: hash the spec's member indices.
std::uint32_t affinity_site(const spec::Specification& spec, std::uint32_t sites) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  spec.packages().for_each([&h](pkg::PackageId id) {
    h ^= pkg::to_index(id) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  });
  return static_cast<std::uint32_t>(h % sites);
}

}  // namespace

MultiSiteResult run_multisite(const pkg::Repository& repo,
                              const MultiSiteConfig& config,
                              const std::vector<spec::Specification>& specs,
                              const std::vector<std::uint32_t>& stream,
                              std::uint64_t seed) {
  std::vector<std::unique_ptr<core::Cache>> sites;
  sites.reserve(config.sites);
  for (std::uint32_t s = 0; s < config.sites; ++s) {
    sites.push_back(std::make_unique<core::Cache>(repo, config.cache));
  }

  util::Rng rng(seed);
  std::uint32_t next_site = 0;
  for (std::uint32_t index : stream) {
    const auto& spec = specs[index];
    std::uint32_t target = 0;
    switch (config.routing) {
      case Routing::kRoundRobin:
        target = next_site;
        next_site = (next_site + 1) % config.sites;
        break;
      case Routing::kRandom:
        target = static_cast<std::uint32_t>(rng.uniform(config.sites));
        break;
      case Routing::kAffinity:
        target = affinity_site(spec, config.sites);
        break;
    }
    (void)sites[target]->request(spec);
  }

  MultiSiteResult result;
  util::DynamicBitset global(repo.size());
  for (const auto& site : sites) {
    result.per_site.push_back(site->counters());
    result.total_cached_bytes += site->total_bytes();
    result.total_hits += site->counters().hits;
    result.total_merges += site->counters().merges;
    result.total_inserts += site->counters().inserts;
    result.total_written_bytes += site->counters().written_bytes;
    site->for_each_image(
        [&global](const core::Image& image) { global |= image.contents.bits(); });
  }
  result.global_unique_bytes = repo.bytes_of(global);
  return result;
}

}  // namespace landlord::sim
