// Multi-site simulation.
//
// The paper motivates LANDLORD with distributed HTC across many
// facilities ("more than 170 computing centres"; "containers are
// replicated across sites", §I-II). This model runs one LANDLORD cache
// per site and routes the shared job stream between sites, quantifying
// how routing affects aggregate storage and reuse:
//
//  * kRoundRobin — load-balanced, ignores content; identical jobs land
//    on different sites and duplicate images everywhere.
//  * kRandom     — ditto, stochastic.
//  * kAffinity   — content-stable routing (a spec always goes to the
//    same site), so each site sees a coherent sub-workload and images
//    are built once system-wide.
//
// Sites can fail. A fault::FaultPlan with FaultOp::kSiteOutage drives
// per-attempt outage verdicts, and a per-site circuit breaker gates
// routing: closed → open after SiteBreakerConfig::failure_threshold
// consecutive failures → half-open probe once open_cooldown requests
// have passed → closed again on a successful probe. While a site's
// breaker is open the router degrades to the next healthy site in hash
// order (home+1, home+2, ...), so kAffinity keeps content-stable
// fallbacks during an outage and returns home after recovery. The
// duplication this buys — images rebuilt at the fallback site — is
// reported in MultiSiteResult::failover_written_bytes. When no site
// accepts a request it drains as an error (failed_requests), never a
// hang. An empty plan keeps every breaker closed and the routing
// bit-identical to the fault-free model.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "landlord/cache.hpp"
#include "obs/obs.hpp"
#include "spec/specification.hpp"
#include "util/rng.hpp"

namespace landlord::sim {

enum class Routing : std::uint8_t { kRoundRobin, kRandom, kAffinity };

[[nodiscard]] constexpr const char* to_string(Routing routing) noexcept {
  switch (routing) {
    case Routing::kRoundRobin: return "round-robin";
    case Routing::kRandom: return "random";
    case Routing::kAffinity: return "affinity";
  }
  return "?";
}

/// Circuit-breaker state for one site's health gate.
enum class BreakerState : std::uint8_t {
  kClosed,    ///< healthy: requests flow
  kOpen,      ///< tripped: the site is skipped until the cooldown passes
  kHalfOpen,  ///< probing: one request is let through to test recovery
};

[[nodiscard]] constexpr const char* to_string(BreakerState state) noexcept {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

struct SiteBreakerConfig {
  /// Consecutive failures that trip a closed breaker open.
  std::uint32_t failure_threshold = 3;
  /// Requests (global stream positions) an open breaker waits before
  /// letting a half-open probe through.
  std::uint64_t open_cooldown = 16;
};

/// Per-site health telemetry accumulated over one run.
struct SiteHealth {
  BreakerState state = BreakerState::kClosed;  ///< state at end of run
  std::uint64_t outage_failures = 0;  ///< injected failures observed here
  std::uint64_t opens = 0;            ///< transitions into kOpen
  std::uint64_t half_opens = 0;       ///< kOpen -> kHalfOpen transitions
  std::uint64_t probes = 0;           ///< requests routed as half-open probes
  std::uint64_t closes = 0;           ///< kHalfOpen -> kClosed recoveries
};

struct MultiSiteConfig {
  std::uint32_t sites = 4;
  Routing routing = Routing::kAffinity;
  core::CacheConfig cache;  ///< per-site cache configuration
  /// Site-outage schedule (FaultOp::kSiteOutage stream; empty = no
  /// outages, bit-identical to the fault-free model).
  fault::FaultPlan faults;
  SiteBreakerConfig breaker;
  /// Optional observability bundle (landlord_dispatch_* site/breaker
  /// families + failover/outage trace events). Non-owning.
  obs::Observability* obs = nullptr;
};

struct MultiSiteResult {
  std::vector<core::CacheCounters> per_site;
  util::Bytes total_cached_bytes = 0;   ///< Σ over sites
  util::Bytes global_unique_bytes = 0;  ///< union across all sites
  std::uint64_t total_hits = 0;
  std::uint64_t total_merges = 0;
  std::uint64_t total_inserts = 0;
  util::Bytes total_written_bytes = 0;

  std::vector<SiteHealth> site_health;     ///< breaker telemetry per site
  std::uint64_t failover_placements = 0;   ///< served by a non-home site
  std::uint64_t failed_requests = 0;       ///< no reachable site; drained as error
  std::uint64_t outage_failures = 0;       ///< Σ injected attempt failures
  std::uint64_t breaker_transitions = 0;   ///< Σ opens + half_opens + closes
  /// Duplication cost of failover: bytes written at a fallback site while
  /// serving requests whose home site was unavailable (images rebuilt
  /// where they already exist at home).
  util::Bytes failover_written_bytes = 0;

  /// Cross-site duplication: unique-across-sites / total-cached.
  [[nodiscard]] double global_cache_efficiency() const noexcept {
    return total_cached_bytes > 0
               ? static_cast<double>(global_unique_bytes) /
                     static_cast<double>(total_cached_bytes)
               : 1.0;
  }
};

/// Routes `stream` over `sites` caches. Deterministic in (config, seed):
/// the same fault plan replays the same outages, failovers, and breaker
/// transitions bit-for-bit.
[[nodiscard]] MultiSiteResult run_multisite(
    const pkg::Repository& repo, const MultiSiteConfig& config,
    const std::vector<spec::Specification>& specs,
    const std::vector<std::uint32_t>& stream, std::uint64_t seed);

}  // namespace landlord::sim
