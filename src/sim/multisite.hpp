// Multi-site simulation.
//
// The paper motivates LANDLORD with distributed HTC across many
// facilities ("more than 170 computing centres"; "containers are
// replicated across sites", §I-II). This model runs one LANDLORD cache
// per site and routes the shared job stream between sites, quantifying
// how routing affects aggregate storage and reuse:
//
//  * kRoundRobin — load-balanced, ignores content; identical jobs land
//    on different sites and duplicate images everywhere.
//  * kRandom     — ditto, stochastic.
//  * kAffinity   — content-stable routing (a spec always goes to the
//    same site), so each site sees a coherent sub-workload and images
//    are built once system-wide.
#pragma once

#include <cstdint>
#include <vector>

#include "landlord/cache.hpp"
#include "spec/specification.hpp"
#include "util/rng.hpp"

namespace landlord::sim {

enum class Routing : std::uint8_t { kRoundRobin, kRandom, kAffinity };

[[nodiscard]] constexpr const char* to_string(Routing routing) noexcept {
  switch (routing) {
    case Routing::kRoundRobin: return "round-robin";
    case Routing::kRandom: return "random";
    case Routing::kAffinity: return "affinity";
  }
  return "?";
}

struct MultiSiteConfig {
  std::uint32_t sites = 4;
  Routing routing = Routing::kAffinity;
  core::CacheConfig cache;  ///< per-site cache configuration
};

struct MultiSiteResult {
  std::vector<core::CacheCounters> per_site;
  util::Bytes total_cached_bytes = 0;   ///< Σ over sites
  util::Bytes global_unique_bytes = 0;  ///< union across all sites
  std::uint64_t total_hits = 0;
  std::uint64_t total_merges = 0;
  std::uint64_t total_inserts = 0;
  util::Bytes total_written_bytes = 0;

  /// Cross-site duplication: unique-across-sites / total-cached.
  [[nodiscard]] double global_cache_efficiency() const noexcept {
    return total_cached_bytes > 0
               ? static_cast<double>(global_unique_bytes) /
                     static_cast<double>(total_cached_bytes)
               : 1.0;
  }
};

/// Routes `stream` over `sites` caches. Deterministic in (config, seed).
[[nodiscard]] MultiSiteResult run_multisite(
    const pkg::Repository& repo, const MultiSiteConfig& config,
    const std::vector<spec::Specification>& specs,
    const std::vector<std::uint32_t>& stream, std::uint64_t seed);

}  // namespace landlord::sim
