#include "sim/parallel.hpp"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <cstddef>
#include <thread>

namespace landlord::sim {

ParallelResult run_parallel(const pkg::Repository& repo,
                            const ParallelConfig& config) {
  // Same RNG discipline as run_simulation so the two drivers replay the
  // same workload for the same (workload, seed).
  util::Rng root(config.seed);
  WorkloadGenerator generator(repo, config.workload, root.split(1));

  const auto specs = generator.unique_specifications();
  const auto stream = generator.request_stream();

  const std::uint32_t threads = std::max<std::uint32_t>(1, config.threads);
  core::ShardedCache cache(repo, config.cache);
  if (config.obs != nullptr) cache.set_observability(config.obs);

  // Optional dispatch plane: one mutex-guarded pool shared by every
  // replay thread, churned by the fault plan.
  fault::FaultInjector injector(config.faults);
  WorkerPool pool(config.workers, util::Rng(config.seed));
  if (config.dispatch) {
    pool.set_fault_injector(&injector);
    pool.set_backoff_policy(config.backoff);
    if (config.obs != nullptr) {
      injector.set_observability(config.obs);
      pool.set_observability(config.obs);
    }
  }

  // Workers park on the barrier so the storm starts (and is timed) as one
  // burst rather than staggered by thread-creation latency.
  std::barrier start_line(static_cast<std::ptrdiff_t>(threads) + 1);
  std::vector<std::jthread> workers;
  workers.reserve(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      start_line.arrive_and_wait();
      for (std::size_t i = t; i < stream.size(); i += threads) {
        const auto outcome = cache.request(specs[stream[i]]);
        if (config.dispatch) {
          const auto image = cache.find(outcome.image);
          if (image.has_value()) (void)pool.dispatch(*image);
        }
      }
    });
  }

  const auto begin = std::chrono::steady_clock::now();
  start_line.arrive_and_wait();
  workers.clear();  // joins every jthread
  const auto end = std::chrono::steady_clock::now();

  ParallelResult result;
  result.counters = cache.counters();
  result.final_total_bytes = cache.total_bytes();
  result.final_unique_bytes = cache.unique_bytes();
  result.cache_efficiency = cache.cache_efficiency();
  result.container_efficiency = result.counters.container_efficiency();
  result.final_image_count = cache.image_count();
  result.wall_seconds = std::chrono::duration<double>(end - begin).count();
  result.requests_per_second =
      result.wall_seconds > 0.0
          ? static_cast<double>(stream.size()) / result.wall_seconds
          : 0.0;
  result.shards = cache.shard_stats();
  if (config.dispatch) {
    result.transferred_bytes = pool.transferred_bytes();
    result.dispatches = pool.dispatches();
    result.transfers = pool.transfers();
    result.local_hits = pool.local_hits();
    result.stale_refetches = pool.stale_refetches();
    result.dispatch = pool.dispatch_counters();
  }
  if (config.obs != nullptr) cache.publish_metrics();
  return result;
}

}  // namespace landlord::sim
