// Multi-threaded replay driver: one workload stream, K worker threads,
// one ShardedCache.
//
// A distributed HTC head node takes submissions from many schedulers at
// once (§V: LANDLORD sits in the submission path of a batch or pilot-job
// system). This driver models that: the deterministic workload stream is
// dealt round-robin across K threads (thread t replays indices t, t+K,
// t+2K, ...) which start together behind a barrier and hammer a shared
// core::ShardedCache. With threads = 1 the replay order is exactly the
// sequential stream, so run_parallel(threads=1) is the bit-for-bit
// equivalence twin of run_simulation for any shard count.
#pragma once

#include <cstdint>
#include <vector>

#include "landlord/sharded.hpp"
#include "pkg/repository.hpp"
#include "sim/workers.hpp"
#include "sim/workload.hpp"

namespace landlord::sim {

struct ParallelConfig {
  core::CacheConfig cache;  ///< cache.shards sets the shard count
  WorkloadConfig workload;
  std::uint64_t seed = 1;
  std::uint32_t threads = 1;  ///< worker threads replaying the stream
  /// Optional observability bundle attached to the run's ShardedCache
  /// (non-owning); per-shard gauges are published before returning.
  obs::Observability* obs = nullptr;
  /// Ship every placed image to a shared WorkerPool (dispatch() is
  /// mutex-guarded, so the replay threads hammer one pool the way one
  /// cluster's jobs hammer one transfer plane).
  bool dispatch = false;
  WorkerPoolConfig workers;
  /// Worker-churn / transfer-cut schedule for the pool (empty = fault
  /// free). Verdicts are per-occurrence, so a threads==1 run replays a
  /// plan bit-for-bit; multi-threaded runs stay invariant-preserving.
  fault::FaultPlan faults;
  fault::BackoffPolicy backoff;
};

/// Everything the concurrency figures need from one run.
struct ParallelResult {
  core::CacheCounters counters;
  util::Bytes final_total_bytes = 0;
  util::Bytes final_unique_bytes = 0;
  double cache_efficiency = 1.0;      ///< unique/total at end of run
  double container_efficiency = 1.0;  ///< mean requested/used over requests
  std::uint64_t final_image_count = 0;
  double wall_seconds = 0.0;          ///< barrier release -> last join
  double requests_per_second = 0.0;
  std::vector<core::ShardStats> shards;  ///< per-shard occupancy/contention
  /// Dispatch-plane tallies (zero unless ParallelConfig::dispatch).
  /// `dispatches` can trail `counters.requests`: a concurrently evicted
  /// image makes the post-decision find() miss, and that job is not
  /// shipped (the sequential Landlord path counts these toctou_retries).
  util::Bytes transferred_bytes = 0;
  std::uint64_t dispatches = 0;
  std::uint64_t transfers = 0;
  std::uint64_t local_hits = 0;
  std::uint64_t stale_refetches = 0;
  DispatchCounters dispatch;
};

/// Generates the workload from (seed) — identical to run_simulation's for
/// the same config — and replays it through a fresh ShardedCache from
/// `threads` workers. Deterministic in `config` when threads == 1;
/// schedule-dependent (but invariant-preserving) otherwise.
[[nodiscard]] ParallelResult run_parallel(const pkg::Repository& repo,
                                          const ParallelConfig& config);

}  // namespace landlord::sim
