#include "sim/sweep.hpp"

#include <cassert>

#include "util/stats.hpp"

namespace landlord::sim {

std::vector<double> SweepConfig::default_alphas() {
  std::vector<double> alphas;
  for (int i = 40; i <= 100; i += 5) alphas.push_back(static_cast<double>(i) / 100.0);
  return alphas;
}

namespace {

SweepPoint summarise(double alpha, const std::vector<SimulationResult>& runs) {
  auto median_of = [&](auto&& extract) {
    util::Summary summary;
    for (const auto& run : runs) summary.add(extract(run));
    return summary.median();
  };

  SweepPoint point;
  point.alpha = alpha;
  point.hits = median_of([](const auto& r) { return static_cast<double>(r.counters.hits); });
  point.inserts =
      median_of([](const auto& r) { return static_cast<double>(r.counters.inserts); });
  point.deletes =
      median_of([](const auto& r) { return static_cast<double>(r.counters.deletes); });
  point.merges =
      median_of([](const auto& r) { return static_cast<double>(r.counters.merges); });
  point.total_gb =
      median_of([](const auto& r) { return util::to_gib(r.final_total_bytes); });
  point.unique_gb =
      median_of([](const auto& r) { return util::to_gib(r.final_unique_bytes); });
  point.written_tb =
      median_of([](const auto& r) { return util::to_tib(r.counters.written_bytes); });
  point.requested_tb =
      median_of([](const auto& r) { return util::to_tib(r.counters.requested_bytes); });
  point.cache_efficiency =
      median_of([](const auto& r) { return 100.0 * r.cache_efficiency; });
  point.container_efficiency =
      median_of([](const auto& r) { return 100.0 * r.container_efficiency; });
  point.image_count =
      median_of([](const auto& r) { return static_cast<double>(r.final_image_count); });
  point.delta_merges =
      median_of([](const auto& r) { return static_cast<double>(r.counters.delta_merges); });
  point.repacks =
      median_of([](const auto& r) { return static_cast<double>(r.counters.repacks); });
  point.delta_written_tb = median_of([](const auto& r) {
    return util::to_tib(r.counters.delta_written_bytes + r.counters.repack_written_bytes);
  });
  point.full_rewrite_tb =
      median_of([](const auto& r) { return util::to_tib(r.counters.full_rewrite_bytes); });
  return point;
}

}  // namespace

std::vector<SweepPoint> run_sweep(const pkg::Repository& repo,
                                  const SweepConfig& config,
                                  util::ThreadPool* pool) {
  assert(!config.alphas.empty());
  assert(config.replicates > 0);

  const std::size_t points = config.alphas.size();
  const std::size_t reps = config.replicates;
  std::vector<std::vector<SimulationResult>> results(
      points, std::vector<SimulationResult>(reps));

  util::Rng root(config.base.seed);
  auto run_one = [&](std::size_t task) {
    const std::size_t point = task / reps;
    const std::size_t replicate = task % reps;
    SimulationConfig run_config = config.base;
    run_config.cache.alpha = config.alphas[point];
    run_config.cache.record_time_series = false;
    // Common-random-numbers seeding: the seed depends only on the
    // replicate index, so every alpha sees the same 20 workloads and the
    // efficiency curves vary smoothly in alpha rather than in noise.
    run_config.seed = root.split(replicate + 1)();
    results[point][replicate] = run_simulation(repo, run_config);
  };

  const std::size_t total = points * reps;
  if (pool != nullptr && pool->size() > 1) {
    util::parallel_for(*pool, total, run_one);
  } else {
    for (std::size_t task = 0; task < total; ++task) run_one(task);
  }

  std::vector<SweepPoint> out;
  out.reserve(points);
  for (std::size_t point = 0; point < points; ++point) {
    out.push_back(summarise(config.alphas[point], results[point]));
  }
  return out;
}

}  // namespace landlord::sim
