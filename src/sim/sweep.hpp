// Alpha-sweep harness: the engine behind Figures 4, 6, 7 and 8.
//
// "At each choice of α (in steps of 0.05) we performed a set of 20
// simulated runs, allowing us to plot various measurements of the system
// versus α", reporting the median (§VI). Replicates fan out across a
// thread pool; replicate r of sweep point i draws from the RNG stream
// derived from (base seed, i, r), so results are independent of both
// thread count and scheduling order.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/driver.hpp"
#include "util/thread_pool.hpp"

namespace landlord::sim {

struct SweepConfig {
  /// Sweep points; the paper uses 0.40..1.00 in steps of 0.05.
  std::vector<double> alphas;
  std::uint32_t replicates = 20;
  /// Template for every run; cache.alpha is overwritten per point and the
  /// seed is re-derived per (point, replicate).
  SimulationConfig base;

  [[nodiscard]] static std::vector<double> default_alphas();
};

/// Median-over-replicates measurements at one alpha.
struct SweepPoint {
  double alpha = 0.0;
  double hits = 0.0;
  double inserts = 0.0;
  double deletes = 0.0;
  double merges = 0.0;
  double total_gb = 0.0;       ///< final cached data (Fig. 4b "Total Data")
  double unique_gb = 0.0;      ///< final unique data (Fig. 4b "Unique Data")
  double written_tb = 0.0;     ///< cumulative actual writes (Fig. 4c)
  double requested_tb = 0.0;   ///< cumulative requested writes (Fig. 4c)
  double cache_efficiency = 0.0;      ///< percent
  double container_efficiency = 0.0;  ///< percent
  double image_count = 0.0;
  /// Delta-merge ablation (all 0 unless base.cache.delta_chain_cap > 0).
  double delta_merges = 0.0;
  double repacks = 0.0;
  double delta_written_tb = 0.0;   ///< bytes charged by delta + repack writes
  double full_rewrite_tb = 0.0;    ///< counterfactual: every merge a full rewrite
};

/// Runs the sweep. When `pool` is non-null, (alpha, replicate) tasks run
/// concurrently; results are identical either way.
[[nodiscard]] std::vector<SweepPoint> run_sweep(const pkg::Repository& repo,
                                                const SweepConfig& config,
                                                util::ThreadPool* pool = nullptr);

}  // namespace landlord::sim
