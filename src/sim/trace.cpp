#include "sim/trace.hpp"

#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace landlord::sim {

namespace {

constexpr std::string_view kMagic = "landlord-trace v1";

std::vector<std::string_view> split_words(std::string_view line) {
  std::vector<std::string_view> words;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) words.push_back(line.substr(start, i - start));
  }
  return words;
}

util::Result<std::uint32_t> parse_index(std::string_view token, std::size_t line_no) {
  std::uint32_t value = 0;
  auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    return util::Error::at_line(line_no, "bad index '" + std::string(token) + "'");
  }
  return value;
}

}  // namespace

void write_trace(std::ostream& out, const Trace& trace,
                 const pkg::Repository& repo) {
  out << kMagic << '\n';
  out << "# " << trace.specs.size() << " unique jobs, " << trace.stream.size()
      << " requests\n";
  for (std::size_t i = 0; i < trace.specs.size(); ++i) {
    out << "job " << i;
    trace.specs[i].packages().for_each([&](pkg::PackageId id) {
      out << ' ' << repo[id].key();
    });
    out << '\n';
  }
  for (std::uint32_t index : trace.stream) {
    out << "request " << index << '\n';
  }
}

util::Result<Trace> read_trace(std::istream& in, const pkg::Repository& repo) {
  std::string line;
  std::size_t line_no = 0;

  if (!std::getline(in, line)) return util::Error{"empty trace"};
  ++line_no;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line != kMagic) {
    return util::Error::at_line(line_no, "bad magic (expected '" +
                                             std::string(kMagic) + "')");
  }

  Trace trace;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    auto words = split_words(line);
    if (words.empty() || words.front().front() == '#') continue;

    if (words.front() == "job") {
      if (words.size() < 2) {
        return util::Error::at_line(line_no, "job line missing index");
      }
      auto index = parse_index(words[1], line_no);
      if (!index) return index.error();
      if (index.value() != trace.specs.size()) {
        return util::Error::at_line(
            line_no, "job indices must be declared densely in order");
      }
      spec::PackageSet set(repo.size());
      for (std::size_t w = 2; w < words.size(); ++w) {
        const auto id = repo.find(words[w]);
        if (!id) {
          return util::Error::at_line(
              line_no, "unknown package key '" + std::string(words[w]) + "'");
        }
        set.insert(*id);
      }
      trace.specs.emplace_back(std::move(set), "trace");
    } else if (words.front() == "request") {
      if (words.size() != 2) {
        return util::Error::at_line(line_no, "expected: request <index>");
      }
      auto index = parse_index(words[1], line_no);
      if (!index) return index.error();
      if (index.value() >= trace.specs.size()) {
        return util::Error::at_line(line_no, "request references undeclared job");
      }
      trace.stream.push_back(index.value());
    } else {
      return util::Error::at_line(
          line_no, "unknown directive '" + std::string(words.front()) + "'");
    }
  }
  return trace;
}

util::Result<Trace> load_trace(const std::string& path,
                               const pkg::Repository& repo) {
  std::ifstream in(path);
  if (!in) return util::Error{"cannot open trace: " + path};
  return read_trace(in, repo);
}

bool save_trace(const std::string& path, const Trace& trace,
                const pkg::Repository& repo) {
  std::ofstream out(path);
  if (!out) return false;
  write_trace(out, trace, repo);
  return static_cast<bool>(out);
}

}  // namespace landlord::sim
