// Trace record / replay.
//
// The paper's evaluation is trace-driven simulation; this module gives
// the trace a durable form so workloads can be captured once (from the
// synthetic generators, from spec-inference over real job artefacts, or
// from production logs) and replayed bit-for-bit across configurations.
//
// Format (plain text, package *keys* so traces survive repository
// regeneration as long as the keys resolve):
//
//   landlord-trace v1
//   job <index> <key> <key> ...     # unique specification (closed set)
//   request <index>                 # stream entry referencing a job
//
// Lines may appear in any order as long as every `request` refers to a
// previously declared `job`. '#' starts a comment.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "pkg/repository.hpp"
#include "spec/specification.hpp"
#include "util/result.hpp"

namespace landlord::sim {

struct Trace {
  std::vector<spec::Specification> specs;  ///< unique job specifications
  std::vector<std::uint32_t> stream;       ///< request order (indices into specs)
};

/// Serialises a trace. Specs are written as their member package keys.
void write_trace(std::ostream& out, const Trace& trace,
                 const pkg::Repository& repo);

/// Parses a trace against `repo`. Fails on syntax errors, unknown
/// package keys, out-of-range request indices, or a version mismatch.
[[nodiscard]] util::Result<Trace> read_trace(std::istream& in,
                                             const pkg::Repository& repo);

/// Convenience wrappers over files.
[[nodiscard]] util::Result<Trace> load_trace(const std::string& path,
                                             const pkg::Repository& repo);
[[nodiscard]] bool save_trace(const std::string& path, const Trace& trace,
                              const pkg::Repository& repo);

}  // namespace landlord::sim
