#include "sim/workers.hpp"

#include <algorithm>

#include "landlord/sharded.hpp"

namespace landlord::sim {

namespace {

void bump(obs::Counter* counter, std::uint64_t n = 1) {
  if (counter != nullptr) counter->inc(n);
}

}  // namespace

void WorkerPool::set_fault_injector(fault::FaultInjector* injector) {
  std::scoped_lock lock(mutex_);
  injector_ = injector;
  if (injector_ != nullptr) {
    // Dedicated jitter stream keyed off the plan, mirroring
    // Landlord::set_fault_injector: scheduling rng_ never sees a fault
    // draw, so a zero-fault plan leaves dispatch decisions untouched.
    backoff_rng_ = util::Rng(injector_->plan().seed ^ 0xd15bacc0ffULL);
  }
}

void WorkerPool::set_backoff_policy(fault::BackoffPolicy policy) {
  std::scoped_lock lock(mutex_);
  backoff_ = policy;
}

void WorkerPool::set_observability(obs::Observability* observability) {
  std::scoped_lock lock(mutex_);
  if (observability == nullptr) {
    hooks_ = Hooks{};
    return;
  }
  obs::Registry& reg = observability->registry;
  hooks_.transfers = &reg.counter("landlord_dispatch_transfers_total", {},
                                  "Completed head-to-worker image transfers.");
  hooks_.transferred_bytes =
      &reg.counter("landlord_dispatch_transferred_bytes_total", {},
                   "Wire bytes shipped to workers (partial cuts included).");
  hooks_.local_hits =
      &reg.counter("landlord_dispatch_local_hits_total", {},
                   "Dispatches served from a current worker-scratch copy.");
  hooks_.stale_refetches =
      &reg.counter("landlord_dispatch_stale_refetches_total", {},
                   "Worker copies invalidated by a head-node rewrite.");
  hooks_.worker_crashes =
      &reg.counter("landlord_dispatch_worker_crashes_total", {},
                   "Workers crashed by the fault oracle (scratch lost).");
  hooks_.redispatches =
      &reg.counter("landlord_dispatch_redispatches_total", {},
                   "Jobs moved off an unhealthy worker to the next one.");
  hooks_.cold_rejoins =
      &reg.counter("landlord_dispatch_cold_rejoins_total", {},
                   "Crashed workers that rejoined cold after downtime.");
  hooks_.direct_transfers =
      &reg.counter("landlord_dispatch_direct_transfers_total", {},
                   "Jobs served by a direct head-node stream (no scratch).");
  hooks_.transfer_faults =
      &reg.counter("landlord_dispatch_transfer_faults_total", {},
                   "Transfers cut mid-stream by the fault oracle.");
  hooks_.transfer_retries =
      &reg.counter("landlord_dispatch_transfer_retries_total", {},
                   "Transfer re-attempts taken after a cut.");
  hooks_.failed_transfers =
      &reg.counter("landlord_dispatch_failed_transfers_total", {},
                   "Transfers abandoned after the retry budget ran out.");
  hooks_.resumed_bytes =
      &reg.counter("landlord_dispatch_transfer_resumed_bytes_total", {},
                   "Partial bytes kept across a retry (byte-granular resume).");
  hooks_.reshipped_bytes =
      &reg.counter("landlord_dispatch_transfer_reshipped_bytes_total", {},
                   "Partial bytes thrown away because resume is off.");
  hooks_.backoff_seconds =
      &reg.gauge("landlord_dispatch_backoff_seconds", {},
                 "Total modelled seconds spent waiting before retries.");
  hooks_.trace = &observability->trace;
}

std::uint32_t WorkerPool::healthy_workers() const noexcept {
  std::uint32_t up = 0;
  for (const auto& worker : workers_) {
    if (worker_up(worker)) ++up;
  }
  return up;
}

void WorkerPool::crash_worker(std::uint32_t index) {
  Worker& worker = workers_[index];
  worker.copies.clear();
  worker.order.clear();
  worker.used = 0;
  worker.down_until = clock_ + config_.crash_downtime;
  ++dispatch_.worker_crashes;
  bump(hooks_.worker_crashes);
  if (hooks_.trace != nullptr) {
    obs::TraceEvent event;
    event.kind = obs::EventKind::kWorkerCrash;
    event.aux = index;
    event.failed = true;
    hooks_.trace->record(event);
  }
}

util::Bytes WorkerPool::ship(util::Bytes total, bool& completed) {
  completed = true;
  if (injector_ == nullptr || total == 0) return total;

  util::Bytes wire = 0;
  util::Bytes remaining = total;
  std::uint32_t attempt = 0;
  while (injector_->should_fail(fault::FaultOp::kWorkerTransfer)) {
    ++dispatch_.transfer_faults;
    bump(hooks_.transfer_faults);
    // Deterministic cut point: 25/50/75% of the attempted bytes, cycling
    // with the per-class injection count — the same discipline as the
    // torn-snapshot writer, so a plan replays the same partial shipments.
    const auto cut =
        injector_->injected(fault::FaultOp::kWorkerTransfer);
    const util::Bytes attempted =
        config_.resume_transfers ? remaining : total;
    const util::Bytes shipped = attempted * ((cut - 1) % 3 + 1) / 4;
    wire += shipped;
    if (config_.resume_transfers) {
      remaining -= shipped;
      dispatch_.resumed_bytes += shipped;
      bump(hooks_.resumed_bytes, shipped);
    } else {
      dispatch_.reshipped_bytes += shipped;
      bump(hooks_.reshipped_bytes, shipped);
    }
    if (hooks_.trace != nullptr) {
      obs::TraceEvent event;
      event.kind = obs::EventKind::kTransferFault;
      event.bytes = shipped;
      event.aux = attempted;
      event.failed = true;
      hooks_.trace->record(event);
    }
    if (attempt >= backoff_.max_retries) {
      ++dispatch_.failed_transfers;
      bump(hooks_.failed_transfers);
      completed = false;
      return wire;
    }
    const double wait = backoff_.delay_for(attempt, backoff_rng_);
    dispatch_.backoff_seconds += wait;
    if (hooks_.backoff_seconds != nullptr) hooks_.backoff_seconds->add(wait);
    ++attempt;
    ++dispatch_.transfer_retries;
    bump(hooks_.transfer_retries);
  }
  wire += config_.resume_transfers ? remaining : total;
  return wire;
}

void WorkerPool::evict_worker(Worker& worker, util::Bytes needed) {
  // LRU by last_used until the copy fits (or the cache is empty; a copy
  // larger than worker scratch is held transiently anyway — the job
  // still has to run).
  while (worker.used + needed > config_.scratch_per_worker &&
         !worker.copies.empty()) {
    std::uint64_t victim_id = 0;
    if (config_.ordered_eviction) {
      victim_id = worker.order.begin()->second;
    } else {
      auto victim = worker.copies.begin();
      for (auto it = worker.copies.begin(); it != worker.copies.end(); ++it) {
        if (it->second.last_used < victim->second.last_used ||
            (it->second.last_used == victim->second.last_used &&
             it->first < victim->first)) {
          victim = it;
        }
      }
      victim_id = victim->first;
    }
    const auto it = worker.copies.find(victim_id);
    worker.used -= it->second.bytes;
    worker.order.erase({it->second.last_used, victim_id});
    worker.copies.erase(it);
  }
}

util::Bytes WorkerPool::dispatch(const core::Image& image) {
  std::scoped_lock lock(mutex_);
  ++clock_;
  std::uint32_t target = 0;
  switch (config_.scheduling) {
    case Scheduling::kRoundRobin:
      target = next_worker_;
      next_worker_ = (next_worker_ + 1) % config_.workers;
      break;
    case Scheduling::kRandom:
      target = static_cast<std::uint32_t>(rng_.uniform(config_.workers));
      break;
  }

  // Worker churn: the fault oracle decides whether the scheduled worker
  // dies under this dispatch. The job itself survives — it re-dispatches
  // to the next healthy worker below.
  if (injector_ != nullptr &&
      injector_->should_fail(fault::FaultOp::kWorkerCrash)) {
    crash_worker(target);
  }

  std::uint32_t chosen = target;
  bool found = false;
  for (std::uint32_t step = 0; step < config_.workers; ++step) {
    const std::uint32_t candidate = (target + step) % config_.workers;
    Worker& worker = workers_[candidate];
    if (!worker_up(worker)) continue;
    if (worker.down_until != 0) {
      // Downtime elapsed: the worker rejoins, cold (copies were cleared
      // at the crash).
      worker.down_until = 0;
      ++dispatch_.cold_rejoins;
      bump(hooks_.cold_rejoins);
    }
    chosen = candidate;
    found = true;
    if (step > 0) {
      ++dispatch_.redispatches;
      bump(hooks_.redispatches);
    }
    break;
  }
  if (!found) {
    // Whole pool down: the head node streams the image straight to the
    // job. Forced success — requests drain, they never hang.
    ++dispatch_.direct_transfers;
    bump(hooks_.direct_transfers);
    transferred_ += image.bytes;
    bump(hooks_.transferred_bytes, image.bytes);
    return image.bytes;
  }
  Worker& worker = workers_[chosen];

  auto it = worker.copies.find(core::to_value(image.id));
  if (it != worker.copies.end()) {
    if (it->second.version == image.version) {
      worker.order.erase({it->second.last_used, it->first});
      it->second.last_used = clock_;
      worker.order.insert({clock_, it->first});
      ++local_hits_;
      bump(hooks_.local_hits);
      return 0;
    }
    // Stale copy: the head-node image was rewritten by a merge/split.
    worker.used -= it->second.bytes;
    worker.order.erase({it->second.last_used, it->first});
    worker.copies.erase(it);
    ++stale_refetches_;
    bump(hooks_.stale_refetches);
  }

  bool completed = true;
  util::Bytes wire = ship(image.bytes, completed);
  if (!completed) {
    // Retry budget exhausted: the partial shipments were wasted; the job
    // still runs off a direct head-node stream, but nothing lands in
    // worker scratch.
    wire += image.bytes;
    ++dispatch_.direct_transfers;
    bump(hooks_.direct_transfers);
    transferred_ += wire;
    bump(hooks_.transferred_bytes, wire);
    return wire;
  }

  evict_worker(worker, image.bytes);
  worker.copies[core::to_value(image.id)] =
      LocalCopy{image.version, image.bytes, clock_};
  worker.order.insert({clock_, core::to_value(image.id)});
  worker.used += image.bytes;
  transferred_ += wire;
  bump(hooks_.transferred_bytes, wire);
  ++transfers_;
  bump(hooks_.transfers);
  return wire;
}

namespace {

template <typename CacheT>
TransferResult replay(const pkg::Repository& repo, CacheT& cache,
                      WorkerPool& pool,
                      const std::vector<spec::Specification>& specs,
                      const std::vector<std::uint32_t>& stream) {
  TransferResult result;
  for (std::uint32_t index : stream) {
    const auto& spec = specs[index];
    const auto outcome = cache.request(spec);
    result.requested_bytes += spec.bytes(repo);
    const auto image = cache.find(outcome.image);
    if (image.has_value()) {
      (void)pool.dispatch(*image);
    }
  }
  result.head_counters = cache.counters();
  result.transferred_bytes = pool.transferred_bytes();
  result.transfers = pool.transfers();
  result.local_hits = pool.local_hits();
  result.stale_refetches = pool.stale_refetches();
  result.dispatches = pool.dispatches();
  result.dispatch = pool.dispatch_counters();
  return result;
}

}  // namespace

TransferResult run_with_workers(const pkg::Repository& repo,
                                const core::CacheConfig& cache_config,
                                const WorkerPoolConfig& pool_config,
                                const std::vector<spec::Specification>& specs,
                                const std::vector<std::uint32_t>& stream,
                                std::uint64_t seed) {
  core::Cache cache(repo, cache_config);
  WorkerPool pool(pool_config, util::Rng(seed));
  return replay(repo, cache, pool, specs, stream);
}

TransferResult run_with_workers(const pkg::Repository& repo,
                                const core::CacheConfig& cache_config,
                                const WorkerPoolConfig& pool_config,
                                const std::vector<spec::Specification>& specs,
                                const std::vector<std::uint32_t>& stream,
                                std::uint64_t seed,
                                const DispatchFaultConfig& faults,
                                obs::Observability* obs) {
  fault::FaultInjector injector(faults.plan);
  WorkerPool pool(pool_config, util::Rng(seed));
  pool.set_fault_injector(&injector);
  pool.set_backoff_policy(faults.backoff);
  if (obs != nullptr) {
    injector.set_observability(obs);
    pool.set_observability(obs);
  }
  if (cache_config.shards > 1) {
    core::ShardedCache cache(repo, cache_config);
    if (obs != nullptr) cache.set_observability(obs);
    auto result = replay(repo, cache, pool, specs, stream);
    if (obs != nullptr) cache.publish_metrics();
    return result;
  }
  core::Cache cache(repo, cache_config);
  if (obs != nullptr) cache.set_observability(obs);
  return replay(repo, cache, pool, specs, stream);
}

}  // namespace landlord::sim
