#include "sim/workers.hpp"

#include <algorithm>

namespace landlord::sim {

void WorkerPool::evict_worker(Worker& worker, util::Bytes needed) {
  // LRU by last_used until the copy fits (or the cache is empty; a copy
  // larger than worker scratch is held transiently anyway — the job
  // still has to run).
  while (worker.used + needed > config_.scratch_per_worker &&
         !worker.copies.empty()) {
    auto victim = worker.copies.begin();
    for (auto it = worker.copies.begin(); it != worker.copies.end(); ++it) {
      if (it->second.last_used < victim->second.last_used) victim = it;
    }
    worker.used -= victim->second.bytes;
    worker.copies.erase(victim);
  }
}

util::Bytes WorkerPool::dispatch(const core::Image& image) {
  ++clock_;
  std::uint32_t target = 0;
  switch (config_.scheduling) {
    case Scheduling::kRoundRobin:
      target = next_worker_;
      next_worker_ = (next_worker_ + 1) % config_.workers;
      break;
    case Scheduling::kRandom:
      target = static_cast<std::uint32_t>(rng_.uniform(config_.workers));
      break;
  }
  Worker& worker = workers_[target];

  auto it = worker.copies.find(core::to_value(image.id));
  if (it != worker.copies.end()) {
    if (it->second.version == image.version) {
      it->second.last_used = clock_;
      ++local_hits_;
      return 0;
    }
    // Stale copy: the head-node image was rewritten by a merge/split.
    worker.used -= it->second.bytes;
    worker.copies.erase(it);
    ++stale_refetches_;
  }

  evict_worker(worker, image.bytes);
  worker.copies[core::to_value(image.id)] =
      LocalCopy{image.version, image.bytes, clock_};
  worker.used += image.bytes;
  transferred_ += image.bytes;
  ++transfers_;
  return image.bytes;
}

TransferResult run_with_workers(const pkg::Repository& repo,
                                const core::CacheConfig& cache_config,
                                const WorkerPoolConfig& pool_config,
                                const std::vector<spec::Specification>& specs,
                                const std::vector<std::uint32_t>& stream,
                                std::uint64_t seed) {
  core::Cache cache(repo, cache_config);
  WorkerPool pool(pool_config, util::Rng(seed));

  TransferResult result;
  for (std::uint32_t index : stream) {
    const auto& spec = specs[index];
    const auto outcome = cache.request(spec);
    result.requested_bytes += spec.bytes(repo);
    const auto image = cache.find(outcome.image);
    if (image.has_value()) {
      (void)pool.dispatch(*image);
    }
  }
  result.head_counters = cache.counters();
  result.transferred_bytes = pool.transferred_bytes();
  result.transfers = pool.transfers();
  result.local_hits = pool.local_hits();
  result.stale_refetches = pool.stale_refetches();
  return result;
}

}  // namespace landlord::sim
