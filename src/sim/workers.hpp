// Worker-node transfer model.
//
// The paper's setting (§V): the head node keeps the image cache; "each
// compute node has scratch space available for storing container images
// locally, but ... the collection of all container images may be too
// large to store on every worker node". Every job therefore ships its
// image to the worker it lands on — unless that worker already holds an
// identical *version* of the image (merging rewrites an image, so stale
// worker copies must be re-transferred).
//
// This model quantifies the cost container bloat imposes downstream:
// high α produces fat, frequently rewritten images, so workers pull more
// bytes per job — the transfer-side face of container efficiency.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "landlord/cache.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace landlord::sim {

enum class Scheduling : std::uint8_t {
  kRoundRobin,  ///< jobs cycle across workers
  kRandom,      ///< uniform random worker per job
};

[[nodiscard]] constexpr const char* to_string(Scheduling scheduling) noexcept {
  switch (scheduling) {
    case Scheduling::kRoundRobin: return "round-robin";
    case Scheduling::kRandom: return "random";
  }
  return "?";
}

struct WorkerPoolConfig {
  std::uint32_t workers = 16;
  util::Bytes scratch_per_worker = 50ULL * 1000 * 1000 * 1000;  // 50 GB
  Scheduling scheduling = Scheduling::kRoundRobin;
};

/// Tracks per-worker local image caches (LRU by bytes) and counts the
/// bytes shipped from the head-node cache to workers.
class WorkerPool {
 public:
  WorkerPool(WorkerPoolConfig config, util::Rng rng)
      : config_(config), rng_(rng), workers_(config.workers) {}

  /// Places one job that the head-node cache decided to serve with
  /// `image` (post-request snapshot). Returns the bytes transferred for
  /// this job (0 when the chosen worker holds the current version).
  util::Bytes dispatch(const core::Image& image);

  [[nodiscard]] util::Bytes transferred_bytes() const noexcept {
    return transferred_;
  }
  [[nodiscard]] std::uint64_t transfers() const noexcept { return transfers_; }
  [[nodiscard]] std::uint64_t local_hits() const noexcept { return local_hits_; }
  [[nodiscard]] std::uint64_t stale_refetches() const noexcept {
    return stale_refetches_;
  }

 private:
  struct LocalCopy {
    std::uint32_t version = 0;
    util::Bytes bytes = 0;
    std::uint64_t last_used = 0;
  };
  struct Worker {
    std::unordered_map<std::uint64_t, LocalCopy> copies;  // image id -> copy
    util::Bytes used = 0;
  };

  void evict_worker(Worker& worker, util::Bytes needed);

  WorkerPoolConfig config_;
  util::Rng rng_;
  std::vector<Worker> workers_;
  std::uint32_t next_worker_ = 0;
  std::uint64_t clock_ = 0;
  util::Bytes transferred_ = 0;
  std::uint64_t transfers_ = 0;
  std::uint64_t local_hits_ = 0;
  std::uint64_t stale_refetches_ = 0;
};

/// One end-to-end run: head-node LANDLORD cache + worker pool over a
/// request stream.
struct TransferResult {
  core::CacheCounters head_counters;
  util::Bytes transferred_bytes = 0;
  std::uint64_t transfers = 0;
  std::uint64_t local_hits = 0;
  std::uint64_t stale_refetches = 0;
  util::Bytes requested_bytes = 0;
};

[[nodiscard]] TransferResult run_with_workers(
    const pkg::Repository& repo, const core::CacheConfig& cache_config,
    const WorkerPoolConfig& pool_config,
    const std::vector<spec::Specification>& specs,
    const std::vector<std::uint32_t>& stream, std::uint64_t seed);

}  // namespace landlord::sim
