// Worker-node transfer model.
//
// The paper's setting (§V): the head node keeps the image cache; "each
// compute node has scratch space available for storing container images
// locally, but ... the collection of all container images may be too
// large to store on every worker node". Every job therefore ships its
// image to the worker it lands on — unless that worker already holds an
// identical *version* of the image (merging rewrites an image, so stale
// worker copies must be re-transferred).
//
// This model quantifies the cost container bloat imposes downstream:
// high α produces fat, frequently rewritten images, so workers pull more
// bytes per job — the transfer-side face of container efficiency.
//
// The pool is also the fault-tolerant half of the dispatch plane: an
// attached fault::FaultInjector can crash the scheduled worker
// (FaultOp::kWorkerCrash — scratch copies lost, rejoins cold after
// WorkerPoolConfig::crash_downtime dispatches) or cut a transfer
// mid-stream (kWorkerTransfer — retried under BackoffPolicy with
// byte-granular resume). Every verdict is a pure function of the plan
// and the per-class occurrence index, so a churn schedule replays
// bit-for-bit (tests/sim/dispatch_fault_test.cpp). A job always
// completes: no healthy worker, or a transfer whose retry budget is
// exhausted, degrades to a direct head-node stream (counted in
// DispatchCounters::direct_transfers), never an error or a hang.
#pragma once

#include <cstdint>
#include <mutex>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "landlord/cache.hpp"
#include "obs/obs.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace landlord::sim {

enum class Scheduling : std::uint8_t {
  kRoundRobin,  ///< jobs cycle across workers
  kRandom,      ///< uniform random worker per job
};

[[nodiscard]] constexpr const char* to_string(Scheduling scheduling) noexcept {
  switch (scheduling) {
    case Scheduling::kRoundRobin: return "round-robin";
    case Scheduling::kRandom: return "random";
  }
  return "?";
}

struct WorkerPoolConfig {
  std::uint32_t workers = 16;
  util::Bytes scratch_per_worker = 50ULL * 1000 * 1000 * 1000;  // 50 GB
  Scheduling scheduling = Scheduling::kRoundRobin;
  /// Dispatches a crashed worker stays down before rejoining (cold — its
  /// scratch copies were lost at the crash).
  std::uint64_t crash_downtime = 8;
  /// Byte-granular transfer resume: a retried transfer re-sends only the
  /// bytes the cut lost. Off, every retry re-ships the image from zero.
  bool resume_transfers = true;
  /// Victim selection through the ordered (last_used, id) index. Off
  /// falls back to the O(n) scan per evicted copy — kept as the oracle
  /// for the index-vs-scan equivalence test; results are bit-identical.
  bool ordered_eviction = true;
};

/// Dispatch-plane fault telemetry, the worker-side analogue of
/// fault::DegradedCounters. Monotone over the pool's lifetime.
struct DispatchCounters {
  std::uint64_t worker_crashes = 0;   ///< kWorkerCrash faults taken
  std::uint64_t redispatches = 0;     ///< jobs moved off an unhealthy worker
  std::uint64_t cold_rejoins = 0;     ///< crashed workers back after downtime
  std::uint64_t direct_transfers = 0; ///< head-node streams (no scratch copy)
  std::uint64_t transfer_faults = 0;  ///< transfers cut mid-stream
  std::uint64_t transfer_retries = 0; ///< re-attempts after a cut
  std::uint64_t failed_transfers = 0; ///< retry budget exhausted
  util::Bytes resumed_bytes = 0;      ///< partial bytes kept across a retry
  util::Bytes reshipped_bytes = 0;    ///< partial bytes thrown away (no resume)
  double backoff_seconds = 0.0;       ///< modelled waits before retries
};

/// Tracks per-worker local image caches (LRU by bytes) and counts the
/// bytes shipped from the head-node cache to workers. dispatch() is
/// mutex-guarded so run_parallel's threads can share one pool; counter
/// accessors are safe after the dispatching threads have joined.
class WorkerPool {
 public:
  WorkerPool(WorkerPoolConfig config, util::Rng rng)
      : config_(config), rng_(rng), workers_(config.workers) {}

  /// Places one job that the head-node cache decided to serve with
  /// `image` (post-request snapshot). Returns the bytes that crossed the
  /// wire for this job (0 when the chosen worker holds the current
  /// version; more than image.bytes when faults forced re-shipping).
  util::Bytes dispatch(const core::Image& image);

  /// Attaches (or detaches, with nullptr) the fault oracle consulted for
  /// kWorkerCrash / kWorkerTransfer. The backoff jitter stream reseeds
  /// from the plan's seed, so scheduling (rng_) is untouched and a
  /// zero-fault plan stays bit-identical to no injector at all.
  void set_fault_injector(fault::FaultInjector* injector);
  void set_backoff_policy(fault::BackoffPolicy policy);

  /// Attaches (or detaches, with nullptr) an observability bundle:
  /// landlord_dispatch_* counter families plus worker-crash /
  /// transfer-fault trace events. Never changes behaviour. Non-owning.
  void set_observability(obs::Observability* observability);

  [[nodiscard]] util::Bytes transferred_bytes() const noexcept {
    return transferred_;
  }
  [[nodiscard]] std::uint64_t transfers() const noexcept { return transfers_; }
  [[nodiscard]] std::uint64_t local_hits() const noexcept { return local_hits_; }
  [[nodiscard]] std::uint64_t stale_refetches() const noexcept {
    return stale_refetches_;
  }
  [[nodiscard]] std::uint64_t dispatches() const noexcept { return clock_; }
  [[nodiscard]] const DispatchCounters& dispatch_counters() const noexcept {
    return dispatch_;
  }
  /// Workers currently up (crashed workers whose downtime has elapsed
  /// count as healthy — they rejoin at their next dispatch).
  [[nodiscard]] std::uint32_t healthy_workers() const noexcept;

 private:
  struct LocalCopy {
    std::uint32_t version = 0;
    util::Bytes bytes = 0;
    std::uint64_t last_used = 0;
  };
  struct Worker {
    std::unordered_map<std::uint64_t, LocalCopy> copies;  // image id -> copy
    /// LRU order over copies: (last_used, image id), begin() == victim.
    /// last_used values are unique per worker (the pool clock ticks once
    /// per dispatch and touches at most one copy), so the id tie-break
    /// never actually fires — it keeps the order total regardless.
    std::set<std::pair<std::uint64_t, std::uint64_t>> order;
    util::Bytes used = 0;
    /// Clock tick at which a crashed worker rejoins; 0 == healthy. The
    /// worker is down while clock_ < down_until.
    std::uint64_t down_until = 0;
  };

  [[nodiscard]] bool worker_up(const Worker& worker) const noexcept {
    return worker.down_until == 0 || clock_ >= worker.down_until;
  }
  void crash_worker(std::uint32_t index);
  /// Ships `total` bytes through the kWorkerTransfer fault gauntlet.
  /// Returns wire bytes; `completed` is false when the retry budget ran
  /// out (the partial bytes were wasted and the job needs a fallback).
  util::Bytes ship(util::Bytes total, bool& completed);
  void evict_worker(Worker& worker, util::Bytes needed);

  WorkerPoolConfig config_;
  util::Rng rng_;
  std::vector<Worker> workers_;
  std::uint32_t next_worker_ = 0;
  std::uint64_t clock_ = 0;
  util::Bytes transferred_ = 0;
  std::uint64_t transfers_ = 0;
  std::uint64_t local_hits_ = 0;
  std::uint64_t stale_refetches_ = 0;
  DispatchCounters dispatch_;

  std::mutex mutex_;
  fault::FaultInjector* injector_ = nullptr;
  fault::BackoffPolicy backoff_;
  util::Rng backoff_rng_{0};

  /// Metric handles resolved at set_observability; null ⇒ no-op.
  struct Hooks {
    obs::Counter* transfers = nullptr;
    obs::Counter* transferred_bytes = nullptr;
    obs::Counter* local_hits = nullptr;
    obs::Counter* stale_refetches = nullptr;
    obs::Counter* worker_crashes = nullptr;
    obs::Counter* redispatches = nullptr;
    obs::Counter* cold_rejoins = nullptr;
    obs::Counter* direct_transfers = nullptr;
    obs::Counter* transfer_faults = nullptr;
    obs::Counter* transfer_retries = nullptr;
    obs::Counter* failed_transfers = nullptr;
    obs::Counter* resumed_bytes = nullptr;
    obs::Counter* reshipped_bytes = nullptr;
    obs::Gauge* backoff_seconds = nullptr;
    obs::EventTrace* trace = nullptr;
  };
  Hooks hooks_;
};

/// Fault wiring for a run_with_workers replay: the plan drives one
/// injector shared by the pool (kWorkerCrash/kWorkerTransfer streams).
struct DispatchFaultConfig {
  fault::FaultPlan plan;
  fault::BackoffPolicy backoff;
};

/// One end-to-end run: head-node LANDLORD cache + worker pool over a
/// request stream.
struct TransferResult {
  core::CacheCounters head_counters;
  util::Bytes transferred_bytes = 0;
  std::uint64_t transfers = 0;
  std::uint64_t local_hits = 0;
  std::uint64_t stale_refetches = 0;
  util::Bytes requested_bytes = 0;
  std::uint64_t dispatches = 0;
  DispatchCounters dispatch;
};

[[nodiscard]] TransferResult run_with_workers(
    const pkg::Repository& repo, const core::CacheConfig& cache_config,
    const WorkerPoolConfig& pool_config,
    const std::vector<spec::Specification>& specs,
    const std::vector<std::uint32_t>& stream, std::uint64_t seed);

/// Fault-wired variant: replays the same stream with worker churn and
/// transfer cuts from `faults`. cache_config.shards > 1 replays through
/// a core::ShardedCache (single-threaded, bit-identical to the
/// sequential Cache — the dispatch-counter equivalence test relies on
/// this). An empty plan makes this bit-identical to the overload above.
[[nodiscard]] TransferResult run_with_workers(
    const pkg::Repository& repo, const core::CacheConfig& cache_config,
    const WorkerPoolConfig& pool_config,
    const std::vector<spec::Specification>& specs,
    const std::vector<std::uint32_t>& stream, std::uint64_t seed,
    const DispatchFaultConfig& faults, obs::Observability* obs = nullptr);

}  // namespace landlord::sim
