#include "sim/workload.hpp"

#include <cassert>

namespace landlord::sim {

spec::Specification WorkloadGenerator::dependency_closure_spec() {
  const auto n = static_cast<std::uint32_t>(repo_->size());
  const auto k = static_cast<std::uint32_t>(
      rng_.uniform(1, std::min(config_.max_initial_selection, n)));
  const auto indices = rng_.sample_without_replacement(n, k);
  std::vector<pkg::PackageId> selection;
  selection.reserve(indices.size());
  for (std::uint32_t i : indices) selection.push_back(pkg::package_id(i));
  return spec::Specification::from_request(*repo_, selection, "sim:deps");
}

spec::Specification WorkloadGenerator::next_specification() {
  // Both schemes start from a dependency-closure image; the random scheme
  // then re-draws the same *number* of packages uniformly (Fig. 7's
  // size-matched control).
  spec::Specification base = dependency_closure_spec();
  if (config_.scheme == ImageScheme::kDependencyClosure) return base;

  const auto count = static_cast<std::uint32_t>(base.size());
  const auto indices = rng_.sample_without_replacement(
      static_cast<std::uint32_t>(repo_->size()), count);
  spec::PackageSet set(repo_->size());
  for (std::uint32_t i : indices) set.insert(pkg::package_id(i));
  return spec::Specification(std::move(set), "sim:random");
}

std::vector<spec::Specification> WorkloadGenerator::unique_specifications() {
  std::vector<spec::Specification> out;
  out.reserve(config_.unique_jobs);
  for (std::uint32_t i = 0; i < config_.unique_jobs; ++i) {
    out.push_back(next_specification());
  }
  return out;
}

spec::Specification WorkloadGenerator::evolved_specification(
    const spec::Specification& spec, double upgrade_probability) {
  if (!chains_) chains_ = std::make_unique<pkg::VersionChains>(*repo_);
  std::vector<pkg::PackageId> selection;
  selection.reserve(spec.size());
  spec.packages().for_each([&](pkg::PackageId id) {
    if (rng_.chance(upgrade_probability)) {
      if (auto next = chains_->successor(id)) {
        selection.push_back(*next);
        return;
      }
    }
    selection.push_back(id);
  });
  return spec::Specification::from_request(*repo_, selection,
                                           spec.provenance() + ":evolved");
}

std::vector<std::uint32_t> WorkloadGenerator::request_stream() {
  std::vector<std::uint32_t> stream;
  stream.reserve(static_cast<std::size_t>(config_.unique_jobs) * config_.repetitions);
  for (std::uint32_t rep = 0; rep < config_.repetitions; ++rep) {
    for (std::uint32_t job = 0; job < config_.unique_jobs; ++job) {
      stream.push_back(job);
    }
  }
  if (config_.shuffle_stream) {
    rng_.shuffle(std::span<std::uint32_t>(stream));
  }
  return stream;
}

}  // namespace landlord::sim
