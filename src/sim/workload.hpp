// Simulated HTC job workloads (§VI, "Simulating HTC Jobs").
//
// Two image-request schemes from the paper:
//
//  * kDependencyClosure — "we randomly made an initial selection of up to
//    100 packages" then "added the closure of the package dependencies",
//    so images carry the repository's hierarchical structure (shared core
//    components appear in almost every image).
//  * kUniformRandom — the Fig. 7 control: an image with the *same package
//    count* as a dependency-closure image, but the packages are chosen
//    uniformly at random with no dependency relationships. No structural
//    overlap, so Jaccard merging should find little to exploit.
//
// A request stream repeats each unique specification `repetitions` times
// (the paper's single-run uses 500 unique jobs x 5), shuffled so repeats
// interleave the way a multi-user submission stream would.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "pkg/repository.hpp"
#include "pkg/versions.hpp"
#include "spec/specification.hpp"
#include "util/rng.hpp"

namespace landlord::sim {

enum class ImageScheme : std::uint8_t { kDependencyClosure, kUniformRandom };

[[nodiscard]] constexpr const char* to_string(ImageScheme scheme) noexcept {
  switch (scheme) {
    case ImageScheme::kDependencyClosure: return "deps";
    case ImageScheme::kUniformRandom: return "random";
  }
  return "?";
}

struct WorkloadConfig {
  std::uint32_t unique_jobs = 500;
  std::uint32_t repetitions = 5;
  /// Initial selection size is uniform in [1, max_initial_selection].
  std::uint32_t max_initial_selection = 100;
  ImageScheme scheme = ImageScheme::kDependencyClosure;
  /// Shuffle the request stream so repetitions interleave.
  bool shuffle_stream = true;
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(const pkg::Repository& repo, WorkloadConfig config,
                    util::Rng rng)
      : repo_(&repo), config_(config), rng_(rng) {}

  /// One simulated image request under the configured scheme.
  [[nodiscard]] spec::Specification next_specification();

  /// `unique_jobs` distinct specifications.
  [[nodiscard]] std::vector<spec::Specification> unique_specifications();

  /// Workload drift ("as a user's work evolves, different jobs need
  /// different software, and new containers are generated", §I): returns
  /// an evolved copy of `spec` where each member package independently
  /// upgrades to its project's next version with probability
  /// `upgrade_probability`, re-closed over dependencies. Version chains
  /// are computed lazily on first use.
  [[nodiscard]] spec::Specification evolved_specification(
      const spec::Specification& spec, double upgrade_probability);

  /// Indices into the unique-spec vector forming the request stream
  /// (each index appears `repetitions` times).
  [[nodiscard]] std::vector<std::uint32_t> request_stream();

 private:
  [[nodiscard]] spec::Specification dependency_closure_spec();

  const pkg::Repository* repo_;
  WorkloadConfig config_;
  util::Rng rng_;
  std::unique_ptr<pkg::VersionChains> chains_;  ///< lazy (drift only)
};

}  // namespace landlord::sim
