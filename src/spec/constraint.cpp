#include "spec/constraint.hpp"

#include <algorithm>
#include <cctype>
#include <map>

#include "util/version.hpp"

namespace landlord::spec {

void merge_constraints(std::vector<VersionConstraint>& into,
                       std::span<const VersionConstraint> add) {
  for (const VersionConstraint& constraint : add) {
    if (std::find(into.begin(), into.end(), constraint) == into.end()) {
      into.push_back(constraint);
    }
  }
}

util::Result<VersionConstraint> parse_constraint(std::string_view text) {
  // Trim.
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front())))
    text.remove_prefix(1);
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back())))
    text.remove_suffix(1);
  if (text.empty()) return util::Error{"empty constraint"};

  // Find the operator (two-char ops first).
  static constexpr struct {
    std::string_view token;
    ConstraintOp op;
  } kOps[] = {
      {"==", ConstraintOp::kEq}, {"!=", ConstraintOp::kNe},
      {"<=", ConstraintOp::kLe}, {">=", ConstraintOp::kGe},
      {"<", ConstraintOp::kLt},  {">", ConstraintOp::kGt},
  };

  std::size_t op_pos = std::string_view::npos;
  std::size_t op_len = 0;
  ConstraintOp op = ConstraintOp::kEq;
  for (const auto& candidate : kOps) {
    const std::size_t pos = text.find(candidate.token);
    if (pos != std::string_view::npos &&
        (op_pos == std::string_view::npos || pos < op_pos ||
         (pos == op_pos && candidate.token.size() > op_len))) {
      op_pos = pos;
      op_len = candidate.token.size();
      op = candidate.op;
    }
  }

  VersionConstraint out;
  if (op_pos == std::string_view::npos) {
    // Bare package name: any version. Encoded as `>= ""` which every
    // version satisfies.
    out.package = std::string(text);
    out.op = ConstraintOp::kGe;
    out.version.clear();
    if (out.package.find(' ') != std::string::npos) {
      return util::Error{"constraint has embedded space: " + out.package};
    }
    return out;
  }

  std::string_view name = text.substr(0, op_pos);
  std::string_view version = text.substr(op_pos + op_len);
  while (!name.empty() && std::isspace(static_cast<unsigned char>(name.back())))
    name.remove_suffix(1);
  while (!version.empty() && std::isspace(static_cast<unsigned char>(version.front())))
    version.remove_prefix(1);
  if (name.empty()) return util::Error{"constraint missing package name"};
  if (version.empty()) return util::Error{"constraint missing version"};
  out.package = std::string(name);
  out.op = op;
  out.version = std::string(version);
  return out;
}

namespace {

/// Interval with optional exclusions over the totally ordered version
/// space; empty() answers satisfiability for one package name.
struct VersionRange {
  // Bounds are version strings; empty lower bound = -inf (every version
  // compares >= ""). has_upper tracks whether an upper bound exists.
  std::string lower;        // -inf encoded as ""
  bool lower_strict = false;
  bool has_upper = false;
  std::string upper;
  bool upper_strict = false;
  std::vector<std::string> pinned;     // from ==
  std::vector<std::string> excluded;   // from !=

  [[nodiscard]] bool admits(std::string_view v) const {
    const int lc = version_compare(v, lower);
    if (lower_strict ? lc <= 0 : lc < 0) return false;
    if (has_upper) {
      const int uc = version_compare(v, upper);
      if (upper_strict ? uc >= 0 : uc > 0) return false;
    }
    return std::none_of(excluded.begin(), excluded.end(), [&](const std::string& e) {
      return version_compare(v, e) == 0;
    });
  }

  [[nodiscard]] bool satisfiable() const {
    if (!pinned.empty()) {
      // All pins must agree, and the pin must fall inside the range.
      for (std::size_t i = 1; i < pinned.size(); ++i) {
        if (version_compare(pinned[i], pinned[0]) != 0) return false;
      }
      return admits(pinned[0]);
    }
    // Range emptiness: with a dense (append-only, all versions present)
    // version space, [lower, upper] is non-empty iff lower < upper or
    // (lower == upper and neither side strict). != exclusions never
    // exhaust a dense range unless it is a single point.
    if (!has_upper) return true;
    const int c = version_compare(lower, upper);
    if (c > 0) return false;
    if (c == 0) {
      if (lower_strict || upper_strict) return false;
      // Single point: excluded?
      return admits(lower);
    }
    return true;
  }

  void apply(const VersionConstraint& constraint) {
    switch (constraint.op) {
      case ConstraintOp::kEq:
        pinned.push_back(constraint.version);
        break;
      case ConstraintOp::kNe:
        excluded.push_back(constraint.version);
        break;
      case ConstraintOp::kLt:
      case ConstraintOp::kLe: {
        const bool strict = constraint.op == ConstraintOp::kLt;
        if (!has_upper || version_compare(constraint.version, upper) < 0 ||
            (version_compare(constraint.version, upper) == 0 && strict)) {
          upper = constraint.version;
          upper_strict = strict;
          has_upper = true;
        }
        break;
      }
      case ConstraintOp::kGt:
      case ConstraintOp::kGe: {
        const bool strict = constraint.op == ConstraintOp::kGt;
        if (version_compare(constraint.version, lower) > 0 ||
            (version_compare(constraint.version, lower) == 0 && strict)) {
          lower = constraint.version;
          lower_strict = strict;
        }
        break;
      }
    }
  }
};

bool satisfiable_impl(std::span<const VersionConstraint> a,
                      std::span<const VersionConstraint> b) {
  std::map<std::string_view, VersionRange> by_package;
  for (const auto* group : {&a, &b}) {
    for (const auto& constraint : *group) {
      by_package[constraint.package].apply(constraint);
    }
  }
  return std::all_of(by_package.begin(), by_package.end(),
                     [](const auto& entry) { return entry.second.satisfiable(); });
}

}  // namespace

bool ConflictChecker::compatible(std::span<const VersionConstraint> a,
                                 std::span<const VersionConstraint> b) {
  return satisfiable_impl(a, b);
}

bool ConflictChecker::satisfiable(std::span<const VersionConstraint> constraints) {
  return satisfiable_impl(constraints, {});
}

}  // namespace landlord::spec
