// Version constraints and specification conflict checking.
//
// The Jaccard metric "does not capture conflicts between components"
// (§V): two specifications may carry version constraints that cannot be
// simultaneously satisfied, and whether that matters depends on the
// package manager. We model the common constraint language
// (name {== != < <= > >=} version) and check joint satisfiability under
// the append-only-repo assumption (every named version remains
// available, as with CVMFS) — so a conflict can only arise from the
// constraints themselves, e.g. {python == 3.8} vs {python == 3.9} when
// at most one version of `python` may be materialised in an image.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"
#include "util/version.hpp"

namespace landlord::spec {

enum class ConstraintOp : std::uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

[[nodiscard]] constexpr const char* to_string(ConstraintOp op) noexcept {
  switch (op) {
    case ConstraintOp::kEq: return "==";
    case ConstraintOp::kNe: return "!=";
    case ConstraintOp::kLt: return "<";
    case ConstraintOp::kLe: return "<=";
    case ConstraintOp::kGt: return ">";
    case ConstraintOp::kGe: return ">=";
  }
  return "?";
}

struct VersionConstraint {
  std::string package;  ///< project name the constraint applies to
  ConstraintOp op = ConstraintOp::kEq;
  std::string version;

  [[nodiscard]] bool operator==(const VersionConstraint&) const = default;
};

/// Natural version ordering (see util/version.hpp); re-exported here
/// because constraints are its primary consumer.
using util::version_compare;

/// Appends each constraint of `add` to `into` unless an equal constraint
/// (same package, op and version) is already present, preserving first
/// occurrence order. Merged cache images accumulate the constraints of
/// every spec folded in; without dedup a hot image's constraint list
/// grows linearly with merges even when the workload reuses a handful of
/// distinct constraints.
void merge_constraints(std::vector<VersionConstraint>& into,
                       std::span<const VersionConstraint> add);

/// Parses "name==1.2.3", "name >= 4", "name" (any version). Whitespace
/// around the operator is accepted.
[[nodiscard]] util::Result<VersionConstraint> parse_constraint(std::string_view text);

/// Checks whether one package name's constraints admit at least one
/// version, assuming a totally ordered, dense version space (append-only
/// repository: all versions exist). Constraints on different packages
/// never interact.
class ConflictChecker {
 public:
  /// True iff the union of `a` and `b` is jointly satisfiable for every
  /// package name mentioned.
  [[nodiscard]] static bool compatible(std::span<const VersionConstraint> a,
                                       std::span<const VersionConstraint> b);

  /// True iff `constraints` alone are satisfiable.
  [[nodiscard]] static bool satisfiable(std::span<const VersionConstraint> constraints);
};

}  // namespace landlord::spec
