#include "spec/diff.hpp"

#include <sstream>

#include "util/bytes.hpp"

namespace landlord::spec {

SetDiff diff(const pkg::Repository& repo, const PackageSet& requested,
             const PackageSet& image) {
  SetDiff d;
  d.missing = requested;
  d.missing.subtract(image);
  d.extra = image;
  d.extra.subtract(requested);
  d.shared = requested;
  {
    // shared = requested ∩ image = requested \ missing
    d.shared.subtract(d.missing);
  }
  d.missing_bytes = repo.bytes_of(d.missing.bits());
  d.extra_bytes = repo.bytes_of(d.extra.bits());
  d.shared_bytes = repo.bytes_of(d.shared.bits());
  return d;
}

namespace {

void name_some(std::ostringstream& out, const pkg::Repository& repo,
               const PackageSet& set, std::size_t max_named) {
  std::size_t named = 0;
  set.for_each([&](pkg::PackageId id) {
    if (named < max_named) {
      out << (named > 0 ? ", " : "") << repo[id].key();
    }
    ++named;
  });
  if (named > max_named) out << ", ... (" << named - max_named << " more)";
}

}  // namespace

std::string describe_diff(const pkg::Repository& repo, const SetDiff& d,
                          std::size_t max_named) {
  std::ostringstream out;
  if (d.satisfied()) {
    out << "satisfied";
    if (d.extra.empty()) {
      out << " exactly";
    } else {
      out << ", ships " << util::format_bytes(d.extra_bytes) << " of unrequested data ("
          << static_cast<int>(100.0 * d.utilization()) << "% utilization): ";
      name_some(out, repo, d.extra, max_named);
    }
  } else {
    out << "missing " << d.missing.size() << " package(s) ("
        << util::format_bytes(d.missing_bytes) << "): ";
    name_some(out, repo, d.missing, max_named);
  }
  return out.str();
}

}  // namespace landlord::spec
