// Specification / image diffing.
//
// §IV's key insight is that specifications compare where images cannot.
// These helpers make the comparison concrete: what a candidate image is
// missing for a spec, what extra (unrequested) data it would ship, and a
// byte-level breakdown administrators can act on.
#pragma once

#include <string>

#include "pkg/repository.hpp"
#include "spec/package_set.hpp"

namespace landlord::spec {

struct SetDiff {
  PackageSet missing;  ///< in the spec but not the image
  PackageSet extra;    ///< in the image but not requested
  PackageSet shared;   ///< in both
  util::Bytes missing_bytes = 0;
  util::Bytes extra_bytes = 0;
  util::Bytes shared_bytes = 0;

  /// True iff the image satisfies the spec (nothing missing).
  [[nodiscard]] bool satisfied() const noexcept { return missing.empty(); }

  /// Fraction of image bytes the spec actually uses; 1 for an exact
  /// match, lower for bloat (the per-pair container efficiency).
  [[nodiscard]] double utilization() const noexcept {
    const auto image_bytes = shared_bytes + extra_bytes;
    return image_bytes > 0
               ? static_cast<double>(shared_bytes) / static_cast<double>(image_bytes)
               : 1.0;
  }
};

/// Computes the three-way split between a requested set and an image's
/// contents (both over `repo`'s universe).
[[nodiscard]] SetDiff diff(const pkg::Repository& repo, const PackageSet& requested,
                           const PackageSet& image);

/// Human-readable one-paragraph summary ("satisfied, ships 1.2 GiB of
/// unrequested data (83% utilization)" / "missing 3 packages: ...").
/// Lists at most `max_named` package keys per category.
[[nodiscard]] std::string describe_diff(const pkg::Repository& repo,
                                        const SetDiff& d,
                                        std::size_t max_named = 5);

}  // namespace landlord::spec
