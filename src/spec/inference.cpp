#include "spec/inference.hpp"

#include <algorithm>
#include <cctype>
#include <istream>
#include <sstream>

#include "spec/constraint.hpp"

namespace landlord::spec {

namespace {

bool is_ident_char(char ch) noexcept {
  return std::isalnum(static_cast<unsigned char>(ch)) != 0 || ch == '_' ||
         ch == '-' || ch == '.';
}

std::string_view trim(std::string_view text) noexcept {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front())))
    text.remove_prefix(1);
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back())))
    text.remove_suffix(1);
  return text;
}

/// First dotted-path component: "a.b.c" -> "a".
std::string top_level(std::string_view module_path) {
  const std::size_t dot = module_path.find('.');
  return std::string(module_path.substr(0, dot));
}

void push_unique(std::vector<Requirement>& out, Requirement req) {
  if (req.project.empty()) return;
  if (std::find(out.begin(), out.end(), req) == out.end()) {
    out.push_back(std::move(req));
  }
}

std::vector<std::string_view> split_words(std::string_view line) {
  std::vector<std::string_view> words;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    const std::size_t start = i;
    while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    if (i > start) words.push_back(line.substr(start, i - start));
  }
  return words;
}

}  // namespace

std::vector<Requirement> scan_python_imports(std::istream& in) {
  std::vector<Requirement> out;
  std::string line;
  while (std::getline(in, line)) {
    std::string_view text = trim(line);
    // Strip trailing comment (best-effort; ignores '#' inside strings).
    if (const std::size_t hash = text.find('#'); hash != std::string_view::npos) {
      text = trim(text.substr(0, hash));
    }
    if (text.starts_with("import ")) {
      // import a, b.c as d, e
      std::string_view rest = text.substr(7);
      std::size_t pos = 0;
      while (pos <= rest.size()) {
        const std::size_t comma = rest.find(',', pos);
        std::string_view item = trim(rest.substr(
            pos, comma == std::string_view::npos ? std::string_view::npos
                                                 : comma - pos));
        // Drop "as alias".
        if (const std::size_t as_pos = item.find(" as "); as_pos != std::string_view::npos) {
          item = trim(item.substr(0, as_pos));
        }
        // Validate a module path token.
        if (!item.empty() &&
            std::all_of(item.begin(), item.end(), is_ident_char)) {
          push_unique(out, Requirement{top_level(item), ""});
        }
        if (comma == std::string_view::npos) break;
        pos = comma + 1;
      }
    } else if (text.starts_with("from ")) {
      // from x.y import z
      std::string_view rest = trim(text.substr(5));
      const std::size_t space = rest.find(' ');
      std::string_view module = rest.substr(0, space);
      if (!module.empty() && module.front() != '.' &&
          std::all_of(module.begin(), module.end(), is_ident_char)) {
        push_unique(out, Requirement{top_level(module), ""});
      }
    }
  }
  return out;
}

std::vector<Requirement> scan_module_loads(std::istream& in) {
  std::vector<Requirement> out;
  std::string line;
  while (std::getline(in, line)) {
    std::string_view text = trim(line);
    if (const std::size_t hash = text.find('#'); hash != std::string_view::npos) {
      text = trim(text.substr(0, hash));
    }
    auto words = split_words(text);
    if (words.size() < 3) continue;
    if (words[0] != "module" && words[0] != "ml") continue;
    if (words[1] != "load" && words[1] != "add") continue;
    for (std::size_t i = 2; i < words.size(); ++i) {
      std::string_view word = words[i];
      if (word.starts_with('-')) continue;  // skip flags
      const std::size_t slash = word.find('/');
      Requirement req;
      if (slash == std::string_view::npos) {
        req.project = std::string(word);
      } else {
        req.project = std::string(word.substr(0, slash));
        req.version = std::string(word.substr(slash + 1));
      }
      push_unique(out, std::move(req));
    }
  }
  return out;
}

std::vector<Requirement> scan_job_log(std::istream& in) {
  std::vector<Requirement> out;
  std::string line;
  constexpr std::string_view kMount = "/cvmfs/";
  while (std::getline(in, line)) {
    std::string_view text = line;
    std::size_t pos = 0;
    while ((pos = text.find(kMount, pos)) != std::string_view::npos) {
      // /cvmfs/<repo>/<project>/<version>/...
      std::size_t cursor = pos + kMount.size();
      auto next_component = [&]() -> std::string_view {
        const std::size_t start = cursor;
        while (cursor < text.size() && text[cursor] != '/' &&
               !std::isspace(static_cast<unsigned char>(text[cursor])) &&
               text[cursor] != '"' && text[cursor] != '\'') {
          ++cursor;
        }
        std::string_view component = text.substr(start, cursor - start);
        if (cursor < text.size() && text[cursor] == '/') ++cursor;
        return component;
      };
      const std::string_view repo_name = next_component();
      const std::string_view project = next_component();
      const std::string_view version = next_component();
      if (!repo_name.empty() && !project.empty()) {
        push_unique(out, Requirement{std::string(project), std::string(version)});
      }
      pos = cursor;
    }
  }
  return out;
}

PackageResolver::PackageResolver(const pkg::Repository& repo) : repo_(&repo) {
  for (std::uint32_t i = 0; i < repo.size(); ++i) {
    const auto id = pkg::package_id(i);
    const auto& info = repo[id];
    auto [it, inserted] = newest_.emplace(info.name, id);
    if (!inserted &&
        version_compare(info.version, repo[it->second].version) > 0) {
      it->second = id;
    }
  }
}

std::optional<pkg::PackageId> PackageResolver::resolve(const Requirement& req) const {
  if (!req.version.empty()) {
    return repo_->find(req.project + "/" + req.version);
  }
  auto it = newest_.find(req.project);
  if (it == newest_.end()) return std::nullopt;
  return it->second;
}

std::vector<pkg::PackageId> PackageResolver::resolve_all(
    std::span<const Requirement> requirements,
    std::vector<std::string>* unresolved) const {
  std::vector<pkg::PackageId> out;
  out.reserve(requirements.size());
  for (const auto& req : requirements) {
    if (auto id = resolve(req)) {
      out.push_back(*id);
    } else if (unresolved != nullptr) {
      unresolved->push_back(req.version.empty()
                                ? req.project
                                : req.project + "/" + req.version);
    }
  }
  return out;
}

Specification infer_specification(const pkg::Repository& repo,
                                  std::span<const Requirement> requirements,
                                  std::string provenance,
                                  std::vector<std::string>* unresolved) {
  const PackageResolver resolver(repo);
  const auto ids = resolver.resolve_all(requirements, unresolved);
  return Specification::from_request(repo, ids, std::move(provenance));
}

}  // namespace landlord::spec
