// Specification inference ("we also developed several simple analysis
// tools to automatically generate specifications by scanning for Python
// import statements, module load directives, or logs from previous
// jobs", §V "LANDLORD Deployment").
//
// Each scanner extracts requirement tokens from a text source; the
// PackageResolver maps tokens to concrete packages in a repository
// (picking the newest version when the token names only a project), and
// infer_specification() assembles the dependency-closed Specification.
#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "pkg/repository.hpp"
#include "spec/specification.hpp"

namespace landlord::spec {

/// A requirement discovered in a source: a project name and optionally a
/// pinned version (empty = any / newest).
struct Requirement {
  std::string project;
  std::string version;  ///< empty means "latest available"

  [[nodiscard]] bool operator==(const Requirement&) const = default;
};

/// Scans Python source for imported top-level modules:
///   import a, b.c as d      -> a, b
///   from x.y import z       -> x
/// Lines inside strings/comments are ignored on a best-effort,
/// line-oriented basis (matching the paper's "simple analysis tools").
[[nodiscard]] std::vector<Requirement> scan_python_imports(std::istream& in);

/// Scans shell scripts for environment-module directives:
///   module load root/6.18.04 geant4
///   module add python          (alias)
/// Each argument yields a Requirement; "name/version" splits into both.
[[nodiscard]] std::vector<Requirement> scan_module_loads(std::istream& in);

/// Scans job logs for file accesses under a CVMFS-style mount:
///   ... /cvmfs/<repo>/<project>/<version>/... -> {project, version}
/// Any token containing "/cvmfs/" is considered.
[[nodiscard]] std::vector<Requirement> scan_job_log(std::istream& in);

/// Maps project names (and optional versions) to packages: exact
/// "name/version" when the version is given, else the newest version of
/// the project by natural version order.
class PackageResolver {
 public:
  explicit PackageResolver(const pkg::Repository& repo);

  [[nodiscard]] std::optional<pkg::PackageId> resolve(const Requirement& req) const;

  /// Resolves every requirement it can; unresolved project names are
  /// appended to `unresolved` when non-null.
  [[nodiscard]] std::vector<pkg::PackageId> resolve_all(
      std::span<const Requirement> requirements,
      std::vector<std::string>* unresolved = nullptr) const;

 private:
  const pkg::Repository* repo_;
  // project name -> newest package of that project
  std::unordered_map<std::string, pkg::PackageId> newest_;
};

/// End-to-end: resolve requirements and build the closure-expanded
/// Specification. Unresolvable requirements are skipped (reported via
/// `unresolved`), matching the tools' best-effort behaviour.
[[nodiscard]] Specification infer_specification(
    const pkg::Repository& repo, std::span<const Requirement> requirements,
    std::string provenance, std::vector<std::string>* unresolved = nullptr);

}  // namespace landlord::spec
