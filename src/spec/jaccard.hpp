// Jaccard distance between package sets (§V, "Similarity Metric").
//
//   d_j(A, B) = 1 - |A ∩ B| / |A ∪ B|
//
// The paper chooses this metric because it is "simple, adequate, and
// non-controversial": near-identical specifications score close to 0,
// disjoint ones score 1, and repeated merges push a bloated image's
// distance from any individual request upward until it stops being a
// merge candidate and ages out of the cache.
#pragma once

#include "spec/package_set.hpp"

namespace landlord::spec {

/// Jaccard similarity |A∩B| / |A∪B|; defined as 1 for two empty sets.
[[nodiscard]] inline double jaccard_similarity(const PackageSet& a,
                                               const PackageSet& b) noexcept {
  const std::size_t inter = a.intersection_size(b);
  const std::size_t uni = a.size() + b.size() - inter;
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

/// Jaccard distance 1 - similarity; defined as 0 for two empty sets.
[[nodiscard]] inline double jaccard_distance(const PackageSet& a,
                                             const PackageSet& b) noexcept {
  return 1.0 - jaccard_similarity(a, b);
}

}  // namespace landlord::spec
