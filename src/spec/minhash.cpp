#include "spec/minhash.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "util/rng.hpp"

namespace landlord::spec {

namespace {

/// Strong 64-bit mix (xxhash/murmur finalizer family); h(seed, x) acts as
/// an independent hash function per seed.
constexpr std::uint64_t mix(std::uint64_t seed, std::uint64_t x) noexcept {
  std::uint64_t h = x + seed;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

}  // namespace

MinHasher::MinHasher(std::size_t k, std::uint64_t seed) {
  assert(k > 0);
  seeds_.resize(k);
  std::uint64_t sm = seed;
  for (auto& s : seeds_) s = util::splitmix64(sm);
}

MinHashSignature MinHasher::sign(const PackageSet& set) const {
  return sign_prefix(set, seeds_.size());
}

MinHashSignature MinHasher::sign_prefix(const PackageSet& set,
                                        std::size_t rows) const {
  const std::size_t count = std::min(rows, seeds_.size());
  MinHashSignature signature;
  signature.components.assign(count, std::numeric_limits<std::uint64_t>::max());
  set.for_each([&](pkg::PackageId id) {
    const auto element = static_cast<std::uint64_t>(pkg::to_index(id));
    for (std::size_t i = 0; i < count; ++i) {
      signature.components[i] =
          std::min(signature.components[i], mix(seeds_[i], element));
    }
  });
  return signature;
}

double MinHasher::estimate_similarity(const MinHashSignature& a,
                                      const MinHashSignature& b) noexcept {
  assert(a.size() == b.size() && a.size() > 0);
  std::size_t matches = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    matches += (a.components[i] == b.components[i]) ? 1u : 0u;
  }
  return static_cast<double>(matches) / static_cast<double>(a.size());
}

std::uint64_t band_signature_hash(const MinHashSignature& signature,
                                  std::size_t bands, std::size_t band) noexcept {
  assert(bands > 0 && signature.size() % bands == 0 &&
         "band count must divide signature length");
  const std::size_t rows = signature.size() / bands;
  std::uint64_t h = 0x811c9dc5ULL ^ static_cast<std::uint64_t>(band);
  for (std::size_t r = 0; r < rows; ++r) {
    h = mix(h, signature.components[band * rows + r]);
  }
  return h;
}

std::uint64_t LshIndex::band_hash(const MinHashSignature& signature,
                                  std::size_t band) const noexcept {
  return band_signature_hash(signature, bands_, band);
}

void LshIndex::insert(std::uint64_t item, const MinHashSignature& signature) {
  if (tables_.empty()) tables_.resize(bands_);
  for (std::size_t band = 0; band < bands_; ++band) {
    tables_[band][band_hash(signature, band)].push_back(item);
  }
  ++items_;
}

void LshIndex::erase(std::uint64_t item, const MinHashSignature& signature) {
  if (tables_.empty()) return;
  bool found = false;
  for (std::size_t band = 0; band < bands_; ++band) {
    auto it = tables_[band].find(band_hash(signature, band));
    if (it == tables_[band].end()) continue;
    auto& bucket = it->second;
    auto pos = std::find(bucket.begin(), bucket.end(), item);
    if (pos != bucket.end()) {
      bucket.erase(pos);
      found = true;
      if (bucket.empty()) tables_[band].erase(it);
    }
  }
  if (found && items_ > 0) --items_;
}

std::vector<std::uint64_t> LshIndex::candidates(
    const MinHashSignature& signature) const {
  std::vector<std::uint64_t> out;
  if (tables_.empty()) return out;
  for (std::size_t band = 0; band < bands_; ++band) {
    auto it = tables_[band].find(band_hash(signature, band));
    if (it == tables_[band].end()) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace landlord::spec
