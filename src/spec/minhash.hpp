// MinHash signatures and LSH banding (§V cites Broder '97).
//
// The Jaccard distance over explicit sets costs O(universe/64) per pair;
// that is fine for a 9,660-package repository but not for "very large
// specifications" — the paper notes metadata listings for full-repository
// CVMFS images ran to gigabytes. MinHash compresses a set into k 64-bit
// component minima such that P[sig_a[i] == sig_b[i]] equals the Jaccard
// similarity, giving a constant-time unbiased estimator; LSH banding
// turns a signature store into a sublinear "find candidates within
// distance α" index that cache policies can use as a prefilter.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "spec/package_set.hpp"

namespace landlord::spec {

/// A MinHash signature: component i is min over set elements of h_i(x).
struct MinHashSignature {
  std::vector<std::uint64_t> components;

  [[nodiscard]] std::size_t size() const noexcept { return components.size(); }
};

/// Produces signatures with k independent hash functions derived from a
/// seed. Two MinHashers with equal (k, seed) produce comparable signatures.
class MinHasher {
 public:
  explicit MinHasher(std::size_t k = 128, std::uint64_t seed = 0x9d2c5680);

  [[nodiscard]] std::size_t k() const noexcept { return seeds_.size(); }

  [[nodiscard]] MinHashSignature sign(const PackageSet& set) const;

  /// First `rows` components of sign(set) — bit-identical to the full
  /// signature's prefix at a fraction of the cost. Shard homing needs
  /// only one band (k/bands rows), not the whole signature.
  [[nodiscard]] MinHashSignature sign_prefix(const PackageSet& set,
                                             std::size_t rows) const;

  /// Unbiased Jaccard similarity estimate: matching component fraction.
  /// Signatures must come from MinHashers with identical (k, seed).
  [[nodiscard]] static double estimate_similarity(const MinHashSignature& a,
                                                  const MinHashSignature& b) noexcept;

  /// 1 - estimate_similarity.
  [[nodiscard]] static double estimate_distance(const MinHashSignature& a,
                                                const MinHashSignature& b) noexcept {
    return 1.0 - estimate_similarity(a, b);
  }

 private:
  std::vector<std::uint64_t> seeds_;
};

/// Stable 64-bit digest of one LSH band of a signature (band 0 by
/// default). `bands` must divide the signature length. Two sets whose
/// Jaccard similarity is s collide on a band with probability s^rows —
/// core::ShardedCache uses this as its shard-homing key so that
/// near-duplicate specifications tend to land on the same shard, keeping
/// merges shard-local.
[[nodiscard]] std::uint64_t band_signature_hash(const MinHashSignature& signature,
                                               std::size_t bands,
                                               std::size_t band = 0) noexcept;

/// Locality-sensitive index over MinHash signatures: signatures are cut
/// into `bands` bands of k/bands rows; items sharing any band hash are
/// candidate neighbours. With similarity s, the candidate probability is
/// 1 - (1 - s^rows)^bands — an S-curve whose threshold is tuned via the
/// band count.
class LshIndex {
 public:
  /// `bands` must divide the signature length used with this index.
  explicit LshIndex(std::size_t bands = 16) : bands_(bands) {}

  void insert(std::uint64_t item, const MinHashSignature& signature);
  void erase(std::uint64_t item, const MinHashSignature& signature);

  /// Item ids sharing at least one band with `signature` (deduplicated,
  /// unspecified order).
  [[nodiscard]] std::vector<std::uint64_t> candidates(
      const MinHashSignature& signature) const;

  [[nodiscard]] std::size_t size() const noexcept { return items_; }

 private:
  [[nodiscard]] std::uint64_t band_hash(const MinHashSignature& signature,
                                        std::size_t band) const noexcept;

  std::size_t bands_;
  std::size_t items_ = 0;
  // One bucket map per band: band hash -> item ids.
  std::vector<std::unordered_map<std::uint64_t, std::vector<std::uint64_t>>> tables_;
};

}  // namespace landlord::spec
