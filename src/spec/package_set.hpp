// PackageSet: a set of packages over a fixed repository universe.
//
// Wraps util::DynamicBitset with a cached cardinality so the hot cache
// operations — subset test (hit detection) and Jaccard distance (merge
// candidate selection) — cost one fused pass over ~N/64 words, using
// |A ∪ B| = |A| + |B| - |A ∩ B| to avoid a second pass.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "pkg/package.hpp"
#include "util/bitset.hpp"

namespace landlord::spec {

class PackageSet {
 public:
  PackageSet() = default;

  /// Empty set over a universe of `universe` packages.
  explicit PackageSet(std::size_t universe) : bits_(universe), count_(0) {}

  /// Adopts a bitset (e.g. a dependency closure from pkg::Repository).
  explicit PackageSet(util::DynamicBitset bits)
      : bits_(std::move(bits)), count_(bits_.count()) {}

  [[nodiscard]] static PackageSet from_ids(std::size_t universe,
                                           std::span<const pkg::PackageId> ids) {
    PackageSet set(universe);
    for (pkg::PackageId id : ids) set.insert(id);
    return set;
  }

  [[nodiscard]] std::size_t universe() const noexcept { return bits_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  [[nodiscard]] bool contains(pkg::PackageId id) const noexcept {
    return bits_.test(pkg::to_index(id));
  }

  void insert(pkg::PackageId id) noexcept {
    const auto i = pkg::to_index(id);
    if (!bits_.test(i)) {
      bits_.set(i);
      ++count_;
    }
  }

  void erase(pkg::PackageId id) noexcept {
    const auto i = pkg::to_index(id);
    if (bits_.test(i)) {
      bits_.reset(i);
      --count_;
    }
  }

  /// In-place union; operands must share a universe. The fused kernel
  /// returns the new cardinality, so no second count() pass is needed.
  void merge(const PackageSet& other) noexcept {
    count_ = bits_.or_assign_count(other.bits_);
  }

  /// In-place difference (this \ other).
  void subtract(const PackageSet& other) noexcept {
    count_ = bits_.and_not_assign_count(other.bits_);
  }

  [[nodiscard]] bool operator==(const PackageSet& other) const noexcept {
    return count_ == other.count_ && bits_ == other.bits_;
  }

  /// True iff this ⊆ other.
  [[nodiscard]] bool is_subset_of(const PackageSet& other) const noexcept {
    if (count_ > other.count_) return false;  // cheap pre-reject
    return bits_.is_subset_of(other.bits_);
  }

  [[nodiscard]] std::size_t intersection_size(const PackageSet& other) const noexcept {
    return bits_.intersection_count(other.bits_);
  }

  [[nodiscard]] std::size_t union_size(const PackageSet& other) const noexcept {
    return count_ + other.count_ - intersection_size(other);
  }

  /// Set union as a new value.
  [[nodiscard]] PackageSet unioned_with(const PackageSet& other) const {
    PackageSet out = *this;
    out.merge(other);
    return out;
  }

  /// Member ids in increasing order.
  [[nodiscard]] std::vector<pkg::PackageId> to_ids() const {
    std::vector<pkg::PackageId> out;
    out.reserve(count_);
    bits_.for_each_set([&out](std::size_t i) {
      out.push_back(pkg::package_id(static_cast<std::uint32_t>(i)));
    });
    return out;
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    bits_.for_each_set([&fn](std::size_t i) {
      fn(pkg::package_id(static_cast<std::uint32_t>(i)));
    });
  }

  [[nodiscard]] const util::DynamicBitset& bits() const noexcept { return bits_; }

 private:
  util::DynamicBitset bits_;
  std::size_t count_ = 0;
};

}  // namespace landlord::spec
