#include "spec/resolver.hpp"

#include <algorithm>

namespace landlord::spec {

namespace {

/// Does `version` satisfy a single constraint?
bool satisfies(const std::string& version, const VersionConstraint& c) {
  const int cmp = version_compare(version, c.version);
  switch (c.op) {
    case ConstraintOp::kEq: return cmp == 0;
    case ConstraintOp::kNe: return cmp != 0;
    case ConstraintOp::kLt: return cmp < 0;
    case ConstraintOp::kLe: return cmp <= 0;
    case ConstraintOp::kGt: return cmp > 0;
    case ConstraintOp::kGe: return cmp >= 0;
  }
  return false;
}

}  // namespace

Resolver::Resolver(const pkg::Repository& repo) : repo_(&repo) {
  for (std::uint32_t i = 0; i < repo.size(); ++i) {
    const auto id = pkg::package_id(i);
    by_project_[repo[id].name].push_back(id);
  }
  for (auto& [name, versions] : by_project_) {
    std::sort(versions.begin(), versions.end(), [&repo](pkg::PackageId a, pkg::PackageId b) {
      return version_compare(repo[a].version, repo[b].version) > 0;
    });
  }
}

std::vector<pkg::PackageId> Resolver::versions_of(const std::string& project) const {
  auto it = by_project_.find(project);
  return it != by_project_.end() ? it->second : std::vector<pkg::PackageId>{};
}

std::optional<pkg::PackageId> Resolver::best_version(
    const std::string& project,
    std::span<const VersionConstraint> constraints) const {
  auto it = by_project_.find(project);
  if (it == by_project_.end()) return std::nullopt;
  for (pkg::PackageId candidate : it->second) {  // newest first
    const auto& version = (*repo_)[candidate].version;
    const bool ok = std::all_of(
        constraints.begin(), constraints.end(),
        [&](const VersionConstraint& c) {
          return c.package != project || satisfies(version, c);
        });
    if (ok) return candidate;
  }
  return std::nullopt;
}

util::Result<Resolution> Resolver::resolve(
    std::span<const VersionConstraint> constraints) const {
  if (!ConflictChecker::satisfiable(constraints)) {
    return util::Error{"constraint set is self-contradictory"};
  }

  Resolution resolution;
  std::vector<std::string> seen;
  for (const auto& constraint : constraints) {
    if (std::find(seen.begin(), seen.end(), constraint.package) != seen.end()) {
      continue;
    }
    seen.push_back(constraint.package);
    const auto chosen = best_version(constraint.package, constraints);
    if (!chosen) {
      if (!by_project_.contains(constraint.package)) {
        return util::Error{"unknown project: " + constraint.package};
      }
      return util::Error{"no version of " + constraint.package +
                         " satisfies the constraints"};
    }
    resolution.selected.push_back(*chosen);
  }

  resolution.specification =
      Specification::from_request(*repo_, resolution.selected, "resolver");
  for (const auto& constraint : constraints) {
    resolution.specification.add_constraint(constraint);
  }
  return resolution;
}

}  // namespace landlord::spec
