// Constraint-based version resolution.
//
// The paper's specifications name exact package versions (CVMFS is
// append-only, so "all previous versions remain available", §V), but
// general package managers accept *constraints* ("root >= 6.18",
// "python == 3.8") that must be resolved to concrete versions before an
// image can be materialised. This resolver provides that substrate:
// for each named project it selects the newest version satisfying every
// constraint on that project, then expands the dependency closure.
//
// Resolution is deliberately per-project (no backtracking across
// projects): that matches the repositories LANDLORD targets, where a
// project's builds pin their dependencies' versions and cross-project
// conflicts are expressed — and detected — at the constraint level via
// spec::ConflictChecker.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "pkg/repository.hpp"
#include "spec/constraint.hpp"
#include "spec/specification.hpp"
#include "util/result.hpp"

namespace landlord::spec {

struct Resolution {
  /// Concrete package chosen for each named project, in input order
  /// (deduplicated by project).
  std::vector<pkg::PackageId> selected;
  /// Fully dependency-closed specification, carrying the constraints.
  Specification specification;
};

class Resolver {
 public:
  explicit Resolver(const pkg::Repository& repo);

  /// All versions of `project`, newest first (natural version order).
  [[nodiscard]] std::vector<pkg::PackageId> versions_of(const std::string& project) const;

  /// Newest version of `project` satisfying every constraint in
  /// `constraints` that names it; nullopt if none (or unknown project).
  [[nodiscard]] std::optional<pkg::PackageId> best_version(
      const std::string& project,
      std::span<const VersionConstraint> constraints) const;

  /// Resolves every distinct project named in `constraints` to a
  /// concrete package and builds the closed specification. Fails when
  /// the constraint set is self-contradictory, a project is unknown, or
  /// no version satisfies a project's constraints.
  [[nodiscard]] util::Result<Resolution> resolve(
      std::span<const VersionConstraint> constraints) const;

 private:
  const pkg::Repository* repo_;
  // project name -> versions, newest first.
  std::unordered_map<std::string, std::vector<pkg::PackageId>> by_project_;
};

}  // namespace landlord::spec
