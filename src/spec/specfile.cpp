#include "spec/specfile.hpp"

#include <istream>
#include <ostream>
#include <sstream>

namespace landlord::spec {

util::Result<std::vector<VersionConstraint>> parse_specfile(std::istream& in) {
  std::vector<VersionConstraint> constraints;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::string_view text = line;
    if (const auto hash = text.find('#'); hash != std::string_view::npos) {
      text = text.substr(0, hash);
    }
    // Skip blank (or comment-only) lines.
    const auto non_space = text.find_first_not_of(" \t");
    if (non_space == std::string_view::npos) continue;

    auto constraint = parse_constraint(text);
    if (!constraint) {
      return util::Error::at_line(line_no, constraint.error().message);
    }
    constraints.push_back(std::move(constraint).value());
  }
  return constraints;
}

util::Result<std::vector<VersionConstraint>> parse_specfile_text(
    const std::string& text) {
  std::istringstream in(text);
  return parse_specfile(in);
}

void write_specfile(std::ostream& out,
                    std::span<const VersionConstraint> constraints) {
  out << "# landlord requirements\n";
  for (const auto& constraint : constraints) {
    out << constraint.package;
    if (!constraint.version.empty()) {
      out << ' ' << to_string(constraint.op) << ' ' << constraint.version;
    }
    out << '\n';
  }
}

util::Result<Specification> specification_from_file(std::istream& in,
                                                    const pkg::Repository& repo) {
  auto constraints = parse_specfile(in);
  if (!constraints) return constraints.error();
  const Resolver resolver(repo);
  auto resolution = resolver.resolve(constraints.value());
  if (!resolution) return resolution.error();
  return std::move(resolution).value().specification;
}

}  // namespace landlord::spec
