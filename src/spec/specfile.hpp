// Declarative requirements files.
//
// §II cites Binder's "declarative requirement files" as the alternative
// to build recipes: "a set of dependencies has no order, and so one may
// combine or break apart sets without starting over". This module gives
// LANDLORD that front door — a requirements file of version constraints:
//
//   # landlord requirements
//   root >= 6.18
//   root < 6.20
//   geant4 == 10.6-x86_64
//   python               # any version (newest)
//
// parse_specfile() reads constraints; resolve via spec::Resolver turns
// them into a concrete, dependency-closed Specification.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "spec/resolver.hpp"
#include "spec/constraint.hpp"
#include "spec/specification.hpp"
#include "util/result.hpp"

namespace landlord::spec {

/// Parses a requirements file: one constraint per line, '#' comments,
/// blank lines ignored. Fails with the offending line number on syntax
/// errors.
[[nodiscard]] util::Result<std::vector<VersionConstraint>> parse_specfile(
    std::istream& in);

[[nodiscard]] util::Result<std::vector<VersionConstraint>> parse_specfile_text(
    const std::string& text);

/// Writes constraints back out in the same format (round-trips through
/// parse_specfile).
void write_specfile(std::ostream& out,
                    std::span<const VersionConstraint> constraints);

/// End-to-end: parse + resolve against a repository.
[[nodiscard]] util::Result<Specification> specification_from_file(
    std::istream& in, const pkg::Repository& repo);

}  // namespace landlord::spec
