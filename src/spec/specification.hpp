// Container specification: the declarative unit LANDLORD manages.
//
// A specification states *what must be present* in an image — a set of
// packages plus optional version constraints — and nothing about image
// contents or build steps (§IV, "Key Insight"). Unlike recipes,
// specifications can be compared (Jaccard), tested for satisfaction
// (subset), checked for conflicts, and merged (union) mechanically.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "pkg/repository.hpp"
#include "spec/constraint.hpp"
#include "spec/jaccard.hpp"
#include "spec/package_set.hpp"

namespace landlord::spec {

class Specification {
 public:
  Specification() = default;

  explicit Specification(PackageSet packages, std::string provenance = {})
      : packages_(std::move(packages)), provenance_(std::move(provenance)) {}

  /// Builds a specification from requested packages, expanding the
  /// dependency closure so the image is functional (§VI: "we recursively
  /// include dependencies of requested software").
  [[nodiscard]] static Specification from_request(
      const pkg::Repository& repo, std::span<const pkg::PackageId> requested,
      std::string provenance = {}) {
    return Specification(PackageSet(repo.closure_of(requested)),
                         std::move(provenance));
  }

  [[nodiscard]] const PackageSet& packages() const noexcept { return packages_; }
  [[nodiscard]] std::size_t size() const noexcept { return packages_.size(); }
  [[nodiscard]] bool empty() const noexcept { return packages_.empty(); }

  [[nodiscard]] const std::vector<VersionConstraint>& constraints() const noexcept {
    return constraints_;
  }
  void add_constraint(VersionConstraint constraint) {
    constraints_.push_back(std::move(constraint));
  }

  /// Where this spec came from (hand-written, python-imports, job-log, ...).
  [[nodiscard]] const std::string& provenance() const noexcept { return provenance_; }

  /// True iff an image with package set `image` satisfies this spec.
  [[nodiscard]] bool satisfied_by(const PackageSet& image) const noexcept {
    return packages_.is_subset_of(image);
  }

  /// Jaccard distance between the package sets of two specifications.
  [[nodiscard]] double distance_to(const Specification& other) const noexcept {
    return jaccard_distance(packages_, other.packages_);
  }

  /// True iff the two specifications' constraints are jointly satisfiable
  /// (§V: checked only after Jaccard prioritisation).
  [[nodiscard]] bool compatible_with(const Specification& other) const {
    return ConflictChecker::compatible(constraints_, other.constraints_);
  }

  /// Composite specification: union of package sets and constraints.
  /// Callers must check compatible_with() first; merging incompatible
  /// specs produces an unsatisfiable composite.
  [[nodiscard]] Specification merged_with(const Specification& other) const {
    Specification out(packages_.unioned_with(other.packages_),
                      provenance_.empty() ? other.provenance_ : provenance_);
    out.constraints_ = constraints_;
    out.constraints_.insert(out.constraints_.end(), other.constraints_.begin(),
                            other.constraints_.end());
    return out;
  }

  /// Total on-disk bytes of the packages this spec names.
  [[nodiscard]] util::Bytes bytes(const pkg::Repository& repo) const {
    return repo.bytes_of(packages_.bits());
  }

 private:
  PackageSet packages_;
  std::vector<VersionConstraint> constraints_;
  std::string provenance_;
};

}  // namespace landlord::spec
