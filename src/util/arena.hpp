// Per-request scratch arena: a monotonic bump allocator.
//
// Algorithm 1's decision path builds short-lived containers on every
// request — merge-candidate lists, split remainders, probe scratch —
// whose lifetimes all end when the request returns. Routing them
// through the global allocator costs a malloc/free pair (plus lock
// traffic under the sharded cache) per container per request. A
// ScratchArena instead hands out pointers by bumping a cursor through
// a reusable block and reclaims everything at once with reset(): the
// steady-state request allocates by incrementing an integer.
//
// Contract:
//   * allocate() never returns null; it grows by chaining
//     geometrically larger overflow blocks when the current block is
//     exhausted (those are folded into one right-sized block at the
//     next reset()).
//   * reset() invalidates every pointer handed out since the last
//     reset; the arena keeps its largest block, so a warmed-up arena
//     stops touching the global allocator entirely.
//   * Individual deallocation is a no-op (ArenaAllocator::deallocate
//     discards); peak usage per request is bounded by the decision
//     path, not accumulated.
//   * Not thread-safe: one arena per cache (sequential Cache) or per
//     thread (ShardedCache uses a thread_local).
//
// ArenaAllocator<T> adapts the arena to the std allocator interface so
// std::vector and friends can live on it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace landlord::util {

class ScratchArena {
 public:
  /// `initial` is the first block's size; 0 defers until first use.
  explicit ScratchArena(std::size_t initial = kDefaultBlockBytes) {
    if (initial > 0) blocks_.push_back(Block::make(initial));
  }

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;
  ScratchArena(ScratchArena&&) = default;
  ScratchArena& operator=(ScratchArena&&) = default;

  /// Bump-allocates `bytes` aligned to `align` (a power of two).
  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    if (!blocks_.empty()) {
      Block& block = *blocks_.back();
      const std::size_t aligned = align_up(block.used, align);
      if (aligned + bytes <= block.capacity) {
        block.used = aligned + bytes;
        high_water_ = aligned + bytes > high_water_ ? aligned + bytes : high_water_;
        return block.data() + aligned;
      }
    }
    return allocate_slow(bytes, align);
  }

  /// Reclaims every allocation at once. After an overflow, coalesces
  /// the chain into one block sized for the observed peak, so the
  /// arena reaches a steady state where reset() frees nothing.
  void reset() noexcept {
    if (blocks_.size() > 1) {
      std::size_t peak = 0;
      for (const auto& block : blocks_) peak += block->capacity;
      blocks_.clear();
      blocks_.push_back(Block::make(peak));
    } else if (!blocks_.empty()) {
      blocks_.back()->used = 0;
    }
  }

  /// Total bytes of backing storage currently reserved.
  [[nodiscard]] std::size_t capacity() const noexcept {
    std::size_t total = 0;
    for (const auto& block : blocks_) total += block->capacity;
    return total;
  }

  /// Largest single-block watermark seen (diagnostics/tests).
  [[nodiscard]] std::size_t high_water() const noexcept { return high_water_; }

 private:
  static constexpr std::size_t kDefaultBlockBytes = 16 * 1024;

  struct Block {
    std::size_t capacity = 0;
    std::size_t used = 0;

    [[nodiscard]] unsigned char* data() noexcept {
      return reinterpret_cast<unsigned char*>(this + 1);
    }
    /// One malloc carries header + payload.
    [[nodiscard]] static std::unique_ptr<Block, void (*)(Block*)> make(
        std::size_t capacity) {
      void* raw = ::operator new(sizeof(Block) + capacity,
                                 std::align_val_t{alignof(std::max_align_t)});
      auto* block = new (raw) Block{capacity, 0};
      return {block, [](Block* b) {
                b->~Block();
                ::operator delete(b, std::align_val_t{alignof(std::max_align_t)});
              }};
    }
  };

  [[nodiscard]] static std::size_t align_up(std::size_t v,
                                            std::size_t align) noexcept {
    return (v + align - 1) & ~(align - 1);
  }

  void* allocate_slow(std::size_t bytes, std::size_t align) {
    // Double the footprint (at least enough for this allocation) so a
    // request with an unusually long candidate list converges in O(log)
    // overflows, then is served from one block forever after reset().
    std::size_t next = blocks_.empty() ? kDefaultBlockBytes : 2 * capacity();
    while (next < bytes + align) next *= 2;
    blocks_.push_back(Block::make(next));
    Block& block = *blocks_.back();
    const std::size_t aligned = align_up(block.used, align);
    block.used = aligned + bytes;
    return block.data() + aligned;
  }

  std::vector<std::unique_ptr<Block, void (*)(Block*)>> blocks_;
  std::size_t high_water_ = 0;
};

/// std-compatible allocator over a ScratchArena (non-owning; the arena
/// must outlive every container bound to it, and reset() must not run
/// while such a container is still alive).
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(ScratchArena& arena) noexcept : arena_(&arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) noexcept {}  // reclaimed by reset()

  [[nodiscard]] ScratchArena* arena() const noexcept { return arena_; }

  template <typename U>
  [[nodiscard]] bool operator==(const ArenaAllocator<U>& other) const noexcept {
    return arena_ == other.arena();
  }

 private:
  ScratchArena* arena_;
};

}  // namespace landlord::util
