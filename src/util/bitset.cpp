#include "util/bitset.hpp"

#include <cstdio>
#include <cstdlib>

namespace landlord::util::detail {

// Kept out of line (and out of the header) so the hot-path check inlines
// to a compare + never-taken branch; the abort machinery stays cold.
[[noreturn]] void universe_mismatch(const char* op, std::size_t lhs_bits,
                                    std::size_t rhs_bits) noexcept {
  std::fprintf(stderr,
               "landlord: DynamicBitset::%s on mismatched universes "
               "(%zu bits vs %zu bits); aborting\n",
               op, lhs_bits, rhs_bits);
  std::abort();
}

}  // namespace landlord::util::detail
