// Dense dynamic bitset sized at construction.
//
// This is the workhorse of the whole reproduction: container
// specifications and cached images are sets over a fixed package universe
// (9,660 packages in the SFT-like repository), so subset tests, unions,
// intersections and Jaccard distances all reduce to a few hundred 64-bit
// word operations. Everything is inline and branch-light so a full cache
// scan stays in the nanosecond-per-image regime.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <cstddef>
#include <vector>

namespace landlord::util {

class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// All-zero bitset over a universe of `bits` elements.
  explicit DynamicBitset(std::size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return bits_; }
  [[nodiscard]] std::size_t word_count() const noexcept { return words_.size(); }

  void set(std::size_t i) noexcept {
    assert(i < bits_);
    words_[i >> 6] |= (1ULL << (i & 63));
  }

  void reset(std::size_t i) noexcept {
    assert(i < bits_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  void clear() noexcept {
    for (auto& w : words_) w = 0;
  }

  [[nodiscard]] bool test(std::size_t i) const noexcept {
    assert(i < bits_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t total = 0;
    for (std::uint64_t w : words_) total += static_cast<std::size_t>(std::popcount(w));
    return total;
  }

  [[nodiscard]] bool none() const noexcept {
    for (std::uint64_t w : words_)
      if (w != 0) return false;
    return true;
  }

  /// In-place union; operands must share a universe size.
  DynamicBitset& operator|=(const DynamicBitset& other) noexcept {
    assert(bits_ == other.bits_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    return *this;
  }

  /// In-place intersection.
  DynamicBitset& operator&=(const DynamicBitset& other) noexcept {
    assert(bits_ == other.bits_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
    return *this;
  }

  /// In-place difference (this \ other).
  DynamicBitset& operator-=(const DynamicBitset& other) noexcept {
    assert(bits_ == other.bits_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
    return *this;
  }

  [[nodiscard]] bool operator==(const DynamicBitset& other) const noexcept = default;

  /// |this ∩ other| without materialising the intersection.
  [[nodiscard]] std::size_t intersection_count(const DynamicBitset& other) const noexcept {
    assert(bits_ == other.bits_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      total += static_cast<std::size_t>(std::popcount(words_[i] & other.words_[i]));
    }
    return total;
  }

  /// |this ∪ other| without materialising the union.
  [[nodiscard]] std::size_t union_count(const DynamicBitset& other) const noexcept {
    assert(bits_ == other.bits_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      total += static_cast<std::size_t>(std::popcount(words_[i] | other.words_[i]));
    }
    return total;
  }

  /// True iff every element of *this is in `other` (early exit per word).
  [[nodiscard]] bool is_subset_of(const DynamicBitset& other) const noexcept {
    assert(bits_ == other.bits_);
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] & ~other.words_[i]) return false;
    }
    return true;
  }

  [[nodiscard]] bool intersects(const DynamicBitset& other) const noexcept {
    assert(bits_ == other.bits_);
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] & other.words_[i]) return true;
    }
    return false;
  }

  /// Calls fn(index) for every set bit, in increasing index order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const auto bit = static_cast<std::size_t>(std::countr_zero(w));
        fn(wi * 64 + bit);
        w &= w - 1;
      }
    }
  }

  [[nodiscard]] std::vector<std::uint32_t> to_indices() const {
    std::vector<std::uint32_t> out;
    out.reserve(count());
    for_each_set([&out](std::size_t i) { out.push_back(static_cast<std::uint32_t>(i)); });
    return out;
  }

  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept { return words_; }

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace landlord::util
