// Dense dynamic bitset sized at construction.
//
// This is the workhorse of the whole reproduction: container
// specifications and cached images are sets over a fixed package universe
// (9,660 packages in the SFT-like repository), so subset tests, unions,
// intersections and Jaccard distances all reduce to a few hundred 64-bit
// word operations. The word loops themselves live in util::simd — an
// AVX2 path and a 4×-unrolled portable fallback, runtime-dispatched once
// per process (LANDLORD_NO_SIMD=1 forces the fallback) and bit-identical
// by construction and by differential test (tests/util/simd_test.cpp).
//
// Cross-universe binary operations are a hard error in EVERY build mode:
// the word counts differ, so the old assert-only guard meant a release
// build (the one the benches and the serve plane actually run) would
// silently read out of bounds — and SIMD widens any such read to 32
// bytes. The check is one integer compare per call; the failure path is
// cold, [[noreturn]], and aborts with both sizes in the message.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <cstddef>
#include <vector>

#include "util/simd.hpp"

namespace landlord::util {

namespace detail {
/// Cold failure path for mismatched-universe bitset operations; prints
/// both sizes to stderr and aborts (defined in bitset.cpp).
[[noreturn]] void universe_mismatch(const char* op, std::size_t lhs_bits,
                                    std::size_t rhs_bits) noexcept;
}  // namespace detail

class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// All-zero bitset over a universe of `bits` elements.
  explicit DynamicBitset(std::size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return bits_; }
  [[nodiscard]] std::size_t word_count() const noexcept { return words_.size(); }

  void set(std::size_t i) noexcept {
    assert(i < bits_);
    words_[i >> 6] |= (1ULL << (i & 63));
  }

  void reset(std::size_t i) noexcept {
    assert(i < bits_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  void clear() noexcept {
    for (auto& w : words_) w = 0;
  }

  [[nodiscard]] bool test(std::size_t i) const noexcept {
    assert(i < bits_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  [[nodiscard]] std::size_t count() const noexcept {
    return simd::active_ops().popcount(words_.data(), words_.size());
  }

  [[nodiscard]] bool none() const noexcept {
    for (std::uint64_t w : words_)
      if (w != 0) return false;
    return true;
  }

  /// In-place union; operands must share a universe size.
  DynamicBitset& operator|=(const DynamicBitset& other) noexcept {
    check_universe("operator|=", other);
    (void)simd::active_ops().or_assign_count(words_.data(), other.words_.data(),
                                             words_.size());
    return *this;
  }

  /// In-place union, returning the resulting cardinality — one fused
  /// pass instead of |= followed by count().
  std::size_t or_assign_count(const DynamicBitset& other) noexcept {
    check_universe("or_assign_count", other);
    return simd::active_ops().or_assign_count(words_.data(),
                                              other.words_.data(),
                                              words_.size());
  }

  /// In-place intersection.
  DynamicBitset& operator&=(const DynamicBitset& other) noexcept {
    check_universe("operator&=", other);
    (void)simd::active_ops().and_assign_count(words_.data(),
                                              other.words_.data(),
                                              words_.size());
    return *this;
  }

  /// In-place intersection, returning the resulting cardinality.
  std::size_t and_assign_count(const DynamicBitset& other) noexcept {
    check_universe("and_assign_count", other);
    return simd::active_ops().and_assign_count(words_.data(),
                                               other.words_.data(),
                                               words_.size());
  }

  /// In-place difference (this \ other).
  DynamicBitset& operator-=(const DynamicBitset& other) noexcept {
    check_universe("operator-=", other);
    (void)simd::active_ops().and_not_assign_count(words_.data(),
                                                  other.words_.data(),
                                                  words_.size());
    return *this;
  }

  /// In-place difference, returning the resulting cardinality.
  std::size_t and_not_assign_count(const DynamicBitset& other) noexcept {
    check_universe("and_not_assign_count", other);
    return simd::active_ops().and_not_assign_count(words_.data(),
                                                   other.words_.data(),
                                                   words_.size());
  }

  [[nodiscard]] bool operator==(const DynamicBitset& other) const noexcept = default;

  /// |this ∩ other| without materialising the intersection.
  [[nodiscard]] std::size_t intersection_count(const DynamicBitset& other) const noexcept {
    check_universe("intersection_count", other);
    return simd::active_ops().intersection_count(
        words_.data(), other.words_.data(), words_.size());
  }

  /// |this ∪ other| without materialising the union.
  [[nodiscard]] std::size_t union_count(const DynamicBitset& other) const noexcept {
    check_universe("union_count", other);
    return simd::active_ops().union_count(words_.data(), other.words_.data(),
                                          words_.size());
  }

  /// True iff every element of *this is in `other` (early exit per block).
  [[nodiscard]] bool is_subset_of(const DynamicBitset& other) const noexcept {
    check_universe("is_subset_of", other);
    return simd::active_ops().subset_of(words_.data(), other.words_.data(),
                                        words_.size());
  }

  [[nodiscard]] bool intersects(const DynamicBitset& other) const noexcept {
    check_universe("intersects", other);
    return simd::active_ops().intersects(words_.data(), other.words_.data(),
                                         words_.size());
  }

  /// Calls fn(index) for every set bit, in increasing index order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const auto bit = static_cast<std::size_t>(std::countr_zero(w));
        fn(wi * 64 + bit);
        w &= w - 1;
      }
    }
  }

  [[nodiscard]] std::vector<std::uint32_t> to_indices() const {
    std::vector<std::uint32_t> out;
    out.reserve(count());
    for_each_set([&out](std::size_t i) { out.push_back(static_cast<std::uint32_t>(i)); });
    return out;
  }

  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept { return words_; }

 private:
  void check_universe(const char* op, const DynamicBitset& other) const noexcept {
    if (bits_ != other.bits_) [[unlikely]] {
      detail::universe_mismatch(op, bits_, other.bits_);
    }
  }

  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace landlord::util
