#include "util/bytes.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace landlord::util {

namespace {
constexpr std::array<const char*, 5> kUnits = {"B", "KiB", "MiB", "GiB", "TiB"};
}  // namespace

std::string format_bytes(Bytes n) {
  double value = static_cast<double>(n);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < kUnits.size()) {
    value /= 1024.0;
    ++unit;
  }
  char buf[48];
  if (unit == 0) {
    std::snprintf(buf, sizeof buf, "%llu B", static_cast<unsigned long long>(n));
  } else {
    std::snprintf(buf, sizeof buf, "%.2f %s", value, kUnits[unit]);
  }
  return buf;
}

std::optional<Bytes> parse_bytes(std::string_view text) {
  // Trim whitespace.
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front())))
    text.remove_prefix(1);
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back())))
    text.remove_suffix(1);
  if (text.empty()) return std::nullopt;

  double value = 0.0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || value < 0.0) return std::nullopt;

  std::string_view suffix{ptr, static_cast<std::size_t>(end - ptr)};
  while (!suffix.empty() && std::isspace(static_cast<unsigned char>(suffix.front())))
    suffix.remove_prefix(1);

  double multiplier = 1.0;
  if (!suffix.empty()) {
    switch (std::toupper(static_cast<unsigned char>(suffix.front()))) {
      case 'B': multiplier = 1.0; break;
      case 'K': multiplier = static_cast<double>(kKiB); break;
      case 'M': multiplier = static_cast<double>(kMiB); break;
      case 'G': multiplier = static_cast<double>(kGiB); break;
      case 'T': multiplier = static_cast<double>(kTiB); break;
      default: return std::nullopt;
    }
    // Accept trailing "B", "iB" forms ("KB", "KiB", "K"); reject garbage.
    std::string_view rest = suffix.substr(1);
    if (!rest.empty()) {
      if (rest == "B" || rest == "b") {
        // fine
      } else if (rest.size() == 2 &&
                 (rest[0] == 'i' || rest[0] == 'I') &&
                 (rest[1] == 'B' || rest[1] == 'b')) {
        // fine
      } else if (suffix.front() == 'B' || suffix.front() == 'b') {
        return std::nullopt;  // "B" followed by anything is malformed
      } else {
        return std::nullopt;
      }
    }
  }
  return static_cast<Bytes>(std::llround(value * multiplier));
}

}  // namespace landlord::util
