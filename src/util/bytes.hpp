// Byte-size arithmetic and formatting.
//
// All storage accounting in the simulator is in exact integer bytes;
// humanised strings appear only at the reporting edge.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace landlord::util {

using Bytes = std::uint64_t;

inline constexpr Bytes kKiB = 1024ULL;
inline constexpr Bytes kMiB = kKiB * 1024ULL;
inline constexpr Bytes kGiB = kMiB * 1024ULL;
inline constexpr Bytes kTiB = kGiB * 1024ULL;

/// "1.4 TiB", "8.4 GiB", "512 B" — three significant-ish digits, binary
/// units, chosen so the magnitude lands in [1, 1024).
[[nodiscard]] std::string format_bytes(Bytes n);

/// Bytes expressed as a double count of GiB (for plotting axes).
[[nodiscard]] constexpr double to_gib(Bytes n) noexcept {
  return static_cast<double>(n) / static_cast<double>(kGiB);
}

/// Bytes expressed as a double count of TiB.
[[nodiscard]] constexpr double to_tib(Bytes n) noexcept {
  return static_cast<double>(n) / static_cast<double>(kTiB);
}

/// Parses "1.4TB", "2 GiB", "512K", "100" (bytes), case-insensitive,
/// decimal and binary suffixes treated identically (binary). Returns
/// nullopt on malformed input.
[[nodiscard]] std::optional<Bytes> parse_bytes(std::string_view text);

}  // namespace landlord::util
