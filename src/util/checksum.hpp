// FNV-1a 64-bit checksums for durable artefacts.
//
// Charliecloud's build cache leans on content checksums to detect
// inconsistent state; the v2 cache snapshot format does the same: every
// image record carries an FNV-1a digest of its exact serialised bytes,
// and the trailer chains them so truncation and bit-flips are detected
// at restore time (docs/formats.md). FNV-1a is not cryptographic — it
// guards against torn writes and corruption, not adversaries.
#pragma once

#include <cstdint>
#include <string_view>

namespace landlord::util {

inline constexpr std::uint64_t kFnv1aOffset = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ULL;

/// FNV-1a over `data`, seedable so digests can be chained.
[[nodiscard]] constexpr std::uint64_t fnv1a64(
    std::string_view data, std::uint64_t seed = kFnv1aOffset) noexcept {
  std::uint64_t hash = seed;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnv1aPrime;
  }
  return hash;
}

}  // namespace landlord::util
