#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

namespace landlord::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::once_flag g_env_once;

LogLevel parse_level(const char* text) {
  std::string s = text ? text : "";
  for (auto& ch : s) ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn" || s == "warning") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  return LogLevel::kInfo;
}

void init_from_env() {
  if (const char* env = std::getenv("LANDLORD_LOG")) {
    g_level.store(parse_level(env), std::memory_order_relaxed);
  }
}

constexpr const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel log_level() noexcept {
  std::call_once(g_env_once, init_from_env);
  return g_level.load(std::memory_order_relaxed);
}

void set_log_level(LogLevel level) noexcept {
  std::call_once(g_env_once, init_from_env);
  g_level.store(level, std::memory_order_relaxed);
}

namespace detail {
void emit(LogLevel level, std::string_view message) {
  static std::mutex io_mutex;
  std::scoped_lock lock(io_mutex);
  std::fprintf(stderr, "[%s] %.*s\n", level_name(level),
               static_cast<int>(message.size()), message.data());
}
}  // namespace detail

}  // namespace landlord::util
