// Leveled logging to stderr. Benches default to Warn so figure output on
// stdout stays clean; set LANDLORD_LOG=debug|info|warn|error to override.
#pragma once

#include <sstream>
#include <string_view>

namespace landlord::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; initialised from $LANDLORD_LOG on first use.
[[nodiscard]] LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

namespace detail {
void emit(LogLevel level, std::string_view message);
}

/// Stream-style one-shot logger: Log(LogLevel::kInfo) << "x=" << x;
class Log {
 public:
  explicit Log(LogLevel level) noexcept : level_(level) {}
  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;
  ~Log() {
    if (level_ >= log_level()) detail::emit(level_, stream_.str());
  }

  template <typename T>
  Log& operator<<(const T& value) {
    if (level_ >= log_level()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace landlord::util

#define LANDLORD_LOG_DEBUG ::landlord::util::Log(::landlord::util::LogLevel::kDebug)
#define LANDLORD_LOG_INFO ::landlord::util::Log(::landlord::util::LogLevel::kInfo)
#define LANDLORD_LOG_WARN ::landlord::util::Log(::landlord::util::LogLevel::kWarn)
#define LANDLORD_LOG_ERROR ::landlord::util::Log(::landlord::util::LogLevel::kError)
