// A small Result<T> for recoverable errors (parse failures, I/O), used
// where exceptions would obscure the common error path. gcc 12 does not
// ship std::expected; this is the minimal subset the library needs.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace landlord::util {

/// Error payload: a human-readable message plus optional source location
/// context (file/line of the *input* being processed, not the C++ source).
struct Error {
  std::string message;

  [[nodiscard]] static Error at_line(std::size_t line, std::string what) {
    return Error{"line " + std::to_string(line) + ": " + std::move(what)};
  }
};

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : state_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const noexcept { return std::holds_alternative<T>(state_); }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(state_);
  }
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(state_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(state_));
  }

  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return std::get<Error>(state_);
  }

 private:
  std::variant<T, Error> state_;
};

}  // namespace landlord::util
