#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <unordered_set>

namespace landlord::util {

std::uint64_t Rng::uniform(std::uint64_t bound) noexcept {
  assert(bound > 0 && "uniform() requires a positive bound");
  // Lemire's unbiased multiply-shift with rejection on the low word.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::exponential(double mean) noexcept {
  assert(mean > 0.0);
  // Inverse-CDF; 1 - u avoids log(0).
  return -mean * std::log1p(-uniform_double());
}

double Rng::pareto(double xm, double alpha) noexcept {
  assert(xm > 0.0 && alpha > 0.0);
  const double u = 1.0 - uniform_double();  // in (0, 1]
  return xm / std::pow(u, 1.0 / alpha);
}

double Rng::normal() noexcept {
  // Box-Muller without the cached second variate, so successive calls do
  // not depend on hidden state beyond the generator itself.
  const double u1 = 1.0 - uniform_double();
  const double u2 = uniform_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(mu + sigma * normal());
}

std::size_t Rng::zipf(std::size_t n, double s) noexcept {
  assert(n > 0);
  // Inverse-CDF over the (approximate) continuous Zipf distribution via
  // the generalized harmonic integral; adequate for workload skew.
  if (s <= 0.0) return static_cast<std::size_t>(uniform(n));
  const double u = uniform_double();
  const double nd = static_cast<double>(n);
  double rank = 0.0;
  if (std::abs(s - 1.0) < 1e-9) {
    rank = std::exp(u * std::log(nd + 1.0)) - 1.0;
  } else {
    const double h = std::pow(nd + 1.0, 1.0 - s) - 1.0;
    rank = std::pow(1.0 + u * h, 1.0 / (1.0 - s)) - 1.0;
  }
  auto idx = static_cast<std::size_t>(rank);
  return idx >= n ? n - 1 : idx;
}

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n,
                                                           std::uint32_t k) {
  assert(k <= n && "cannot sample more elements than the population holds");
  // Floyd's algorithm: O(k) expected insertions.
  std::unordered_set<std::uint32_t> chosen;
  chosen.reserve(k);
  std::vector<std::uint32_t> out;
  out.reserve(k);
  for (std::uint32_t j = n - k; j < n; ++j) {
    auto t = static_cast<std::uint32_t>(uniform(static_cast<std::uint64_t>(j) + 1));
    if (chosen.contains(t)) t = j;
    chosen.insert(t);
    out.push_back(t);
  }
  return out;
}

}  // namespace landlord::util
