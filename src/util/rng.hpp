// Deterministic, splittable pseudo-random number generation.
//
// Every stochastic component of the simulator draws from an explicitly
// seeded Rng so that experiment results are reproducible bit-for-bit
// regardless of thread scheduling: each replicate of a sweep derives an
// independent stream from (seed, stream-id) via SplitMix64 seeding of
// xoshiro256**.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace landlord::util {

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
/// Used for seeding and for deriving independent substreams.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator (Blackman & Vigna). Satisfies
/// std::uniform_random_bit_generator so it composes with <random>,
/// but the convenience members below avoid distribution-object noise
/// at call sites.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four words of state from SplitMix64 over `seed`.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derives an independent generator for substream `stream`. Two calls
  /// with distinct stream ids yield statistically independent sequences.
  [[nodiscard]] Rng split(std::uint64_t stream) const noexcept {
    std::uint64_t sm = state_[0] ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
    Rng child{};
    for (auto& word : child.state_) word = splitmix64(sm);
    return child;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  [[nodiscard]] std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool chance(double p) noexcept { return uniform_double() < p; }

  /// Exponential variate with the given mean (> 0).
  [[nodiscard]] double exponential(double mean) noexcept;

  /// Pareto (power-law) variate with scale xm > 0 and shape alpha > 0;
  /// used for heavy-tailed package-size modelling.
  [[nodiscard]] double pareto(double xm, double alpha) noexcept;

  /// Log-normal variate parameterised by the underlying normal's mu/sigma.
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;

  /// Standard normal variate (Box-Muller, no caching, deterministic).
  [[nodiscard]] double normal() noexcept;

  /// Zipf-like rank selection over [0, n): returns small ranks with
  /// probability proportional to 1/(rank+1)^s. Requires n > 0.
  [[nodiscard]] std::size_t zipf(std::size_t n, double s) noexcept;

  /// Samples k distinct indices from [0, n) (Floyd's algorithm). The
  /// returned order is unspecified. Requires k <= n.
  [[nodiscard]] std::vector<std::uint32_t> sample_without_replacement(
      std::uint32_t n, std::uint32_t k);

  /// Fisher-Yates shuffle of `items` in place.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Picks a uniformly random element; requires a non-empty span.
  template <typename T>
  [[nodiscard]] const T& pick(std::span<const T> items) noexcept {
    return items[static_cast<std::size_t>(uniform(items.size()))];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace landlord::util
