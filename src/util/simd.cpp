#include "util/simd.hpp"

#include <bit>
#include <cstdlib>

#if defined(__x86_64__) && defined(__GNUC__)
#define LANDLORD_SIMD_X86 1
#include <immintrin.h>
#else
#define LANDLORD_SIMD_X86 0
#endif

namespace landlord::util::simd {

namespace {

// ---------------------------------------------------------------------------
// Portable backend: 4×-unrolled word loops. The unroll gives the
// compiler independent accumulator chains (popcount latency no longer
// serialises the loop) while staying bit-exact with the naive per-word
// reference — these are pure boolean/popcount identities.
// ---------------------------------------------------------------------------

inline std::size_t pc(std::uint64_t w) noexcept {
  return static_cast<std::size_t>(std::popcount(w));
}

bool portable_subset_of(const std::uint64_t* a, const std::uint64_t* b,
                        std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const std::uint64_t stray = (a[i] & ~b[i]) | (a[i + 1] & ~b[i + 1]) |
                                (a[i + 2] & ~b[i + 2]) | (a[i + 3] & ~b[i + 3]);
    if (stray != 0) return false;  // early exit per 4-word block
  }
  for (; i < n; ++i) {
    if (a[i] & ~b[i]) return false;
  }
  return true;
}

bool portable_intersects(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const std::uint64_t any = (a[i] & b[i]) | (a[i + 1] & b[i + 1]) |
                              (a[i + 2] & b[i + 2]) | (a[i + 3] & b[i + 3]);
    if (any != 0) return true;
  }
  for (; i < n; ++i) {
    if (a[i] & b[i]) return true;
  }
  return false;
}

std::size_t portable_intersection_count(const std::uint64_t* a,
                                        const std::uint64_t* b,
                                        std::size_t n) noexcept {
  std::size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += pc(a[i] & b[i]);
    c1 += pc(a[i + 1] & b[i + 1]);
    c2 += pc(a[i + 2] & b[i + 2]);
    c3 += pc(a[i + 3] & b[i + 3]);
  }
  for (; i < n; ++i) c0 += pc(a[i] & b[i]);
  return c0 + c1 + c2 + c3;
}

std::size_t portable_union_count(const std::uint64_t* a, const std::uint64_t* b,
                                 std::size_t n) noexcept {
  std::size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += pc(a[i] | b[i]);
    c1 += pc(a[i + 1] | b[i + 1]);
    c2 += pc(a[i + 2] | b[i + 2]);
    c3 += pc(a[i + 3] | b[i + 3]);
  }
  for (; i < n; ++i) c0 += pc(a[i] | b[i]);
  return c0 + c1 + c2 + c3;
}

std::size_t portable_or_assign_count(std::uint64_t* a, const std::uint64_t* b,
                                     std::size_t n) noexcept {
  std::size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += pc(a[i] |= b[i]);
    c1 += pc(a[i + 1] |= b[i + 1]);
    c2 += pc(a[i + 2] |= b[i + 2]);
    c3 += pc(a[i + 3] |= b[i + 3]);
  }
  for (; i < n; ++i) c0 += pc(a[i] |= b[i]);
  return c0 + c1 + c2 + c3;
}

std::size_t portable_and_not_assign_count(std::uint64_t* a,
                                          const std::uint64_t* b,
                                          std::size_t n) noexcept {
  std::size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += pc(a[i] &= ~b[i]);
    c1 += pc(a[i + 1] &= ~b[i + 1]);
    c2 += pc(a[i + 2] &= ~b[i + 2]);
    c3 += pc(a[i + 3] &= ~b[i + 3]);
  }
  for (; i < n; ++i) c0 += pc(a[i] &= ~b[i]);
  return c0 + c1 + c2 + c3;
}

std::size_t portable_and_assign_count(std::uint64_t* a, const std::uint64_t* b,
                                      std::size_t n) noexcept {
  std::size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += pc(a[i] &= b[i]);
    c1 += pc(a[i + 1] &= b[i + 1]);
    c2 += pc(a[i + 2] &= b[i + 2]);
    c3 += pc(a[i + 3] &= b[i + 3]);
  }
  for (; i < n; ++i) c0 += pc(a[i] &= b[i]);
  return c0 + c1 + c2 + c3;
}

std::size_t portable_popcount(const std::uint64_t* a, std::size_t n) noexcept {
  std::size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += pc(a[i]);
    c1 += pc(a[i + 1]);
    c2 += pc(a[i + 2]);
    c3 += pc(a[i + 3]);
  }
  for (; i < n; ++i) c0 += pc(a[i]);
  return c0 + c1 + c2 + c3;
}

constexpr SetOps kPortableOps = {
    "portable",
    portable_subset_of,
    portable_intersects,
    portable_intersection_count,
    portable_union_count,
    portable_or_assign_count,
    portable_and_not_assign_count,
    portable_and_assign_count,
    portable_popcount,
};

#if LANDLORD_SIMD_X86

// ---------------------------------------------------------------------------
// AVX2 backend. Compiled via per-function target attributes so the rest
// of the binary stays baseline-x86-64 and the choice is purely runtime
// (__builtin_cpu_supports). Counting kernels use the classic vpshufb
// nibble-LUT popcount (Muła): per 256-bit vector, split each byte into
// nibbles, look both up in a 16-entry bit-count table, then vpsadbw
// accumulates byte counts into four 64-bit lanes. Lane sums stay far
// below overflow for any realistic word count (≤ 32 per byte-lane per
// vector, summed over n/4 iterations in 64-bit lanes).
// ---------------------------------------------------------------------------

#define LANDLORD_AVX2 __attribute__((target("avx2,popcnt")))

/// Per-64-bit-lane population count of `v` (four u64 partial counts).
LANDLORD_AVX2 inline __m256i popcount_lanes(__m256i v) noexcept {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1,
                       2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                         _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

/// Horizontal sum of four u64 lanes.
LANDLORD_AVX2 inline std::size_t hsum_lanes(__m256i acc) noexcept {
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<std::size_t>(
      static_cast<std::uint64_t>(_mm_extract_epi64(sum, 0)) +
      static_cast<std::uint64_t>(_mm_extract_epi64(sum, 1)));
}

LANDLORD_AVX2 bool avx2_subset_of(const std::uint64_t* a,
                                  const std::uint64_t* b,
                                  std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // vptest: ZF set iff (va & ~vb) == 0 — one instruction, early exit
    // per 256-bit block, same contract as the scalar per-word loop.
    if (!_mm256_testc_si256(vb, va)) return false;
  }
  for (; i < n; ++i) {
    if (a[i] & ~b[i]) return false;
  }
  return true;
}

LANDLORD_AVX2 bool avx2_intersects(const std::uint64_t* a,
                                   const std::uint64_t* b,
                                   std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    if (!_mm256_testz_si256(va, vb)) return true;
  }
  for (; i < n; ++i) {
    if (a[i] & b[i]) return true;
  }
  return false;
}

LANDLORD_AVX2 std::size_t avx2_intersection_count(const std::uint64_t* a,
                                                  const std::uint64_t* b,
                                                  std::size_t n) noexcept {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, popcount_lanes(_mm256_and_si256(va, vb)));
  }
  std::size_t total = hsum_lanes(acc);
  for (; i < n; ++i) total += pc(a[i] & b[i]);
  return total;
}

LANDLORD_AVX2 std::size_t avx2_union_count(const std::uint64_t* a,
                                           const std::uint64_t* b,
                                           std::size_t n) noexcept {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, popcount_lanes(_mm256_or_si256(va, vb)));
  }
  std::size_t total = hsum_lanes(acc);
  for (; i < n; ++i) total += pc(a[i] | b[i]);
  return total;
}

LANDLORD_AVX2 std::size_t avx2_or_assign_count(std::uint64_t* a,
                                               const std::uint64_t* b,
                                               std::size_t n) noexcept {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i merged = _mm256_or_si256(va, vb);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i), merged);
    acc = _mm256_add_epi64(acc, popcount_lanes(merged));
  }
  std::size_t total = hsum_lanes(acc);
  for (; i < n; ++i) total += pc(a[i] |= b[i]);
  return total;
}

LANDLORD_AVX2 std::size_t avx2_and_not_assign_count(std::uint64_t* a,
                                                    const std::uint64_t* b,
                                                    std::size_t n) noexcept {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // vpandn computes ~first & second, so the operand order is (b, a).
    const __m256i diff = _mm256_andnot_si256(vb, va);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i), diff);
    acc = _mm256_add_epi64(acc, popcount_lanes(diff));
  }
  std::size_t total = hsum_lanes(acc);
  for (; i < n; ++i) total += pc(a[i] &= ~b[i]);
  return total;
}

LANDLORD_AVX2 std::size_t avx2_and_assign_count(std::uint64_t* a,
                                                const std::uint64_t* b,
                                                std::size_t n) noexcept {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i inter = _mm256_and_si256(va, vb);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i), inter);
    acc = _mm256_add_epi64(acc, popcount_lanes(inter));
  }
  std::size_t total = hsum_lanes(acc);
  for (; i < n; ++i) total += pc(a[i] &= b[i]);
  return total;
}

LANDLORD_AVX2 std::size_t avx2_popcount(const std::uint64_t* a,
                                        std::size_t n) noexcept {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    acc = _mm256_add_epi64(acc, popcount_lanes(va));
  }
  std::size_t total = hsum_lanes(acc);
  for (; i < n; ++i) total += pc(a[i]);
  return total;
}

constexpr SetOps kAvx2Ops = {
    "avx2",
    avx2_subset_of,
    avx2_intersects,
    avx2_intersection_count,
    avx2_union_count,
    avx2_or_assign_count,
    avx2_and_not_assign_count,
    avx2_and_assign_count,
    avx2_popcount,
};

#endif  // LANDLORD_SIMD_X86

const SetOps& select_backend() noexcept {
  if (const char* no_simd = std::getenv("LANDLORD_NO_SIMD");
      no_simd != nullptr && no_simd[0] == '1') {
    return kPortableOps;
  }
  if (const SetOps* avx2 = avx2_ops()) return *avx2;
  return kPortableOps;
}

}  // namespace

const SetOps& portable_ops() noexcept { return kPortableOps; }

const SetOps* avx2_ops() noexcept {
#if LANDLORD_SIMD_X86
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("popcnt")) {
    return &kAvx2Ops;
  }
#endif
  return nullptr;
}

const SetOps& active_ops() noexcept {
  // Chosen once; the env var is read before any bitset op ever runs a
  // kernel, so a process sees exactly one backend for its lifetime.
  static const SetOps& chosen = select_backend();
  return chosen;
}

}  // namespace landlord::util::simd
