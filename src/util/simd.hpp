// Vectorized set-operation kernels over 64-bit word arrays.
//
// Every decision the Landlord cache makes — superset hit detection,
// Jaccard merge-candidate selection, eviction ledger maintenance —
// bottoms out in word loops over util::DynamicBitset (~151 words for
// the 9,660-package universe). These kernels are that loop, lifted out
// so it can be runtime-dispatched between an AVX2 path (256-bit lanes,
// vpshufb nibble-LUT popcount) and a portable 4×-unrolled std::uint64_t
// path. Selection happens once, at first use:
//
//   * LANDLORD_NO_SIMD=1 in the environment forces the portable path
//     (the fallback the differential suite and tier1.sh pin against);
//   * otherwise AVX2 is used when the CPU reports it;
//   * non-x86 builds compile only the portable path.
//
// Both backends are exposed directly (portable_ops() / avx2_ops()) so
// tests/util/simd_test.cpp can differential-test them against each
// other and against naive per-word reference loops — the portable
// kernels double as the retained scalar oracle. All kernels are pure
// word arithmetic: for equal inputs the two backends return identical
// results bit for bit, so cache placements cannot depend on the
// backend. Predicate kernels (subset_of / intersects) keep the
// early-exit semantics of the original per-word loops at 4-word block
// granularity.
//
// Callers must pass arrays of equal word count; the kernels themselves
// never read past `n` words (universe-mismatch hard-fail lives one
// level up, in DynamicBitset).
#pragma once

#include <cstddef>
#include <cstdint>

namespace landlord::util::simd {

/// One backend's kernel set. All pointers are non-null.
struct SetOps {
  const char* name;  ///< "avx2" or "portable"

  /// True iff a ⊆ b, i.e. no word has a bit set outside b.
  bool (*subset_of)(const std::uint64_t* a, const std::uint64_t* b,
                    std::size_t n) noexcept;
  /// True iff a ∩ b is non-empty.
  bool (*intersects)(const std::uint64_t* a, const std::uint64_t* b,
                     std::size_t n) noexcept;
  /// |a ∩ b| without materialising the intersection.
  std::size_t (*intersection_count)(const std::uint64_t* a,
                                    const std::uint64_t* b,
                                    std::size_t n) noexcept;
  /// |a ∪ b| without materialising the union.
  std::size_t (*union_count)(const std::uint64_t* a, const std::uint64_t* b,
                             std::size_t n) noexcept;
  /// Fused a |= b; returns |a| after the merge (one pass, not two).
  std::size_t (*or_assign_count)(std::uint64_t* a, const std::uint64_t* b,
                                 std::size_t n) noexcept;
  /// Fused a &= ~b; returns |a| after the subtraction.
  std::size_t (*and_not_assign_count)(std::uint64_t* a, const std::uint64_t* b,
                                      std::size_t n) noexcept;
  /// Fused a &= b; returns |a| after the intersection.
  std::size_t (*and_assign_count)(std::uint64_t* a, const std::uint64_t* b,
                                  std::size_t n) noexcept;
  /// |a| — population count of the whole array.
  std::size_t (*popcount)(const std::uint64_t* a, std::size_t n) noexcept;
};

/// The portable 4×-unrolled scalar backend (always available; the
/// retained oracle every vector path is differential-tested against).
[[nodiscard]] const SetOps& portable_ops() noexcept;

/// The AVX2 backend, or nullptr when the build target or CPU lacks it.
[[nodiscard]] const SetOps* avx2_ops() noexcept;

/// The backend every DynamicBitset operation routes through: chosen
/// once at first call (LANDLORD_NO_SIMD=1 forces portable, otherwise
/// the best the CPU supports) and never changes afterwards.
[[nodiscard]] const SetOps& active_ops() noexcept;

}  // namespace landlord::util::simd
