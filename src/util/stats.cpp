#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace landlord::util {

Summary::Summary(std::span<const double> sample)
    : sample_(sample.begin(), sample.end()) {}

void Summary::add(double value) {
  sample_.push_back(value);
  sorted_valid_ = false;
}

void Summary::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = sample_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Summary::mean() const {
  if (sample_.empty()) return 0.0;
  return sum() / static_cast<double>(sample_.size());
}

double Summary::sum() const {
  return std::accumulate(sample_.begin(), sample_.end(), 0.0);
}

double Summary::stddev() const {
  if (sample_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : sample_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(sample_.size() - 1));
}

double Summary::min() const {
  if (sample_.empty()) return 0.0;
  ensure_sorted();
  return sorted_.front();
}

double Summary::max() const {
  if (sample_.empty()) return 0.0;
  ensure_sorted();
  return sorted_.back();
}

double Summary::median() const { return quantile(0.5); }

double Summary::quantile(double q) const {
  // Total function: q is clamped into [0, 1] and an empty sample yields
  // 0.0. The previous assert-only contract meant a release build (the
  // one every bench report and the serve RTT p999 run under) indexed
  // sorted_[size-1] with size == 0 — a size_t underflow OOB read — and
  // a q outside [0, 1] produced an out-of-range (for q < 0: UB
  // negative-double-to-size_t) index.
  if (sample_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_.front();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

void OnlineStats::add(double value) noexcept {
  if (n_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++n_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (value - mean_);
}

double OnlineStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

std::vector<double> elementwise_median(
    const std::vector<std::vector<double>>& series) {
  assert(!series.empty());
  const std::size_t len = series.front().size();
  for (const auto& s : series) {
    assert(s.size() == len && "all series must have equal length");
    (void)s;
  }
  std::vector<double> out(len, 0.0);
  std::vector<double> column(series.size());
  for (std::size_t i = 0; i < len; ++i) {
    for (std::size_t r = 0; r < series.size(); ++r) column[r] = series[r][i];
    std::sort(column.begin(), column.end());
    const std::size_t n = column.size();
    out[i] = (n % 2 == 1) ? column[n / 2]
                          : 0.5 * (column[n / 2 - 1] + column[n / 2]);
  }
  return out;
}

}  // namespace landlord::util
