// Summary statistics used throughout the experiment harness.
//
// The paper reports the *median* over 20 simulation replicates at every
// sweep point; Summary provides exact order statistics over a collected
// sample, and OnlineStats provides numerically stable streaming moments
// (Welford) where retaining the sample would be wasteful.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace landlord::util {

/// Exact order statistics and moments over a finite sample.
class Summary {
 public:
  Summary() = default;
  explicit Summary(std::span<const double> sample);

  void add(double value);

  [[nodiscard]] std::size_t count() const noexcept { return sample_.size(); }
  [[nodiscard]] bool empty() const noexcept { return sample_.empty(); }

  /// Arithmetic mean; 0 for an empty sample.
  [[nodiscard]] double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  [[nodiscard]] double stddev() const;
  /// Smallest sample value; 0 for an empty sample.
  [[nodiscard]] double min() const;
  /// Largest sample value; 0 for an empty sample.
  [[nodiscard]] double max() const;
  /// Median (interpolated middle); 0 for an empty sample.
  [[nodiscard]] double median() const;
  /// Linear-interpolated quantile. Total: q is clamped into [0, 1] and
  /// an empty sample yields 0 — never an out-of-range index.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double sum() const;

  [[nodiscard]] const std::vector<double>& values() const noexcept { return sample_; }

 private:
  void ensure_sorted() const;

  std::vector<double> sample_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Welford's online mean/variance; O(1) memory.
class OnlineStats {
 public:
  void add(double value) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for n < 2.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Element-wise median across equally long series: result[i] is the
/// median of series[r][i] over all replicates r. Requires at least one
/// series; all series must have equal length.
[[nodiscard]] std::vector<double> elementwise_median(
    const std::vector<std::vector<double>>& series);

}  // namespace landlord::util
