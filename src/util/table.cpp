#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace landlord::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  assert(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size() && "row arity must match headers");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(width[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

namespace {
void write_csv_cell(std::ostream& os, const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    os << cell;
    return;
  }
  os << '"';
  for (char ch : cell) {
    if (ch == '"') os << '"';
    os << ch;
  }
  os << '"';
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      write_csv_cell(os, row[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

bool Table::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_csv(out);
  return static_cast<bool>(out);
}

std::string fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string fmt(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace landlord::util
