// Plain-text and CSV table emission for benchmark reports.
//
// Every figure-regeneration bench prints (a) an aligned human-readable
// table on stdout and (b) optionally a machine-readable CSV next to it,
// so plots can be regenerated without re-running the simulation.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace landlord::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }

  /// Column-aligned plain text (headers, rule, rows).
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  void write_csv(std::ostream& os) const;

  /// Convenience: writes CSV to `path`, creating parent-less file;
  /// returns false (and leaves no partial file guarantees) on I/O error.
  [[nodiscard]] bool save_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places.
[[nodiscard]] std::string fmt(double value, int digits = 2);

/// Formats an integral count with no decoration.
[[nodiscard]] std::string fmt(std::uint64_t value);

}  // namespace landlord::util
