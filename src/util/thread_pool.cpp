#include "util/thread_pool.hpp"

#include <algorithm>

namespace landlord::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Join explicitly: members destruct in reverse declaration order, so
  // relying on jthread's destructor join would let workers touch the
  // queue/mutex/cv after those members were already destroyed.
  workers_.clear();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> pending;
  pending.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pending.push_back(pool.submit([&fn, i] { fn(i); }));
  }
  // get() rethrows; collect in index order so failures are deterministic.
  for (auto& f : pending) f.get();
}

}  // namespace landlord::util
