// Minimal work-stealing-free thread pool with a parallel_for helper.
//
// Simulation sweeps fan replicate runs out across the pool; each task is
// deterministic given its (alpha-index, replicate-index) derived RNG
// stream, so scheduling order never affects results.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace landlord::util {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the future resolves when it completes (or rethrows
  /// the task's exception).
  template <typename F>
  [[nodiscard]] std::future<std::invoke_result_t<F>> submit(F&& fn) {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::scoped_lock lock(mutex_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

 private:
  void worker_loop();

  std::vector<std::jthread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs fn(i) for i in [0, count) across `pool`, blocking until every
/// iteration finishes. Exceptions from iterations are rethrown (the first
/// one encountered in index order).
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

}  // namespace landlord::util
