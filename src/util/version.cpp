#include "util/version.hpp"

#include <algorithm>
#include <cctype>

namespace landlord::util {

namespace {

bool is_digit(char ch) noexcept {
  return std::isdigit(static_cast<unsigned char>(ch)) != 0;
}

/// Extracts the next chunk of `text` starting at `pos`: a maximal run of
/// digits or of non-digit, non-separator characters. Separators ('.',
/// '-', '_') are skipped. Returns the chunk and whether it is numeric.
struct Chunk {
  std::string_view text;
  bool numeric = false;
};

Chunk next_chunk(std::string_view text, std::size_t& pos) noexcept {
  while (pos < text.size() &&
         (text[pos] == '.' || text[pos] == '-' || text[pos] == '_')) {
    ++pos;
  }
  const std::size_t start = pos;
  if (pos >= text.size()) return {{}, false};
  const bool numeric = is_digit(text[pos]);
  while (pos < text.size() && text[pos] != '.' && text[pos] != '-' &&
         text[pos] != '_' && is_digit(text[pos]) == numeric) {
    ++pos;
  }
  return {text.substr(start, pos - start), numeric};
}

int compare_numeric(std::string_view a, std::string_view b) noexcept {
  // Strip leading zeros, then compare by length then lexically.
  a.remove_prefix(std::min(a.find_first_not_of('0'), a.size()));
  b.remove_prefix(std::min(b.find_first_not_of('0'), b.size()));
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  const int c = a.compare(b);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

}  // namespace

int version_compare(std::string_view a, std::string_view b) noexcept {
  std::size_t pa = 0, pb = 0;
  for (;;) {
    const Chunk ca = next_chunk(a, pa);
    const Chunk cb = next_chunk(b, pb);
    if (ca.text.empty() && cb.text.empty()) return 0;
    if (ca.text.empty()) return -1;  // "1.2" < "1.2.1"
    if (cb.text.empty()) return 1;
    if (ca.numeric && cb.numeric) {
      if (const int c = compare_numeric(ca.text, cb.text); c != 0) return c;
    } else if (ca.numeric != cb.numeric) {
      // Numeric chunks sort after alphabetic ones (rpmvercmp convention).
      return ca.numeric ? 1 : -1;
    } else {
      if (const int c = ca.text.compare(cb.text); c != 0) return c < 0 ? -1 : 1;
    }
  }
}


}  // namespace landlord::util
