// Natural version-string ordering.
//
// Splits version strings into numeric / alphabetic chunks separated by
// '.', '-', '_' and compares numerically where both chunks are numeric
// ("1.10" > "1.9"), matching RPM's rpmvercmp behaviour for common
// version strings. Shared by the constraint checker, the resolver, and
// version-chain utilities.
#pragma once

#include <string_view>

namespace landlord::util {

/// Returns <0, 0, >0 like strcmp.
[[nodiscard]] int version_compare(std::string_view a, std::string_view b) noexcept;

}  // namespace landlord::util
