#include "baseline/baselines.hpp"

#include <gtest/gtest.h>

#include "pkg/synthetic.hpp"
#include "sim/workload.hpp"

namespace landlord::baseline {
namespace {

using pkg::package_id;

pkg::Repository flat_repo(std::uint32_t n, util::Bytes each = 10) {
  pkg::RepositoryBuilder b;
  for (std::uint32_t i = 0; i < n; ++i) {
    b.add({"p" + std::to_string(i), "1", each, pkg::PackageTier::kLeaf, {}});
  }
  auto result = std::move(b).build();
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

spec::Specification make_spec(const pkg::Repository& repo,
                              std::initializer_list<std::uint32_t> ids) {
  spec::PackageSet set(repo.size());
  for (auto i : ids) set.insert(package_id(i));
  return spec::Specification(std::move(set));
}

// ---- FullRepoBaseline ----

TEST(FullRepo, ShipsWholeRepositoryEveryJob) {
  const auto repo = flat_repo(100);  // 1000 bytes total
  FullRepoBaseline store(repo);
  const auto p1 = store.submit(make_spec(repo, {1}));
  EXPECT_EQ(p1.shipped_bytes, util::Bytes{1000});
  EXPECT_TRUE(p1.reused);
  (void)store.submit(make_spec(repo, {2, 3}));
  const auto totals = store.totals();
  EXPECT_EQ(totals.submissions, 2u);
  EXPECT_EQ(totals.shipped_bytes, util::Bytes{2000});
  EXPECT_EQ(totals.physical_bytes, util::Bytes{1000});
  EXPECT_EQ(totals.written_bytes, util::Bytes{1000});  // built once
  EXPECT_EQ(totals.artifacts, 1u);
}

// ---- NaivePerJobStore ----

TEST(NaiveStore, OneImagePerDistinctSpec) {
  const auto repo = flat_repo(100);
  NaivePerJobStore store(repo);
  (void)store.submit(make_spec(repo, {1, 2}));
  (void)store.submit(make_spec(repo, {1, 3}));
  (void)store.submit(make_spec(repo, {1, 2}));  // identical -> reuse
  const auto totals = store.totals();
  EXPECT_EQ(totals.artifacts, 2u);
  EXPECT_EQ(totals.reuses, 1u);
  // Both 20-byte images fully stored: duplication of package 1.
  EXPECT_EQ(totals.physical_bytes, util::Bytes{40});
  EXPECT_EQ(totals.logical_bytes, util::Bytes{40});
  EXPECT_EQ(totals.shipped_bytes, util::Bytes{60});
}

TEST(NaiveStore, SubsetDoesNotReuse) {
  // Strict-identity caching: "only jobs with identical requirements can
  // reuse existing containers" (§III).
  const auto repo = flat_repo(100);
  NaivePerJobStore store(repo);
  (void)store.submit(make_spec(repo, {1, 2, 3}));
  const auto p = store.submit(make_spec(repo, {1, 2}));
  EXPECT_FALSE(p.reused);
  EXPECT_EQ(store.totals().artifacts, 2u);
}

// ---- BlockDedupStore ----

TEST(BlockDedup, PhysicalDeduplicatedLogicalNot) {
  const auto repo = flat_repo(100);
  BlockDedupStore store(repo);
  (void)store.submit(make_spec(repo, {1, 2, 3}));
  (void)store.submit(make_spec(repo, {2, 3, 4}));
  const auto totals = store.totals();
  EXPECT_EQ(totals.physical_bytes, util::Bytes{40});  // {1,2,3,4}
  EXPECT_EQ(totals.logical_bytes, util::Bytes{60});   // two 30-byte images
  EXPECT_EQ(totals.shipped_bytes, util::Bytes{60});   // dedup doesn't help transfer
}

TEST(BlockDedup, WritesOnlyFreshBlocks) {
  const auto repo = flat_repo(100);
  BlockDedupStore store(repo);
  const auto p1 = store.submit(make_spec(repo, {1, 2, 3}));
  EXPECT_EQ(p1.written_bytes, util::Bytes{30});
  const auto p2 = store.submit(make_spec(repo, {2, 3, 4}));
  EXPECT_EQ(p2.written_bytes, util::Bytes{10});  // only package 4 is new
}

TEST(BlockDedup, IdenticalSpecReuses) {
  const auto repo = flat_repo(100);
  BlockDedupStore store(repo);
  (void)store.submit(make_spec(repo, {5, 6}));
  const auto p = store.submit(make_spec(repo, {5, 6}));
  EXPECT_TRUE(p.reused);
  EXPECT_EQ(p.written_bytes, util::Bytes{0});
}

// ---- LayeredStore ----

TEST(Layered, FirstJobCreatesBaseChain) {
  const auto repo = flat_repo(100);
  LayeredStore store(repo);
  const auto p = store.submit(make_spec(repo, {1, 2}));
  EXPECT_FALSE(p.reused);
  EXPECT_EQ(p.image_bytes, util::Bytes{20});
  EXPECT_EQ(store.chain_count(), 1u);
  EXPECT_EQ(store.layer_count(), 1u);
}

TEST(Layered, ExtensionAddsOnlyDeltaLayer) {
  const auto repo = flat_repo(100);
  LayeredStore store(repo);
  (void)store.submit(make_spec(repo, {1, 2}));
  const auto p = store.submit(make_spec(repo, {1, 2, 3}));
  EXPECT_EQ(p.written_bytes, util::Bytes{10});  // only package 3
  EXPECT_EQ(p.image_bytes, util::Bytes{30});    // ships whole chain
  EXPECT_EQ(store.layer_count(), 2u);
  // Physical storage shares the base layer.
  EXPECT_EQ(store.totals().physical_bytes, util::Bytes{30});
}

TEST(Layered, MaskedContentStillShipped) {
  // Fig. 1's point: content in a lower layer is transferred even when
  // the new job does not need it. Job {1,2,3} uses the {1,2} base; a job
  // needing only {1,3} cannot drop package 2 — the best subset base is
  // empty or {1,2}... {1,2} is not a subset of {1,3}, so it starts a new
  // chain, duplicating package 1 across chains.
  const auto repo = flat_repo(100);
  LayeredStore store(repo);
  (void)store.submit(make_spec(repo, {1, 2}));
  (void)store.submit(make_spec(repo, {1, 3}));
  EXPECT_EQ(store.chain_count(), 2u);
  // package 1 stored twice: layering cannot share across chains.
  EXPECT_EQ(store.totals().physical_bytes, util::Bytes{40});
}

TEST(Layered, IdenticalJobReusesChain) {
  const auto repo = flat_repo(100);
  LayeredStore store(repo);
  (void)store.submit(make_spec(repo, {1, 2}));
  const auto p = store.submit(make_spec(repo, {1, 2}));
  EXPECT_TRUE(p.reused);
  EXPECT_EQ(store.chain_count(), 1u);
}

TEST(Layered, SameBaseSameDeltaShared) {
  const auto repo = flat_repo(100);
  LayeredStore store(repo);
  (void)store.submit(make_spec(repo, {1, 2}));
  (void)store.submit(make_spec(repo, {1, 2, 3}));
  // A different job with the same requirements arrives later: chain is
  // found by (base, delta) key, no new layer.
  const auto p = store.submit(make_spec(repo, {1, 2, 3}));
  EXPECT_TRUE(p.reused);
  EXPECT_EQ(store.layer_count(), 2u);
}

TEST(Layered, StrictlyAdditiveGrowth) {
  const auto repo = flat_repo(100);
  LayeredStore store(repo);
  util::Bytes previous_physical = 0;
  for (std::uint32_t i = 0; i < 20; ++i) {
    (void)store.submit(make_spec(repo, {1, 2, 10 + i}));
    const auto physical = store.totals().physical_bytes;
    EXPECT_GE(physical, previous_physical);  // nothing is ever removed
    previous_physical = physical;
  }
}

TEST(Layered, RefineTipShipsMaskedContent) {
  // Fig. 1 literal: job3 = job1 = {A,B}; under tip refinement the image
  // still carries job2's C.
  const auto repo = flat_repo(10, 100);
  LayeredStore store(repo, LayeredStore::Strategy::kRefineTip);
  (void)store.submit(make_spec(repo, {0, 1}));        // {A,B}
  (void)store.submit(make_spec(repo, {0, 1, 2}));     // {A,B,C}
  const auto p3 = store.submit(make_spec(repo, {0, 1}));  // {A,B} again
  EXPECT_TRUE(p3.reused);
  EXPECT_EQ(p3.shipped_bytes, util::Bytes{300});  // C shipped though unneeded
}

TEST(Layered, RefineTipNeverRemovesContent) {
  const auto repo = flat_repo(20, 10);
  LayeredStore store(repo, LayeredStore::Strategy::kRefineTip);
  (void)store.submit(make_spec(repo, {0, 1}));
  (void)store.submit(make_spec(repo, {2}));
  (void)store.submit(make_spec(repo, {3}));
  // Tip cumulative holds everything ever requested.
  const auto p = store.submit(make_spec(repo, {0}));
  EXPECT_EQ(p.shipped_bytes, util::Bytes{40});  // {0,1,2,3}
}

TEST(Layered, RefineTipStoresLessThanBestBaseOnDivergentJobs) {
  // Tip refinement builds one ever-growing chain (small physical store,
  // huge transfers); best-base forks chains (more storage, tighter
  // images) — the two corners of Fig. 1.
  const auto repo = flat_repo(100, 10);
  LayeredStore tip(repo, LayeredStore::Strategy::kRefineTip);
  LayeredStore forked(repo, LayeredStore::Strategy::kBestBase);
  for (std::uint32_t i = 0; i < 30; i += 3) {
    (void)tip.submit(make_spec(repo, {i, i + 1, i + 2}));
    (void)forked.submit(make_spec(repo, {i, i + 1, i + 2}));
  }
  EXPECT_LE(tip.totals().physical_bytes, forked.totals().physical_bytes);
  EXPECT_GT(tip.totals().shipped_bytes, forked.totals().shipped_bytes);
}

// ---- Cross-baseline comparison on a realistic workload ----

TEST(Baselines, OrderingOnSyntheticWorkload) {
  pkg::SyntheticRepoParams params;
  params.total_packages = 1000;
  auto repo = pkg::generate_repository(params, 23);
  ASSERT_TRUE(repo.ok());

  sim::WorkloadConfig workload;
  workload.unique_jobs = 60;
  workload.repetitions = 3;
  workload.max_initial_selection = 15;
  sim::WorkloadGenerator generator(repo.value(), workload, util::Rng(3));
  const auto specs = generator.unique_specifications();
  const auto stream = generator.request_stream();

  FullRepoBaseline full(repo.value());
  NaivePerJobStore naive(repo.value());
  BlockDedupStore dedup(repo.value());
  LayeredStore layered(repo.value());
  for (auto index : stream) {
    (void)full.submit(specs[index]);
    (void)naive.submit(specs[index]);
    (void)dedup.submit(specs[index]);
    (void)layered.submit(specs[index]);
  }

  // Dedup's physical footprint is the lower bound on any store of the
  // same images; naive is the upper bound.
  EXPECT_LE(dedup.totals().physical_bytes, layered.totals().physical_bytes);
  EXPECT_LE(layered.totals().physical_bytes, naive.totals().physical_bytes);
  // Full-repo ships the most by far.
  EXPECT_GT(full.totals().shipped_bytes, naive.totals().shipped_bytes);
  // Naive and dedup ship identical bytes (dedup is storage-side only).
  EXPECT_EQ(naive.totals().shipped_bytes, dedup.totals().shipped_bytes);
}

}  // namespace
}  // namespace landlord::baseline
