#include "batch/batch.hpp"

#include <gtest/gtest.h>

#include "pkg/synthetic.hpp"
#include "sim/workload.hpp"

namespace landlord::batch {
namespace {

using pkg::package_id;

const pkg::Repository& repo() {
  static const pkg::Repository r = [] {
    pkg::SyntheticRepoParams params;
    params.total_packages = 600;
    auto result = pkg::generate_repository(params, 101);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }();
  return r;
}

std::vector<spec::Specification> sample_specs(std::uint32_t count) {
  sim::WorkloadConfig config;
  config.unique_jobs = count;
  config.max_initial_selection = 8;
  sim::WorkloadGenerator generator(repo(), config, util::Rng(7));
  return generator.unique_specifications();
}

BatchConfig batch_config(std::uint32_t slots, double alpha = 0.8) {
  BatchConfig config;
  config.slots = slots;
  config.cache.alpha = alpha;
  config.cache.capacity = repo().total_bytes();
  return config;
}

TEST(PoissonSchedule, GeneratesSortedArrivalsWithCorrectCounts) {
  const auto jobs = poisson_schedule(10, 3, 120.0, 600.0, util::Rng(1));
  ASSERT_EQ(jobs.size(), 30u);
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_GE(jobs[i].arrival_s, jobs[i - 1].arrival_s);
  }
  std::vector<int> visits(10, 0);
  for (const auto& job : jobs) {
    ASSERT_LT(job.spec_index, 10u);
    ++visits[job.spec_index];
    EXPECT_GT(job.run_s, 0.0);
  }
  for (int count : visits) EXPECT_EQ(count, 3);
}

TEST(PoissonSchedule, MeanGapTracksRate) {
  const auto jobs = poisson_schedule(200, 5, 360.0, 100.0, util::Rng(2));
  // 360 jobs/h -> 10 s mean gap; 1000 arrivals give a tight estimate.
  const double span = jobs.back().arrival_s - jobs.front().arrival_s;
  EXPECT_NEAR(span / static_cast<double>(jobs.size() - 1), 10.0, 1.5);
}

TEST(RunBatch, SingleJobAccounting) {
  const auto specs = sample_specs(1);
  std::vector<Job> jobs = {{0, 5.0, 100.0}};
  const auto result = run_batch(repo(), specs, jobs, batch_config(4));
  ASSERT_EQ(result.jobs.size(), 1u);
  const auto& record = result.jobs[0];
  EXPECT_DOUBLE_EQ(record.start_s, 5.0);  // free slot: starts on arrival
  EXPECT_GT(record.prep_s(), 0.0);        // cold cache: insert
  EXPECT_DOUBLE_EQ(record.finish_s, record.ready_s + 100.0);
  EXPECT_EQ(record.placement, core::RequestKind::kInsert);
  EXPECT_DOUBLE_EQ(result.makespan_s, record.finish_s);
}

TEST(RunBatch, RepeatJobSkipsPrep) {
  const auto specs = sample_specs(1);
  std::vector<Job> jobs = {{0, 0.0, 50.0}, {0, 1000.0, 50.0}};
  const auto result = run_batch(repo(), specs, jobs, batch_config(4));
  ASSERT_EQ(result.jobs.size(), 2u);
  EXPECT_GT(result.jobs[0].prep_s(), 0.0);
  EXPECT_DOUBLE_EQ(result.jobs[1].prep_s(), 0.0);  // cache hit
  EXPECT_EQ(result.jobs[1].placement, core::RequestKind::kHit);
}

TEST(RunBatch, JobsQueueWhenSlotsBusy) {
  const auto specs = sample_specs(1);
  // Two long jobs on one slot: the second waits for the first.
  std::vector<Job> jobs = {{0, 0.0, 100.0}, {0, 1.0, 100.0}};
  const auto result = run_batch(repo(), specs, jobs, batch_config(1));
  ASSERT_EQ(result.jobs.size(), 2u);
  const auto& first = result.jobs[0];
  const auto& second = result.jobs[1];
  EXPECT_DOUBLE_EQ(second.start_s, first.finish_s);
  EXPECT_GT(second.wait_s(), 90.0);
}

TEST(RunBatch, FifoOrderPreserved) {
  const auto specs = sample_specs(3);
  std::vector<Job> jobs = {{0, 0.0, 60.0}, {1, 1.0, 10.0}, {2, 2.0, 10.0}};
  const auto result = run_batch(repo(), specs, jobs, batch_config(1));
  // Started in arrival order regardless of run time.
  ASSERT_EQ(result.jobs.size(), 3u);
  EXPECT_EQ(result.jobs[0].spec_index, 0u);
  EXPECT_EQ(result.jobs[1].spec_index, 1u);
  EXPECT_EQ(result.jobs[2].spec_index, 2u);
  EXPECT_LE(result.jobs[0].start_s, result.jobs[1].start_s);
  EXPECT_LE(result.jobs[1].start_s, result.jobs[2].start_s);
}

TEST(RunBatch, MoreSlotsNeverHurtMakespan) {
  const auto specs = sample_specs(20);
  const auto jobs = poisson_schedule(specs.size(), 3, 720.0, 300.0, util::Rng(5));
  const auto narrow = run_batch(repo(), specs, jobs, batch_config(2));
  const auto wide = run_batch(repo(), specs, jobs, batch_config(16));
  EXPECT_LE(wide.makespan_s, narrow.makespan_s + 1e-9);
  EXPECT_LE(wide.mean_wait_s, narrow.mean_wait_s + 1e-9);
}

TEST(RunBatch, CacheHitsReduceTotalPrep) {
  const auto specs = sample_specs(10);
  const auto jobs = poisson_schedule(specs.size(), 5, 360.0, 120.0, util::Rng(9));
  // Alpha 0.9 merges aggressively -> more reuse -> less prep than alpha 0
  // with a tiny cache that thrashes.
  auto thrashing = batch_config(8, 0.0);
  thrashing.cache.capacity = repo().total_bytes() / 50;
  const auto cold = run_batch(repo(), specs, jobs, thrashing);
  const auto warm = run_batch(repo(), specs, jobs, batch_config(8, 0.9));
  EXPECT_LT(warm.total_prep_s, cold.total_prep_s);
  EXPECT_GT(warm.cache_counters.hits, cold.cache_counters.hits);
}

TEST(RunBatch, UtilizationAndThroughputBounded) {
  const auto specs = sample_specs(15);
  const auto jobs = poisson_schedule(specs.size(), 4, 720.0, 200.0, util::Rng(11));
  const auto result = run_batch(repo(), specs, jobs, batch_config(8));
  EXPECT_GT(result.slot_utilization, 0.0);
  EXPECT_LE(result.slot_utilization, 1.0 + 1e-9);
  EXPECT_GT(result.throughput_jobs_per_hour, 0.0);
  EXPECT_EQ(result.jobs.size(), jobs.size());
  EXPECT_EQ(result.cache_counters.requests, jobs.size());
}

TEST(RunBatch, DeterministicRerun) {
  const auto specs = sample_specs(10);
  const auto jobs = poisson_schedule(specs.size(), 3, 360.0, 150.0, util::Rng(13));
  const auto a = run_batch(repo(), specs, jobs, batch_config(4));
  const auto b = run_batch(repo(), specs, jobs, batch_config(4));
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_DOUBLE_EQ(a.total_prep_s, b.total_prep_s);
  EXPECT_EQ(a.cache_counters.hits, b.cache_counters.hits);
}

TEST(RunBatch, EmptyJobListIsEmptyResult) {
  const auto specs = sample_specs(1);
  const auto result = run_batch(repo(), specs, {}, batch_config(4));
  EXPECT_TRUE(result.jobs.empty());
  EXPECT_DOUBLE_EQ(result.makespan_s, 0.0);
}

}  // namespace
}  // namespace landlord::batch
